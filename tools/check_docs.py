#!/usr/bin/env python3
"""Documentation gate: markdown link check + public-API docstring audit.

Run from the repo root (CI's docs job does)::

    python tools/check_docs.py

Two checks, both must pass:

1. **Markdown links** — every relative link target referenced from
   ``README.md`` and ``docs/*.md`` must exist on disk (external
   ``http(s)``/``mailto`` links and pure ``#anchor`` links are skipped).
2. **Docstrings** — every module, public class and public
   function/method under ``src/repro/`` carries a docstring, mirroring
   the pydocstyle rules D100/D101/D102/D103 that the CI docs job also
   enforces with ``ruff``.  A name is private (and exempt) when it or
   any enclosing scope starts with an underscore; dunder methods are
   exempt (they fall under D105/D107, which are not gated).
"""

from __future__ import annotations

import ast
import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
MARKDOWN_FILES = [REPO_ROOT / "README.md", *sorted((REPO_ROOT / "docs").glob("*.md"))]
SOURCE_ROOT = REPO_ROOT / "src" / "repro"

_LINK_PATTERN = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_EXTERNAL_PREFIXES = ("http://", "https://", "mailto:")


def check_markdown_links() -> list[str]:
    """Return one error per broken relative link in the doc set."""
    errors: list[str] = []
    for markdown in MARKDOWN_FILES:
        if not markdown.exists():
            errors.append(f"{markdown.relative_to(REPO_ROOT)}: file missing")
            continue
        for target in _LINK_PATTERN.findall(markdown.read_text()):
            if target.startswith(_EXTERNAL_PREFIXES) or target.startswith("#"):
                continue
            path_part = target.split("#", 1)[0]
            if not path_part:
                continue
            resolved = (markdown.parent / path_part).resolve()
            if not resolved.exists():
                errors.append(
                    f"{markdown.relative_to(REPO_ROOT)}: broken link -> {target}"
                )
    return errors


def _is_private(name: str) -> bool:
    return name.startswith("_") and not (name.startswith("__") and name.endswith("__"))


def _is_dunder(name: str) -> bool:
    return name.startswith("__") and name.endswith("__")


def _walk_definitions(node: ast.AST, private_scope: bool, errors: list[str], rel: str):
    """Recursively flag undocumented public definitions under ``node``."""
    for child in ast.iter_child_nodes(node):
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            private = private_scope or _is_private(child.name)
            is_function = not isinstance(child, ast.ClassDef)
            exempt = private or (is_function and _is_dunder(child.name))
            if not exempt and ast.get_docstring(child) is None:
                kind = "class" if isinstance(child, ast.ClassDef) else "function"
                errors.append(f"{rel}:{child.lineno}: undocumented public {kind} "
                              f"{child.name!r}")
            _walk_definitions(child, private, errors, rel)


def check_docstrings() -> list[str]:
    """Return one error per undocumented public name under src/repro."""
    errors: list[str] = []
    for source in sorted(SOURCE_ROOT.rglob("*.py")):
        rel = str(source.relative_to(REPO_ROOT))
        tree = ast.parse(source.read_text(), filename=rel)
        if ast.get_docstring(tree) is None:
            errors.append(f"{rel}:1: undocumented module")
        module_private = any(_is_private(part) for part in source.relative_to(
            SOURCE_ROOT).parts[:-1])
        _walk_definitions(tree, module_private, errors, rel)
    return errors


def main() -> int:
    """Run both checks and report; non-zero exit on any finding."""
    errors = check_markdown_links() + check_docstrings()
    for error in errors:
        print(error)
    if errors:
        print(f"\n{len(errors)} documentation problem(s) found")
        return 1
    print(
        f"docs OK: {len(MARKDOWN_FILES)} markdown files, "
        f"{len(list(SOURCE_ROOT.rglob('*.py')))} source files checked"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
