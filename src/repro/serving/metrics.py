"""Observability surface of the sharding service.

Plain counters and gauges — no third-party metrics dependency — plus a
bounded reservoir of recent lookup latencies for the p50/p99 quantiles.
Everything is mutated from the service's event loop (or, for repartition
gauges, from the loop right after a background run completes), so no
locking is needed; :meth:`ServingMetrics.stats` renders one consistent
dictionary for the ``stats`` query and
:meth:`ServingMetrics.log_line` a ``key=value`` structured log line for
the periodic logger.

Tracked signals (the issue's observability checklist):

* ``lookups_total`` / ``vertices_looked_up`` / ``fallback_lookups`` and
  the derived overall + windowed lookups/sec;
* lookup latency p50/p99 (seconds, over the last
  :data:`LATENCY_RESERVOIR` requests);
* current snapshot ``version``;
* ``phi`` / ``rho`` of the live assignment (gauges refreshed at every
  publish, recomputable on demand via the service's ``quality`` op);
* ``migrations_last`` / ``migration_fraction_last`` per repartition and
  ``repartition_seconds_last`` wall time.
"""

from __future__ import annotations

import time
from collections import deque

#: Number of most recent lookup latencies kept for the quantile estimates.
LATENCY_RESERVOIR = 4096


def _quantile(samples: list[float], q: float) -> float:
    """Nearest-rank quantile of a non-empty sorted sample list."""
    index = min(len(samples) - 1, max(0, int(round(q * (len(samples) - 1)))))
    return samples[index]


class ServingMetrics:
    """Counters, gauges and latency quantiles for one service instance."""

    def __init__(self) -> None:
        self.started_at = time.monotonic()
        self.counters: dict[str, int] = {
            "lookups_total": 0,
            "vertices_looked_up": 0,
            "fallback_lookups": 0,
            "ingested_edges": 0,
            "ingested_vertices": 0,
            "repartitions": 0,
        }
        self.gauges: dict[str, float] = {}
        self._latencies: deque[float] = deque(maxlen=LATENCY_RESERVOIR)
        self._window_started = self.started_at
        self._window_lookups = 0

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def observe_lookup(
        self, num_vertices: int, num_fallback: int, seconds: float
    ) -> None:
        """Record one lookup request covering ``num_vertices`` vertices."""
        self.counters["lookups_total"] += 1
        self.counters["vertices_looked_up"] += num_vertices
        self.counters["fallback_lookups"] += num_fallback
        self._window_lookups += num_vertices
        self._latencies.append(seconds)

    def observe_ingest(self, num_edges: int, num_vertices: int) -> None:
        """Record one churn delta entering the pipeline."""
        self.counters["ingested_edges"] += num_edges
        self.counters["ingested_vertices"] += num_vertices

    def observe_repartition(
        self,
        *,
        version: int,
        phi: float,
        rho: float,
        migrations: int,
        migration_fraction: float,
        wall_seconds: float,
        swap_seconds: float,
    ) -> None:
        """Record a completed repartition and refresh the quality gauges."""
        self.counters["repartitions"] += 1
        self.gauges["version"] = float(version)
        self.gauges["phi"] = phi
        self.gauges["rho"] = rho
        self.gauges["migrations_last"] = float(migrations)
        self.gauges["migration_fraction_last"] = migration_fraction
        self.gauges["repartition_seconds_last"] = wall_seconds
        self.gauges["snapshot_swap_seconds_last"] = swap_seconds

    def set_gauge(self, name: str, value: float) -> None:
        """Set an arbitrary gauge (e.g. the bootstrap version/phi/rho)."""
        self.gauges[name] = value

    # ------------------------------------------------------------------
    # rendering
    # ------------------------------------------------------------------
    def latency_quantiles(self) -> dict[str, float]:
        """p50/p99 of the recent lookup latencies (seconds; 0 when empty)."""
        if not self._latencies:
            return {"latency_p50_s": 0.0, "latency_p99_s": 0.0}
        ordered = sorted(self._latencies)
        return {
            "latency_p50_s": _quantile(ordered, 0.50),
            "latency_p99_s": _quantile(ordered, 0.99),
        }

    def lookups_per_second(self) -> float:
        """Overall vertices-looked-up rate since the service started."""
        elapsed = time.monotonic() - self.started_at
        if elapsed <= 0:
            return 0.0
        return self.counters["vertices_looked_up"] / elapsed

    def window_rate(self, reset: bool = True) -> float:
        """Lookup rate since the last windowed read (the periodic log's rate)."""
        now = time.monotonic()
        elapsed = now - self._window_started
        rate = self._window_lookups / elapsed if elapsed > 0 else 0.0
        if reset:
            self._window_started = now
            self._window_lookups = 0
        return rate

    def stats(self) -> dict:
        """One consistent dictionary of every counter, gauge and quantile."""
        payload: dict = dict(self.counters)
        payload.update({name: value for name, value in sorted(self.gauges.items())})
        payload.update(self.latency_quantiles())
        payload["lookups_per_sec"] = self.lookups_per_second()
        payload["uptime_seconds"] = time.monotonic() - self.started_at
        return payload

    def log_line(self) -> str:
        """Structured ``key=value`` line for the periodic logger."""
        stats = self.stats()
        stats["window_lookups_per_sec"] = self.window_rate()
        parts = []
        for key in sorted(stats):
            value = stats[key]
            if isinstance(value, float):
                parts.append(f"{key}={value:.6g}")
            else:
                parts.append(f"{key}={value}")
        return "serving " + " ".join(parts)
