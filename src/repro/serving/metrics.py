"""Observability surface of the sharding service.

Plain counters and gauges — no third-party metrics dependency — plus a
preallocated reservoir of *sampled* lookup latencies for the p50/p99
quantiles: one request in ``sample_every`` (default
:data:`LATENCY_SAMPLE_EVERY`) records its latency into a fixed-size ring
buffer, so measurement stops taxing the measured path at high QPS while
the quantiles stay statistically representative.  Everything is mutated
from the service's event loop (or, for repartition gauges, from the loop
right after a background run completes), so no locking is needed;
:meth:`ServingMetrics.stats` renders one consistent dictionary for the
``stats`` query and :meth:`ServingMetrics.log_line` a ``key=value``
structured log line for the periodic logger.

Tracked signals (the issue's observability checklist):

* ``lookups_total`` / ``vertices_looked_up`` / ``fallback_lookups`` and
  the derived overall + windowed lookups/sec;
* lookup latency p50/p99 (seconds, 1-in-``sample_every`` sampled into a
  preallocated :data:`LATENCY_RESERVOIR`-slot ring);
* pipeline signals: ``pipeline_batches`` / ``pipeline_requests``
  counters and the last/max/mean batch depth the connection handler
  drained per write-coalesced response flush;
* current snapshot ``version``;
* ``phi`` / ``rho`` of the live assignment (gauges refreshed at every
  publish, recomputable on demand via the service's ``quality`` op);
* ``migrations_last`` / ``migration_fraction_last`` per repartition and
  ``repartition_seconds_last`` wall time.
"""

from __future__ import annotations

import time

from repro.errors import ServingError

#: Slots in the preallocated latency ring (most recent samples win).
LATENCY_RESERVOIR = 4096

#: Default sampling stride: one request in this many records its latency.
LATENCY_SAMPLE_EVERY = 16


def _quantile(samples: list[float], q: float) -> float:
    """Nearest-rank quantile of a non-empty sorted sample list."""
    index = min(len(samples) - 1, max(0, int(round(q * (len(samples) - 1)))))
    return samples[index]


class ServingMetrics:
    """Counters, gauges and latency quantiles for one service instance."""

    def __init__(self, sample_every: int = LATENCY_SAMPLE_EVERY) -> None:
        if sample_every < 1:
            raise ServingError(f"sample_every must be >= 1, got {sample_every}")
        self.started_at = time.monotonic()
        self.sample_every = int(sample_every)
        self.counters: dict[str, int] = {
            "lookups_total": 0,
            "vertices_looked_up": 0,
            "fallback_lookups": 0,
            "ingested_edges": 0,
            "ingested_vertices": 0,
            "repartitions": 0,
            "pipeline_batches": 0,
            "pipeline_requests": 0,
        }
        self.gauges: dict[str, float] = {}
        # Preallocated ring: no per-request allocation, O(1) writes.
        self._latency_ring: list[float] = [0.0] * LATENCY_RESERVOIR
        self._latency_cursor = 0
        self._latency_filled = 0
        self._window_started = self.started_at
        self._window_lookups = 0

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def _record_latency(self, seconds: float) -> None:
        self._latency_ring[self._latency_cursor] = seconds
        self._latency_cursor = (self._latency_cursor + 1) % LATENCY_RESERVOIR
        if self._latency_filled < LATENCY_RESERVOIR:
            self._latency_filled += 1

    def observe_lookup(
        self, num_vertices: int, num_fallback: int, seconds: float
    ) -> None:
        """Record one lookup request covering ``num_vertices`` vertices."""
        self.observe_lookup_batch(1, num_vertices, num_fallback, seconds)

    def observe_lookup_batch(
        self,
        num_requests: int,
        num_vertices: int,
        num_fallback: int,
        seconds: float,
    ) -> None:
        """Record ``num_requests`` fused lookup requests answered together.

        ``seconds`` is the wall time of the whole fused batch; when the
        sampling stride falls inside the batch, one per-request estimate
        (``seconds / num_requests``) enters the reservoir.
        """
        before = self.counters["lookups_total"]
        self.counters["lookups_total"] = before + num_requests
        self.counters["vertices_looked_up"] += num_vertices
        self.counters["fallback_lookups"] += num_fallback
        self._window_lookups += num_vertices
        # Sample iff some i in [before, before + num_requests) hits the stride.
        phase = before % self.sample_every
        if phase == 0 or phase + num_requests > self.sample_every:
            self._record_latency(seconds / num_requests)

    def observe_pipeline(self, depth: int) -> None:
        """Record one drained request batch of ``depth`` buffered lines."""
        self.counters["pipeline_batches"] += 1
        self.counters["pipeline_requests"] += depth
        self.gauges["pipeline_depth_last"] = float(depth)
        if depth > self.gauges.get("pipeline_depth_max", 0.0):
            self.gauges["pipeline_depth_max"] = float(depth)

    def observe_ingest(self, num_edges: int, num_vertices: int) -> None:
        """Record one churn delta entering the pipeline."""
        self.counters["ingested_edges"] += num_edges
        self.counters["ingested_vertices"] += num_vertices

    def observe_repartition(
        self,
        *,
        version: int,
        phi: float,
        rho: float,
        migrations: int,
        migration_fraction: float,
        wall_seconds: float,
        swap_seconds: float,
    ) -> None:
        """Record a completed repartition and refresh the quality gauges."""
        self.counters["repartitions"] += 1
        self.gauges["version"] = float(version)
        self.gauges["phi"] = phi
        self.gauges["rho"] = rho
        self.gauges["migrations_last"] = float(migrations)
        self.gauges["migration_fraction_last"] = migration_fraction
        self.gauges["repartition_seconds_last"] = wall_seconds
        self.gauges["snapshot_swap_seconds_last"] = swap_seconds

    def set_gauge(self, name: str, value: float) -> None:
        """Set an arbitrary gauge (e.g. the bootstrap version/phi/rho)."""
        self.gauges[name] = value

    # ------------------------------------------------------------------
    # rendering
    # ------------------------------------------------------------------
    def latency_quantiles(self) -> dict[str, float]:
        """p50/p99 of the sampled lookup latencies (seconds; 0 when empty)."""
        if not self._latency_filled:
            return {"latency_p50_s": 0.0, "latency_p99_s": 0.0}
        ordered = sorted(self._latency_ring[: self._latency_filled])
        return {
            "latency_p50_s": _quantile(ordered, 0.50),
            "latency_p99_s": _quantile(ordered, 0.99),
        }

    def lookups_per_second(self) -> float:
        """Overall vertices-looked-up rate since the service started."""
        elapsed = time.monotonic() - self.started_at
        if elapsed <= 0:
            return 0.0
        return self.counters["vertices_looked_up"] / elapsed

    def window_rate(self, reset: bool = True) -> float:
        """Lookup rate since the last windowed read (the periodic log's rate)."""
        now = time.monotonic()
        elapsed = now - self._window_started
        rate = self._window_lookups / elapsed if elapsed > 0 else 0.0
        if reset:
            self._window_started = now
            self._window_lookups = 0
        return rate

    def stats(self) -> dict:
        """One consistent dictionary of every counter, gauge and quantile."""
        payload: dict = dict(self.counters)
        payload.update({name: value for name, value in sorted(self.gauges.items())})
        payload.update(self.latency_quantiles())
        payload["latency_sample_every"] = self.sample_every
        batches = self.counters["pipeline_batches"]
        payload["pipeline_depth_mean"] = (
            self.counters["pipeline_requests"] / batches if batches else 0.0
        )
        payload["lookups_per_sec"] = self.lookups_per_second()
        payload["uptime_seconds"] = time.monotonic() - self.started_at
        return payload

    def log_line(self) -> str:
        """Structured ``key=value`` line for the periodic logger."""
        stats = self.stats()
        stats["window_lookups_per_sec"] = self.window_rate()
        parts = []
        for key in sorted(stats):
            value = stats[key]
            if isinstance(value, float):
                parts.append(f"{key}={value:.6g}")
            else:
                parts.append(f"{key}={value}")
        return "serving " + " ".join(parts)
