"""Asyncio lookup front end of the online sharding service.

A long-running, stdlib-only TCP server speaking a line-delimited JSON
protocol: every request is one JSON object on one line, every response
one JSON object on one line.  Operations:

``{"op": "lookup", "vertex": 7}``
    Single vertex→partition query; the response carries the snapshot
    ``version`` it was answered from, the ``partition`` and a
    ``fallback`` flag (hash placement for vertices born after the
    snapshot).
``{"op": "lookup", "vertices": [7, 8, 9]}``
    Batched query: ``partitions`` (aligned list) and ``fallbacks`` (the
    indices answered by the hash fallback), all from one snapshot — a
    batch can never straddle a version swap.
``{"op": "lookup_batch", "vertices": [7, 8, 9]}``
    Explicit name for the batched query above (``vertices`` required);
    same vectorized path, same response shape.
``{"op": "ingest", "edges": [[u, v], [u, v, w], ...], "vertices": [...]}``
    Feed a churn delta into the pipeline; may trigger a background
    repartition (the response says whether one was started or running).
``{"op": "stats"}``
    Counters, gauges, latency quantiles and pipeline signals
    (pending edges, estimated phi, in-flight flag, last migration
    report).
``{"op": "quality"}``
    Exact ``phi``/``rho`` of the current snapshot on the live graph (an
    O(edges) pass — the ``stats`` gauges are the cheap alternative).
``{"op": "version"}``
    The current snapshot version (cheapest liveness probe).
``{"op": "wait_version", "version": N, "timeout": 5.0}``
    Block until the store reaches version ``N`` (deterministic CI
    smoke: ingest a burst, then wait for the swap).
``{"op": "shutdown"}``
    Acknowledge, then stop the server cleanly.

Lookups are answered on the event loop directly from the current
:class:`~repro.serving.store.AssignmentSnapshot`; repartitions run in a
worker thread via :meth:`ChurnPipeline.execute` (NumPy releases the GIL
for the heavy kernels), so the loop — and therefore lookup latency —
never blocks on repartitioning.  The only loop-side repartition work is
the bounded graph freeze and the O(1) snapshot swap.

**Pipelining.**  The connection handler drains every request line a
client already sent (up to ``max_pipeline_batch``) before replying,
answers the whole batch, and writes all responses with one
``writer.write`` + one ``drain()`` instead of one round trip per
request.  Consecutive single-vertex ``lookup`` requests inside a batch
are fused into one vectorized
:meth:`~repro.serving.store.AssignmentSnapshot.lookup_many` against a
*single* snapshot reference — consistent because those requests were
already concurrently in flight, so any serialization of them against a
racing publish is admissible, and one snapshot per batch is exactly the
guarantee the batched ``lookup`` op already gives.  Responses stay in
request order and byte-identical to the per-request output; a
sequential request/response client observes no behavioural change.
"""

from __future__ import annotations

import asyncio
import json
import logging
import socket
import time

import numpy as np

from repro.errors import ServingError
from repro.graph.dynamic import GraphDelta
from repro.graph.undirected import UndirectedGraph
from repro.serving.churn import ChurnPipeline, ServingConfig
from repro.serving.metrics import ServingMetrics
from repro.serving.store import AssignmentStore

logger = logging.getLogger("repro.serving")

#: StreamReader line limit — batched lookups of ~100k vertices fit.
_LINE_LIMIT = 1 << 22

#: Exceptions a request is allowed to fail with (rendered as an error
#: response instead of killing the connection).
_REQUEST_ERRORS = (json.JSONDecodeError, ServingError, ValueError, TypeError)


def _encode(response: dict) -> bytes:
    """Serialize one response as a JSON line (the wire format)."""
    return json.dumps(response).encode("utf-8") + b"\n"


def _is_single_lookup(payload: dict) -> bool:
    """Whether a request takes the single-vertex lookup path (fusable)."""
    return payload.get("op") == "lookup" and "vertex" in payload


def _parse_delta(payload: dict) -> GraphDelta:
    """Build a :class:`GraphDelta` from an ``ingest`` request payload."""
    delta = GraphDelta()
    for vertex in payload.get("vertices", []):
        delta.added_vertices.add(int(vertex))
    for edge in payload.get("edges", []):
        if len(edge) == 2:
            u, v = edge
            weight = 1
        elif len(edge) == 3:
            u, v, weight = edge
        else:
            raise ServingError(f"edges must be [u, v] or [u, v, w], got {edge!r}")
        delta.added_edges.append((int(u), int(v), int(weight)))
    return delta


class ShardingService:
    """The serving layer: store + churn pipeline + metrics + TCP front end.

    Parameters
    ----------
    graph:
        The live undirected graph (mutated by churn ingestion).
    config:
        Service knobs (:class:`~repro.serving.churn.ServingConfig`).
    warm_start:
        Optional partitioning file written by
        :meth:`~repro.serving.store.AssignmentStore.save` (or any
        :mod:`repro.graph.io` partitioning writer); when given, the
        service starts serving it as version 1 without running the
        partitioner.  Otherwise the initial partitioning is computed at
        construction time (version 1).
    host / port:
        Listen address; port 0 binds an ephemeral port (read
        :attr:`port` after :meth:`start`).
    """

    def __init__(
        self,
        graph: UndirectedGraph,
        config: ServingConfig,
        *,
        warm_start: str | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.config = config
        self.host = host
        self.port = port
        self.metrics = ServingMetrics(sample_every=config.latency_sample_every)
        self.store = AssignmentStore(config.num_partitions)
        self.pipeline = ChurnPipeline(graph, self.store, config, self.metrics)
        self.last_report = None
        if warm_start is not None:
            snapshot = self.store.warm_start(warm_start)
            self.pipeline.rebase(snapshot)
        else:
            self.last_report = self.pipeline.bootstrap()
        self._server: asyncio.AbstractServer | None = None
        self._stopped: asyncio.Event | None = None
        self._version_cond: asyncio.Condition | None = None
        self._repartition_task: asyncio.Task | None = None
        self._log_task: asyncio.Task | None = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind the listener and start the background tasks."""
        self._stopped = asyncio.Event()
        self._version_cond = asyncio.Condition()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port, limit=_LINE_LIMIT
        )
        self.port = self._server.sockets[0].getsockname()[1]
        if self.config.log_interval > 0:
            self._log_task = asyncio.create_task(self._periodic_log())
        logger.info("listening on %s:%d", self.host, self.port)

    async def stop(self) -> None:
        """Stop the listener and wait for an in-flight repartition."""
        if self._log_task is not None:
            self._log_task.cancel()
            self._log_task = None
        if self._repartition_task is not None:
            await asyncio.shield(self._repartition_task)
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._stopped is not None:
            self._stopped.set()

    async def serve_forever(self, ready=None) -> None:
        """Start and run until a ``shutdown`` request (or cancellation).

        ``ready``, when given, is called with the service once the
        listener is bound — the CLI uses it to print the resolved
        ephemeral port before blocking.
        """
        await self.start()
        if ready is not None:
            ready(self)
        assert self._stopped is not None
        try:
            await self._stopped.wait()
        finally:
            await self.stop()

    # ------------------------------------------------------------------
    # request handling
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        max_batch = self.config.max_pipeline_batch
        # The StreamReader's internal buffer: re-checked after every
        # readline, so "a full line is already buffered" is answered
        # without yielding to the network.  Absent attribute (foreign
        # reader implementation) degrades to request-per-response.
        buffered = getattr(reader, "_buffer", None)
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                lines = [line]
                if buffered is not None:
                    while len(lines) < max_batch and b"\n" in buffered:
                        lines.append(await reader.readline())
                stop_after = await self._respond_batch(lines, writer)
                if stop_after:
                    assert self._stopped is not None
                    self._stopped.set()
                    break
        except (ConnectionResetError, asyncio.IncompleteReadError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                pass

    async def _respond_batch(
        self, lines: list[bytes], writer: asyncio.StreamWriter
    ) -> bool:
        """Answer one drained batch with a single coalesced write.

        Responses are serialized into one buffer in request order;
        consecutive single-vertex lookups are answered by one vectorized
        call against one snapshot.  A ``shutdown`` mid-batch stops
        processing after its acknowledgement, exactly like the
        per-request loop (which would never read the later lines).
        """
        self.metrics.observe_pipeline(len(lines))
        parsed = [self._parse_line(line) for line in lines]
        chunks: list[bytes] = []
        stop_after = False
        index = 0
        while index < len(parsed):
            payload, error = parsed[index]
            if error is not None:
                chunks.append(_encode(error))
                index += 1
                continue
            if _is_single_lookup(payload):
                end = index + 1
                while (
                    end < len(parsed)
                    and parsed[end][1] is None
                    and _is_single_lookup(parsed[end][0])
                ):
                    end += 1
                if end == index + 1:
                    chunks.append(self._encode_single_lookup(payload))
                else:
                    chunks.extend(
                        self._fused_lookup_run(
                            [item[0] for item in parsed[index:end]]
                        )
                    )
                index = end
                continue
            if payload.get("op") == "wait_version" and chunks:
                # Flush finished responses before an op that may block for
                # a long time, so the client is not starved of them.
                writer.write(b"".join(chunks))
                await writer.drain()
                chunks = []
            response, stop_after = await self._dispatch_safe(payload)
            chunks.append(_encode(response))
            index += 1
            if stop_after:
                break
        if chunks:
            writer.write(b"".join(chunks))
            await writer.drain()
        return stop_after

    @staticmethod
    def _parse_line(line: bytes) -> tuple[dict | None, dict | None]:
        """Decode one request line into ``(payload, error_response)``."""
        try:
            payload = json.loads(line)
            if not isinstance(payload, dict):
                raise ServingError("request must be a JSON object")
            return payload, None
        except _REQUEST_ERRORS as exc:
            return None, {"ok": False, "error": str(exc)}

    async def _dispatch_safe(self, payload: dict) -> tuple[dict, bool]:
        try:
            return await self._dispatch(payload)
        except _REQUEST_ERRORS as exc:
            return {"ok": False, "error": str(exc)}, False

    def _encode_single_lookup(self, payload: dict) -> bytes:
        """One single-vertex lookup, errors rendered like any request."""
        try:
            return _encode(self.lookup(payload["vertex"]))
        except _REQUEST_ERRORS as exc:
            return _encode({"ok": False, "error": str(exc)})

    def _fused_lookup_run(self, payloads: list[dict]) -> list[bytes]:
        """Answer a run of single-vertex lookups from one snapshot.

        One vectorized ``lookup_many`` replaces the per-request scalar
        probes; the responses are byte-identical to the per-request
        output (same keys, same order, same ``version`` semantics — the
        batch was concurrently in flight, so one snapshot reference is an
        admissible serialization).  Any malformed vertex drops the whole
        run back to per-request processing so error responses match
        exactly.
        """
        start = time.perf_counter()
        snapshot = self.store.current()
        try:
            query = np.fromiter(
                (int(payload["vertex"]) for payload in payloads),
                dtype=np.int64,
                count=len(payloads),
            )
            labels, fallback = snapshot.lookup_many(query)
        except _REQUEST_ERRORS + (OverflowError, KeyError):
            return [self._encode_single_lookup(payload) for payload in payloads]
        self.metrics.observe_lookup_batch(
            len(payloads),
            len(payloads),
            int(fallback.sum()),
            time.perf_counter() - start,
        )
        version = snapshot.version
        return [
            _encode(
                {
                    "ok": True,
                    "version": version,
                    "partition": partition,
                    "fallback": flagged,
                }
            )
            for partition, flagged in zip(labels.tolist(), fallback.tolist())
        ]

    async def _dispatch(self, payload: dict) -> tuple[dict, bool]:
        op = payload.get("op")
        if op == "lookup":
            return self._op_lookup(payload), False
        if op == "lookup_batch":
            return self._op_lookup_batch(payload), False
        if op == "ingest":
            return await self._op_ingest(payload), False
        if op == "stats":
            return {"ok": True, "stats": self.stats()}, False
        if op == "quality":
            return self._op_quality(), False
        if op == "version":
            return {"ok": True, "version": self.store.version}, False
        if op == "wait_version":
            return await self._op_wait_version(payload), False
        if op == "shutdown":
            return {"ok": True, "version": self.store.version}, True
        return {"ok": False, "error": f"unknown op {op!r}"}, False

    # -- lookups --------------------------------------------------------
    def lookup(self, vertex: int) -> dict:
        """Single-vertex lookup against the current snapshot."""
        start = time.perf_counter()
        snapshot = self.store.current()
        partition, fallback = snapshot.lookup(int(vertex))
        self.metrics.observe_lookup(
            1, int(fallback), time.perf_counter() - start
        )
        return {
            "ok": True,
            "version": snapshot.version,
            "partition": partition,
            "fallback": fallback,
        }

    def lookup_many(self, vertices) -> dict:
        """Batched lookup — answered from exactly one snapshot version."""
        start = time.perf_counter()
        snapshot = self.store.current()
        if not isinstance(vertices, (list, np.ndarray)):
            vertices = list(vertices)
        query = np.asarray(vertices, dtype=np.int64)
        labels, fallback = snapshot.lookup_many(query)
        self.metrics.observe_lookup(
            int(query.shape[0]),
            int(fallback.sum()),
            time.perf_counter() - start,
        )
        return {
            "ok": True,
            "version": snapshot.version,
            "partitions": labels.tolist(),
            "fallbacks": np.flatnonzero(fallback).tolist(),
        }

    def _op_lookup(self, payload: dict) -> dict:
        if "vertex" in payload:
            return self.lookup(payload["vertex"])
        if "vertices" in payload:
            return self.lookup_many(payload["vertices"])
        return {"ok": False, "error": "lookup requires 'vertex' or 'vertices'"}

    def _op_lookup_batch(self, payload: dict) -> dict:
        if "vertices" not in payload:
            return {"ok": False, "error": "lookup_batch requires 'vertices'"}
        return self.lookup_many(payload["vertices"])

    # -- churn ----------------------------------------------------------
    async def _op_ingest(self, payload: dict) -> dict:
        delta = _parse_delta(payload)
        added = self.pipeline.ingest(delta)
        triggered = self._maybe_start_repartition()
        return {
            "ok": True,
            "added_edges": added,
            "pending_edges": self.pipeline.pending_edges,
            "version": self.store.version,
            "repartition_running": self.pipeline.in_flight,
            "repartition_triggered": triggered,
        }

    def ingest(self, delta: GraphDelta) -> bool:
        """Programmatic ingest (tests): apply a delta, maybe repartition."""
        self.pipeline.ingest(delta)
        return self._maybe_start_repartition()

    def _maybe_start_repartition(self) -> bool:
        if not self.pipeline.should_trigger():
            return False
        if self._repartition_task is not None and not self._repartition_task.done():
            return False
        self._repartition_task = asyncio.get_running_loop().create_task(
            self._run_repartition()
        )
        return True

    async def _run_repartition(self) -> None:
        """One background repartition: freeze → executor thread → publish."""
        loop = asyncio.get_running_loop()
        job = self.pipeline.freeze()
        try:
            outcome = await loop.run_in_executor(None, self.pipeline.execute, job)
        except Exception:
            self.pipeline.in_flight = False
            logger.exception("background repartition failed")
            return
        report = self.pipeline.publish(job, outcome)
        self.last_report = report
        logger.info(
            "published version %d: phi=%.4f rho=%.4f migrations=%d "
            "(%.4f of vertices) in %.3fs (swap %.6fs)",
            report.version,
            report.phi,
            report.rho,
            report.migrations,
            report.migration_fraction,
            report.wall_seconds,
            report.swap_seconds,
        )
        if self._version_cond is not None:
            async with self._version_cond:
                self._version_cond.notify_all()
        # Churn that arrived while this run was in flight may already
        # exceed the thresholds again.
        self._maybe_start_repartition()

    async def _op_wait_version(self, payload: dict) -> dict:
        target = int(payload.get("version", self.store.version + 1))
        timeout = float(payload.get("timeout", 30.0))
        assert self._version_cond is not None
        try:
            async with self._version_cond:
                await asyncio.wait_for(
                    self._version_cond.wait_for(
                        lambda: self.store.version >= target
                    ),
                    timeout=timeout,
                )
        except asyncio.TimeoutError:
            return {
                "ok": False,
                "error": f"timed out waiting for version {target}",
                "version": self.store.version,
            }
        return {"ok": True, "version": self.store.version}

    # -- observability --------------------------------------------------
    def stats(self) -> dict:
        """The ``stats`` op payload: metrics + pipeline signals."""
        payload = self.metrics.stats()
        payload.update(
            {
                "version": self.store.version,
                "num_partitions": self.config.num_partitions,
                "graph_vertices": self.pipeline.graph.num_vertices,
                "graph_edges": self.pipeline.graph.num_edges,
                "pending_edges": self.pipeline.pending_edges,
                "estimated_phi": self.pipeline.estimated_phi(),
                "estimated_drift": self.pipeline.estimated_drift(),
                "repartition_in_flight": self.pipeline.in_flight,
            }
        )
        if self.last_report is not None:
            payload["last_repartition"] = self.last_report.as_row()
        return payload

    def _op_quality(self) -> dict:
        from repro.metrics.quality import locality, max_normalized_load

        snapshot = self.store.current()
        graph = self.pipeline.graph
        ids = np.fromiter(
            graph.vertices(), dtype=np.int64, count=graph.num_vertices
        )
        labels, _ = snapshot.lookup_many(ids)
        assignment = {
            int(v): int(label) for v, label in zip(ids.tolist(), labels.tolist())
        }
        return {
            "ok": True,
            "version": snapshot.version,
            "phi": locality(graph, assignment),
            "rho": max_normalized_load(
                graph, assignment, self.config.num_partitions
            ),
        }

    async def _periodic_log(self) -> None:
        try:
            while True:
                await asyncio.sleep(self.config.log_interval)
                logger.info(self.metrics.log_line())
        except asyncio.CancelledError:  # pragma: no cover - shutdown path
            raise


def send_requests(
    host: str,
    port: int,
    requests: list[dict],
    timeout: float = 30.0,
    *,
    pipeline: bool = False,
) -> list[dict]:
    """Blocking JSON-lines client (tests, CI smoke, quick CLI probes).

    Opens one connection and returns the aligned list of responses.
    ``pipeline=False`` (default) sends one request and waits for its
    response before the next — one round trip per request.
    ``pipeline=True`` sends *every* request in one buffer, then reads all
    responses: this exercises the server's batch drain, lookup fusion and
    write coalescing, and is how the benchmark measures pipelined
    throughput.  A ``shutdown`` should be the last pipelined request —
    the server stops reading after acknowledging it.
    """
    responses: list[dict] = []
    with socket.create_connection((host, port), timeout=timeout) as conn:
        reader = conn.makefile("rb")
        if pipeline:
            conn.sendall(
                b"".join(
                    json.dumps(payload).encode("utf-8") + b"\n"
                    for payload in requests
                )
            )
            for _ in requests:
                line = reader.readline()
                if not line:
                    raise ServingError("connection closed before a response arrived")
                responses.append(json.loads(line))
        else:
            for payload in requests:
                conn.sendall(json.dumps(payload).encode("utf-8") + b"\n")
                line = reader.readline()
                if not line:
                    raise ServingError("connection closed before a response arrived")
                responses.append(json.loads(line))
    return responses
