"""Versioned, array-backed vertex→partition assignment store.

The serving layer's core data structure.  A :class:`AssignmentSnapshot`
is an *immutable* pair of parallel int64 arrays — sorted original vertex
ids and their partition labels — plus a version number; batched lookups
are fully vectorized.  Snapshots come in two physical representations
behind one logical contract:

* **dense** — when the sorted ids are contiguous
  (``ids[0] + n - 1 == ids[-1]``, the common case for generated and
  ingested graphs, which number vertices ``0..n-1``), a covered lookup
  is a single O(1) array load at ``labels[vertex - ids[0]]``;
* **sparse** — otherwise, a covered lookup is the O(log n)
  ``searchsorted`` probe.

Both representations are pinned byte-identical on a randomized
equivalence suite (``tests/test_serving_dataplane.py``).  The
:class:`AssignmentStore` holds the current snapshot behind a single
reference that is swapped atomically by :meth:`AssignmentStore.publish`,
so readers racing a background repartition always observe one complete,
internally consistent version: either the old snapshot or the new one,
never a mixture.
:class:`AssignmentStore` holds the current snapshot behind a single
reference that is swapped atomically by :meth:`AssignmentStore.publish`,
so readers racing a background repartition always observe one complete,
internally consistent version: either the old snapshot or the new one,
never a mixture.

Versions start at 0 (the empty bootstrap snapshot: every lookup falls
back to hashing) and increase by exactly 1 per publish — gapless and
monotone, which the serving test suite pins.

Miss semantics: a vertex id not covered by the snapshot (typically born
after the snapshot was computed) is routed to
``splitmix64(id) mod k`` — the exact rule of
:class:`~repro.partitioners.hashing.HashPartitioner` — and the response
is flagged as a fallback, so callers can distinguish an authoritative
placement from a provisional one.

Persistence reuses the :mod:`repro.graph.io` partitioning format and its
atomic writers: :meth:`AssignmentStore.save` /
:meth:`AssignmentStore.warm_start` round-trip byte-exactly, so a service
can be restarted from its last persisted assignment without any
re-partitioning work.
"""

from __future__ import annotations

import os
import threading
from collections.abc import Mapping

import numpy as np

from repro.core.state import validate_label_array
from repro.errors import ServingError
from repro.graph.io import read_partitioning, write_partitioning_array
from repro.partitioners.hashing import hash_label, hash_labels_array


class AssignmentSnapshot:
    """One immutable version of the vertex→partition map.

    Attributes
    ----------
    version:
        Monotone snapshot version (0 is the empty bootstrap snapshot).
    ids:
        Sorted original vertex ids covered by this snapshot (int64).
    labels:
        Partition labels aligned with ``ids`` (int64, in ``[0, k)``).
    num_partitions:
        Number of partitions ``k`` (also the modulus of the hash
        fallback for uncovered ids).
    """

    __slots__ = ("version", "ids", "labels", "num_partitions", "_dense_base")

    def __init__(
        self,
        version: int,
        ids: np.ndarray,
        labels: np.ndarray,
        num_partitions: int,
    ) -> None:
        if num_partitions <= 0:
            raise ServingError(f"num_partitions must be positive, got {num_partitions}")
        ids = np.ascontiguousarray(ids, dtype=np.int64)
        labels = np.ascontiguousarray(labels, dtype=np.int64)
        if ids.shape != labels.shape or ids.ndim != 1:
            raise ServingError("ids and labels must be parallel 1-D arrays")
        if ids.size > 1 and not bool(np.all(np.diff(ids) > 0)):
            raise ServingError("snapshot ids must be strictly increasing")
        validate_label_array(labels, num_partitions)
        ids.flags.writeable = False
        labels.flags.writeable = False
        self.version = version
        self.ids = ids
        self.labels = labels
        self.num_partitions = num_partitions
        # Contiguous sorted ids mean vertex -> labels[vertex - ids[0]] is a
        # direct index: no searchsorted probe and no extra table (the label
        # array itself *is* the dense map).
        if ids.size and int(ids[0]) + ids.size - 1 == int(ids[-1]):
            self._dense_base = int(ids[0])
        else:
            self._dense_base = None

    @property
    def num_vertices(self) -> int:
        """Number of vertices covered by this snapshot."""
        return int(self.ids.shape[0])

    @property
    def is_dense(self) -> bool:
        """Whether covered lookups use the O(1) direct-index representation."""
        return self._dense_base is not None

    def lookup(self, vertex: int) -> tuple[int, bool]:
        """Return ``(partition, fallback)`` for one vertex id.

        Covered ids are one O(1) array load on a dense snapshot (one
        O(log n) probe on a sparse one); a miss is routed by the scalar
        :func:`~repro.partitioners.hashing.hash_label` — no array is
        allocated on either path.
        """
        if self._dense_base is not None:
            offset = vertex - self._dense_base
            if 0 <= offset < self.ids.shape[0]:
                return int(self.labels[offset]), False
        elif self.ids.shape[0]:
            position = int(np.searchsorted(self.ids, vertex))
            if position < self.ids.shape[0] and int(self.ids[position]) == vertex:
                return int(self.labels[position]), False
        return hash_label(vertex, self.num_partitions), True

    def lookup_many(self, vertices: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized lookup: ``(labels, fallback_mask)`` for an id array.

        Covered ids get their snapshot label; uncovered ids get the hash
        fallback and a set bit in ``fallback_mask``.  Only the miss
        subset is hashed — a full-hit batch (the steady-state serving
        case) does no fallback work at all.
        """
        query = np.asarray(vertices, dtype=np.int64)
        n = self.ids.shape[0]
        if n == 0:
            return self._hash_fallback(query), np.ones(query.shape[0], dtype=bool)
        labels = np.empty(query.shape[0], dtype=np.int64)
        if self._dense_base is not None:
            offset = query - self._dense_base
            found = (offset >= 0) & (offset < n)
            labels[found] = self.labels[offset[found]]
        else:
            position = np.minimum(np.searchsorted(self.ids, query), n - 1)
            found = self.ids[position] == query
            labels[found] = self.labels[position[found]]
        miss = ~found
        if miss.any():
            labels[miss] = self._hash_fallback(query[miss])
        return labels, miss

    def _hash_fallback(self, query: np.ndarray) -> np.ndarray:
        """Hash-route uncovered ids (rejecting negatives like :func:`hash_label`)."""
        if query.size and int(query.min()) < 0:
            raise ServingError(
                f"vertex ids must be non-negative, got {int(query.min())}"
            )
        return hash_labels_array(query, self.num_partitions)

    def to_assignment(self) -> dict[int, int]:
        """Render as a ``{vertex id: partition}`` dictionary."""
        return {
            int(vertex): int(label)
            for vertex, label in zip(self.ids.tolist(), self.labels.tolist())
        }


class AssignmentStore:
    """Holder of the current :class:`AssignmentSnapshot`.

    ``publish`` swaps the snapshot reference under a lock and bumps the
    version by exactly 1; ``current`` is lock-free (reference reads are
    atomic), so high-QPS lookups never wait on a publish, let alone on
    the repartitioning that produced it.
    """

    def __init__(self, num_partitions: int) -> None:
        if num_partitions <= 0:
            raise ServingError(f"num_partitions must be positive, got {num_partitions}")
        self.num_partitions = num_partitions
        self._lock = threading.Lock()
        self._snapshot = AssignmentSnapshot(
            0,
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.int64),
            num_partitions,
        )

    @property
    def version(self) -> int:
        """Version of the current snapshot."""
        return self._snapshot.version

    def current(self) -> AssignmentSnapshot:
        """Return the current snapshot (never blocks)."""
        return self._snapshot

    def publish(self, ids: np.ndarray, labels: np.ndarray) -> AssignmentSnapshot:
        """Atomically install ``(ids, labels)`` as the next version.

        Returns the newly installed snapshot.  The previous snapshot
        object stays valid for readers that already hold it.
        """
        with self._lock:
            snapshot = AssignmentSnapshot(
                self._snapshot.version + 1, ids, labels, self.num_partitions
            )
            self._snapshot = snapshot
        return snapshot

    def publish_assignment(self, assignment: Mapping[int, int]) -> AssignmentSnapshot:
        """Publish from a ``{vertex: partition}`` mapping (sorted by id)."""
        count = len(assignment)
        ids = np.fromiter(assignment.keys(), dtype=np.int64, count=count)
        labels = np.fromiter(assignment.values(), dtype=np.int64, count=count)
        order = np.argsort(ids, kind="stable")
        return self.publish(ids[order], labels[order])

    def save(self, path: str | os.PathLike) -> None:
        """Persist the current snapshot as a partitioning file (atomic).

        Uses :func:`repro.graph.io.write_partitioning_array`, so the file
        is either the complete new snapshot or untouched, and
        :meth:`warm_start` round-trips it byte-exactly.
        """
        snapshot = self._snapshot
        write_partitioning_array(snapshot.ids, snapshot.labels, path)

    def warm_start(self, path: str | os.PathLike) -> AssignmentSnapshot:
        """Load a persisted assignment as the next version.

        The file must have been written by :meth:`save` (or any
        :mod:`repro.graph.io` partitioning writer).  Loading it into a
        fresh store and saving again reproduces the file byte for byte.
        """
        assignment = read_partitioning(path)
        if not assignment:
            raise ServingError(f"partitioning file {os.fspath(path)!r} is empty")
        return self.publish_assignment(assignment)
