"""Online graph-sharding service (the paper's Section I serving scenario).

Turns the batch reproduction into the system Spinner was built for: a
long-running service that answers vertex→partition lookups at high QPS
from a versioned, atomically-swapped assignment store
(:mod:`repro.serving.store`), consumes a live edge stream and triggers
incremental repartitioning in the background when churn crosses a
threshold (:mod:`repro.serving.churn`), and exposes
lookup/latency/quality/migration metrics (:mod:`repro.serving.metrics`)
through an asyncio JSON-lines front end (:mod:`repro.serving.service`),
wired to the CLI as ``spinner-repro serve``.
"""

from repro.serving.churn import (
    ChurnPipeline,
    RepartitionReport,
    SERVING_ENGINES,
    ServingConfig,
)
from repro.serving.metrics import ServingMetrics
from repro.serving.service import ShardingService, send_requests
from repro.serving.store import AssignmentSnapshot, AssignmentStore

__all__ = [
    "AssignmentSnapshot",
    "AssignmentStore",
    "ChurnPipeline",
    "RepartitionReport",
    "SERVING_ENGINES",
    "ServingConfig",
    "ServingMetrics",
    "ShardingService",
    "send_requests",
]
