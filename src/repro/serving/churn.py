"""Live churn ingestion and background incremental repartitioning.

The pipeline consumes :class:`~repro.graph.dynamic.GraphDelta` batches
(e.g. drained from an :class:`~repro.graph.dynamic.EdgeArrivalStream` or
one of the adversarial churn generators), applies them to the live
graph, and keeps two cheap trigger signals up to date:

* the number of pending edges not yet covered by a published
  repartition, and
* an incrementally-maintained estimate of the live assignment's
  locality ``phi`` — each arriving edge adjusts a running
  ``local_weight / total_weight`` pair using the *current* snapshot's
  labels, so estimating the degradation costs O(1) per edge instead of
  an O(m) metric pass.

When either threshold trips (``edge_threshold`` pending edges, or the
estimated ``phi`` dropping ``phi_drift`` below the last published
value), the service runs one repartition in the background:
:meth:`ChurnPipeline.freeze` copies the live graph and the previous
snapshot on the event loop (a bounded pause), :meth:`ChurnPipeline.execute`
runs the engine anywhere (an executor thread under the service, inline
in tests and benchmarks), and :meth:`ChurnPipeline.publish` installs the
result as the next store version with a bounded migration report.
Lookups keep answering from the old snapshot throughout.

The repartition itself is Spinner's Section III-D incremental restart:
previous labels are preserved, new vertices go to the least loaded
partition (:mod:`repro.core.incremental`), and label propagation resumes
from there on the configured engine — ``fast`` (the vectorized
:class:`~repro.core.fast.FastSpinner`, honouring the ``ram``/``mmap``
storage tier), or the ``dict``/``vector`` Pregel runtimes (the latter
optionally across ``parallel`` OS processes).  A churn-triggered run is
bit-identical to invoking the same engine's ``adapt_to_graph_changes``
directly with the same seed, which the serving test suite pins.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.config import SpinnerConfig
from repro.core.fast import FastSpinner
from repro.core.spinner import SpinnerPartitioner
from repro.errors import ServingError
from repro.graph.dynamic import GraphDelta
from repro.graph.undirected import UndirectedGraph
from repro.serving.metrics import ServingMetrics
from repro.serving.store import AssignmentSnapshot, AssignmentStore

#: Engines a repartition may run on (CLI ``serve --engine`` choices).
SERVING_ENGINES = ("fast", "dict", "vector")


@dataclass(frozen=True)
class ServingConfig:
    """Knobs of the sharding service.

    Attributes
    ----------
    num_partitions:
        Number of partitions ``k`` served and repartitioned.
    edge_threshold:
        Trigger a repartition once this many pending edges accumulated;
        ``None`` disables the count trigger.
    phi_drift:
        Trigger once the estimated locality dropped this far below the
        last published ``phi``; ``None`` disables the drift trigger.
    engine:
        Repartitioning engine: ``"fast"`` (FastSpinner, default),
        ``"dict"`` or ``"vector"`` (the Pregel runtimes).
    parallel:
        OS processes for the vector engine's shared-memory executor
        (``engine="vector"`` only).
    num_workers:
        Simulated workers for the Pregel engines.
    spinner:
        Algorithm parameters shared by every engine (seed, capacity,
        halting, storage tier).
    log_interval:
        Seconds between periodic structured log lines (0 disables).
    latency_sample_every:
        Lookup-latency sampling stride: one request in this many enters
        the metrics reservoir (1 records every request).
    max_pipeline_batch:
        Most buffered request lines the connection handler drains into
        one decoded batch / coalesced response write (bounds per-batch
        memory; 1 degenerates to request-per-response).
    """

    num_partitions: int
    edge_threshold: int | None = 512
    phi_drift: float | None = None
    engine: str = "fast"
    parallel: int = 1
    num_workers: int = 4
    spinner: SpinnerConfig = field(default_factory=SpinnerConfig)
    log_interval: float = 10.0
    latency_sample_every: int = 16
    max_pipeline_batch: int = 1024

    def __post_init__(self) -> None:
        if self.num_partitions <= 0:
            raise ServingError(
                f"num_partitions must be positive, got {self.num_partitions}"
            )
        if self.edge_threshold is not None and self.edge_threshold < 1:
            raise ServingError(
                f"edge_threshold must be >= 1, got {self.edge_threshold}"
            )
        if self.phi_drift is not None and not 0.0 < self.phi_drift <= 1.0:
            raise ServingError(
                f"phi_drift must lie in (0, 1], got {self.phi_drift}"
            )
        if self.engine not in SERVING_ENGINES:
            raise ServingError(
                f"engine must be one of {SERVING_ENGINES}, got {self.engine!r}"
            )
        if self.parallel < 1:
            raise ServingError(f"parallel must be >= 1, got {self.parallel}")
        if self.parallel > 1 and self.engine != "vector":
            raise ServingError(
                "parallel > 1 requires engine='vector', "
                f"got engine={self.engine!r}"
            )
        if self.log_interval < 0:
            raise ServingError(
                f"log_interval must be >= 0, got {self.log_interval}"
            )
        if self.latency_sample_every < 1:
            raise ServingError(
                f"latency_sample_every must be >= 1, got {self.latency_sample_every}"
            )
        if self.max_pipeline_batch < 1:
            raise ServingError(
                f"max_pipeline_batch must be >= 1, got {self.max_pipeline_batch}"
            )


@dataclass(frozen=True)
class RepartitionOutcome:
    """Engine-agnostic result of one repartitioning run."""

    ids: np.ndarray
    labels: np.ndarray
    phi: float
    rho: float
    iterations: int


@dataclass(frozen=True)
class RepartitionReport:
    """Bounded migration report published alongside a snapshot swap."""

    version: int
    phi: float
    rho: float
    iterations: int
    migrations: int
    migration_fraction: float
    pending_edges_consumed: int
    wall_seconds: float
    swap_seconds: float

    def as_row(self) -> dict:
        """Flat dictionary rendering (stats op / structured logs)."""
        return {
            "version": self.version,
            "phi": round(self.phi, 4),
            "rho": round(self.rho, 4),
            "iterations": self.iterations,
            "migrations": self.migrations,
            "migration_fraction": round(self.migration_fraction, 4),
            "pending_edges_consumed": self.pending_edges_consumed,
            "wall_seconds": round(self.wall_seconds, 4),
            "swap_seconds": round(self.swap_seconds, 6),
        }


@dataclass
class RepartitionJob:
    """Frozen inputs of one background repartition.

    Created on the event loop by :meth:`ChurnPipeline.freeze`; everything
    it references is private to the job, so :meth:`ChurnPipeline.execute`
    can run in a worker thread while the live graph keeps mutating.
    """

    graph: UndirectedGraph
    previous: AssignmentSnapshot
    pending_edges: int
    started_at: float = field(default_factory=time.perf_counter)


class ChurnPipeline:
    """Accumulate churn deltas and drive incremental repartitioning."""

    def __init__(
        self,
        graph: UndirectedGraph,
        store: AssignmentStore,
        config: ServingConfig,
        metrics: ServingMetrics | None = None,
    ) -> None:
        if store.num_partitions != config.num_partitions:
            raise ServingError(
                f"store is sized for k={store.num_partitions}, "
                f"config wants k={config.num_partitions}"
            )
        self.graph = graph
        self.store = store
        self.config = config
        self.metrics = metrics if metrics is not None else ServingMetrics()
        self.in_flight = False
        #: Test/diagnostic hook invoked (in the executing thread) after the
        #: engine run completes but before the result is handed back for
        #: publication — the serving tests hold it open to pin that
        #: lookups racing an in-flight repartition stay consistent.
        self.post_execute_hook = None
        self._pending: list[tuple[int, int, int]] = []
        self._base_phi = 1.0
        self._base_local = 0.0
        self._base_total = 0.0
        self._pend_local = 0.0
        self._pend_total = 0.0

    # ------------------------------------------------------------------
    # engine selection
    # ------------------------------------------------------------------
    def _make_engine(self):
        if self.config.engine == "fast":
            return FastSpinner(self.config.spinner)
        return SpinnerPartitioner(
            config=self.config.spinner,
            engine=self.config.engine,
            parallel=self.config.parallel,
            num_workers=self.config.num_workers,
        )

    @staticmethod
    def _outcome(result) -> RepartitionOutcome:
        """Normalize a FastSpinner/SpinnerPartitioner result."""
        if hasattr(result, "labels"):  # FastSpinnerResult
            ids = result.original_ids
            if ids is None:
                ids = np.arange(result.labels.shape[0], dtype=np.int64)
            return RepartitionOutcome(
                ids=ids,
                labels=result.labels,
                phi=float(result.phi),
                rho=float(result.rho),
                iterations=int(result.iterations),
            )
        count = len(result.assignment)
        ids = np.fromiter(result.assignment.keys(), dtype=np.int64, count=count)
        labels = np.fromiter(result.assignment.values(), dtype=np.int64, count=count)
        order = np.argsort(ids, kind="stable")
        return RepartitionOutcome(
            ids=ids[order],
            labels=labels[order],
            phi=float(result.phi),
            rho=float(result.rho),
            iterations=int(result.iterations),
        )

    # ------------------------------------------------------------------
    # bootstrap
    # ------------------------------------------------------------------
    def bootstrap(self) -> RepartitionReport:
        """Compute and publish the initial partitioning (version 1)."""
        job = self.freeze()
        outcome = self.execute(job)
        return self.publish(job, outcome)

    def rebase(self, snapshot: AssignmentSnapshot) -> None:
        """Reset the phi estimator against ``snapshot`` on the live graph.

        Used after a warm start: the snapshot was published without a
        repartition run, so the estimator's base locality is measured
        directly (one O(m) pass, at startup only).
        """
        from repro.metrics.quality import locality, max_normalized_load

        labels, _ = snapshot.lookup_many(
            np.fromiter(self.graph.vertices(), dtype=np.int64, count=self.graph.num_vertices)
        )
        assignment = {
            int(v): int(label)
            for v, label in zip(self.graph.vertices(), labels.tolist())
        }
        self._base_phi = locality(self.graph, assignment)
        self._base_total = float(self.graph.total_weight)
        self._base_local = self._base_phi * self._base_total
        self._pending.clear()
        self._pend_local = 0.0
        self._pend_total = 0.0
        self.metrics.set_gauge("version", float(snapshot.version))
        self.metrics.set_gauge("phi", self._base_phi)
        self.metrics.set_gauge(
            "rho",
            max_normalized_load(self.graph, assignment, self.config.num_partitions),
        )

    # ------------------------------------------------------------------
    # ingestion
    # ------------------------------------------------------------------
    def ingest(self, delta: GraphDelta) -> int:
        """Apply one delta to the live graph and the trigger signals.

        Returns the number of edges actually added (duplicates of
        existing edges and self-loops are dropped, matching
        :meth:`~repro.graph.dynamic.GraphDelta.apply`).  Must be called
        from the thread that owns the live graph (the event loop under
        the service).
        """
        snapshot = self.store.current()
        new_vertices = 0
        for vertex in sorted(delta.added_vertices):
            if vertex not in self.graph:
                self.graph.add_vertex(vertex)
                new_vertices += 1
        added = 0
        for u, v, weight in delta.added_edges:
            if u == v or self.graph.has_edge(u, v):
                continue
            self.graph.add_edge(u, v, weight=weight)
            self._pending.append((u, v, weight))
            added += 1
            label_u, _ = snapshot.lookup(u)
            label_v, _ = snapshot.lookup(v)
            self._pend_total += weight
            if label_u == label_v:
                self._pend_local += weight
        self.metrics.observe_ingest(added, new_vertices)
        return added

    @property
    def pending_edges(self) -> int:
        """Edges applied to the live graph but not yet repartitioned over."""
        return len(self._pending)

    def estimated_phi(self) -> float:
        """Incremental estimate of the live assignment's locality."""
        total = self._base_total + self._pend_total
        if total <= 0:
            return 1.0
        return (self._base_local + self._pend_local) / total

    def estimated_drift(self) -> float:
        """How far the estimated phi dropped below the published base."""
        return self._base_phi - self.estimated_phi()

    def should_trigger(self) -> bool:
        """Whether a repartition should start now (and none is in flight)."""
        if self.in_flight or not self._pending:
            return False
        threshold = self.config.edge_threshold
        if threshold is not None and len(self._pending) >= threshold:
            return True
        drift = self.config.phi_drift
        return drift is not None and self.estimated_drift() >= drift

    # ------------------------------------------------------------------
    # repartition protocol: freeze -> execute -> publish
    # ------------------------------------------------------------------
    def freeze(self) -> RepartitionJob:
        """Snapshot the inputs of a repartition (bounded event-loop pause)."""
        if self.in_flight:
            raise ServingError("a repartition is already in flight")
        self.in_flight = True
        return RepartitionJob(
            graph=self.graph.copy(),
            previous=self.store.current(),
            pending_edges=len(self._pending),
        )

    def execute(self, job: RepartitionJob) -> RepartitionOutcome:
        """Run the engine on the frozen inputs (safe off the event loop)."""
        engine = self._make_engine()
        if job.previous.num_vertices == 0:
            result = engine.partition(job.graph, self.config.num_partitions)
        else:
            result = engine.adapt_to_graph_changes(
                job.graph, job.previous.to_assignment(), self.config.num_partitions
            )
        outcome = self._outcome(result)
        if self.post_execute_hook is not None:
            self.post_execute_hook(job, outcome)
        return outcome

    def publish(
        self, job: RepartitionJob, outcome: RepartitionOutcome
    ) -> RepartitionReport:
        """Install the outcome as the next version and rebase the signals."""
        wall_seconds = time.perf_counter() - job.started_at
        swap_start = time.perf_counter()
        snapshot = self.store.publish(outcome.ids, outcome.labels)
        swap_seconds = time.perf_counter() - swap_start

        migrations, fraction = self._migration_report(job.previous, snapshot)
        # Rebase the estimator: the engine's phi is exact on the frozen
        # graph; edges that arrived after the freeze stay pending and are
        # re-scored against the fresh snapshot.
        suffix = self._pending[job.pending_edges :]
        self._pending = suffix
        self._base_phi = outcome.phi
        self._base_total = float(job.graph.total_weight)
        self._base_local = self._base_phi * self._base_total
        self._pend_local = 0.0
        self._pend_total = 0.0
        for u, v, weight in suffix:
            label_u, _ = snapshot.lookup(u)
            label_v, _ = snapshot.lookup(v)
            self._pend_total += weight
            if label_u == label_v:
                self._pend_local += weight
        self.in_flight = False

        report = RepartitionReport(
            version=snapshot.version,
            phi=outcome.phi,
            rho=outcome.rho,
            iterations=outcome.iterations,
            migrations=migrations,
            migration_fraction=fraction,
            pending_edges_consumed=job.pending_edges,
            wall_seconds=wall_seconds,
            swap_seconds=swap_seconds,
        )
        self.metrics.observe_repartition(
            version=snapshot.version,
            phi=outcome.phi,
            rho=outcome.rho,
            migrations=migrations,
            migration_fraction=fraction,
            wall_seconds=wall_seconds,
            swap_seconds=swap_seconds,
        )
        return report

    def repartition_now(self) -> RepartitionReport:
        """Freeze, execute and publish synchronously (tests, benchmarks)."""
        job = self.freeze()
        try:
            outcome = self.execute(job)
        except BaseException:
            self.in_flight = False
            raise
        return self.publish(job, outcome)

    @staticmethod
    def _migration_report(
        previous: AssignmentSnapshot, current: AssignmentSnapshot
    ) -> tuple[int, float]:
        """Count vertices whose partition changed between two snapshots.

        Vertices present only in ``current`` (born since the previous
        snapshot) are ignored — they had no previous location to move
        from, matching :func:`repro.metrics.stability.partitioning_difference`.
        """
        if previous.num_vertices == 0 or current.num_vertices == 0:
            return 0, 0.0
        position = np.minimum(
            np.searchsorted(current.ids, previous.ids), current.ids.shape[0] - 1
        )
        found = current.ids[position] == previous.ids
        moved = int(
            np.count_nonzero(current.labels[position[found]] != previous.labels[found])
        )
        common = int(np.count_nonzero(found))
        if common == 0:
            return 0, 0.0
        return moved, moved / common
