"""Shared-memory multiprocess superstep executor.

The parallel backend of the vector runtime: the simulated workers are
partitioned into ``parallel`` contiguous *shard groups*, each hosted by
one persistent OS process.  The shard's CSR and canonical-order arrays,
the double-buffered dynamic state (values / halted flags / delivered
messages), the per-superstep statistics rows, any program-declared
shared state (e.g. Spinner's label array) and one preallocated outbox
per group all live in ``multiprocessing.shared_memory`` segments
(:mod:`repro.pregel.shard_buffers`), so the only data crossing process
boundaries each superstep is a pair of small control messages per group.

Every superstep runs as two phases, each a full pipe round-trip (the
round-trips *are* the barrier):

* **step** — each group computes the batch program over its
  :class:`~repro.pregel.executor.ShardGroupView`, publishes its owned
  slice of the next values/halted buffers, writes its worker rows of the
  statistics arrays, stores its canonically-ordered outbox in its shared
  buffer, and replies with its aggregation log;
* **deliver** — each group scans *all* groups' outboxes in group order,
  keeps the messages whose target it owns (restriction preserves the
  canonical message order), combines them and publishes its owned slice
  of the next message buffers.

The coordinator replays the aggregation logs in group order
(:func:`~repro.pregel.executor.replay_aggregation_logs`), which together
with the order-preserving delivery and the worker-row-disjoint
statistics makes every observable byte-identical to the serial backend.

Fault injection composes naturally: ``kill_worker`` SIGKILLs the host
process of the crashing simulated worker, and recovery (:meth:`reset`)
rewrites the buffers from the restored snapshot and respawns the fleet.
The start method follows ``multiprocessing``'s platform default; set
``REPRO_PARALLEL_START_METHOD=spawn|fork|forkserver`` to override.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.pregel.batch import DeliveredMessages, Outbox
from repro.errors import PregelError
from repro.pregel.cost_model import RunStats
from repro.pregel.executor import (
    GroupComputeContext,
    ShardGroupView,
    SuperstepExecutor,
    build_superstep_stats,
    combine_messages,
    plan_worker_groups,
    replay_aggregation_logs,
    superstep_stats_arrays,
)
from repro.pregel.shard_buffers import (
    PackLayout,
    SharedArrayPack,
    shard_from_arrays,
    shard_static_arrays,
)

#: Environment override for the multiprocessing start method.
START_METHOD_ENV = "REPRO_PARALLEL_START_METHOD"


@dataclass(frozen=True)
class _WorkerSpec:
    """Everything one worker process needs to host its shard group."""

    group_id: int
    worker_lo: int
    worker_hi: int
    num_workers: int
    combine: str
    program: Any
    static_layout: PackLayout
    dynamic_layout: PackLayout
    shared_state_layout: PackLayout | None
    outbox_layouts: tuple[PackLayout, ...]
    out_capacities: tuple[int, ...]


@dataclass
class ShmStepOutcome:
    """Coordinator-side record of one parallel step phase."""

    out_lens: list[int]
    #: ``group_id -> (targets, payloads)`` for outboxes that overflowed
    #: their preallocated buffer and travelled by pipe instead.
    overrides: dict[int, tuple[np.ndarray, np.ndarray]]
    unknown_total: int
    bad_ids: list[np.ndarray]


def _dynamic_views(arrays: dict[str, np.ndarray]) -> dict[str, tuple[np.ndarray, np.ndarray]]:
    """Pair the double-buffered dynamic arrays as ``name -> (buf0, buf1)``."""
    return {
        name: (arrays[f"{name}0"], arrays[f"{name}1"])
        for name in ("values", "halted", "msg_has", "msg_payload")
    }


def _shm_worker_main(spec: _WorkerSpec, conn: Any) -> None:
    """Entry point of one shard-group host process.

    Serves ``step`` / ``deliver`` / ``program`` requests until ``stop``
    or coordinator death.  Replies are ``("ok", ...)`` or
    ``("exc", exception)``; state errors abort the run coordinator-side.
    """
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    static = SharedArrayPack.attach(spec.static_layout)
    dynamic = SharedArrayPack.attach(spec.dynamic_layout)
    shared_state = (
        SharedArrayPack.attach(spec.shared_state_layout)
        if spec.shared_state_layout is not None
        else None
    )
    outboxes = [SharedArrayPack.attach(layout) for layout in spec.outbox_layouts]

    shard = shard_from_arrays(static.arrays, spec.num_workers)
    view = ShardGroupView(shard, spec.worker_lo, spec.worker_hi)
    program = spec.program
    if shared_state is not None:
        program.adopt_shared_state(dict(shared_state.arrays))

    buffers = _dynamic_views(dynamic.arrays)
    stats = dynamic.arrays
    owned = view.vertex_order
    lo, hi = spec.worker_lo, spec.worker_hi
    num_vertices = shard.num_vertices
    my_outbox = outboxes[spec.group_id].arrays
    my_capacity = spec.out_capacities[spec.group_id]

    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError, KeyboardInterrupt):
            break
        command = message[0]
        if command == "stop":
            break
        try:
            if command == "step":
                _, superstep, cur, aggregated, incoming_count = message
                nxt = 1 - cur
                values = buffers["values"][cur]
                halted = buffers["halted"][cur]
                incoming = DeliveredMessages(
                    buffers["msg_has"][cur],
                    buffers["msg_payload"][cur],
                    incoming_count,
                )
                # A message re-activates its target; already-active
                # vertices compute regardless (same mask as serial).
                computed = incoming.has_message | ~halted
                ctx = GroupComputeContext(superstep, view, values, computed, aggregated)
                step = program.compute_batch(view, incoming, ctx)
                step_values = np.asarray(step.values, dtype=np.float64)
                votes = np.asarray(step.votes, dtype=bool)
                # Publish only the owned slice of the next buffers; the
                # groups' owned slices are disjoint and cover the graph.
                buffers["values"][nxt][owned] = step_values[owned]
                buffers["halted"][nxt][owned] = np.where(
                    computed[owned], votes[owned], halted[owned]
                )

                outbox = step.outbox
                unknown = (outbox.targets < 0) | (outbox.targets >= num_vertices)
                vertices_pw, edges_pw, message_counts = superstep_stats_arrays(
                    view, spec.num_workers, computed, outbox, unknown, step.edges_scanned
                )
                stats["stats_vertices"][lo:hi] = vertices_pw[lo:hi]
                stats["stats_edges"][lo:hi] = edges_pw[lo:hi]
                stats["stats_local"][lo:hi] = message_counts[2 * lo + 1 : 2 * hi : 2]
                stats["stats_remote"][lo:hi] = message_counts[2 * lo : 2 * hi : 2]

                out_len = len(outbox)
                overflow = None
                if out_len <= my_capacity:
                    my_outbox["targets"][:out_len] = outbox.targets
                    my_outbox["payloads"][:out_len] = outbox.payloads
                else:  # pragma: no cover - needs a custom send schedule
                    overflow = (outbox.targets, outbox.payloads)
                unknown_total = int(unknown.sum())
                bad_ids = (
                    np.unique(outbox.targets[unknown])
                    if unknown_total
                    else np.empty(0, dtype=np.int64)
                )
                conn.send(
                    ("ok", ctx.take_log(), out_len, overflow, unknown_total, bad_ids)
                )
            elif command == "deliver":
                _, cur, out_lens, overrides = message
                nxt = 1 - cur
                parts_targets = []
                parts_payloads = []
                # Scan every group's outbox in group order: restriction
                # of the canonical message sequence to owned targets
                # keeps the per-target accumulation order serial-exact.
                for group_id, out_len in enumerate(out_lens):
                    if group_id in overrides:  # pragma: no cover - overflow path
                        targets, payloads = overrides[group_id]
                    else:
                        group_arrays = outboxes[group_id].arrays
                        targets = group_arrays["targets"][:out_len]
                        payloads = group_arrays["payloads"][:out_len]
                    valid = (targets >= 0) & (targets < num_vertices)
                    if not valid.all():
                        targets = targets[valid]
                        payloads = payloads[valid]
                    workers = shard.worker_of[targets]
                    mine = (workers >= lo) & (workers < hi)
                    parts_targets.append(targets[mine])
                    parts_payloads.append(payloads[mine])
                targets = np.concatenate(parts_targets)
                payloads = np.concatenate(parts_payloads)
                has_message, payload = combine_messages(
                    targets, payloads, num_vertices, spec.combine
                )
                buffers["msg_has"][nxt][owned] = has_message[owned]
                buffers["msg_payload"][nxt][owned] = payload[owned]
                conn.send(("ok", int(targets.size)))
            elif command == "program":
                conn.send(("ok", program))
            else:  # pragma: no cover - protocol bug
                conn.send(("exc", PregelError(f"unknown command {command!r}")))
        except Exception as exc:  # noqa: BLE001 - forwarded to coordinator
            try:
                conn.send(("exc", exc))
            except Exception:  # pragma: no cover - coordinator gone
                break

    # Skip interpreter teardown: local frames still hold views onto the
    # shared segments, so SharedMemory destructors would raise
    # BufferError noise at exit.  The mappings die with the process and
    # the coordinator owns segment cleanup, so a hard exit is safe.
    try:
        conn.close()
    except OSError:  # pragma: no cover - already closed
        pass
    os._exit(0)


class SharedMemoryExecutor(SuperstepExecutor):
    """Executor hosting each shard group in a persistent OS process."""

    def __init__(self, engine: Any, parallel: int) -> None:
        self._engine = engine
        self._parallel = parallel
        self._shard = None
        self._groups: list[tuple[int, int]] = []
        self._packs: list[SharedArrayPack] = []
        self._static: SharedArrayPack | None = None
        self._dynamic: SharedArrayPack | None = None
        self._shared_state: SharedArrayPack | None = None
        self._outboxes: list[SharedArrayPack] = []
        self._out_capacities: tuple[int, ...] = ()
        self._procs: list[Any] = []
        self._conns: list[Any] = []
        self._buffers: dict[str, tuple[np.ndarray, np.ndarray]] = {}
        self._state: Any = None
        self._cur = 0
        self._closed = False
        self._mp = multiprocessing.get_context(
            os.environ.get(START_METHOD_ENV) or None
        )

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self, shard: Any, state: Any) -> None:
        """Allocate the shared segments, seed them, spawn the fleet."""
        engine = self._engine
        self._shard = shard
        self._groups = plan_worker_groups(engine.num_workers, self._parallel)
        num_vertices = shard.num_vertices

        self._static = SharedArrayPack.create_from(shard_static_arrays(shard))
        self._packs.append(self._static)
        dynamic_specs = []
        for buf in (0, 1):
            dynamic_specs += [
                (f"values{buf}", np.float64, (num_vertices,)),
                (f"halted{buf}", np.bool_, (num_vertices,)),
                (f"msg_has{buf}", np.bool_, (num_vertices,)),
                (f"msg_payload{buf}", np.float64, (num_vertices,)),
            ]
        dynamic_specs += [
            ("stats_vertices", np.int64, (engine.num_workers,)),
            ("stats_edges", np.float64, (engine.num_workers,)),
            ("stats_local", np.int64, (engine.num_workers,)),
            ("stats_remote", np.int64, (engine.num_workers,)),
        ]
        self._dynamic = SharedArrayPack.create(dynamic_specs)
        self._packs.append(self._dynamic)
        self._buffers = _dynamic_views(self._dynamic.arrays)

        program = state.program
        shared_arrays = program.shared_state()
        if shared_arrays:
            self._shared_state = SharedArrayPack.create_from(shared_arrays)
            self._packs.append(self._shared_state)
            # The coordinator's program copy reads the live shared
            # arrays too (so post-run reads see final state); only the
            # workers advance program-internal scalars such as RNG
            # state, which checkpoint_program() fetches from a worker.
            program.adopt_shared_state(dict(self._shared_state.arrays))

        capacities = []
        for worker_lo, worker_hi in self._groups:
            view = ShardGroupView(shard, worker_lo, worker_hi)
            capacity = max(1, int(program.max_outbox_messages(view)))
            capacities.append(capacity)
            outbox_pack = SharedArrayPack.create(
                [
                    ("targets", np.int64, (capacity,)),
                    ("payloads", np.float64, (capacity,)),
                ]
            )
            self._outboxes.append(outbox_pack)
            self._packs.append(outbox_pack)
        self._out_capacities = tuple(capacities)

        self._cur = 0
        self._write_state(state)
        self._spawn(program)
        self._rebind(state)

    def _write_state(self, state: Any) -> None:
        """Seed buffer 0 (and shared program state) from ``state``."""
        self._buffers["values"][self._cur][...] = state.values
        self._buffers["halted"][self._cur][...] = state.halted
        self._buffers["msg_has"][self._cur][...] = state.incoming.has_message
        self._buffers["msg_payload"][self._cur][...] = state.incoming.payload
        if self._shared_state is not None:
            for name, arr in state.program.shared_state().items():
                view = self._shared_state.arrays[name]
                if arr is not view:
                    view[...] = arr

    def _rebind(self, state: Any) -> None:
        """Point the run state at the current shared buffers."""
        self._state = state
        cur = self._cur
        state.values = self._buffers["values"][cur]
        state.halted = self._buffers["halted"][cur]
        state.incoming = DeliveredMessages(
            self._buffers["msg_has"][cur],
            self._buffers["msg_payload"][cur],
            state.incoming.count,
        )

    def _spawn(self, program: Any) -> None:
        """Launch one host process per shard group."""
        self._procs = []
        self._conns = []
        for group_id, (worker_lo, worker_hi) in enumerate(self._groups):
            spec = _WorkerSpec(
                group_id=group_id,
                worker_lo=worker_lo,
                worker_hi=worker_hi,
                num_workers=self._engine.num_workers,
                combine=program.combine,
                program=program,
                static_layout=self._static.layout,
                dynamic_layout=self._dynamic.layout,
                shared_state_layout=(
                    self._shared_state.layout if self._shared_state else None
                ),
                outbox_layouts=tuple(pack.layout for pack in self._outboxes),
                out_capacities=self._out_capacities,
            )
            parent_conn, child_conn = self._mp.Pipe()
            proc = self._mp.Process(
                target=_shm_worker_main,
                args=(spec, child_conn),
                daemon=True,
                name=f"repro-shard-group-{group_id}",
            )
            proc.start()
            child_conn.close()
            self._procs.append(proc)
            self._conns.append(parent_conn)

    # ------------------------------------------------------------------
    # per-superstep protocol
    # ------------------------------------------------------------------
    def _roundtrip(self, message: tuple) -> list[tuple]:
        """Send ``message`` to every group and gather one reply each.

        The two round-trips per superstep are the barrier: no group
        advances a phase until the coordinator has heard from all of
        them, and shared-memory writes made before a reply are visible
        to every group afterwards.
        """
        for conn in self._conns:
            conn.send(message)
        replies = []
        for group_id, conn in enumerate(self._conns):
            try:
                reply = conn.recv()
            except (EOFError, OSError) as exc:
                raise PregelError(
                    f"shard-group process {group_id} died unexpectedly"
                ) from exc
            if reply[0] == "exc":
                raise reply[1]
            replies.append(reply)
        return replies

    def compute(self, state: Any, superstep: int, run_stats: RunStats) -> ShmStepOutcome:
        """Run the step phase on every group and merge the results."""
        aggregators = state.aggregators
        aggregated = {name: aggregators.value(name) for name in aggregators.names()}
        replies = self._roundtrip(
            ("step", superstep, self._cur, aggregated, state.incoming.count)
        )
        logs = []
        outcome = ShmStepOutcome([], {}, 0, [])
        for group_id, reply in enumerate(replies):
            _, log, out_len, overflow, unknown_total, bad_ids = reply
            logs.append(log)
            outcome.out_lens.append(out_len)
            if overflow is not None:  # pragma: no cover - overflow path
                outcome.overrides[group_id] = overflow
            outcome.unknown_total += unknown_total
            if unknown_total:
                outcome.bad_ids.append(bad_ids)
        replay_aggregation_logs(aggregators, logs)
        arrays = self._dynamic.arrays
        run_stats.superstep_stats.append(
            build_superstep_stats(
                superstep,
                self._engine.num_workers,
                arrays["stats_vertices"],
                arrays["stats_edges"],
                np.stack(
                    [arrays["stats_remote"], arrays["stats_local"]], axis=1
                ).reshape(-1),
            )
        )
        return outcome

    def deliver(
        self, superstep: int, outcome: ShmStepOutcome, state: Any, run_stats: RunStats
    ) -> DeliveredMessages:
        """Run the deliver phase; raise or drop on unknown targets."""
        if outcome.unknown_total:
            if not self._engine.drop_unknown_targets:
                bad_ids = np.unique(np.concatenate(outcome.bad_ids))
                raise PregelError(
                    f"messages sent to {bad_ids.shape[0]} nonexistent "
                    f"vertex id(s) during superstep {superstep} "
                    f"(e.g. {bad_ids[:5].tolist()}); pass "
                    "drop_unknown_targets=True to drop them instead"
                )
            run_stats.messages_dropped += outcome.unknown_total
        replies = self._roundtrip(
            ("deliver", self._cur, outcome.out_lens, outcome.overrides)
        )
        count = sum(reply[1] for reply in replies)
        nxt = 1 - self._cur
        return DeliveredMessages(
            self._buffers["msg_has"][nxt],
            self._buffers["msg_payload"][nxt],
            count,
        )

    def commit(self, state: Any, outcome: ShmStepOutcome, delivered: DeliveredMessages) -> None:
        """Flip the double buffer and rebind the state to the new side."""
        self._cur = 1 - self._cur
        state.values = self._buffers["values"][self._cur]
        state.halted = self._buffers["halted"][self._cur]
        state.incoming = delivered

    # ------------------------------------------------------------------
    # faults, checkpoints, teardown
    # ------------------------------------------------------------------
    def kill_worker(self, worker: int) -> None:
        """SIGKILL the process hosting simulated worker ``worker``."""
        for group_id, (worker_lo, worker_hi) in enumerate(self._groups):
            if worker_lo <= worker < worker_hi:
                proc = self._procs[group_id]
                if proc.is_alive():
                    proc.kill()
                proc.join()
                return

    def checkpoint_program(self, state: Any) -> Any:
        """Fetch the live program from a worker (its RNG state is truth).

        The coordinator's program copy shares the dense arrays but not
        program-internal scalars (notably the migration RNG), which only
        advance inside the worker processes; snapshots must persist the
        workers' version so a restore replays identically.
        """
        self._conns[0].send(("program",))
        reply = self._conns[0].recv()
        if reply[0] == "exc":  # pragma: no cover - fetch cannot fail
            raise reply[1]
        return reply[1]

    def reset(self, state: Any) -> None:
        """Restart the fleet on snapshot state after an injected crash."""
        self._stop_workers(force=True)
        # The pre-crash state object lives on in caller frames; give it
        # private copies so it stops pinning the shared buffers.
        self._detach_state()
        self._cur = 0
        self._write_state(state)
        if self._shared_state is not None:
            state.program.adopt_shared_state(dict(self._shared_state.arrays))
        self._spawn(state.program)
        self._rebind(state)

    def export_values(self, state: Any) -> np.ndarray:
        """Copy the final values out of shared memory."""
        return np.array(state.values)

    def _stop_workers(self, force: bool) -> None:
        """Bring down all host processes and close their pipes."""
        for conn, proc in zip(self._conns, self._procs):
            if not force and proc.is_alive():
                try:
                    conn.send(("stop",))
                except (BrokenPipeError, OSError):
                    pass
        for proc in self._procs:
            if proc.is_alive():
                if force:
                    proc.terminate()
                proc.join(timeout=5)
            if proc.is_alive():  # pragma: no cover - stuck worker
                proc.kill()
                proc.join()
        for conn in self._conns:
            try:
                conn.close()
            except OSError:  # pragma: no cover - already closed
                pass
        self._procs = []
        self._conns = []

    def _detach_state(self) -> None:
        """Rebind the run state to private copies so no view pins the shm.

        Post-run reads of ``state`` (labels, final values, delivered
        messages) must survive the segments being closed, and any view
        still exported would make the mappings unreleasable.
        """
        state = self._state
        self._state = None
        if state is None:
            return
        state.values = np.array(state.values)
        state.halted = np.array(state.halted)
        state.incoming = DeliveredMessages(
            np.array(state.incoming.has_message),
            np.array(state.incoming.payload),
            state.incoming.count,
        )
        if self._shared_state is not None:
            state.program.adopt_shared_state(
                {
                    name: np.array(view)
                    for name, view in self._shared_state.arrays.items()
                }
            )

    def close(self) -> None:
        """Tear everything down; safe on every exit path, idempotent."""
        if self._closed:
            return
        self._closed = True
        try:
            self._stop_workers(force=False)
        finally:
            self._detach_state()
            self._buffers = {}
            for pack in self._packs:
                pack.unlink()
            for pack in self._packs:
                pack.close()
            self._packs = []
            self._outboxes = []
            self._static = None
            self._dynamic = None
            self._shared_state = None
