"""Simulated Pregel/Giraph execution substrate.

The paper implements Spinner on Apache Giraph, an open-source Pregel
implementation running on Hadoop clusters.  This subpackage provides a
faithful single-process simulation of that model:

* **vertex-centric programs** (:class:`repro.pregel.program.VertexProgram`)
  executed superstep by superstep with synchronous message delivery;
* **aggregators** (:mod:`repro.pregel.aggregators`) with the commutative /
  associative semantics of Pregel (values aggregated in superstep *S* are
  visible in superstep *S + 1*), mirroring Giraph's sharded aggregators;
* **workers** (:mod:`repro.pregel.worker`) with per-worker shared state,
  which Spinner uses for its asynchronous per-worker load counters
  (paper Section IV-A4);
* a **master compute** hook executed between supersteps;
* a **cost model** (:mod:`repro.pregel.cost_model`) that charges local and
  remote messages differently and derives a simulated superstep time as the
  maximum over workers — the quantity behind Table IV and Figure 9.

Two runtimes execute this model: the dictionary engine
(:class:`~repro.pregel.engine.PregelEngine`, one Python ``compute`` call
per vertex per superstep) and the array-native sharded vector engine
(:class:`~repro.pregel.vector_engine.VectorPregelEngine`, one batch
compute per superstep over NumPy arrays) — same semantics, same
statistics, different program interface and orders of magnitude apart in
throughput.

The vector engine delegates its per-superstep execution to a pluggable
:class:`~repro.pregel.executor.SuperstepExecutor`: the in-process
:class:`~repro.pregel.serial_executor.SerialExecutor` (default) or the
:class:`~repro.pregel.shm_executor.SharedMemoryExecutor`, which runs the
supersteps across ``parallel=N`` OS processes over shared memory —
bit-exact with serial for every program.

Both runtimes share the fault-tolerance subsystem
(:mod:`repro.pregel.checkpoint` + :mod:`repro.faults`): superstep-boundary
checkpointing, deterministic fault injection and crash recovery with a
bit-exactness contract — a faulted-and-recovered run matches the
uninterrupted one byte for byte.
"""

from repro.pregel.aggregators import (
    AggregatorRegistry,
    DoubleSumAggregator,
    LongSumAggregator,
    MaxAggregator,
    MinAggregator,
)
from repro.pregel.checkpoint import (
    CheckpointManager,
    Snapshot,
    load_latest_snapshot,
    load_snapshot,
    resume_from_checkpoint,
)
from repro.pregel.cost_model import ClusterCostModel, SuperstepStats
from repro.pregel.engine import PregelEngine, PregelResult
from repro.pregel.executor import ShardGroupView, SuperstepExecutor, plan_worker_groups
from repro.pregel.master import MasterCompute
from repro.pregel.program import ComputeContext, VertexProgram
from repro.pregel.serial_executor import SerialExecutor
from repro.pregel.shm_executor import SharedMemoryExecutor
from repro.pregel.vector_engine import (
    BatchComputeContext,
    BatchStep,
    BatchVertexProgram,
    DeliveredMessages,
    Outbox,
    ShardedGraph,
    VectorPregelEngine,
    VectorPregelResult,
)
from repro.pregel.vertex import Vertex

__all__ = [
    "AggregatorRegistry",
    "BatchComputeContext",
    "BatchStep",
    "BatchVertexProgram",
    "CheckpointManager",
    "ClusterCostModel",
    "ComputeContext",
    "DeliveredMessages",
    "DoubleSumAggregator",
    "LongSumAggregator",
    "MasterCompute",
    "MaxAggregator",
    "MinAggregator",
    "Outbox",
    "PregelEngine",
    "PregelResult",
    "SerialExecutor",
    "ShardGroupView",
    "SharedMemoryExecutor",
    "ShardedGraph",
    "Snapshot",
    "SuperstepExecutor",
    "SuperstepStats",
    "VectorPregelEngine",
    "VectorPregelResult",
    "Vertex",
    "VertexProgram",
    "load_latest_snapshot",
    "load_snapshot",
    "plan_worker_groups",
    "resume_from_checkpoint",
]
