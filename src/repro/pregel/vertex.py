"""Vertex state for the simulated Pregel engine.

A Pregel vertex owns an identifier, a mutable value, its outgoing edges
(with mutable edge values) and an active/halted flag.  Vertices are the
unit of computation: the engine invokes the user program once per active
vertex per superstep.
"""

from __future__ import annotations

from typing import Any


class Vertex:
    """A single Pregel vertex.

    Attributes
    ----------
    vertex_id:
        Integer identifier, unique within the graph.
    value:
        Arbitrary mutable vertex value (application-defined).
    edges:
        Mapping from target vertex id to the edge value.  For Spinner the
        edge value is a pair ``[weight, neighbour_label]``; for plain
        applications it is typically the edge weight.
    """

    __slots__ = ("vertex_id", "value", "edges", "_halted")

    def __init__(
        self,
        vertex_id: int,
        value: Any = None,
        edges: dict[int, Any] | None = None,
    ) -> None:
        self.vertex_id = vertex_id
        self.value = value
        self.edges: dict[int, Any] = edges if edges is not None else {}
        self._halted = False

    # ------------------------------------------------------------------
    @property
    def halted(self) -> bool:
        """Whether the vertex has voted to halt (and received no message)."""
        return self._halted

    def vote_to_halt(self) -> None:
        """Mark the vertex inactive until it receives a message."""
        self._halted = True

    def activate(self) -> None:
        """Re-activate the vertex (called by the engine on message arrival)."""
        self._halted = False

    # ------------------------------------------------------------------
    def add_edge(self, target: int, value: Any = None) -> None:
        """Add or replace an outgoing edge."""
        self.edges[target] = value

    def remove_edge(self, target: int) -> None:
        """Remove an outgoing edge if present."""
        self.edges.pop(target, None)

    @property
    def num_edges(self) -> int:
        """Number of outgoing edges."""
        return len(self.edges)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Vertex(id={self.vertex_id}, value={self.value!r}, degree={self.num_edges})"
