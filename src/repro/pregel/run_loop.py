"""Shared run-loop scaffolding for both Pregel runtimes.

The dictionary engine (:mod:`repro.pregel.engine`) and the vector
coordinator (:mod:`repro.pregel.vector_coordinator`) execute the same
outer superstep protocol: a checkpoint/recovery wrapper around the
superstep loop, a fixed superstep-boundary preamble (bound check →
checkpoint → master compute → quiescence test), aggregator history
recording after every superstep, and the final copy of the recovery
bookkeeping counters onto the run statistics.  This module holds that
scaffolding once so the two engines cannot drift apart; each engine
keeps only its runtime-specific compute/delivery body.
"""

from __future__ import annotations

from typing import Any, Callable, TypeVar

from repro.errors import RecoveryAbortedError
from repro.faults import FaultPlan, InjectedWorkerCrash
from repro.pregel.aggregators import AggregatorRegistry
from repro.pregel.checkpoint import RecoveryBookkeeping
from repro.pregel.cost_model import RunStats
from repro.pregel.master import MasterCompute

StateT = TypeVar("StateT")
ResultT = TypeVar("ResultT")


def run_with_recovery(
    superstep_loop: Callable[[StateT], ResultT],
    state: StateT,
    restore: Callable[[], StateT],
    plan: FaultPlan | None,
    bookkeeping: RecoveryBookkeeping,
) -> ResultT:
    """Run ``superstep_loop`` to completion, recovering injected crashes.

    Each :class:`~repro.faults.InjectedWorkerCrash` rolls the run back to
    the state produced by ``restore()`` (the latest snapshot written this
    run); partial-superstep state is discarded wholesale.  When the
    plan's ``max_recoveries`` budget is exhausted the run aborts with
    :class:`~repro.errors.RecoveryAbortedError`, leaving the latest
    checkpoint on disk for
    :func:`~repro.pregel.checkpoint.resume_from_checkpoint`.
    """
    while True:
        try:
            return superstep_loop(state)
        except InjectedWorkerCrash as crash:
            bookkeeping.recoveries += 1
            if plan is None or bookkeeping.recoveries > plan.max_recoveries:
                raise RecoveryAbortedError(
                    crash.superstep, bookkeeping.recoveries - 1
                ) from crash
            state = restore()


def superstep_preamble(
    superstep: int,
    max_supersteps: int,
    save_checkpoint: Callable[[int], None],
    master: MasterCompute | None,
    aggregators: AggregatorRegistry,
    quiescent: Callable[[], bool],
) -> str | None:
    """Shared superstep-boundary protocol; returns a halt reason or ``None``.

    The order is part of the equivalence contract between the runtimes:
    the ``max_supersteps`` bound is checked first, then a checkpoint is
    taken (*before* the master computes, so a restore replays the master
    exactly once; superstep 0 is always due, guaranteeing a recovery base
    before any fault can fire), then the master runs and may request a
    halt, and finally the standard Pregel termination test — every vertex
    halted and no messages in flight — ends the run with ``converged``.
    """
    if superstep >= max_supersteps:
        return "max_supersteps"
    save_checkpoint(superstep)
    if master is not None:
        master.compute(superstep, aggregators)
        if master.halt_requested:
            return "master_halt"
    if quiescent():
        return "converged"
    return None


def record_aggregator_history(
    aggregators: AggregatorRegistry, history: dict[str, list[Any]]
) -> None:
    """Publish the superstep's aggregator values and append them to ``history``."""
    aggregators.advance_superstep()
    for name in aggregators.names():
        history.setdefault(name, []).append(aggregators.value(name))


def finalize_run_stats(run_stats: RunStats, bookkeeping: RecoveryBookkeeping) -> None:
    """Copy the recovery bookkeeping counters onto the final ``run_stats``."""
    run_stats.checkpoints_written = bookkeeping.checkpoints_written
    run_stats.recoveries = bookkeeping.recoveries
    run_stats.delivery_retries = bookkeeping.delivery_retries
