"""Master compute hook.

In Giraph a ``MasterCompute`` object runs once between supersteps on the
master: it can read the aggregator values produced by the previous
superstep, set aggregator values for the next one, and halt the whole
computation.  Spinner's halting heuristic (paper Section III-C) lives in
its master compute.
"""

from __future__ import annotations

from repro.pregel.aggregators import AggregatorRegistry


class MasterCompute:
    """Base class for master computations.

    Subclasses override :meth:`initialize` to register aggregators before
    superstep 0 and :meth:`compute` to run between supersteps.  Calling
    :meth:`halt_computation` stops the run after the current superstep.
    """

    def __init__(self) -> None:
        self._halt_requested = False

    # ------------------------------------------------------------------
    def initialize(self, aggregators: AggregatorRegistry) -> None:
        """Register aggregators; called once before the first superstep."""

    def compute(self, superstep: int, aggregators: AggregatorRegistry) -> None:
        """Run between supersteps; ``superstep`` is the one about to start."""

    # ------------------------------------------------------------------
    def halt_computation(self) -> None:
        """Request that the engine stops before the next superstep."""
        self._halt_requested = True

    @property
    def halt_requested(self) -> bool:
        """Whether :meth:`halt_computation` has been called."""
        return self._halt_requested
