"""Vertex program interface and compute context.

A vertex program is the user-defined ``compute`` function of the Pregel
model.  The engine calls :meth:`VertexProgram.compute` once per active
vertex per superstep, handing it the vertex, the messages delivered to it
and a :class:`ComputeContext` through which it can send messages, use
aggregators and access per-worker shared state.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.pregel.aggregators import AggregatorRegistry
from repro.pregel.vertex import Vertex


class ComputeContext:
    """Facilities available to a vertex during its compute call.

    Instances are created by the engine once per (worker, superstep) and
    re-bound to each vertex; user code never constructs them.
    """

    def __init__(
        self,
        superstep: int,
        num_vertices: int,
        aggregators: AggregatorRegistry,
        send: Callable[[int, Any], None],
        worker_store: dict[str, Any],
        worker_id: int,
        num_workers: int,
    ) -> None:
        self._superstep = superstep
        self._num_vertices = num_vertices
        self._aggregators = aggregators
        self._send = send
        self._worker_store = worker_store
        self._worker_id = worker_id
        self._num_workers = num_workers

    # ------------------------------------------------------------------
    @property
    def superstep(self) -> int:
        """Index of the current superstep (0-based)."""
        return self._superstep

    @property
    def num_vertices(self) -> int:
        """Total number of vertices in the graph."""
        return self._num_vertices

    @property
    def worker_id(self) -> int:
        """Worker executing the current vertex."""
        return self._worker_id

    @property
    def num_workers(self) -> int:
        """Number of workers in the simulated cluster."""
        return self._num_workers

    @property
    def worker_store(self) -> dict[str, Any]:
        """Mutable per-worker shared dictionary (Giraph WorkerContext)."""
        return self._worker_store

    # ------------------------------------------------------------------
    def send_message(self, target: int, message: Any) -> None:
        """Send a message to ``target``, delivered next superstep."""
        self._send(target, message)

    def send_message_to_all_neighbors(self, vertex: Vertex, message: Any) -> None:
        """Send the same message along every outgoing edge of ``vertex``."""
        for target in vertex.edges:
            self._send(target, message)

    # ------------------------------------------------------------------
    def aggregate(self, name: str, value: Any) -> None:
        """Contribute ``value`` to the named aggregator."""
        self._aggregators.aggregate(name, value)

    def aggregated_value(self, name: str) -> Any:
        """Value of the named aggregator from the previous superstep."""
        return self._aggregators.value(name)


class VertexProgram:
    """Base class for vertex-centric programs.

    Subclasses implement :meth:`compute`; the optional hooks
    :meth:`pre_superstep` / :meth:`post_superstep` run once per worker at
    the start / end of each superstep with access to the worker's shared
    store (mirroring Giraph's ``WorkerContext`` callbacks), and
    :meth:`register_aggregators` runs once before superstep 0.
    """

    def register_aggregators(self, aggregators: AggregatorRegistry) -> None:
        """Register the aggregators the program needs."""

    def pre_superstep(
        self,
        superstep: int,
        worker_store: dict[str, Any],
        aggregators: AggregatorRegistry,
    ) -> None:
        """Per-worker hook before any vertex of the worker computes."""

    def compute(self, vertex: Vertex, messages: list[Any], ctx: ComputeContext) -> None:
        """Per-vertex compute function (must be overridden)."""
        raise NotImplementedError

    def post_superstep(
        self,
        superstep: int,
        worker_store: dict[str, Any],
        aggregators: AggregatorRegistry,
    ) -> None:
        """Per-worker hook after every vertex of the worker has computed."""
