"""Cluster cost model for the simulated Pregel engine.

The paper measures quantities that depend on the *distribution* of work
and messages across cluster workers: superstep times (Table IV), network
traffic savings (Figures 7 and 8) and end-to-end application runtimes
(Figure 9).  To reproduce their shape without a physical cluster, the
engine charges every superstep with a simple, explicit cost model:

* each vertex compute invocation costs ``compute_cost`` units plus
  ``per_edge_cost`` units per outgoing edge examined;
* each message whose source and target live on the same worker costs
  ``local_message_cost``;
* each message that crosses workers costs ``remote_message_cost``
  (strictly larger, reflecting serialization + network);
* the simulated superstep time is the *maximum* over workers of their
  accumulated cost — the straggler effect of a synchronous barrier.

The absolute numbers are arbitrary units; only ratios and shapes are
meaningful, which is exactly how the reproduction reports them.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class ClusterCostModel:
    """Cost coefficients for the simulated cluster."""

    compute_cost: float = 1.0
    per_edge_cost: float = 0.1
    local_message_cost: float = 0.05
    remote_message_cost: float = 1.0

    def worker_time(
        self,
        vertices_computed: int,
        edges_scanned: int,
        local_messages: int,
        remote_messages: int,
    ) -> float:
        """Simulated time one worker spends in a superstep."""
        return (
            vertices_computed * self.compute_cost
            + edges_scanned * self.per_edge_cost
            + local_messages * self.local_message_cost
            + remote_messages * self.remote_message_cost
        )


@dataclass
class WorkerStats:
    """Per-worker counters accumulated during one superstep."""

    vertices_computed: int = 0
    edges_scanned: int = 0
    local_messages_sent: int = 0
    remote_messages_sent: int = 0

    def time(self, model: ClusterCostModel) -> float:
        """Simulated time of this worker under ``model``."""
        return model.worker_time(
            self.vertices_computed,
            self.edges_scanned,
            self.local_messages_sent,
            self.remote_messages_sent,
        )


@dataclass
class SuperstepStats:
    """Statistics of one superstep across all workers."""

    superstep: int
    worker_stats: list[WorkerStats] = field(default_factory=list)

    @property
    def total_messages(self) -> int:
        """Messages sent during the superstep (local + remote)."""
        return sum(
            w.local_messages_sent + w.remote_messages_sent for w in self.worker_stats
        )

    @property
    def remote_messages(self) -> int:
        """Messages that crossed worker boundaries (network traffic)."""
        return sum(w.remote_messages_sent for w in self.worker_stats)

    @property
    def local_messages(self) -> int:
        """Messages delivered within a worker."""
        return sum(w.local_messages_sent for w in self.worker_stats)

    @property
    def vertices_computed(self) -> int:
        """Vertex compute invocations during the superstep."""
        return sum(w.vertices_computed for w in self.worker_stats)

    def worker_times(self, model: ClusterCostModel) -> list[float]:
        """Simulated per-worker times for this superstep."""
        return [w.time(model) for w in self.worker_stats]

    def simulated_time(self, model: ClusterCostModel) -> float:
        """Simulated superstep time: the slowest worker sets the pace."""
        times = self.worker_times(model)
        return max(times) if times else 0.0

    def mean_worker_time(self, model: ClusterCostModel) -> float:
        """Mean per-worker simulated time."""
        times = self.worker_times(model)
        return sum(times) / len(times) if times else 0.0

    def min_worker_time(self, model: ClusterCostModel) -> float:
        """Fastest worker's simulated time."""
        times = self.worker_times(model)
        return min(times) if times else 0.0


@dataclass
class RunStats:
    """Aggregated statistics of a whole Pregel run."""

    superstep_stats: list[SuperstepStats] = field(default_factory=list)
    #: Messages addressed to nonexistent vertex ids that the engine dropped
    #: (only ever non-zero when the engine runs with ``drop_unknown_targets``;
    #: by default such messages raise :class:`~repro.errors.PregelError`).
    messages_dropped: int = 0
    #: Checkpoint snapshots written during the run (0 unless checkpointing
    #: is enabled).  These three counters are recovery *bookkeeping*: they
    #: describe how the run executed, not what it computed, and are
    #: excluded from the recovery bit-exactness contract.
    checkpoints_written: int = 0
    #: Crash recoveries performed during the run (injected faults only).
    recoveries: int = 0
    #: Transient message-delivery failures absorbed by (simulated) retries.
    delivery_retries: int = 0

    @property
    def num_supersteps(self) -> int:
        """Number of supersteps executed."""
        return len(self.superstep_stats)

    @property
    def total_messages(self) -> int:
        """Total messages across all supersteps."""
        return sum(s.total_messages for s in self.superstep_stats)

    @property
    def remote_messages(self) -> int:
        """Total cross-worker messages (network traffic proxy)."""
        return sum(s.remote_messages for s in self.superstep_stats)

    def simulated_time(self, model: ClusterCostModel) -> float:
        """Total simulated runtime (sum of superstep times)."""
        return sum(s.simulated_time(model) for s in self.superstep_stats)
