"""Compatibility facade for the array-native, sharded Pregel runtime.

The former monolithic engine now lives in focused modules —
:mod:`repro.pregel.batch` (data-plane primitives and the batch program
interface), :mod:`repro.pregel.executor` (the superstep-executor
protocol and shared kernels), :mod:`repro.pregel.serial_executor` /
:mod:`repro.pregel.shm_executor` (the two backends) and
:mod:`repro.pregel.vector_coordinator` (the engine itself).  This module
re-exports the public names so existing imports keep working unchanged::

    from repro.pregel.vector_engine import VectorPregelEngine

New code can import from the split modules directly.
"""

from repro.pregel.batch import (
    BatchComputeContext,
    BatchStep,
    BatchVertexProgram,
    DeliveredMessages,
    Outbox,
    ShardedGraph,
    _dense_ids,
    _neutral_payload,
)
from repro.pregel.vector_coordinator import (
    VectorPregelEngine,
    VectorPregelResult,
    _VectorRunState,
)

__all__ = [
    "BatchComputeContext",
    "BatchStep",
    "BatchVertexProgram",
    "DeliveredMessages",
    "Outbox",
    "ShardedGraph",
    "VectorPregelEngine",
    "VectorPregelResult",
]
