"""Array-native, sharded Pregel runtime.

The dictionary engine (:mod:`repro.pregel.engine`) calls a Python
``compute`` per vertex per superstep, which dominates the runtime of every
engine-backed experiment once the partitioning kernels are vectorized.
This module provides a second runtime with the same observable semantics
that executes *batch* vertex programs over flat NumPy arrays:

* the graph lives in CSR arrays, sharded across simulated workers by a
  placement function (``worker_of`` per vertex, contiguous per-worker
  send buffers over a worker-major canonical edge ordering);
* message exchange is batched: a program emits one
  :class:`Outbox` of ``(sources, targets, payloads)`` arrays per
  superstep and delivery combines them per target with a single
  ``np.bincount`` (sum) or ``np.minimum.at`` (min) pass;
* active/halted state is a dense boolean mask, and per-worker cost-model
  statistics come from composite-key bincounts instead of per-message
  callbacks.

Equivalence with the dictionary engine is bit-exact, not approximate:
the canonical orderings reproduce the dictionary engine's send and
aggregation order (``np.bincount`` and ``np.cumsum`` accumulate
sequentially, exactly like Python's left-to-right ``sum``), so final
values, superstep counts, halt reasons, aggregator histories and
per-worker statistics all match.  ``tests/test_vector_engine.py`` pins
this contract and ``benchmarks/test_pregel_speed.py`` tracks the speedup.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Any, ClassVar

import numpy as np

from repro.errors import PregelError, RecoveryAbortedError
from repro.faults import FaultPlan, InjectedWorkerCrash
from repro.graph.csr import CSRGraph, build_csr_arrays
from repro.graph.digraph import DiGraph
from repro.graph.undirected import UndirectedGraph
from repro.pregel.aggregators import AggregatorRegistry
from repro.pregel.checkpoint import (
    VECTOR_KIND,
    CheckpointManager,
    RecoveryBookkeeping,
    Snapshot,
    apply_delivery_faults,
    validate_fault_tolerance_args as _validate_fault_tolerance_args,
)
from repro.pregel.cost_model import (
    ClusterCostModel,
    RunStats,
    SuperstepStats,
    WorkerStats,
)
from repro.pregel.master import MasterCompute
from repro.pregel.worker import PlacementFn, hash_placement


class ShardedGraph:
    """CSR adjacency sharded across simulated workers.

    Built once per run, then shared read-only by every superstep.  Beyond
    the plain CSR arrays it precomputes the two *canonical orderings* that
    make the batch runtime reproduce the dictionary engine bit for bit:

    ``vertex_order``
        Dense vertex ids sorted worker-major (stable), i.e. the order the
        dictionary engine visits vertices: worker 0's vertices in
        placement order, then worker 1's, ...
    ``send_src`` / ``send_dst`` / ``send_weight``
        The adjacency slots permuted into the same worker-major order —
        the concatenation of the per-worker send buffers.  A program that
        emits messages by masking these arrays produces messages in
        exactly the dictionary engine's send order, so a sequential
        per-target reduction (``np.bincount``) sums them in the same
        order as Python's ``sum`` over a message list.
    """

    def __init__(
        self,
        indptr: np.ndarray,
        targets: np.ndarray,
        weights: np.ndarray,
        original_ids: np.ndarray,
        worker_of: np.ndarray,
        num_workers: int,
    ) -> None:
        self.indptr = np.asarray(indptr, dtype=np.int64)
        self.adj_targets = np.asarray(targets, dtype=np.int64)
        self.adj_weights = np.asarray(weights, dtype=np.int64)
        self.original_ids = np.asarray(original_ids, dtype=np.int64)
        self.worker_of = np.asarray(worker_of, dtype=np.int64)
        self.num_workers = num_workers
        self.num_vertices = self.indptr.shape[0] - 1
        self.degrees = np.diff(self.indptr)

        edge_src = np.repeat(
            np.arange(self.num_vertices, dtype=np.int64), self.degrees
        )
        edge_order = np.argsort(self.worker_of[edge_src], kind="stable")
        self.send_src = edge_src[edge_order]
        self.send_dst = self.adj_targets[edge_order]
        self.send_weight = self.adj_weights[edge_order]
        #: Owning worker per canonical slot (cached: the statistics pass
        #: needs it every superstep a full outbox is emitted).
        self.send_src_worker = self.worker_of[self.send_src]
        self.vertex_order = np.argsort(self.worker_of, kind="stable")

        # Per-worker boundaries into the canonical (worker-major) arrays:
        # worker w's send buffer is send_*[send_indptr[w]:send_indptr[w+1]]
        # and its vertex list is vertex_order[shard_indptr[w]:shard_indptr[w+1]].
        self.send_indptr = np.zeros(num_workers + 1, dtype=np.int64)
        np.cumsum(
            np.bincount(self.send_src_worker, minlength=num_workers),
            out=self.send_indptr[1:],
        )
        self.shard_indptr = np.zeros(num_workers + 1, dtype=np.int64)
        np.cumsum(
            np.bincount(self.worker_of, minlength=num_workers),
            out=self.shard_indptr[1:],
        )

    # ------------------------------------------------------------------
    def shard_vertices(self, worker: int) -> np.ndarray:
        """Dense vertex ids owned by ``worker``, in placement order."""
        return self.vertex_order[self.shard_indptr[worker] : self.shard_indptr[worker + 1]]

    def send_buffer(self, worker: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(sources, targets, weights)`` slice of ``worker``'s out-edges."""
        start, end = self.send_indptr[worker], self.send_indptr[worker + 1]
        return (
            self.send_src[start:end],
            self.send_dst[start:end],
            self.send_weight[start:end],
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"ShardedGraph(|V|={self.num_vertices}, "
            f"|slots|={self.adj_targets.shape[0]}, W={self.num_workers})"
        )


@dataclass
class Outbox:
    """Batched messages emitted during one superstep.

    All three arrays are aligned; ``sources``/``targets`` hold *dense*
    vertex ids.  Messages must appear in canonical (worker-major) order —
    the :class:`BatchComputeContext` helpers guarantee this.
    """

    sources: np.ndarray
    targets: np.ndarray
    payloads: np.ndarray

    @classmethod
    def empty(cls) -> "Outbox":
        """An outbox with no messages."""
        return cls(
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.float64),
        )

    def __len__(self) -> int:
        return int(self.targets.shape[0])


@dataclass
class BatchStep:
    """What a batch program returns for one superstep."""

    #: Full vertex-value array after the superstep (may alias the input).
    values: np.ndarray
    #: Messages to deliver next superstep.
    outbox: Outbox
    #: Per-vertex vote-to-halt mask; applied only where a vertex computed.
    votes: np.ndarray
    #: Optional per-vertex edge counts charged to the superstep's
    #: ``edges_scanned`` statistics instead of ``shard.degrees`` — for
    #: programs whose effective adjacency differs from the shard during
    #: some supersteps (e.g. Spinner's NeighborPropagation superstep scans
    #: the original directed out-edges, not the converted adjacency).
    edges_scanned: np.ndarray | None = None


@dataclass
class DeliveredMessages:
    """Combined messages delivered at the start of a superstep.

    ``payload[v]`` is the combined message value for vertex ``v`` (sum or
    min, per the program's ``combine`` mode) and the combine-neutral
    element (0 or +inf) where ``has_message[v]`` is ``False``.
    """

    has_message: np.ndarray
    payload: np.ndarray
    count: int


def _dense_ids(ids: np.ndarray, originals: np.ndarray) -> np.ndarray:
    """Map original vertex ids to their dense (insertion-order) positions.

    ``ids`` holds the original ids in iteration order, which is not
    necessarily sorted, so the lookup goes through an argsort-backed
    ``searchsorted`` instead of assuming sorted ids.
    """
    sorter = np.argsort(ids, kind="stable")
    return sorter[np.searchsorted(ids, originals, sorter=sorter)]


def _neutral_payload(combine: str, num_vertices: int) -> np.ndarray:
    if combine == "sum":
        return np.zeros(num_vertices, dtype=np.float64)
    return np.full(num_vertices, np.inf, dtype=np.float64)


class BatchComputeContext:
    """Facilities available to a batch program during one superstep.

    The per-vertex ``ComputeContext`` of the dictionary engine sends one
    message at a time; this context instead builds whole outboxes with
    array operations, preserving the canonical ordering the equivalence
    guarantee rests on.
    """

    def __init__(
        self,
        superstep: int,
        shard: ShardedGraph,
        values: np.ndarray,
        computed: np.ndarray,
        aggregators: AggregatorRegistry,
    ) -> None:
        self.superstep = superstep
        self.shard = shard
        #: Current vertex values (read-only by convention; return new
        #: values through :class:`BatchStep`).
        self.values = values
        #: Mask of vertices computing this superstep (active or messaged).
        self.computed = computed
        self._aggregators = aggregators

    @property
    def num_vertices(self) -> int:
        """Number of vertices in the shard."""
        return self.shard.num_vertices

    # ------------------------------------------------------------------
    def send_to_all_neighbors(
        self, senders: np.ndarray, payload_per_vertex: np.ndarray
    ) -> Outbox:
        """Every vertex in ``senders`` sends its payload along all out-edges."""
        payload_per_vertex = np.asarray(payload_per_vertex, dtype=np.float64)
        if senders.all():
            # Fast path for the common all-active superstep (e.g. PageRank):
            # the outbox is the canonical edge set itself, no compaction.
            sources = self.shard.send_src
            return Outbox(sources, self.shard.send_dst, payload_per_vertex[sources])
        mask = senders[self.shard.send_src]
        sources = self.shard.send_src[mask]
        return Outbox(
            sources,
            self.shard.send_dst[mask],
            payload_per_vertex[sources],
        )

    def edges_from(
        self, senders: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Canonical-order ``(sources, targets, weights)`` of senders' edges.

        For programs whose message payload is per-edge rather than
        per-vertex (e.g. shortest paths adds the edge cost).
        """
        mask = senders[self.shard.send_src]
        return (
            self.shard.send_src[mask],
            self.shard.send_dst[mask],
            self.shard.send_weight[mask],
        )

    @staticmethod
    def no_messages() -> Outbox:
        """An empty outbox, for supersteps that send nothing."""
        return Outbox.empty()

    # ------------------------------------------------------------------
    def aggregate(self, name: str, value: Any) -> None:
        """Contribute a single value to the named aggregator."""
        self._aggregators.aggregate(name, value)

    def aggregated_value(self, name: str) -> Any:
        """Value of the named aggregator from the previous superstep."""
        return self._aggregators.value(name)

    def aggregate_sequential(
        self, name: str, per_vertex: np.ndarray, mask: np.ndarray
    ) -> None:
        """Aggregate one value per masked vertex, in canonical vertex order.

        Uses ``np.cumsum`` (a strictly sequential left-to-right
        accumulation, unlike ``np.sum``'s pairwise reduction) so a sum
        aggregator receives bit-for-bit the value the dictionary engine
        builds by aggregating vertex by vertex.
        """
        order = self.shard.vertex_order
        selected = np.asarray(per_vertex, dtype=np.float64)[order][mask[order]]
        if selected.size:
            self._aggregators.aggregate(name, float(selected.cumsum()[-1]))


class BatchVertexProgram:
    """Base class for batch (array-native) vertex programs.

    Subclasses implement :meth:`compute_batch`, the whole-superstep
    counterpart of :meth:`~repro.pregel.program.VertexProgram.compute`:
    it receives the shard, the combined incoming messages and a
    :class:`BatchComputeContext`, and returns a :class:`BatchStep` of
    ``(values, outbox, votes)`` arrays.

    ``combine`` declares how concurrent messages to one vertex merge
    ("sum" or "min"); it replaces the per-message combiner of the
    dictionary engine.  The ``pre_superstep`` / ``post_superstep`` hooks
    keep the dictionary-engine signature but run for *all* workers before
    respectively after the batch compute (the batch is one barrier, so
    there is no per-worker interleaving to preserve).

    Contract of the returned :class:`BatchStep`: ``values`` is the full
    post-superstep value array (coerced to ``float64``); ``outbox``
    holds the messages to deliver next superstep in canonical
    (worker-major) order; ``votes`` is applied only where a vertex
    computed this superstep (message arrival re-activates a halted
    vertex, as in Pregel); the optional ``edges_scanned`` overrides the
    per-vertex edge counts charged to the cost-model statistics.
    """

    #: Message combination mode: "sum" or "min".
    combine: ClassVar[str] = "sum"

    def register_aggregators(self, aggregators: AggregatorRegistry) -> None:
        """Register the aggregators the program needs."""

    def pre_superstep(
        self,
        superstep: int,
        worker_store: dict[str, Any],
        aggregators: AggregatorRegistry,
    ) -> None:
        """Per-worker hook before the batch compute."""

    def compute_batch(
        self,
        shard: ShardedGraph,
        messages: DeliveredMessages,
        ctx: BatchComputeContext,
    ) -> BatchStep:
        """Whole-superstep compute over the shard (must be overridden)."""
        raise NotImplementedError

    def post_superstep(
        self,
        superstep: int,
        worker_store: dict[str, Any],
        aggregators: AggregatorRegistry,
    ) -> None:
        """Per-worker hook after the batch compute."""


@dataclass
class _VectorRunState:
    """Everything the vector engine needs to continue a run.

    The checkpoint counterpart of ``engine._DictRunState``: the dynamic
    arrays (vertex values, halted mask, combined in-flight messages) plus
    the object state (program, master, aggregators and history, run
    statistics, worker stores).  The static :class:`ShardedGraph` is
    *not* here — it never changes during a run, so snapshots store its
    arrays once per checkpoint directory (``shard.npz``) instead of once
    per snapshot.
    """

    program: BatchVertexProgram
    master: MasterCompute | None
    values: np.ndarray
    halted: np.ndarray
    incoming: DeliveredMessages
    run_stats: RunStats
    aggregators: AggregatorRegistry
    aggregator_history: dict[str, list[Any]]
    worker_stores: list[dict[str, Any]]
    superstep: int = 0


@dataclass
class VectorPregelResult:
    """Outcome of a vector-engine run (mirrors :class:`PregelResult`).

    As with the dictionary engine, a crash recovery restores the run from
    a checkpoint: the program/master objects the caller passed in may end
    up stale copies, so final state must be read from the result
    (``values``, ``master``), never from the inputs.
    """

    values: np.ndarray
    original_ids: np.ndarray
    num_supersteps: int
    stats: RunStats
    aggregators: AggregatorRegistry
    aggregator_history: dict[str, list[Any]]
    halt_reason: str = "converged"
    #: The master compute the run actually finished with (``None`` when
    #: the run had no master); after a recovery, the restored instance.
    master: MasterCompute | None = None

    def vertex_values(self) -> dict[int, Any]:
        """Mapping of original vertex id to final value (as floats)."""
        return dict(zip(self.original_ids.tolist(), self.values.tolist()))

    def simulated_time(self, model: ClusterCostModel) -> float:
        """Total simulated runtime under ``model``."""
        return self.stats.simulated_time(model)


class VectorPregelEngine:
    """Sharded, array-native simulation of a Giraph cluster.

    Accepts the same placement functions, cost models and master computes
    as :class:`~repro.pregel.engine.PregelEngine` and produces the same
    statistics; only the program interface differs
    (:class:`BatchVertexProgram` instead of per-vertex ``compute``).
    """

    def __init__(
        self,
        num_workers: int = 4,
        placement: PlacementFn | None = None,
        cost_model: ClusterCostModel | None = None,
        max_supersteps: int = 500,
        drop_unknown_targets: bool = False,
        checkpoint_interval: int | None = None,
        checkpoint_dir: str | os.PathLike | None = None,
        fault_plan: FaultPlan | None = None,
    ) -> None:
        if num_workers <= 0:
            raise PregelError("num_workers must be positive")
        if max_supersteps <= 0:
            raise PregelError("max_supersteps must be positive")
        _validate_fault_tolerance_args(checkpoint_interval, checkpoint_dir, fault_plan)
        self.num_workers = num_workers
        self.placement = placement if placement is not None else hash_placement(num_workers)
        self.cost_model = cost_model if cost_model is not None else ClusterCostModel()
        self.max_supersteps = max_supersteps
        self.drop_unknown_targets = drop_unknown_targets
        self.checkpoint_interval = checkpoint_interval
        self.checkpoint_dir = checkpoint_dir
        self.fault_plan = fault_plan

    # ------------------------------------------------------------------
    # graph loading
    # ------------------------------------------------------------------
    def shard_graph(
        self,
        indptr: np.ndarray,
        targets: np.ndarray,
        weights: np.ndarray,
        original_ids: np.ndarray,
    ) -> ShardedGraph:
        """Place every vertex and build the sharded adjacency."""
        original_ids = np.asarray(original_ids, dtype=np.int64)
        if original_ids.size and int(original_ids.min()) < 0:
            raise PregelError("vertex ids must be non-negative")
        worker_of = np.fromiter(
            (self.placement(v) for v in original_ids.tolist()),
            dtype=np.int64,
            count=original_ids.shape[0],
        )
        if worker_of.size and not (
            0 <= int(worker_of.min()) and int(worker_of.max()) < self.num_workers
        ):
            raise PregelError(
                f"placement returned a worker outside [0, {self.num_workers})"
            )
        return ShardedGraph(
            indptr, targets, weights, original_ids, worker_of, self.num_workers
        )

    def shard_csr(self, csr: CSRGraph) -> ShardedGraph:
        """Shard a :class:`CSRGraph` (undirected: slots are out-edges)."""
        return self.shard_graph(csr.indptr, csr.indices, csr.weights, csr.original_ids)

    def shard_digraph(self, graph: DiGraph) -> ShardedGraph:
        """Shard a directed graph; every directed edge is one out-edge.

        Vertex and edge iteration order matches
        :meth:`PregelEngine.vertices_from_digraph`, so runs over the two
        representations are comparable slot for slot.  Edge weights
        default to 1, like the dictionary loader.  The only per-edge
        Python work is draining the edge iterator once; densification and
        CSR construction run vectorized.
        """
        ids = np.fromiter(graph.vertices(), dtype=np.int64, count=graph.num_vertices)
        edge_rows = [(source, target) for source, target in graph.edges()]
        if edge_rows:
            pairs = np.asarray(edge_rows, dtype=np.int64)
        else:
            pairs = np.empty((0, 2), dtype=np.int64)
        sources = _dense_ids(ids, pairs[:, 0])
        targets = _dense_ids(ids, pairs[:, 1])
        weights = np.ones(sources.shape[0], dtype=np.int64)
        return self._shard_half_edges(ids, sources, targets, weights)

    def shard_undirected(self, graph: UndirectedGraph) -> ShardedGraph:
        """Shard an undirected graph; every edge becomes two out-edges.

        The two directions are interleaved in edge-iteration order,
        matching the insertion order of
        :meth:`PregelEngine.vertices_from_undirected`; as with the
        directed loader, only the edge-iterator drain is per-edge Python.
        """
        ids = np.fromiter(graph.vertices(), dtype=np.int64, count=graph.num_vertices)
        edge_rows = [(u, v, w) for u, v, w in graph.edges()]
        if edge_rows:
            triples = np.asarray(edge_rows, dtype=np.int64)
        else:
            triples = np.empty((0, 3), dtype=np.int64)
        u = _dense_ids(ids, triples[:, 0])
        v = _dense_ids(ids, triples[:, 1])
        num_slots = 2 * u.shape[0]
        sources = np.empty(num_slots, dtype=np.int64)
        targets = np.empty(num_slots, dtype=np.int64)
        weights = np.empty(num_slots, dtype=np.int64)
        sources[0::2], sources[1::2] = u, v
        targets[0::2], targets[1::2] = v, u
        weights[0::2] = weights[1::2] = triples[:, 2]
        return self._shard_half_edges(ids, sources, targets, weights)

    def _shard_half_edges(
        self,
        ids: np.ndarray,
        sources: np.ndarray,
        targets: np.ndarray,
        weights: np.ndarray,
    ) -> ShardedGraph:
        # build_csr_arrays sorts stably by source, which keeps the
        # per-vertex slot order identical to the dictionary engine's
        # edge-insertion order.
        indptr, sorted_targets, sorted_weights = build_csr_arrays(
            sources, targets, weights, ids.shape[0]
        )
        return self.shard_graph(indptr, sorted_targets, sorted_weights, ids)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(
        self,
        program: BatchVertexProgram,
        shard: ShardedGraph,
        master: MasterCompute | None = None,
    ) -> VectorPregelResult:
        """Execute ``program`` over ``shard`` until convergence.

        When checkpointing is enabled and a fault recovery occurred, the
        run continues on state restored from a snapshot — read final
        state from the returned :class:`VectorPregelResult` (``values``,
        ``master``), not from the ``program``/``master`` arguments.
        """
        combine = program.combine
        if combine not in ("sum", "min"):
            raise PregelError(f"unsupported combine mode {combine!r}")
        num_vertices = shard.num_vertices

        aggregators = AggregatorRegistry()
        program.register_aggregators(aggregators)
        if master is not None:
            master.initialize(aggregators)

        state = _VectorRunState(
            program=program,
            master=master,
            values=np.zeros(num_vertices, dtype=np.float64),
            halted=np.zeros(num_vertices, dtype=bool),
            incoming=DeliveredMessages(
                np.zeros(num_vertices, dtype=bool),
                _neutral_payload(combine, num_vertices),
                0,
            ),
            run_stats=RunStats(),
            aggregators=aggregators,
            aggregator_history={name: [] for name in aggregators.names()},
            worker_stores=[{} for _ in range(self.num_workers)],
        )
        manager = None
        if self.checkpoint_interval is not None:
            manager = CheckpointManager(
                self.checkpoint_dir, self.checkpoint_interval, VECTOR_KIND
            )
        if self.fault_plan is not None:
            self.fault_plan.reset()
        return self._execute(
            state, shard, manager, self.fault_plan, RecoveryBookkeeping()
        )

    def _execute(
        self,
        state: _VectorRunState,
        shard: ShardedGraph,
        manager: CheckpointManager | None,
        plan: FaultPlan | None,
        bookkeeping: RecoveryBookkeeping,
    ) -> VectorPregelResult:
        """Run to completion, recovering injected crashes from snapshots.

        Mirrors ``PregelEngine._execute``: a crash rolls back to the
        latest snapshot written this run; an exhausted ``max_recoveries``
        budget aborts with :class:`~repro.errors.RecoveryAbortedError`,
        leaving the checkpoint directory ready for
        :func:`~repro.pregel.checkpoint.resume_from_checkpoint`.
        """
        while True:
            try:
                return self._superstep_loop(state, shard, manager, plan, bookkeeping)
            except InjectedWorkerCrash as crash:
                bookkeeping.recoveries += 1
                if plan is None or bookkeeping.recoveries > plan.max_recoveries:
                    raise RecoveryAbortedError(
                        crash.superstep, bookkeeping.recoveries - 1
                    ) from crash
                snapshot = manager.load_latest(this_run_only=True)
                state = self._state_from_snapshot(snapshot)

    def _engine_params(self) -> dict[str, Any]:
        """Constructor arguments a snapshot needs to rebuild this engine.

        As in the dictionary engine, the placement function is excluded:
        the shard's ``worker_of`` array already encodes the placement.
        """
        return {
            "num_workers": self.num_workers,
            "cost_model": self.cost_model,
            "max_supersteps": self.max_supersteps,
            "drop_unknown_targets": self.drop_unknown_targets,
        }

    @staticmethod
    def _state_from_snapshot(snapshot: Snapshot) -> _VectorRunState:
        """Rebuild a :class:`_VectorRunState` from a loaded snapshot."""
        arrays = snapshot.arrays
        objects = snapshot.objects
        return _VectorRunState(
            program=objects["program"],
            master=objects["master"],
            values=arrays["values"],
            halted=arrays["halted"],
            incoming=DeliveredMessages(
                arrays["msg_has"], arrays["msg_payload"], int(objects["msg_count"])
            ),
            run_stats=objects["run_stats"],
            aggregators=objects["aggregators"],
            aggregator_history=objects["aggregator_history"],
            worker_stores=objects["worker_stores"],
            superstep=snapshot.superstep,
        )

    @classmethod
    def _resume_from_snapshot(
        cls,
        snapshot: Snapshot,
        checkpoint_dir: str | os.PathLike,
        fault_plan: FaultPlan | None = None,
    ) -> VectorPregelResult:
        """Rebuild engine and shard from ``checkpoint_dir`` and finish.

        The static CSR arrays come from the directory's ``shard.npz``;
        :class:`ShardedGraph` recomputes its canonical orderings from
        them deterministically (stable argsorts), so a resumed run sends
        and aggregates in exactly the original order.
        """
        params = snapshot.engine_params
        engine = cls(
            num_workers=params["num_workers"],
            cost_model=params["cost_model"],
            max_supersteps=params["max_supersteps"],
            drop_unknown_targets=params["drop_unknown_targets"],
            checkpoint_interval=snapshot.interval,
            checkpoint_dir=checkpoint_dir,
            fault_plan=fault_plan,
        )
        manager = CheckpointManager(checkpoint_dir, snapshot.interval, VECTOR_KIND)
        manager._written.add(snapshot.superstep)
        shard_arrays = manager.load_shard_arrays()
        shard = ShardedGraph(
            shard_arrays["indptr"],
            shard_arrays["targets"],
            shard_arrays["weights"],
            shard_arrays["original_ids"],
            shard_arrays["worker_of"],
            int(shard_arrays["num_workers"][0]),
        )
        if fault_plan is not None:
            fault_plan.reset()
        state = cls._state_from_snapshot(snapshot)
        return engine._execute(state, shard, manager, fault_plan, RecoveryBookkeeping())

    @staticmethod
    def _shard_arrays(shard: ShardedGraph) -> dict[str, np.ndarray]:
        """The static shard arrays persisted once per checkpoint dir."""
        return {
            "indptr": shard.indptr,
            "targets": shard.adj_targets,
            "weights": shard.adj_weights,
            "original_ids": shard.original_ids,
            "worker_of": shard.worker_of,
            "num_workers": np.array([shard.num_workers], dtype=np.int64),
        }

    def _superstep_loop(
        self,
        state: _VectorRunState,
        shard: ShardedGraph,
        manager: CheckpointManager | None,
        plan: FaultPlan | None,
        bookkeeping: RecoveryBookkeeping,
    ) -> VectorPregelResult:
        program = state.program
        combine = program.combine
        master = state.master
        worker_stores = state.worker_stores
        run_stats = state.run_stats
        aggregators = state.aggregators
        aggregator_history = state.aggregator_history
        num_vertices = shard.num_vertices
        halt_reason = "converged"

        while True:
            superstep = state.superstep
            if superstep >= self.max_supersteps:
                halt_reason = "max_supersteps"
                break

            # Superstep-boundary checkpoint, before the master computes
            # (mirrors the dictionary engine; see its _superstep_loop).
            if manager is not None and manager.due(superstep):
                arrays = {
                    "values": state.values,
                    "halted": state.halted,
                    "msg_has": state.incoming.has_message,
                    "msg_payload": state.incoming.payload,
                }
                objects = {
                    "program": program,
                    "master": master,
                    "msg_count": state.incoming.count,
                    "run_stats": run_stats,
                    "aggregators": aggregators,
                    "aggregator_history": aggregator_history,
                    "worker_stores": worker_stores,
                }
                if manager.save_vector(
                    superstep,
                    arrays,
                    objects,
                    self._engine_params(),
                    self._shard_arrays(shard),
                ):
                    bookkeeping.checkpoints_written += 1

            if master is not None:
                master.compute(superstep, aggregators)
                if master.halt_requested:
                    halt_reason = "master_halt"
                    break

            any_active = bool((~state.halted).any())
            if superstep > 0 and state.incoming.count == 0 and not any_active:
                halt_reason = "converged"
                break

            # Probe the crash plan in worker order before the batch
            # compute: the batch is one barrier, so a crashing worker
            # takes the whole superstep down, but the budget consumption
            # order matches the dictionary engine's per-worker probes.
            if plan is not None:
                for worker in range(self.num_workers):
                    if plan.crash_fires(superstep, worker):
                        raise InjectedWorkerCrash(superstep, worker)

            incoming = state.incoming
            # A message re-activates its target; already-active vertices
            # compute regardless.
            computed = incoming.has_message | ~state.halted

            for store in worker_stores:
                store.clear()
                program.pre_superstep(superstep, store, aggregators)

            ctx = BatchComputeContext(
                superstep, shard, state.values, computed, aggregators
            )
            step = program.compute_batch(shard, incoming, ctx)
            values = np.asarray(step.values, dtype=np.float64)
            votes = np.asarray(step.votes, dtype=bool)
            halted = np.where(computed, votes, state.halted)

            # Unknown-target mask, computed once and shared by the
            # statistics and delivery passes.
            outbox = step.outbox
            unknown = (outbox.targets < 0) | (outbox.targets >= num_vertices)

            run_stats.superstep_stats.append(
                self._superstep_stats(
                    superstep, shard, computed, outbox, unknown, step.edges_scanned
                )
            )

            for store in worker_stores:
                program.post_superstep(superstep, store, aggregators)

            aggregators.advance_superstep()
            for name in aggregators.names():
                aggregator_history.setdefault(name, []).append(aggregators.value(name))

            delivered = self._deliver(
                shard, outbox, unknown, combine, run_stats, superstep
            )
            # The synchronous barrier: transient delivery faults retry
            # here (simulated backoff) and may escalate to a crash.
            if plan is not None:
                apply_delivery_faults(plan, superstep, bookkeeping)

            state.values = values
            state.halted = halted
            state.incoming = delivered
            state.superstep = superstep + 1

        run_stats.checkpoints_written = bookkeeping.checkpoints_written
        run_stats.recoveries = bookkeeping.recoveries
        run_stats.delivery_retries = bookkeeping.delivery_retries
        return VectorPregelResult(
            values=state.values,
            original_ids=shard.original_ids,
            num_supersteps=state.superstep,
            stats=run_stats,
            aggregators=aggregators,
            aggregator_history=aggregator_history,
            halt_reason=halt_reason,
            master=master,
        )

    # ------------------------------------------------------------------
    def run_on_csr(
        self,
        program: BatchVertexProgram,
        csr: CSRGraph,
        master: MasterCompute | None = None,
    ) -> VectorPregelResult:
        """Convenience wrapper: shard a CSR graph and run ``program``."""
        return self.run(program, self.shard_csr(csr), master=master)

    def run_on_digraph(
        self,
        program: BatchVertexProgram,
        graph: DiGraph,
        master: MasterCompute | None = None,
    ) -> VectorPregelResult:
        """Convenience wrapper: shard a directed graph and run ``program``."""
        return self.run(program, self.shard_digraph(graph), master=master)

    def run_on_undirected(
        self,
        program: BatchVertexProgram,
        graph: UndirectedGraph,
        master: MasterCompute | None = None,
    ) -> VectorPregelResult:
        """Convenience wrapper: shard an undirected graph and run ``program``."""
        return self.run(program, self.shard_undirected(graph), master=master)

    # ------------------------------------------------------------------
    def _superstep_stats(
        self,
        superstep: int,
        shard: ShardedGraph,
        computed: np.ndarray,
        outbox: Outbox,
        unknown: np.ndarray,
        edges_scanned: np.ndarray | None = None,
    ) -> SuperstepStats:
        """Per-worker counters from bincounts over the batch arrays."""
        num_workers = self.num_workers
        worker_of = shard.worker_of
        edge_counts = shard.degrees if edges_scanned is None else edges_scanned
        vertices_per_worker = np.bincount(
            worker_of[computed], minlength=num_workers
        )
        edges_per_worker = np.bincount(
            worker_of[computed],
            weights=edge_counts[computed].astype(np.float64),
            minlength=num_workers,
        )
        if len(outbox):
            if outbox.sources is shard.send_src:
                source_worker = shard.send_src_worker
            else:
                source_worker = worker_of[outbox.sources]
            if unknown.any():
                # A message to a nonexistent id counts as remote traffic.
                target_worker = np.where(
                    unknown, -1, worker_of[np.where(unknown, 0, outbox.targets)]
                )
            else:
                target_worker = worker_of[outbox.targets]
            # Composite key: one bincount splits sends into (worker, locality).
            key = source_worker * 2 + (source_worker == target_worker)
            message_counts = np.bincount(key, minlength=2 * num_workers)
        else:
            message_counts = np.zeros(2 * num_workers, dtype=np.int64)
        stats = SuperstepStats(superstep=superstep)
        for worker in range(num_workers):
            stats.worker_stats.append(
                WorkerStats(
                    vertices_computed=int(vertices_per_worker[worker]),
                    edges_scanned=int(edges_per_worker[worker]),
                    local_messages_sent=int(message_counts[2 * worker + 1]),
                    remote_messages_sent=int(message_counts[2 * worker]),
                )
            )
        return stats

    def _deliver(
        self,
        shard: ShardedGraph,
        outbox: Outbox,
        unknown: np.ndarray,
        combine: str,
        run_stats: RunStats,
        superstep: int,
    ) -> DeliveredMessages:
        """Combine the outbox per target vertex for the next superstep."""
        num_vertices = shard.num_vertices
        targets = outbox.targets
        payloads = outbox.payloads
        if unknown.any():
            if not self.drop_unknown_targets:
                bad_ids = np.unique(targets[unknown])
                raise PregelError(
                    f"messages sent to {bad_ids.shape[0]} nonexistent "
                    f"vertex id(s) during superstep {superstep} "
                    f"(e.g. {bad_ids[:5].tolist()}); pass "
                    "drop_unknown_targets=True to drop them instead"
                )
            run_stats.messages_dropped += int(unknown.sum())
            targets = targets[~unknown]
            payloads = payloads[~unknown]
        if targets.size == 0:
            return DeliveredMessages(
                np.zeros(num_vertices, dtype=bool),
                _neutral_payload(combine, num_vertices),
                0,
            )
        has_message = np.bincount(targets, minlength=num_vertices) > 0
        if combine == "sum":
            # bincount accumulates strictly in input order, so per-target
            # sums reproduce the dictionary engine's Python sum() exactly.
            payload = np.bincount(targets, weights=payloads, minlength=num_vertices)
        else:
            payload = np.full(num_vertices, np.inf, dtype=np.float64)
            np.minimum.at(payload, targets, payloads)
        return DeliveredMessages(has_message, payload, int(targets.size))
