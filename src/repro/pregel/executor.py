"""Superstep-executor protocol for the vector Pregel runtime.

The vector coordinator (:mod:`repro.pregel.vector_coordinator`) owns the
outer superstep protocol — checkpoints, master compute, quiescence,
fault injection — and delegates the data plane of every superstep to a
:class:`SuperstepExecutor`:

* :class:`~repro.pregel.serial_executor.SerialExecutor` runs the batch
  program in-process over the full shard (the bit-exact reference,
  extracted from the former monolithic engine by code motion);
* :class:`~repro.pregel.shm_executor.SharedMemoryExecutor` partitions
  the simulated workers into contiguous *shard groups*, each driven by a
  persistent OS process over shared-memory arrays.

This module holds the pieces both backends (and their tests) share: the
executor protocol itself, :class:`ShardGroupView` (a worker-range window
onto a :class:`~repro.pregel.batch.ShardedGraph`),
:class:`GroupComputeContext` (a context that *logs* aggregation calls
for deterministic replay on the coordinator), the log replay, and the
statistics/delivery kernels whose canonical-order math underpins the
byte-identical-across-backends guarantee.
"""

from __future__ import annotations

from typing import Any, Callable

import numpy as np

from repro.errors import AggregatorError, PregelError
from repro.pregel.aggregators import AggregatorRegistry
from repro.pregel.batch import (
    BatchComputeContext,
    DeliveredMessages,
    Outbox,
    ShardedGraph,
    _neutral_payload,
)
from repro.pregel.cost_model import RunStats, SuperstepStats, WorkerStats


def plan_worker_groups(num_workers: int, parallel: int) -> list[tuple[int, int]]:
    """Partition ``num_workers`` simulated workers into contiguous groups.

    Returns ``parallel`` (or fewer, if there are not enough workers)
    ``(lo, hi)`` half-open worker ranges of near-equal size, in worker
    order.  Contiguity is load-bearing: concatenating per-group results
    in group order then equals the global canonical (worker-major) order.
    """
    num_groups = max(1, min(parallel, num_workers))
    bounds = np.linspace(0, num_workers, num_groups + 1).astype(np.int64)
    return [(int(bounds[g]), int(bounds[g + 1])) for g in range(num_groups)]


class ShardGroupView:
    """A contiguous worker-range window onto a :class:`ShardedGraph`.

    Duck-types the shard attributes batch programs touch.  Whole-graph
    arrays (``indptr``, ``adj_targets``, ``worker_of``, ``degrees``, …)
    are shared references; the canonical per-worker arrays
    (``vertex_order``, ``send_src``/``send_dst``/``send_weight``) are
    *slices* covering only workers ``[worker_lo, worker_hi)``, and the
    boundary arrays (``shard_indptr``, ``send_indptr``) are rebased so
    group-relative worker indexing works unchanged — a program written
    against a full shard runs against a view and simply computes its
    portion.  ``num_workers`` is the group's worker count; the global
    count lives on the underlying shard.
    """

    def __init__(self, shard: ShardedGraph, worker_lo: int, worker_hi: int) -> None:
        self.indptr = shard.indptr
        self.adj_targets = shard.adj_targets
        self.adj_weights = shard.adj_weights
        self.original_ids = shard.original_ids
        self.worker_of = shard.worker_of
        self.num_vertices = shard.num_vertices
        self.degrees = shard.degrees
        self.worker_lo = worker_lo
        self.worker_hi = worker_hi
        self.num_workers = worker_hi - worker_lo

        vertex_lo = int(shard.shard_indptr[worker_lo])
        vertex_hi = int(shard.shard_indptr[worker_hi])
        self.vertex_order = shard.vertex_order[vertex_lo:vertex_hi]
        self.shard_indptr = shard.shard_indptr[worker_lo : worker_hi + 1] - vertex_lo
        #: Position of this group's first vertex in the global canonical
        #: order (for global-order offsets, e.g. RNG block slicing).
        self.vertex_offset = vertex_lo
        self.global_vertex_order = shard.vertex_order

        send_lo = int(shard.send_indptr[worker_lo])
        send_hi = int(shard.send_indptr[worker_hi])
        self.send_src = shard.send_src[send_lo:send_hi]
        self.send_dst = shard.send_dst[send_lo:send_hi]
        self.send_weight = shard.send_weight[send_lo:send_hi]
        self.send_src_worker = shard.send_src_worker[send_lo:send_hi]
        self.send_indptr = shard.send_indptr[worker_lo : worker_hi + 1] - send_lo

    def shard_vertices(self, worker: int) -> np.ndarray:
        """Dense vertex ids of group-relative ``worker``, placement order."""
        return self.vertex_order[self.shard_indptr[worker] : self.shard_indptr[worker + 1]]

    def send_buffer(self, worker: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Out-edge slice of group-relative ``worker``."""
        start, end = self.send_indptr[worker], self.send_indptr[worker + 1]
        return (
            self.send_src[start:end],
            self.send_dst[start:end],
            self.send_weight[start:end],
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"ShardGroupView(workers=[{self.worker_lo}, {self.worker_hi}), "
            f"|V_owned|={self.vertex_order.shape[0]})"
        )


class GroupComputeContext(BatchComputeContext):
    """Compute context for one shard group of the shared-memory backend.

    Aggregation calls cannot run against a live registry inside a worker
    process (floating-point accumulation order across groups would then
    depend on scheduling), so this context *records* every call as an
    entry in an ordered log — shipping the raw canonically-ordered
    operands, not partial sums — and the coordinator replays the logs of
    all groups in group order through :func:`replay_aggregation_logs`,
    reproducing the serial accumulation bit for bit.  Reads
    (:meth:`aggregated_value`) come from a snapshot of the previous
    superstep's values shipped with the step request.
    """

    def __init__(
        self,
        superstep: int,
        view: ShardGroupView,
        values: np.ndarray,
        computed: np.ndarray,
        aggregated: dict[str, Any],
    ) -> None:
        super().__init__(superstep, view, values, computed, None)
        self._aggregated = aggregated
        self._log: list[tuple[Any, ...]] = []

    def aggregate(self, name: str, value: Any) -> None:
        """Record a scalar contribution (replayed once per group).

        Under replay each group's scalar becomes one ``aggregate`` call,
        so the contribution must be a portion-local partial under an
        order-insensitive (integer-sum-like) aggregator; the stock
        programs only use this for the integer migration counter.
        """
        self._log.append(("scalar", name, value))

    def aggregated_value(self, name: str) -> Any:
        """Previous-superstep aggregator value from the shipped snapshot."""
        try:
            return self._aggregated[name]
        except KeyError:
            raise AggregatorError(f"aggregator {name!r} is not registered") from None

    def aggregate_sequential(
        self, name: str, per_vertex: np.ndarray, mask: np.ndarray
    ) -> None:
        """Record this portion's canonically-ordered operand array."""
        order = self.shard.vertex_order
        selected = np.asarray(per_vertex, dtype=np.float64)[order][mask[order]]
        self._log.append(("seq", name, selected))

    def aggregate_keyed(
        self,
        name_fn: Callable[[int], str],
        keys: np.ndarray,
        weights: np.ndarray,
        num_keys: int,
        mask: np.ndarray | None = None,
    ) -> None:
        """Record this portion's canonically-ordered ``(key, weight)`` pairs.

        The aggregator names are resolved eagerly (``name_fn`` need not
        survive pickling back to the coordinator).
        """
        order = self.shard.vertex_order
        ordered_keys = np.asarray(keys)[order]
        ordered_weights = np.asarray(weights, dtype=np.float64)[order]
        if mask is not None:
            ordered_mask = mask[order]
            ordered_keys = ordered_keys[ordered_mask]
            ordered_weights = ordered_weights[ordered_mask]
        names = tuple(name_fn(key) for key in range(num_keys))
        self._log.append(("keyed", names, ordered_keys, ordered_weights, num_keys))

    def owned_vertices(self) -> np.ndarray | None:
        """The group's canonical vertex list (programs publish only these)."""
        return self.shard.vertex_order

    def owned_source_mask(self, sources: np.ndarray) -> np.ndarray | None:
        """Mask of schedule entries whose source this group owns."""
        workers = self.shard.worker_of[sources]
        return (workers >= self.shard.worker_lo) & (workers < self.shard.worker_hi)

    def global_mask_span(self, mask: np.ndarray) -> tuple[int, int]:
        """Global masked count plus this group's offset in canonical order."""
        flags = mask[self.shard.global_vertex_order]
        return int(flags.sum()), int(flags[: self.shard.vertex_offset].sum())

    def take_log(self) -> list[tuple[Any, ...]]:
        """Drain and return the recorded aggregation log."""
        log = self._log
        self._log = []
        return log


def replay_aggregation_logs(
    aggregators: AggregatorRegistry, logs: list[list[tuple[Any, ...]]]
) -> None:
    """Replay per-group aggregation logs in canonical order.

    ``logs`` is one log per shard group, in group (worker-major) order.
    Every group must have recorded the *same* call sequence — same
    length, kinds and aggregator names — because batch programs make
    aggregation calls unconditionally of which portion they compute (the
    contract that keeps replay deterministic); divergence is an error,
    not a silent reorder.  ``seq``/``keyed`` entries concatenate the raw
    operands group by group — group contiguity makes that concatenation
    the global canonical order — and apply the exact serial reduction
    (sequential ``cumsum`` / ``bincount``), so every aggregator receives
    bit-for-bit the serial executor's contributions.
    """
    diverged = PregelError("aggregation call sequences diverged across shard groups")
    length = len(logs[0]) if logs else 0
    if any(len(log) != length for log in logs):
        raise diverged
    for index in range(length):
        entries = [log[index] for log in logs]
        kind, name = entries[0][0], entries[0][1]
        if any(entry[0] != kind or entry[1] != name for entry in entries):
            raise diverged
        if kind == "scalar":
            for entry in entries:
                aggregators.aggregate(name, entry[2])
        elif kind == "seq":
            selected = np.concatenate([entry[2] for entry in entries])
            if selected.size:
                aggregators.aggregate(name, float(selected.cumsum()[-1]))
        else:  # keyed
            num_keys = entries[0][4]
            keys = np.concatenate([entry[2] for entry in entries])
            weights = np.concatenate([entry[3] for entry in entries])
            sums = np.bincount(keys, weights=weights, minlength=num_keys)
            for key in range(num_keys):
                aggregators.aggregate(name[key], float(sums[key]))


# ----------------------------------------------------------------------
# shared superstep kernels (identical math in both backends)
# ----------------------------------------------------------------------
def superstep_stats_arrays(
    shard: ShardedGraph,
    num_workers: int,
    computed: np.ndarray,
    outbox: Outbox,
    unknown: np.ndarray,
    edges_scanned: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-worker counters from bincounts over the batch arrays.

    Returns ``(vertices_per_worker, edges_per_worker, message_counts)``
    with ``message_counts[2w]`` the remote and ``message_counts[2w + 1]``
    the local sends of worker ``w``.  ``num_workers`` is always the
    *global* worker count: a shard group passes its view, whose outbox
    sources are all group-owned, so its bincounts fill exactly its own
    worker rows and the group rows assemble into the serial arrays.
    """
    worker_of = shard.worker_of
    edge_counts = shard.degrees if edges_scanned is None else edges_scanned
    vertices_per_worker = np.bincount(worker_of[computed], minlength=num_workers)
    edges_per_worker = np.bincount(
        worker_of[computed],
        weights=edge_counts[computed].astype(np.float64),
        minlength=num_workers,
    )
    if len(outbox):
        if outbox.sources is shard.send_src:
            source_worker = shard.send_src_worker
        else:
            source_worker = worker_of[outbox.sources]
        if unknown.any():
            # A message to a nonexistent id counts as remote traffic.
            target_worker = np.where(
                unknown, -1, worker_of[np.where(unknown, 0, outbox.targets)]
            )
        else:
            target_worker = worker_of[outbox.targets]
        # Composite key: one bincount splits sends into (worker, locality).
        key = source_worker * 2 + (source_worker == target_worker)
        message_counts = np.bincount(key, minlength=2 * num_workers)
    else:
        message_counts = np.zeros(2 * num_workers, dtype=np.int64)
    return vertices_per_worker, edges_per_worker, message_counts


def build_superstep_stats(
    superstep: int,
    num_workers: int,
    vertices_per_worker: np.ndarray,
    edges_per_worker: np.ndarray,
    message_counts: np.ndarray,
) -> SuperstepStats:
    """Assemble a :class:`SuperstepStats` from the per-worker count arrays."""
    stats = SuperstepStats(superstep=superstep)
    for worker in range(num_workers):
        stats.worker_stats.append(
            WorkerStats(
                vertices_computed=int(vertices_per_worker[worker]),
                edges_scanned=int(edges_per_worker[worker]),
                local_messages_sent=int(message_counts[2 * worker + 1]),
                remote_messages_sent=int(message_counts[2 * worker]),
            )
        )
    return stats


def combine_messages(
    targets: np.ndarray, payloads: np.ndarray, num_vertices: int, combine: str
) -> tuple[np.ndarray, np.ndarray]:
    """Combine valid messages per target vertex (``sum`` or ``min``).

    ``np.bincount`` accumulates strictly in input order, so per-target
    sums over canonically-ordered messages reproduce the dictionary
    engine's Python ``sum()`` exactly; ``min`` is order-insensitive.
    """
    if targets.size == 0:
        return (
            np.zeros(num_vertices, dtype=bool),
            _neutral_payload(combine, num_vertices),
        )
    has_message = np.bincount(targets, minlength=num_vertices) > 0
    if combine == "sum":
        payload = np.bincount(targets, weights=payloads, minlength=num_vertices)
    else:
        payload = np.full(num_vertices, np.inf, dtype=np.float64)
        np.minimum.at(payload, targets, payloads)
    return has_message, payload


class SuperstepExecutor:
    """Backend that executes the data plane of each vector superstep.

    The coordinator drives one executor through a fixed per-superstep
    sequence — ``compute`` (batch program + statistics), ``deliver``
    (message combination; the barrier in the parallel backend),
    ``commit`` (publish the superstep's new state) — plus lifecycle
    hooks for start/recovery/teardown and the fault-injection bridge
    (:meth:`kill_worker`).  State lives in the coordinator's
    ``_VectorRunState``; executors may return views into their own
    storage, which ``commit`` rebinds into the state.
    """

    def start(self, shard: ShardedGraph, state: Any) -> None:
        """Bind to the shard and initial run state (allocate resources)."""
        raise NotImplementedError

    def compute(self, state: Any, superstep: int, run_stats: RunStats) -> Any:
        """Run the batch program for one superstep.

        Appends the superstep's statistics to ``run_stats`` and performs
        the program's aggregation calls against ``state.aggregators``
        (directly or via log replay).  Returns an opaque outcome object
        consumed by :meth:`deliver` and :meth:`commit`.
        """
        raise NotImplementedError

    def deliver(
        self, superstep: int, outcome: Any, state: Any, run_stats: RunStats
    ) -> DeliveredMessages:
        """Combine the superstep's outbox into next-superstep messages.

        Raises :class:`~repro.errors.PregelError` on unknown targets
        unless the engine drops them (counted in ``run_stats``).
        """
        raise NotImplementedError

    def commit(self, state: Any, outcome: Any, delivered: DeliveredMessages) -> None:
        """Publish the superstep's values/halted/messages into ``state``."""
        raise NotImplementedError

    def kill_worker(self, worker: int) -> None:
        """Fault-injection bridge: take down the simulated worker's host."""

    def checkpoint_program(self, state: Any) -> Any:
        """The program object a checkpoint should persist."""
        return state.program

    def reset(self, state: Any) -> None:
        """Rebind to ``state`` restored from a snapshot (crash recovery)."""

    def export_values(self, state: Any) -> np.ndarray:
        """Final value array, detached from executor-owned storage."""
        return state.values

    def close(self) -> None:
        """Release all resources; must be idempotent and exception-safe."""
