"""Superstep-boundary checkpointing for both Pregel runtimes.

Giraph checkpoints at superstep boundaries and recovers failed workers
from the last checkpoint (Pregel paper §4.2); Spinner inherits that story
by running on Giraph.  This module reproduces it for the simulation:

* a :class:`CheckpointManager` owns one checkpoint directory and writes a
  snapshot every ``interval`` supersteps, always including superstep 0 so
  a recovery base exists before any fault can fire;
* snapshots are written **atomically** (via
  :func:`repro.graph.io.atomic_open`: write-to-temp + ``os.replace``), so
  a crash mid-write can never leave a truncated snapshot — recovery scans
  newest-to-oldest and skips anything that fails validation;
* the dictionary engine snapshots as a single pickle
  (``checkpoint_NNNNNNNN.pkl``) holding the whole run state — vertices
  with values/edges/halted flags, the in-flight message store, the
  aggregator registry, per-worker shared stores, the program (including
  its RNG state) and master, and the accumulated
  :class:`~repro.pregel.cost_model.RunStats`;
* the vector engine snapshots as a ``.npz`` (``checkpoint_NNNNNNNN.npz``)
  with the shard-major dynamic arrays stored natively (vertex values,
  halted mask, combined in-flight message payloads) plus one pickled
  object blob for the non-array state; the static CSR shard arrays are
  written once per directory as ``shard.npz`` and shared by every
  snapshot.

Snapshots are self-contained: :func:`resume_from_checkpoint` rebuilds the
engine (its parameters ride in the snapshot) and finishes the run without
needing the original graph, program or placement function.  The recovery
bit-exactness contract — a run killed by an injected fault and recovered
produces byte-identical values, aggregator histories and superstep
statistics to the uninterrupted run — is documented in
``docs/ARCHITECTURE.md`` and pinned by ``tests/test_recovery_equivalence.py``.
"""

from __future__ import annotations

import os
import pickle
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

import numpy as np

from repro.errors import CheckpointError, PregelError
from repro.faults import FaultPlan, InjectedWorkerCrash
from repro.graph.io import atomic_open, atomic_write_bytes

#: Magic string identifying snapshot payloads.
CHECKPOINT_FORMAT = "spinner-repro-checkpoint"
#: Bump when the snapshot layout changes incompatibly.
CHECKPOINT_VERSION = 1

#: Snapshot kinds, one per runtime.
DICT_KIND = "dict"
VECTOR_KIND = "vector"

_SNAPSHOT_RE = re.compile(r"^checkpoint_(\d{8})\.(pkl|npz)$")
#: Static CSR shard arrays shared by every vector snapshot in a directory.
SHARD_FILENAME = "shard.npz"


@dataclass
class Snapshot:
    """One loaded checkpoint snapshot.

    ``state`` is the dictionary engine's pickled run state (opaque to
    this module); ``arrays`` / ``objects`` are the vector engine's
    dynamic arrays and pickled object blob.  ``engine_params`` holds the
    constructor arguments needed to rebuild the engine for an offline
    resume, and ``interval`` the checkpoint interval the run used.
    """

    kind: str
    superstep: int
    path: Path
    interval: int
    engine_params: dict[str, Any]
    state: Any = None
    arrays: dict[str, np.ndarray] | None = None
    objects: dict[str, Any] | None = None


@dataclass
class RecoveryBookkeeping:
    """Fault/recovery counters kept *outside* the checkpointed state.

    Restoring a snapshot rolls the run state back, but recovery history
    must survive the rollback — the engines accumulate it here and copy
    it onto the final :class:`~repro.pregel.cost_model.RunStats` when the
    run ends.
    """

    checkpoints_written: int = 0
    recoveries: int = 0
    delivery_retries: int = 0
    simulated_backoff: float = 0.0


def validate_fault_tolerance_args(
    checkpoint_interval: int | None,
    checkpoint_dir: str | os.PathLike | None,
    fault_plan: FaultPlan | None,
) -> None:
    """Shared constructor validation for both engines' checkpoint knobs."""
    if (checkpoint_interval is None) != (checkpoint_dir is None):
        raise PregelError(
            "checkpoint_interval and checkpoint_dir must be given together"
        )
    if checkpoint_interval is not None and checkpoint_interval < 1:
        raise PregelError(
            f"checkpoint_interval must be >= 1, got {checkpoint_interval}"
        )
    if fault_plan is not None and checkpoint_interval is None:
        raise PregelError(
            "a fault_plan requires checkpointing "
            "(injected crashes recover from the latest checkpoint)"
        )


def apply_delivery_faults(
    plan: FaultPlan, superstep: int, bookkeeping: RecoveryBookkeeping
) -> None:
    """Replay ``plan``'s transient delivery failures for ``superstep``.

    Each failure costs one retry with (simulated, seeded) exponential
    backoff; failures beyond the plan's ``max_delivery_retries`` escalate
    to :class:`~repro.faults.InjectedWorkerCrash`, which the calling
    engine recovers from like any worker crash.
    """
    failures = plan.delivery_failures(superstep)
    for attempt in range(failures):
        if attempt >= plan.max_delivery_retries:
            raise InjectedWorkerCrash(
                superstep, worker=-1, reason="message delivery retries exhausted"
            )
        bookkeeping.delivery_retries += 1
        bookkeeping.simulated_backoff += plan.backoff_delay(attempt)


class CheckpointManager:
    """Writes and reads snapshots for one run's checkpoint directory.

    Recovery inside a running engine only considers snapshots this
    manager wrote (or verified) during the current run, so stale files
    from an earlier run in a reused directory cannot hijack an in-run
    recovery; :func:`resume_from_checkpoint` deliberately considers every
    snapshot in the directory instead.
    """

    def __init__(self, directory: str | os.PathLike, interval: int, kind: str) -> None:
        if interval < 1:
            raise CheckpointError(f"checkpoint interval must be >= 1, got {interval}")
        if kind not in (DICT_KIND, VECTOR_KIND):
            raise CheckpointError(f"unknown checkpoint kind {kind!r}")
        self.directory = Path(directory)
        if self.directory.exists() and not self.directory.is_dir():
            raise CheckpointError(
                f"checkpoint dir {str(self.directory)!r} exists and is not a directory"
            )
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
        except OSError as exc:
            raise CheckpointError(
                f"cannot create checkpoint dir {str(self.directory)!r}: {exc}"
            ) from exc
        self.interval = interval
        self.kind = kind
        #: Supersteps snapshotted (or found already on disk) this run.
        self._written: set[int] = set()

    # ------------------------------------------------------------------
    # paths
    # ------------------------------------------------------------------
    def snapshot_path(self, superstep: int) -> Path:
        """Path of the snapshot file for ``superstep``."""
        suffix = "pkl" if self.kind == DICT_KIND else "npz"
        return self.directory / f"checkpoint_{superstep:08d}.{suffix}"

    @property
    def shard_path(self) -> Path:
        """Path of the shared static shard arrays (vector kind only)."""
        return self.directory / SHARD_FILENAME

    def due(self, superstep: int) -> bool:
        """Whether a snapshot is due at ``superstep`` under the interval."""
        return superstep % self.interval == 0

    # ------------------------------------------------------------------
    # saving
    # ------------------------------------------------------------------
    def save_dict(
        self, superstep: int, state: Any, engine_params: dict[str, Any]
    ) -> bool:
        """Snapshot the dictionary engine's ``state`` (one atomic pickle).

        Returns ``False`` (without rewriting) when this run already wrote
        the snapshot — after a recovery the loop passes the checkpointed
        superstep again and the identical bytes are already on disk.
        """
        if superstep in self._written:
            return False
        payload = {
            "format": CHECKPOINT_FORMAT,
            "version": CHECKPOINT_VERSION,
            "kind": DICT_KIND,
            "superstep": superstep,
            "interval": self.interval,
            "engine": engine_params,
            "state": state,
        }
        atomic_write_bytes(
            self.snapshot_path(superstep),
            pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL),
        )
        self._written.add(superstep)
        return True

    def save_vector(
        self,
        superstep: int,
        arrays: dict[str, np.ndarray],
        objects: dict[str, Any],
        engine_params: dict[str, Any],
        shard_arrays: dict[str, np.ndarray],
    ) -> bool:
        """Snapshot the vector engine's dynamic arrays and object state.

        ``arrays`` holds the shard-major dynamic state (stored as native
        ``.npz`` fields), ``objects`` everything non-array (pickled into
        one blob field), ``shard_arrays`` the static CSR arrays (written
        once per directory as ``shard.npz``).  Returns ``False`` when the
        snapshot already exists for this run.
        """
        if superstep in self._written:
            return False
        if not self.shard_path.exists():
            self._savez(self.shard_path, shard_arrays)
        blob = {
            "format": CHECKPOINT_FORMAT,
            "version": CHECKPOINT_VERSION,
            "kind": VECTOR_KIND,
            "superstep": superstep,
            "interval": self.interval,
            "engine": engine_params,
            "objects": objects,
        }
        fields = dict(arrays)
        fields["objects_blob"] = np.frombuffer(
            pickle.dumps(blob, protocol=pickle.HIGHEST_PROTOCOL), dtype=np.uint8
        )
        self._savez(self.snapshot_path(superstep), fields)
        self._written.add(superstep)
        return True

    @staticmethod
    def _savez(path: Path, fields: dict[str, np.ndarray]) -> None:
        """Serialize ``fields`` to an uncompressed ``.npz``, atomically."""
        with atomic_open(path, "wb") as handle:
            np.savez(handle, **fields)

    # ------------------------------------------------------------------
    # loading
    # ------------------------------------------------------------------
    def load_shard_arrays(self) -> dict[str, np.ndarray]:
        """Load the static shard arrays written by :meth:`save_vector`."""
        if not self.shard_path.exists():
            raise CheckpointError(
                f"no {SHARD_FILENAME} in {str(self.directory)!r}; "
                "vector snapshots cannot be resumed without it"
            )
        with np.load(self.shard_path) as data:
            return {name: data[name].copy() for name in data.files}

    def load_latest(self, this_run_only: bool = False) -> Snapshot:
        """Load the newest valid snapshot, skipping corrupt files.

        ``this_run_only`` restricts the search to snapshots this manager
        wrote during the current run (the in-run recovery path).
        """
        return load_latest_snapshot(
            self.directory,
            restrict_to=self._written if this_run_only else None,
        )


def _snapshot_files(directory: Path) -> list[tuple[int, Path]]:
    """``(superstep, path)`` of every snapshot file, newest first."""
    found: list[tuple[int, Path]] = []
    if not directory.is_dir():
        return found
    for entry in directory.iterdir():
        match = _SNAPSHOT_RE.match(entry.name)
        if match:
            found.append((int(match.group(1)), entry))
    found.sort(key=lambda pair: pair[0], reverse=True)
    return found


def _validate_header(payload: dict[str, Any], path: Path) -> None:
    if (
        not isinstance(payload, dict)
        or payload.get("format") != CHECKPOINT_FORMAT
        or payload.get("version") != CHECKPOINT_VERSION
    ):
        raise CheckpointError(f"{path.name}: not a version-{CHECKPOINT_VERSION} snapshot")


def load_snapshot(path: str | os.PathLike) -> Snapshot:
    """Load and validate one snapshot file (``.pkl`` or ``.npz``).

    Raises :class:`~repro.errors.CheckpointError` for truncated, corrupt
    or foreign files.
    """
    path = Path(path)
    try:
        if path.suffix == ".pkl":
            with open(path, "rb") as handle:
                payload = pickle.load(handle)
            _validate_header(payload, path)
            if payload.get("kind") != DICT_KIND:
                raise CheckpointError(f"{path.name}: not a dict-engine snapshot")
            return Snapshot(
                kind=DICT_KIND,
                superstep=int(payload["superstep"]),
                path=path,
                interval=int(payload["interval"]),
                engine_params=payload["engine"],
                state=payload["state"],
            )
        if path.suffix == ".npz":
            with np.load(path) as data:
                fields = {name: data[name].copy() for name in data.files}
            blob_field = fields.pop("objects_blob", None)
            if blob_field is None:
                raise CheckpointError(f"{path.name}: missing object blob")
            payload = pickle.loads(blob_field.tobytes())
            _validate_header(payload, path)
            if payload.get("kind") != VECTOR_KIND:
                raise CheckpointError(f"{path.name}: not a vector-engine snapshot")
            return Snapshot(
                kind=VECTOR_KIND,
                superstep=int(payload["superstep"]),
                path=path,
                interval=int(payload["interval"]),
                engine_params=payload["engine"],
                arrays=fields,
                objects=payload["objects"],
            )
    except CheckpointError:
        raise
    except Exception as exc:  # truncated pickle/zip, wrong types, ...
        raise CheckpointError(f"{path.name}: unreadable snapshot ({exc})") from exc
    raise CheckpointError(f"{path.name}: unknown snapshot suffix {path.suffix!r}")


def load_latest_snapshot(
    directory: str | os.PathLike, restrict_to: set[int] | None = None
) -> Snapshot:
    """Load the newest *valid* snapshot in ``directory``.

    Invalid or truncated snapshots are skipped (the atomic writer makes
    them rare, but a foreign or hand-damaged file must not wedge
    recovery).  Raises :class:`~repro.errors.CheckpointError` when the
    directory holds no loadable snapshot.
    """
    directory = Path(directory)
    candidates = _snapshot_files(directory)
    if restrict_to is not None:
        candidates = [pair for pair in candidates if pair[0] in restrict_to]
    errors: list[str] = []
    for _superstep, path in candidates:
        try:
            return load_snapshot(path)
        except CheckpointError as exc:
            errors.append(str(exc))
    detail = f" ({'; '.join(errors)})" if errors else ""
    raise CheckpointError(
        f"no valid checkpoint snapshot in {str(directory)!r}{detail}"
    )


def resume_from_checkpoint(
    checkpoint_dir: str | os.PathLike,
    fault_plan: FaultPlan | None = None,
    snapshot: Snapshot | None = None,
):
    """Resume the newest valid snapshot in ``checkpoint_dir`` to completion.

    Rebuilds the engine recorded in the snapshot (dictionary or vector),
    restores the run state and finishes the run, checkpointing onward
    into the same directory at the original interval.  Returns the
    engine's result object
    (:class:`~repro.pregel.engine.PregelResult` or
    :class:`~repro.pregel.vector_engine.VectorPregelResult`).  A
    ``fault_plan`` may be supplied to keep injecting faults into the
    resumed run; by default it resumes clean.
    """
    snap = snapshot if snapshot is not None else load_latest_snapshot(checkpoint_dir)
    if snap.kind == DICT_KIND:
        from repro.pregel.engine import PregelEngine

        return PregelEngine._resume_from_snapshot(snap, checkpoint_dir, fault_plan)
    from repro.pregel.vector_engine import VectorPregelEngine

    return VectorPregelEngine._resume_from_snapshot(snap, checkpoint_dir, fault_plan)
