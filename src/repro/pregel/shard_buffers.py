"""Shared-memory array plumbing for the multiprocess executor.

Wraps :mod:`multiprocessing.shared_memory` into named *packs* of NumPy
arrays: the coordinator creates a pack from a spec (or from existing
arrays), ships the picklable :class:`PackLayout` to worker processes,
and each worker attaches zero-copy views onto the same pages.  All
segment names carry the ``spinner-repro-`` prefix so the resource-
hygiene tests can assert that no segment outlives its run in
``/dev/shm``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory

import numpy as np

from repro.pregel.batch import ShardedGraph

#: Prefix of every shared-memory segment the executor creates.
SEGMENT_PREFIX = "spinner-repro-"

#: Byte alignment of each array inside a segment (cache-line friendly,
#: and satisfies any dtype's alignment requirement).
_ALIGN = 64


def _unique_segment_name() -> str:
    """A collision-resistant segment name carrying the repo prefix."""
    return f"{SEGMENT_PREFIX}{os.getpid():x}-{os.urandom(6).hex()}"


def _aligned(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


@dataclass(frozen=True)
class PackLayout:
    """Picklable description of one shared-memory segment's contents."""

    segment: str
    #: ``(name, dtype string, shape)`` per array, in segment order.
    specs: tuple[tuple[str, str, tuple[int, ...]], ...]

    @property
    def nbytes(self) -> int:
        """Total segment size implied by the specs (at least one byte)."""
        offset = 0
        for _, dtype, shape in self.specs:
            offset = _aligned(offset) + int(
                np.dtype(dtype).itemsize * int(np.prod(shape, dtype=np.int64))
            )
        return max(offset, 1)


class SharedArrayPack:
    """A set of named NumPy arrays living in one shared-memory segment.

    Created once by the coordinator (:meth:`create` /
    :meth:`create_from`) and attached by each worker process
    (:meth:`attach`).  The pack keeps the creator/attachment handle open
    for its lifetime; :meth:`unlink` removes the segment name (the
    coordinator calls it exactly once per run, on every exit path) and
    :meth:`close` drops this process's mapping.
    """

    def __init__(
        self, shm: shared_memory.SharedMemory, layout: PackLayout, owner: bool
    ) -> None:
        self._shm = shm
        self.layout = layout
        self._owner = owner
        self._unlinked = False
        self.arrays: dict[str, np.ndarray] = {}
        offset = 0
        for name, dtype, shape in layout.specs:
            offset = _aligned(offset)
            count = int(np.prod(shape, dtype=np.int64))
            view = np.frombuffer(
                shm.buf, dtype=np.dtype(dtype), count=count, offset=offset
            ).reshape(shape)
            self.arrays[name] = view
            offset += view.nbytes

    # ------------------------------------------------------------------
    @classmethod
    def create(cls, specs: list[tuple[str, np.dtype, tuple[int, ...]]]) -> "SharedArrayPack":
        """Allocate a fresh segment holding one array per spec (zeroed)."""
        layout = PackLayout(
            segment=_unique_segment_name(),
            specs=tuple(
                (name, np.dtype(dtype).str, tuple(int(s) for s in shape))
                for name, dtype, shape in specs
            ),
        )
        shm = shared_memory.SharedMemory(
            name=layout.segment, create=True, size=layout.nbytes
        )
        shm.buf[:] = b"\x00" * len(shm.buf)
        return cls(shm, layout, owner=True)

    @classmethod
    def create_from(cls, arrays: dict[str, np.ndarray]) -> "SharedArrayPack":
        """Allocate a segment and copy ``arrays`` into it."""
        pack = cls.create(
            [(name, arr.dtype, arr.shape) for name, arr in arrays.items()]
        )
        for name, arr in arrays.items():
            pack.arrays[name][...] = arr
        return pack

    @classmethod
    def attach(cls, layout: PackLayout) -> "SharedArrayPack":
        """Attach to an existing segment from a worker process.

        On Python 3.11 every attaching process registers the segment
        with the resource tracker again (bpo-39959); worker processes
        share the coordinator's tracker (the fd is inherited on fork and
        passed on spawn), where registrations are a set, so the
        duplicate is harmless and the coordinator's single ``unlink``
        clears the one entry.  Unregistering here would instead remove
        the coordinator's registration and break crash cleanup.
        """
        return cls(
            shared_memory.SharedMemory(name=layout.segment), layout, owner=False
        )

    # ------------------------------------------------------------------
    def unlink(self) -> None:
        """Remove the segment name from the system (idempotent)."""
        if self._unlinked:
            return
        self._unlinked = True
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already removed
            pass

    def close(self) -> None:
        """Drop this process's mapping (best-effort).

        NumPy views exported elsewhere can keep the buffer pinned, in
        which case ``close`` raises ``BufferError``; the segment is
        already unlinked by then, so leaving the mapping to process exit
        leaks nothing persistent.
        """
        self.arrays.clear()
        try:
            self._shm.close()
        except BufferError:  # pragma: no cover - views still exported
            pass


#: The static ShardedGraph arrays shipped to workers, in a fixed order.
SHARD_ARRAY_NAMES = (
    "indptr",
    "adj_targets",
    "adj_weights",
    "original_ids",
    "worker_of",
    "degrees",
    "send_src",
    "send_dst",
    "send_weight",
    "send_src_worker",
    "vertex_order",
    "send_indptr",
    "shard_indptr",
)


def shard_static_arrays(shard: ShardedGraph) -> dict[str, np.ndarray]:
    """The precomputed shard arrays a worker needs, keyed canonically."""
    return {name: getattr(shard, name) for name in SHARD_ARRAY_NAMES}


def shard_from_arrays(
    arrays: dict[str, np.ndarray], num_workers: int
) -> ShardedGraph:
    """Rebuild a :class:`ShardedGraph` over shared views, no recomputation.

    Bypasses ``__init__`` (which would re-derive the canonical orderings,
    allocating private copies) and assigns the attributes straight from
    the shared-memory views, so every worker reads the coordinator's
    arrays in place.
    """
    shard = ShardedGraph.__new__(ShardedGraph)
    for name in SHARD_ARRAY_NAMES:
        setattr(shard, name, arrays[name])
    shard.num_workers = num_workers
    shard.worker_lo = 0
    shard.worker_hi = num_workers
    shard.num_vertices = int(arrays["indptr"].shape[0] - 1)
    return shard
