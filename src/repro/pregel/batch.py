"""Batch (array-native) Pregel primitives shared by all executors.

This module holds the data-plane vocabulary of the vector runtime —
:class:`ShardedGraph`, :class:`Outbox`, :class:`BatchStep`,
:class:`DeliveredMessages`, :class:`BatchComputeContext` and
:class:`BatchVertexProgram` — extracted from the former monolithic
``vector_engine.py`` so that superstep *executors* (serial or
shared-memory multiprocess, see :mod:`repro.pregel.executor`) can share
them.  The canonical-ordering contract that makes the vector runtime
bit-exact with the dictionary engine lives here:

* ``vertex_order`` visits vertices worker-major (stable), exactly like
  the dictionary engine's per-worker loops;
* ``send_src``/``send_dst``/``send_weight`` permute the adjacency slots
  into the same worker-major order, so batched outboxes reproduce the
  dictionary engine's send order and sequential per-target reductions
  (``np.bincount``) sum messages in the dictionary engine's order;
* the aggregation helpers (:meth:`BatchComputeContext.aggregate_sequential`
  and :meth:`BatchComputeContext.aggregate_keyed`) accumulate strictly
  sequentially over that canonical order.

The context additionally exposes *portion* hooks (``owned_vertices``,
``owned_source_mask``, ``global_mask_span``) that the shared-memory
executor's per-group context overrides; over the full graph they are
identities, so serial programs pay nothing for them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, ClassVar

import numpy as np

from repro.pregel.aggregators import AggregatorRegistry


class ShardedGraph:
    """CSR adjacency sharded across simulated workers.

    Built once per run, then shared read-only by every superstep.  Beyond
    the plain CSR arrays it precomputes the two *canonical orderings* that
    make the batch runtime reproduce the dictionary engine bit for bit:

    ``vertex_order``
        Dense vertex ids sorted worker-major (stable), i.e. the order the
        dictionary engine visits vertices: worker 0's vertices in
        placement order, then worker 1's, ...
    ``send_src`` / ``send_dst`` / ``send_weight``
        The adjacency slots permuted into the same worker-major order —
        the concatenation of the per-worker send buffers.  A program that
        emits messages by masking these arrays produces messages in
        exactly the dictionary engine's send order, so a sequential
        per-target reduction (``np.bincount``) sums them in the same
        order as Python's ``sum`` over a message list.

    ``worker_lo`` / ``worker_hi`` describe the worker range the object
    covers — always ``[0, num_workers)`` here; the shared-memory
    executor's :class:`~repro.pregel.executor.ShardGroupView` narrows
    them so programs can treat full shards and group views uniformly.
    """

    def __init__(
        self,
        indptr: np.ndarray,
        targets: np.ndarray,
        weights: np.ndarray,
        original_ids: np.ndarray,
        worker_of: np.ndarray,
        num_workers: int,
    ) -> None:
        self.indptr = np.asarray(indptr, dtype=np.int64)
        self.adj_targets = np.asarray(targets, dtype=np.int64)
        self.adj_weights = np.asarray(weights, dtype=np.int64)
        self.original_ids = np.asarray(original_ids, dtype=np.int64)
        self.worker_of = np.asarray(worker_of, dtype=np.int64)
        self.num_workers = num_workers
        self.worker_lo = 0
        self.worker_hi = num_workers
        self.num_vertices = self.indptr.shape[0] - 1
        self.degrees = np.diff(self.indptr)

        edge_src = np.repeat(
            np.arange(self.num_vertices, dtype=np.int64), self.degrees
        )
        edge_order = np.argsort(self.worker_of[edge_src], kind="stable")
        self.send_src = edge_src[edge_order]
        self.send_dst = self.adj_targets[edge_order]
        self.send_weight = self.adj_weights[edge_order]
        #: Owning worker per canonical slot (cached: the statistics pass
        #: needs it every superstep a full outbox is emitted).
        self.send_src_worker = self.worker_of[self.send_src]
        self.vertex_order = np.argsort(self.worker_of, kind="stable")

        # Per-worker boundaries into the canonical (worker-major) arrays:
        # worker w's send buffer is send_*[send_indptr[w]:send_indptr[w+1]]
        # and its vertex list is vertex_order[shard_indptr[w]:shard_indptr[w+1]].
        self.send_indptr = np.zeros(num_workers + 1, dtype=np.int64)
        np.cumsum(
            np.bincount(self.send_src_worker, minlength=num_workers),
            out=self.send_indptr[1:],
        )
        self.shard_indptr = np.zeros(num_workers + 1, dtype=np.int64)
        np.cumsum(
            np.bincount(self.worker_of, minlength=num_workers),
            out=self.shard_indptr[1:],
        )

    # ------------------------------------------------------------------
    def shard_vertices(self, worker: int) -> np.ndarray:
        """Dense vertex ids owned by ``worker``, in placement order."""
        return self.vertex_order[self.shard_indptr[worker] : self.shard_indptr[worker + 1]]

    def send_buffer(self, worker: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(sources, targets, weights)`` slice of ``worker``'s out-edges."""
        start, end = self.send_indptr[worker], self.send_indptr[worker + 1]
        return (
            self.send_src[start:end],
            self.send_dst[start:end],
            self.send_weight[start:end],
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"ShardedGraph(|V|={self.num_vertices}, "
            f"|slots|={self.adj_targets.shape[0]}, W={self.num_workers})"
        )


@dataclass
class Outbox:
    """Batched messages emitted during one superstep.

    All three arrays are aligned; ``sources``/``targets`` hold *dense*
    vertex ids.  Messages must appear in canonical (worker-major) order —
    the :class:`BatchComputeContext` helpers guarantee this.
    """

    sources: np.ndarray
    targets: np.ndarray
    payloads: np.ndarray

    @classmethod
    def empty(cls) -> "Outbox":
        """An outbox with no messages."""
        return cls(
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.float64),
        )

    def __len__(self) -> int:
        return int(self.targets.shape[0])


@dataclass
class BatchStep:
    """What a batch program returns for one superstep."""

    #: Full vertex-value array after the superstep (may alias the input).
    values: np.ndarray
    #: Messages to deliver next superstep.
    outbox: Outbox
    #: Per-vertex vote-to-halt mask; applied only where a vertex computed.
    votes: np.ndarray
    #: Optional per-vertex edge counts charged to the superstep's
    #: ``edges_scanned`` statistics instead of ``shard.degrees`` — for
    #: programs whose effective adjacency differs from the shard during
    #: some supersteps (e.g. Spinner's NeighborPropagation superstep scans
    #: the original directed out-edges, not the converted adjacency).
    edges_scanned: np.ndarray | None = None


@dataclass
class DeliveredMessages:
    """Combined messages delivered at the start of a superstep.

    ``payload[v]`` is the combined message value for vertex ``v`` (sum or
    min, per the program's ``combine`` mode) and the combine-neutral
    element (0 or +inf) where ``has_message[v]`` is ``False``.
    """

    has_message: np.ndarray
    payload: np.ndarray
    count: int


def _dense_ids(ids: np.ndarray, originals: np.ndarray) -> np.ndarray:
    """Map original vertex ids to their dense (insertion-order) positions.

    ``ids`` holds the original ids in iteration order, which is not
    necessarily sorted, so the lookup goes through an argsort-backed
    ``searchsorted`` instead of assuming sorted ids.
    """
    sorter = np.argsort(ids, kind="stable")
    return sorter[np.searchsorted(ids, originals, sorter=sorter)]


def _neutral_payload(combine: str, num_vertices: int) -> np.ndarray:
    if combine == "sum":
        return np.zeros(num_vertices, dtype=np.float64)
    return np.full(num_vertices, np.inf, dtype=np.float64)


class BatchComputeContext:
    """Facilities available to a batch program during one superstep.

    The per-vertex ``ComputeContext`` of the dictionary engine sends one
    message at a time; this context instead builds whole outboxes with
    array operations, preserving the canonical ordering the equivalence
    guarantee rests on.

    ``shard`` may be a full :class:`ShardedGraph` (serial executor) or a
    :class:`~repro.pregel.executor.ShardGroupView` covering a contiguous
    worker range (shared-memory executor); the send and aggregation
    helpers then operate on that portion's canonical slots, and the
    executor merges portions back in canonical order.
    """

    def __init__(
        self,
        superstep: int,
        shard: ShardedGraph,
        values: np.ndarray,
        computed: np.ndarray,
        aggregators: AggregatorRegistry,
    ) -> None:
        self.superstep = superstep
        self.shard = shard
        #: Current vertex values (read-only by convention; return new
        #: values through :class:`BatchStep`).
        self.values = values
        #: Mask of vertices computing this superstep (active or messaged).
        self.computed = computed
        self._aggregators = aggregators

    @property
    def num_vertices(self) -> int:
        """Number of vertices in the shard."""
        return self.shard.num_vertices

    # ------------------------------------------------------------------
    def send_to_all_neighbors(
        self, senders: np.ndarray, payload_per_vertex: np.ndarray
    ) -> Outbox:
        """Every vertex in ``senders`` sends its payload along all out-edges."""
        payload_per_vertex = np.asarray(payload_per_vertex, dtype=np.float64)
        if senders.all():
            # Fast path for the common all-active superstep (e.g. PageRank):
            # the outbox is the canonical edge set itself, no compaction.
            sources = self.shard.send_src
            return Outbox(sources, self.shard.send_dst, payload_per_vertex[sources])
        mask = senders[self.shard.send_src]
        sources = self.shard.send_src[mask]
        return Outbox(
            sources,
            self.shard.send_dst[mask],
            payload_per_vertex[sources],
        )

    def edges_from(
        self, senders: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Canonical-order ``(sources, targets, weights)`` of senders' edges.

        For programs whose message payload is per-edge rather than
        per-vertex (e.g. shortest paths adds the edge cost).
        """
        mask = senders[self.shard.send_src]
        return (
            self.shard.send_src[mask],
            self.shard.send_dst[mask],
            self.shard.send_weight[mask],
        )

    @staticmethod
    def no_messages() -> Outbox:
        """An empty outbox, for supersteps that send nothing."""
        return Outbox.empty()

    # ------------------------------------------------------------------
    def aggregate(self, name: str, value: Any) -> None:
        """Contribute a single value to the named aggregator.

        Under the shared-memory executor this runs once per shard group,
        so the contribution must be a *portion-local partial* (e.g. a
        count over this portion's vertices) under a sum-like aggregator;
        whole-graph constants would be double-counted.  The canonical
        helpers below have no such restriction.
        """
        self._aggregators.aggregate(name, value)

    def aggregated_value(self, name: str) -> Any:
        """Value of the named aggregator from the previous superstep."""
        return self._aggregators.value(name)

    def aggregate_sequential(
        self, name: str, per_vertex: np.ndarray, mask: np.ndarray
    ) -> None:
        """Aggregate one value per masked vertex, in canonical vertex order.

        Uses ``np.cumsum`` (a strictly sequential left-to-right
        accumulation, unlike ``np.sum``'s pairwise reduction) so a sum
        aggregator receives bit-for-bit the value the dictionary engine
        builds by aggregating vertex by vertex.
        """
        order = self.shard.vertex_order
        selected = np.asarray(per_vertex, dtype=np.float64)[order][mask[order]]
        if selected.size:
            self._aggregators.aggregate(name, float(selected.cumsum()[-1]))

    def aggregate_keyed(
        self,
        name_fn: Callable[[int], str],
        keys: np.ndarray,
        weights: np.ndarray,
        num_keys: int,
        mask: np.ndarray | None = None,
    ) -> None:
        """Aggregate one weight per vertex into its key's named aggregator.

        The bincount runs over the canonical (worker-major) vertex order
        and accumulates each bin strictly sequentially in input order, so
        every per-key sum is bit-identical to the dictionary engine's
        vertex-by-vertex ``DoubleSumAggregator`` reduction.  All
        ``num_keys`` aggregators receive a contribution (0.0 for empty
        bins), matching the per-label loops of the Spinner programs.
        """
        order = self.shard.vertex_order
        ordered_keys = np.asarray(keys)[order]
        ordered_weights = np.asarray(weights, dtype=np.float64)[order]
        if mask is not None:
            ordered_mask = mask[order]
            ordered_keys = ordered_keys[ordered_mask]
            ordered_weights = ordered_weights[ordered_mask]
        sums = np.bincount(ordered_keys, weights=ordered_weights, minlength=num_keys)
        for key in range(num_keys):
            self._aggregators.aggregate(name_fn(key), float(sums[key]))

    # ------------------------------------------------------------------
    # portion hooks (identities over a full shard; the shared-memory
    # executor's per-group context narrows them to its worker range)
    # ------------------------------------------------------------------
    def owned_vertices(self) -> np.ndarray | None:
        """Dense ids this context's portion owns, or ``None`` for all.

        Programs that publish state into a preallocated array should
        write only these positions when the result is not ``None``.
        """
        return None

    def owned_source_mask(self, sources: np.ndarray) -> np.ndarray | None:
        """Mask of ``sources`` owned by this portion, or ``None`` for all.

        Lets a program restrict a precomputed send schedule (e.g.
        Spinner's directed-edge plan) to the senders this portion owns;
        ``None`` means the whole schedule applies unchanged.
        """
        return None

    def global_mask_span(self, mask: np.ndarray) -> tuple[int, int]:
        """``(total, offset)`` of masked vertices in global canonical order.

        ``total`` counts masked vertices over the whole graph; ``offset``
        counts those ordered before this portion's first vertex.  Batch
        programs use this to slice one global RNG block deterministically
        across portions (every portion draws the full block and keeps its
        own span, so all RNG streams stay synchronized).
        """
        flags = mask[self.shard.vertex_order]
        return int(flags.sum()), 0


class BatchVertexProgram:
    """Base class for batch (array-native) vertex programs.

    Subclasses implement :meth:`compute_batch`, the whole-superstep
    counterpart of :meth:`~repro.pregel.program.VertexProgram.compute`:
    it receives the shard, the combined incoming messages and a
    :class:`BatchComputeContext`, and returns a :class:`BatchStep` of
    ``(values, outbox, votes)`` arrays.

    ``combine`` declares how concurrent messages to one vertex merge
    ("sum" or "min"); it replaces the per-message combiner of the
    dictionary engine.  The ``pre_superstep`` / ``post_superstep`` hooks
    keep the dictionary-engine signature but run for *all* workers before
    respectively after the batch compute (the batch is one barrier, so
    there is no per-worker interleaving to preserve).  Under the
    shared-memory executor the hooks run in the coordinator process on
    its program copy — programs whose hooks mutate program state are not
    supported in parallel mode (the stock programs' hooks are no-ops).

    Contract of the returned :class:`BatchStep`: ``values`` is the full
    post-superstep value array (coerced to ``float64``); ``outbox``
    holds the messages to deliver next superstep in canonical
    (worker-major) order — restricted to the context's portion when one
    is active; ``votes`` is applied only where a vertex computed (message
    arrival re-activates a halted vertex, as in Pregel); the optional
    ``edges_scanned`` overrides the per-vertex edge counts charged to the
    cost-model statistics.
    """

    #: Message combination mode: "sum" or "min".
    combine: ClassVar[str] = "sum"

    def register_aggregators(self, aggregators: AggregatorRegistry) -> None:
        """Register the aggregators the program needs."""

    def pre_superstep(
        self,
        superstep: int,
        worker_store: dict[str, Any],
        aggregators: AggregatorRegistry,
    ) -> None:
        """Per-worker hook before the batch compute."""

    def compute_batch(
        self,
        shard: ShardedGraph,
        messages: DeliveredMessages,
        ctx: BatchComputeContext,
    ) -> BatchStep:
        """Whole-superstep compute over the shard (must be overridden)."""
        raise NotImplementedError

    def post_superstep(
        self,
        superstep: int,
        worker_store: dict[str, Any],
        aggregators: AggregatorRegistry,
    ) -> None:
        """Per-worker hook after the batch compute."""

    # ------------------------------------------------------------------
    # shared-state protocol (used by the shared-memory executor)
    # ------------------------------------------------------------------
    def shared_state(self) -> dict[str, np.ndarray]:
        """Named dense arrays that must be shared across shard groups.

        The shared-memory executor places these in shared memory and
        rebinds every group's program to the shared copies via
        :meth:`adopt_shared_state`, so in-place owned-slice writes (e.g.
        Spinner's label migrations) become visible to all groups at the
        next barrier.  The default — no shared state — suits stateless
        programs like the bundled apps.
        """
        return {}

    def adopt_shared_state(self, arrays: dict[str, np.ndarray]) -> None:
        """Rebind the program's shared arrays to executor-provided storage."""

    def max_outbox_messages(self, shard: ShardedGraph) -> int:
        """Upper bound on outbox size for one superstep over ``shard``.

        Sizes the shared-memory executor's preallocated outbox buffers.
        The default covers programs that send along the shard's own
        out-edges at most once per slot; programs with custom send
        schedules must override.
        """
        return int(shard.send_src.shape[0])
