"""Pregel aggregators.

Aggregators provide the only global communication channel in the Pregel
model: every vertex may contribute a value during a superstep, the values
are reduced with a commutative and associative operator, and the reduced
value becomes visible to all vertices *in the following superstep* (and to
the master compute immediately after the superstep).

Spinner uses aggregators for the partition load counters ``b(l)``, the
migration-candidate counters ``m(l)`` and the global score (paper
Section IV-A5).  Giraph shards aggregators across workers for scalability;
in this single-process simulation sharding only matters for the cost
model, which charges aggregator traffic to the owning worker.
"""

from __future__ import annotations

from typing import Any

from repro.errors import AggregatorError


class Aggregator:
    """Base class for aggregators.

    Subclasses define :attr:`neutral` and :meth:`reduce`.  ``persistent``
    aggregators keep their value across supersteps (Giraph semantics for
    "persistent aggregators"); non-persistent ones reset to the neutral
    element at the start of every superstep.
    """

    #: Neutral element of the reduction.
    neutral: Any = None

    def __init__(self, persistent: bool = False) -> None:
        self.persistent = persistent
        self._current = self.neutral
        self._previous = self.neutral

    def reduce(self, left: Any, right: Any) -> Any:
        """Combine two values; must be commutative and associative."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    def aggregate(self, value: Any) -> None:
        """Contribute ``value`` to the current superstep's reduction."""
        self._current = self.reduce(self._current, value)

    def set(self, value: Any) -> None:
        """Overwrite the current value (master-compute only)."""
        self._current = value

    @property
    def value(self) -> Any:
        """Value reduced during the *previous* superstep."""
        return self._previous

    @property
    def current_value(self) -> Any:
        """Value reduced so far during the *current* superstep."""
        return self._current

    def advance_superstep(self) -> None:
        """Publish the current value and reset for the next superstep."""
        self._previous = self._current
        if not self.persistent:
            self._current = self.neutral


class LongSumAggregator(Aggregator):
    """Integer sum aggregator."""

    neutral = 0

    def reduce(self, left: int, right: int) -> int:
        """Integer addition."""
        return left + right


class DoubleSumAggregator(Aggregator):
    """Floating-point sum aggregator."""

    neutral = 0.0

    def reduce(self, left: float, right: float) -> float:
        """Floating-point addition."""
        return left + right


class MaxAggregator(Aggregator):
    """Maximum aggregator (neutral element ``-inf``)."""

    neutral = float("-inf")

    def reduce(self, left: float, right: float) -> float:
        """Keep the larger value."""
        return left if left >= right else right


class MinAggregator(Aggregator):
    """Minimum aggregator (neutral element ``+inf``)."""

    neutral = float("inf")

    def reduce(self, left: float, right: float) -> float:
        """Keep the smaller value."""
        return left if left <= right else right


class AggregatorRegistry:
    """Named collection of aggregators shared by vertices and the master."""

    def __init__(self) -> None:
        self._aggregators: dict[str, Aggregator] = {}

    def register(self, name: str, aggregator: Aggregator, allow_existing: bool = False) -> None:
        """Register an aggregator under ``name``.

        Re-registering an existing name raises :class:`AggregatorError`
        unless ``allow_existing`` is set (in which case the existing
        aggregator is kept, matching Giraph's idempotent registration).
        """
        if name in self._aggregators:
            if allow_existing:
                return
            raise AggregatorError(f"aggregator {name!r} is already registered")
        self._aggregators[name] = aggregator

    def __contains__(self, name: str) -> bool:
        return name in self._aggregators

    def get(self, name: str) -> Aggregator:
        """Return the aggregator registered under ``name``."""
        try:
            return self._aggregators[name]
        except KeyError:
            raise AggregatorError(f"aggregator {name!r} is not registered") from None

    def aggregate(self, name: str, value: Any) -> None:
        """Contribute ``value`` to the named aggregator."""
        self.get(name).aggregate(value)

    def value(self, name: str) -> Any:
        """Previous-superstep value of the named aggregator."""
        return self.get(name).value

    def names(self) -> list[str]:
        """Registered aggregator names (sorted for reproducibility)."""
        return sorted(self._aggregators)

    def advance_superstep(self) -> None:
        """Publish all aggregator values for the next superstep."""
        for aggregator in self._aggregators.values():
            aggregator.advance_superstep()
