"""Workers and vertex-to-worker placement.

Giraph distributes vertices across physical machine workers; which worker a
vertex lives on determines whether its messages are local or cross the
network, and the per-worker load determines superstep time under the
synchronous barrier.  Spinner additionally relies on *per-worker shared
state* (its asynchronous load counters, Section IV-A4), which is exposed
here as :attr:`Worker.shared_store`.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Mapping
from typing import Any

from repro.errors import PregelError

#: Signature of a vertex placement function: vertex id -> worker index.
PlacementFn = Callable[[int], int]


def hash_placement(num_workers: int) -> PlacementFn:
    """Default Giraph-style placement: ``worker = vertex_id mod workers``.

    Vertex ids must be non-negative (the graph classes enforce the same
    invariant); a negative id raises :class:`~repro.errors.PregelError`
    instead of silently relying on Python's modulo semantics.
    """
    if num_workers <= 0:
        raise PregelError("num_workers must be positive")

    def place(vertex_id: int) -> int:
        """Return ``vertex_id mod num_workers``, rejecting negative ids."""
        if vertex_id < 0:
            raise PregelError(
                f"vertex ids must be non-negative, got {vertex_id}"
            )
        return vertex_id % num_workers

    return place


def partition_placement(
    assignment: Mapping[int, int], num_workers: int
) -> PlacementFn:
    """Placement driven by a partitioning, as used in Section V-F.

    Vertices with the same Spinner label land on the same worker
    (``worker = label mod num_workers``); vertices missing from the
    assignment fall back to hash placement.
    """
    if num_workers <= 0:
        raise PregelError("num_workers must be positive")

    def place(vertex_id: int) -> int:
        """Return the worker owning the vertex's partition label."""
        label = assignment.get(vertex_id)
        if label is None:
            return vertex_id % num_workers
        return label % num_workers

    return place


class Worker:
    """One simulated cluster worker.

    Attributes
    ----------
    worker_id:
        Index of the worker within the cluster.
    vertex_ids:
        The vertices placed on this worker.
    shared_store:
        A mutable dictionary shared by all vertices of the worker within a
        superstep.  The engine clears it at the start of every superstep,
        before calling the program's ``pre_superstep`` hook, which mirrors
        Giraph's ``WorkerContext`` lifecycle: state that must survive a
        superstep boundary belongs in aggregators or vertex values.
    """

    def __init__(self, worker_id: int) -> None:
        self.worker_id = worker_id
        self.vertex_ids: list[int] = []
        self.shared_store: dict[str, Any] = {}

    def assign(self, vertex_id: int) -> None:
        """Place a vertex on this worker."""
        self.vertex_ids.append(vertex_id)

    @property
    def num_vertices(self) -> int:
        """Number of vertices placed on this worker."""
        return len(self.vertex_ids)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Worker(id={self.worker_id}, vertices={self.num_vertices})"


def build_workers(
    vertex_ids: Iterable[int], num_workers: int, placement: PlacementFn
) -> tuple[list[Worker], dict[int, int]]:
    """Create workers and place every vertex.

    Returns the worker list and the ``vertex -> worker`` map used by the
    engine to classify messages as local or remote.
    """
    workers = [Worker(worker_id) for worker_id in range(num_workers)]
    worker_of: dict[int, int] = {}
    for vertex_id in vertex_ids:
        worker_id = placement(vertex_id)
        if not 0 <= worker_id < num_workers:
            raise PregelError(
                f"placement returned worker {worker_id} outside [0, {num_workers})"
            )
        workers[worker_id].assign(vertex_id)
        worker_of[vertex_id] = worker_id
    return workers, worker_of
