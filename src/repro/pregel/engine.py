"""The simulated Pregel engine.

The engine executes a :class:`~repro.pregel.program.VertexProgram` over a
set of vertices placed on simulated workers, superstep by superstep, with
synchronous message delivery, aggregators, an optional master compute and
per-superstep cost accounting.

The semantics follow the Pregel paper (and Giraph's implementation of it):

* a vertex is *active* unless it has voted to halt; receiving a message
  re-activates it;
* messages sent in superstep *S* are delivered at the start of *S + 1*;
* aggregator values contributed during *S* are visible during *S + 1*;
* the computation ends when every vertex has halted and no messages are in
  flight, when the master requests a halt, or when ``max_supersteps`` is
  reached.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import PregelError
from repro.faults import FaultPlan, InjectedWorkerCrash
from repro.graph.csr import CSRGraph
from repro.graph.digraph import DiGraph
from repro.graph.undirected import UndirectedGraph
from repro.pregel.aggregators import AggregatorRegistry
from repro.pregel.checkpoint import (
    DICT_KIND,
    CheckpointManager,
    RecoveryBookkeeping,
    Snapshot,
    apply_delivery_faults,
    validate_fault_tolerance_args as _validate_fault_tolerance_args,
)
from repro.pregel.cost_model import (
    ClusterCostModel,
    RunStats,
    SuperstepStats,
    WorkerStats,
)
from repro.pregel.master import MasterCompute
from repro.pregel.messages import MessageCombiner, MessageStore
from repro.pregel.program import ComputeContext, VertexProgram
from repro.pregel.run_loop import (
    finalize_run_stats,
    record_aggregator_history,
    run_with_recovery,
    superstep_preamble,
)
from repro.pregel.vertex import Vertex
from repro.pregel.worker import PlacementFn, build_workers, hash_placement


@dataclass
class PregelResult:
    """Outcome of a Pregel run.

    After a crash recovery the engine continues on state restored from a
    checkpoint, so the objects the caller passed into ``run`` (the
    vertices dictionary, the master compute) may be *stale copies* of the
    live run.  The result always carries the authoritative final state:
    read vertices and the master from here, never from the inputs.
    """

    vertices: dict[int, Vertex]
    num_supersteps: int
    stats: RunStats
    aggregators: AggregatorRegistry
    aggregator_history: dict[str, list[Any]] = field(default_factory=dict)
    halt_reason: str = "converged"
    #: The master compute the run actually finished with (``None`` when
    #: the run had no master).  After a recovery this is the restored
    #: instance, not the one passed to ``run``.
    master: MasterCompute | None = None

    def vertex_values(self) -> dict[int, Any]:
        """Convenience mapping of vertex id to final vertex value."""
        return {vid: vertex.value for vid, vertex in self.vertices.items()}

    def simulated_time(self, model: ClusterCostModel) -> float:
        """Total simulated runtime under ``model``."""
        return self.stats.simulated_time(model)


@dataclass
class _DictRunState:
    """Everything the dictionary engine needs to continue a run.

    This is exactly what a checkpoint snapshots: one pickle of this
    object captures vertex values/edges/halted flags, in-flight messages,
    aggregators and their history, per-worker placement and shared
    stores, the program (with any RNG state) and master, and the
    accumulated statistics.  The placement *function* is deliberately
    absent — placements may be closures (unpicklable), and the computed
    ``workers`` / ``worker_of`` carry everything a resumed run needs.
    """

    program: VertexProgram
    master: MasterCompute | None
    vertices: dict[int, Vertex]
    workers: list[Any]
    worker_of: dict[int, int]
    incoming: MessageStore
    run_stats: RunStats
    aggregators: AggregatorRegistry
    aggregator_history: dict[str, list[Any]]
    superstep: int = 0


class PregelEngine:
    """Single-process simulation of a Giraph cluster.

    Parameters
    ----------
    num_workers:
        Number of simulated workers.
    placement:
        Vertex placement function; defaults to hash placement, matching
        Giraph's default partitioning of vertices onto workers.
    cost_model:
        Cost coefficients used when reporting simulated times.
    combiner:
        Optional message combiner applied to all messages.
    max_supersteps:
        Safety bound on the number of supersteps.
    drop_unknown_targets:
        Messages addressed to vertex ids that do not exist in the graph
        raise :class:`~repro.errors.PregelError` by default (Giraph would
        resolve or create the target vertex; silently losing the message is
        a routing bug).  Set this to ``True`` to drop such messages instead;
        the number dropped is surfaced as ``RunStats.messages_dropped``.
    checkpoint_interval:
        Snapshot the run state into ``checkpoint_dir`` every this many
        supersteps (at superstep boundaries, Giraph style).  Both or
        neither of ``checkpoint_interval`` / ``checkpoint_dir`` must be
        given.
    checkpoint_dir:
        Directory for checkpoint snapshots (created if missing).
    fault_plan:
        Deterministic :class:`~repro.faults.FaultPlan` of injected worker
        crashes and message-delivery failures; requires checkpointing,
        because crashes recover from the latest checkpoint.
    """

    def __init__(
        self,
        num_workers: int = 4,
        placement: PlacementFn | None = None,
        cost_model: ClusterCostModel | None = None,
        combiner: MessageCombiner | None = None,
        max_supersteps: int = 500,
        drop_unknown_targets: bool = False,
        checkpoint_interval: int | None = None,
        checkpoint_dir: str | os.PathLike | None = None,
        fault_plan: FaultPlan | None = None,
    ) -> None:
        if num_workers <= 0:
            raise PregelError("num_workers must be positive")
        if max_supersteps <= 0:
            raise PregelError("max_supersteps must be positive")
        _validate_fault_tolerance_args(checkpoint_interval, checkpoint_dir, fault_plan)
        self.num_workers = num_workers
        self.placement = placement if placement is not None else hash_placement(num_workers)
        self.cost_model = cost_model if cost_model is not None else ClusterCostModel()
        self.combiner = combiner
        self.max_supersteps = max_supersteps
        self.drop_unknown_targets = drop_unknown_targets
        self.checkpoint_interval = checkpoint_interval
        self.checkpoint_dir = checkpoint_dir
        self.fault_plan = fault_plan

    # ------------------------------------------------------------------
    # graph loading
    # ------------------------------------------------------------------
    @staticmethod
    def vertices_from_digraph(
        graph: DiGraph,
        vertex_value: Callable[[int], Any] | None = None,
        edge_value: Callable[[int, int], Any] | None = None,
    ) -> dict[int, Vertex]:
        """Build Pregel vertices from a directed graph.

        Each vertex gets one outgoing edge per directed edge, matching the
        Giraph data model where a vertex knows only its out-edges.
        """
        vertices: dict[int, Vertex] = {}
        for vertex_id in graph.vertices():
            value = vertex_value(vertex_id) if vertex_value else None
            vertices[vertex_id] = Vertex(vertex_id, value=value)
        for source, target in graph.edges():
            value = edge_value(source, target) if edge_value else 1
            vertices[source].add_edge(target, value)
        return vertices

    @staticmethod
    def vertices_from_undirected(
        graph: UndirectedGraph,
        vertex_value: Callable[[int], Any] | None = None,
        edge_value: Callable[[int, int, int], Any] | None = None,
    ) -> dict[int, Vertex]:
        """Build Pregel vertices from a weighted undirected graph.

        Every undirected edge materializes as two directed edges (one per
        endpoint); by default the edge value is the undirected weight.
        """
        vertices: dict[int, Vertex] = {}
        for vertex_id in graph.vertices():
            value = vertex_value(vertex_id) if vertex_value else None
            vertices[vertex_id] = Vertex(vertex_id, value=value)
        for u, v, weight in graph.edges():
            value_uv = edge_value(u, v, weight) if edge_value else weight
            value_vu = edge_value(v, u, weight) if edge_value else weight
            vertices[u].add_edge(v, value_uv)
            vertices[v].add_edge(u, value_vu)
        return vertices

    @staticmethod
    def vertices_from_csr(csr: "CSRGraph") -> dict[int, Vertex]:
        """Build Pregel vertices from a :class:`~repro.graph.csr.CSRGraph`.

        Vertices are keyed by their *original* ids, iterated in dense-id
        order, and each adjacency slot becomes one outgoing edge valued with
        its CSR weight — the exact layout the vectorized engine uses, which
        makes runs over the two representations comparable slot for slot.
        Parallel adjacency entries collapse (``Vertex.edges`` is a dict).
        """
        vertices: dict[int, Vertex] = {}
        indptr = csr.indptr
        indices = csr.indices.tolist()
        weights = csr.weights.tolist()
        original = csr.original_ids.tolist()
        for dense in range(csr.num_vertices):
            start, end = int(indptr[dense]), int(indptr[dense + 1])
            vertex = Vertex(original[dense])
            for slot in range(start, end):
                vertex.add_edge(original[indices[slot]], weights[slot])
            vertices[original[dense]] = vertex
        return vertices

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(
        self,
        program: VertexProgram,
        vertices: dict[int, Vertex],
        master: MasterCompute | None = None,
    ) -> PregelResult:
        """Execute ``program`` over ``vertices`` until convergence.

        The ``vertices`` dictionary is mutated in place (vertex values and
        edge values evolve as the program runs).  When checkpointing is on
        and a fault recovery occurred, the run continues on *restored*
        state — always read the final vertices (and master) from the
        returned :class:`PregelResult`, which carries the authoritative
        objects either way.
        """
        aggregators = AggregatorRegistry()
        program.register_aggregators(aggregators)
        if master is not None:
            master.initialize(aggregators)

        workers, worker_of = build_workers(vertices.keys(), self.num_workers, self.placement)
        state = _DictRunState(
            program=program,
            master=master,
            vertices=vertices,
            workers=workers,
            worker_of=worker_of,
            incoming=MessageStore(self.combiner),
            run_stats=RunStats(),
            aggregators=aggregators,
            aggregator_history={name: [] for name in aggregators.names()},
        )
        manager = None
        if self.checkpoint_interval is not None:
            manager = CheckpointManager(
                self.checkpoint_dir, self.checkpoint_interval, DICT_KIND
            )
        if self.fault_plan is not None:
            self.fault_plan.reset()
        return self._execute(state, manager, self.fault_plan, RecoveryBookkeeping())

    def _execute(
        self,
        state: _DictRunState,
        manager: CheckpointManager | None,
        plan: FaultPlan | None,
        bookkeeping: RecoveryBookkeeping,
    ) -> PregelResult:
        """Run to completion via the shared recovery wrapper.

        Crash rollback, the recovery budget and the abort path live in
        :func:`~repro.pregel.run_loop.run_with_recovery`; the restored
        state is always a fresh unpickle of the latest snapshot written
        *this run*.
        """

        def restore() -> _DictRunState:
            return manager.load_latest(this_run_only=True).state

        def loop(current: _DictRunState) -> PregelResult:
            return self._superstep_loop(current, manager, plan, bookkeeping)

        return run_with_recovery(loop, state, restore, plan, bookkeeping)

    def _engine_params(self) -> dict[str, Any]:
        """Constructor arguments a snapshot needs to rebuild this engine.

        The placement function is intentionally excluded (closures don't
        pickle; the snapshot's ``workers`` / ``worker_of`` already encode
        the placement).
        """
        return {
            "num_workers": self.num_workers,
            "cost_model": self.cost_model,
            "combiner": self.combiner,
            "max_supersteps": self.max_supersteps,
            "drop_unknown_targets": self.drop_unknown_targets,
        }

    @classmethod
    def _resume_from_snapshot(
        cls,
        snapshot: Snapshot,
        checkpoint_dir: str | os.PathLike,
        fault_plan: FaultPlan | None = None,
    ) -> PregelResult:
        """Rebuild the engine from ``snapshot`` and finish the run."""
        params = snapshot.engine_params
        engine = cls(
            num_workers=params["num_workers"],
            cost_model=params["cost_model"],
            combiner=params["combiner"],
            max_supersteps=params["max_supersteps"],
            drop_unknown_targets=params["drop_unknown_targets"],
            checkpoint_interval=snapshot.interval,
            checkpoint_dir=checkpoint_dir,
            fault_plan=fault_plan,
        )
        manager = CheckpointManager(checkpoint_dir, snapshot.interval, DICT_KIND)
        # The resumed-from snapshot counts as this run's recovery base
        # (and must not be rewritten when the loop passes its superstep).
        manager._written.add(snapshot.superstep)
        if fault_plan is not None:
            fault_plan.reset()
        return engine._execute(
            snapshot.state, manager, fault_plan, RecoveryBookkeeping()
        )

    def _superstep_loop(
        self,
        state: _DictRunState,
        manager: CheckpointManager | None,
        plan: FaultPlan | None,
        bookkeeping: RecoveryBookkeeping,
    ) -> PregelResult:
        program = state.program
        master = state.master
        vertices = state.vertices
        workers = state.workers
        worker_of = state.worker_of
        run_stats = state.run_stats
        aggregators = state.aggregators
        aggregator_history = state.aggregator_history
        halt_reason = "converged"

        def save_checkpoint(superstep: int) -> None:
            if manager is None or not manager.due(superstep):
                return
            if manager.save_dict(superstep, state, self._engine_params()):
                bookkeeping.checkpoints_written += 1

        def quiescent() -> bool:
            # Standard Pregel termination: all vertices halted, no messages.
            any_active = any(not v.halted for v in vertices.values())
            return state.superstep > 0 and state.incoming.is_empty() and not any_active

        while True:
            superstep = state.superstep
            reason = superstep_preamble(
                superstep,
                self.max_supersteps,
                save_checkpoint,
                master,
                aggregators,
                quiescent,
            )
            if reason is not None:
                halt_reason = reason
                break

            incoming = state.incoming
            outgoing = MessageStore(self.combiner)
            superstep_stat = SuperstepStats(superstep=superstep)
            # Raw sends to nonexistent targets this superstep; counted at
            # send time so the dropped total is per-message even when an
            # eager combiner collapses the stored boxes.
            unknown_sends = [0]

            for worker in workers:
                if plan is not None and plan.crash_fires(superstep, worker.worker_id):
                    raise InjectedWorkerCrash(superstep, worker.worker_id)
                worker_stat = WorkerStats()
                # Giraph WorkerContext lifecycle: the shared store only
                # carries state within one superstep (see Worker docstring).
                worker.shared_store.clear()
                program.pre_superstep(superstep, worker.shared_store, aggregators)

                def on_send(target: int, _worker_id: int = worker.worker_id,
                            _stat: WorkerStats = worker_stat) -> None:
                    target_worker = worker_of.get(target, -1)
                    if target_worker == _worker_id:
                        _stat.local_messages_sent += 1
                    else:
                        _stat.remote_messages_sent += 1
                        if target_worker == -1:
                            unknown_sends[0] += 1

                def send(target: int, message: Any,
                         _on_send: Callable[[int], None] = on_send,
                         _store: MessageStore = outgoing) -> None:
                    _on_send(target)
                    _store.send(target, message)

                ctx = ComputeContext(
                    superstep=superstep,
                    num_vertices=len(vertices),
                    aggregators=aggregators,
                    send=send,
                    worker_store=worker.shared_store,
                    worker_id=worker.worker_id,
                    num_workers=self.num_workers,
                )

                for vertex_id in worker.vertex_ids:
                    vertex = vertices[vertex_id]
                    messages = incoming.messages_for(vertex_id)
                    if messages:
                        vertex.activate()
                    if vertex.halted:
                        continue
                    program.compute(vertex, messages, ctx)
                    worker_stat.vertices_computed += 1
                    worker_stat.edges_scanned += vertex.num_edges

                program.post_superstep(superstep, worker.shared_store, aggregators)
                superstep_stat.worker_stats.append(worker_stat)

            # on_send counted every send whose target is absent from
            # worker_of, so the common all-known superstep skips the
            # target-set scan entirely.
            if unknown_sends[0]:
                unknown_targets = [t for t in outgoing.targets() if t not in worker_of]
                if not self.drop_unknown_targets:
                    preview = sorted(unknown_targets)[:5]
                    raise PregelError(
                        f"messages sent to {len(unknown_targets)} nonexistent "
                        f"vertex id(s) during superstep {superstep} "
                        f"(e.g. {preview}); pass drop_unknown_targets=True "
                        "to drop them instead"
                    )
                outgoing.drop_targets(unknown_targets)
                run_stats.messages_dropped += unknown_sends[0]

            run_stats.superstep_stats.append(superstep_stat)
            record_aggregator_history(aggregators, aggregator_history)

            # The synchronous barrier: transient delivery faults retry
            # here (simulated backoff) and may escalate to a crash.
            if plan is not None:
                apply_delivery_faults(plan, superstep, bookkeeping)

            state.incoming = outgoing
            state.superstep = superstep + 1

        finalize_run_stats(run_stats, bookkeeping)
        return PregelResult(
            vertices=vertices,
            num_supersteps=state.superstep,
            stats=run_stats,
            aggregators=aggregators,
            aggregator_history=aggregator_history,
            halt_reason=halt_reason,
            master=master,
        )

    # ------------------------------------------------------------------
    def run_on_digraph(
        self,
        program: VertexProgram,
        graph: DiGraph,
        vertex_value: Callable[[int], Any] | None = None,
        edge_value: Callable[[int, int], Any] | None = None,
        master: MasterCompute | None = None,
    ) -> PregelResult:
        """Convenience wrapper: load a directed graph and run ``program``."""
        vertices = self.vertices_from_digraph(graph, vertex_value, edge_value)
        return self.run(program, vertices, master=master)

    def run_on_undirected(
        self,
        program: VertexProgram,
        graph: UndirectedGraph,
        vertex_value: Callable[[int], Any] | None = None,
        edge_value: Callable[[int, int, int], Any] | None = None,
        master: MasterCompute | None = None,
    ) -> PregelResult:
        """Convenience wrapper: load an undirected graph and run ``program``."""
        vertices = self.vertices_from_undirected(graph, vertex_value, edge_value)
        return self.run(program, vertices, master=master)
