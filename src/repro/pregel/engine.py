"""The simulated Pregel engine.

The engine executes a :class:`~repro.pregel.program.VertexProgram` over a
set of vertices placed on simulated workers, superstep by superstep, with
synchronous message delivery, aggregators, an optional master compute and
per-superstep cost accounting.

The semantics follow the Pregel paper (and Giraph's implementation of it):

* a vertex is *active* unless it has voted to halt; receiving a message
  re-activates it;
* messages sent in superstep *S* are delivered at the start of *S + 1*;
* aggregator values contributed during *S* are visible during *S + 1*;
* the computation ends when every vertex has halted and no messages are in
  flight, when the master requests a halt, or when ``max_supersteps`` is
  reached.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import PregelError
from repro.graph.csr import CSRGraph
from repro.graph.digraph import DiGraph
from repro.graph.undirected import UndirectedGraph
from repro.pregel.aggregators import AggregatorRegistry
from repro.pregel.cost_model import (
    ClusterCostModel,
    RunStats,
    SuperstepStats,
    WorkerStats,
)
from repro.pregel.master import MasterCompute
from repro.pregel.messages import MessageCombiner, MessageStore
from repro.pregel.program import ComputeContext, VertexProgram
from repro.pregel.vertex import Vertex
from repro.pregel.worker import PlacementFn, build_workers, hash_placement


@dataclass
class PregelResult:
    """Outcome of a Pregel run."""

    vertices: dict[int, Vertex]
    num_supersteps: int
    stats: RunStats
    aggregators: AggregatorRegistry
    aggregator_history: dict[str, list[Any]] = field(default_factory=dict)
    halt_reason: str = "converged"

    def vertex_values(self) -> dict[int, Any]:
        """Convenience mapping of vertex id to final vertex value."""
        return {vid: vertex.value for vid, vertex in self.vertices.items()}

    def simulated_time(self, model: ClusterCostModel) -> float:
        """Total simulated runtime under ``model``."""
        return self.stats.simulated_time(model)


class PregelEngine:
    """Single-process simulation of a Giraph cluster.

    Parameters
    ----------
    num_workers:
        Number of simulated workers.
    placement:
        Vertex placement function; defaults to hash placement, matching
        Giraph's default partitioning of vertices onto workers.
    cost_model:
        Cost coefficients used when reporting simulated times.
    combiner:
        Optional message combiner applied to all messages.
    max_supersteps:
        Safety bound on the number of supersteps.
    drop_unknown_targets:
        Messages addressed to vertex ids that do not exist in the graph
        raise :class:`~repro.errors.PregelError` by default (Giraph would
        resolve or create the target vertex; silently losing the message is
        a routing bug).  Set this to ``True`` to drop such messages instead;
        the number dropped is surfaced as ``RunStats.messages_dropped``.
    """

    def __init__(
        self,
        num_workers: int = 4,
        placement: PlacementFn | None = None,
        cost_model: ClusterCostModel | None = None,
        combiner: MessageCombiner | None = None,
        max_supersteps: int = 500,
        drop_unknown_targets: bool = False,
    ) -> None:
        if num_workers <= 0:
            raise PregelError("num_workers must be positive")
        if max_supersteps <= 0:
            raise PregelError("max_supersteps must be positive")
        self.num_workers = num_workers
        self.placement = placement if placement is not None else hash_placement(num_workers)
        self.cost_model = cost_model if cost_model is not None else ClusterCostModel()
        self.combiner = combiner
        self.max_supersteps = max_supersteps
        self.drop_unknown_targets = drop_unknown_targets

    # ------------------------------------------------------------------
    # graph loading
    # ------------------------------------------------------------------
    @staticmethod
    def vertices_from_digraph(
        graph: DiGraph,
        vertex_value: Callable[[int], Any] | None = None,
        edge_value: Callable[[int, int], Any] | None = None,
    ) -> dict[int, Vertex]:
        """Build Pregel vertices from a directed graph.

        Each vertex gets one outgoing edge per directed edge, matching the
        Giraph data model where a vertex knows only its out-edges.
        """
        vertices: dict[int, Vertex] = {}
        for vertex_id in graph.vertices():
            value = vertex_value(vertex_id) if vertex_value else None
            vertices[vertex_id] = Vertex(vertex_id, value=value)
        for source, target in graph.edges():
            value = edge_value(source, target) if edge_value else 1
            vertices[source].add_edge(target, value)
        return vertices

    @staticmethod
    def vertices_from_undirected(
        graph: UndirectedGraph,
        vertex_value: Callable[[int], Any] | None = None,
        edge_value: Callable[[int, int, int], Any] | None = None,
    ) -> dict[int, Vertex]:
        """Build Pregel vertices from a weighted undirected graph.

        Every undirected edge materializes as two directed edges (one per
        endpoint); by default the edge value is the undirected weight.
        """
        vertices: dict[int, Vertex] = {}
        for vertex_id in graph.vertices():
            value = vertex_value(vertex_id) if vertex_value else None
            vertices[vertex_id] = Vertex(vertex_id, value=value)
        for u, v, weight in graph.edges():
            value_uv = edge_value(u, v, weight) if edge_value else weight
            value_vu = edge_value(v, u, weight) if edge_value else weight
            vertices[u].add_edge(v, value_uv)
            vertices[v].add_edge(u, value_vu)
        return vertices

    @staticmethod
    def vertices_from_csr(csr: "CSRGraph") -> dict[int, Vertex]:
        """Build Pregel vertices from a :class:`~repro.graph.csr.CSRGraph`.

        Vertices are keyed by their *original* ids, iterated in dense-id
        order, and each adjacency slot becomes one outgoing edge valued with
        its CSR weight — the exact layout the vectorized engine uses, which
        makes runs over the two representations comparable slot for slot.
        Parallel adjacency entries collapse (``Vertex.edges`` is a dict).
        """
        vertices: dict[int, Vertex] = {}
        indptr = csr.indptr
        indices = csr.indices.tolist()
        weights = csr.weights.tolist()
        original = csr.original_ids.tolist()
        for dense in range(csr.num_vertices):
            start, end = int(indptr[dense]), int(indptr[dense + 1])
            vertex = Vertex(original[dense])
            for slot in range(start, end):
                vertex.add_edge(original[indices[slot]], weights[slot])
            vertices[original[dense]] = vertex
        return vertices

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(
        self,
        program: VertexProgram,
        vertices: dict[int, Vertex],
        master: MasterCompute | None = None,
    ) -> PregelResult:
        """Execute ``program`` over ``vertices`` until convergence.

        The ``vertices`` dictionary is mutated in place (vertex values and
        edge values evolve as the program runs) and is also returned inside
        the :class:`PregelResult`.
        """
        aggregators = AggregatorRegistry()
        program.register_aggregators(aggregators)
        if master is not None:
            master.initialize(aggregators)

        workers, worker_of = build_workers(vertices.keys(), self.num_workers, self.placement)
        incoming = MessageStore(self.combiner)
        run_stats = RunStats()
        aggregator_history: dict[str, list[Any]] = {name: [] for name in aggregators.names()}
        halt_reason = "converged"

        superstep = 0
        while True:
            if superstep >= self.max_supersteps:
                halt_reason = "max_supersteps"
                break

            if master is not None:
                master.compute(superstep, aggregators)
                if master.halt_requested:
                    halt_reason = "master_halt"
                    break

            # Standard Pregel termination: all vertices halted, no messages.
            any_active = any(not v.halted for v in vertices.values())
            if superstep > 0 and incoming.is_empty() and not any_active:
                halt_reason = "converged"
                break

            outgoing = MessageStore(self.combiner)
            superstep_stat = SuperstepStats(superstep=superstep)
            # Raw sends to nonexistent targets this superstep; counted at
            # send time so the dropped total is per-message even when an
            # eager combiner collapses the stored boxes.
            unknown_sends = [0]

            for worker in workers:
                worker_stat = WorkerStats()
                # Giraph WorkerContext lifecycle: the shared store only
                # carries state within one superstep (see Worker docstring).
                worker.shared_store.clear()
                program.pre_superstep(superstep, worker.shared_store, aggregators)

                def on_send(target: int, _worker_id: int = worker.worker_id,
                            _stat: WorkerStats = worker_stat) -> None:
                    target_worker = worker_of.get(target, -1)
                    if target_worker == _worker_id:
                        _stat.local_messages_sent += 1
                    else:
                        _stat.remote_messages_sent += 1
                        if target_worker == -1:
                            unknown_sends[0] += 1

                def send(target: int, message: Any,
                         _on_send: Callable[[int], None] = on_send,
                         _store: MessageStore = outgoing) -> None:
                    _on_send(target)
                    _store.send(target, message)

                ctx = ComputeContext(
                    superstep=superstep,
                    num_vertices=len(vertices),
                    aggregators=aggregators,
                    send=send,
                    worker_store=worker.shared_store,
                    worker_id=worker.worker_id,
                    num_workers=self.num_workers,
                )

                for vertex_id in worker.vertex_ids:
                    vertex = vertices[vertex_id]
                    messages = incoming.messages_for(vertex_id)
                    if messages:
                        vertex.activate()
                    if vertex.halted:
                        continue
                    program.compute(vertex, messages, ctx)
                    worker_stat.vertices_computed += 1
                    worker_stat.edges_scanned += vertex.num_edges

                program.post_superstep(superstep, worker.shared_store, aggregators)
                superstep_stat.worker_stats.append(worker_stat)

            # on_send counted every send whose target is absent from
            # worker_of, so the common all-known superstep skips the
            # target-set scan entirely.
            if unknown_sends[0]:
                unknown_targets = [t for t in outgoing.targets() if t not in worker_of]
                if not self.drop_unknown_targets:
                    preview = sorted(unknown_targets)[:5]
                    raise PregelError(
                        f"messages sent to {len(unknown_targets)} nonexistent "
                        f"vertex id(s) during superstep {superstep} "
                        f"(e.g. {preview}); pass drop_unknown_targets=True "
                        "to drop them instead"
                    )
                outgoing.drop_targets(unknown_targets)
                run_stats.messages_dropped += unknown_sends[0]

            run_stats.superstep_stats.append(superstep_stat)
            aggregators.advance_superstep()
            for name in aggregators.names():
                aggregator_history.setdefault(name, []).append(aggregators.value(name))

            incoming = outgoing
            superstep += 1

        return PregelResult(
            vertices=vertices,
            num_supersteps=superstep,
            stats=run_stats,
            aggregators=aggregators,
            aggregator_history=aggregator_history,
            halt_reason=halt_reason,
        )

    # ------------------------------------------------------------------
    def run_on_digraph(
        self,
        program: VertexProgram,
        graph: DiGraph,
        vertex_value: Callable[[int], Any] | None = None,
        edge_value: Callable[[int, int], Any] | None = None,
        master: MasterCompute | None = None,
    ) -> PregelResult:
        """Convenience wrapper: load a directed graph and run ``program``."""
        vertices = self.vertices_from_digraph(graph, vertex_value, edge_value)
        return self.run(program, vertices, master=master)

    def run_on_undirected(
        self,
        program: VertexProgram,
        graph: UndirectedGraph,
        vertex_value: Callable[[int], Any] | None = None,
        edge_value: Callable[[int, int, int], Any] | None = None,
        master: MasterCompute | None = None,
    ) -> PregelResult:
        """Convenience wrapper: load an undirected graph and run ``program``."""
        vertices = self.vertices_from_undirected(graph, vertex_value, edge_value)
        return self.run(program, vertices, master=master)
