"""Coordinator of the array-native, sharded Pregel runtime.

The vector runtime executes *batch* vertex programs
(:class:`~repro.pregel.batch.BatchVertexProgram`) over flat NumPy arrays
with the same observable semantics as the dictionary engine
(:mod:`repro.pregel.engine`): final values, superstep counts, halt
reasons, aggregator histories and per-worker statistics are bit-exact,
not approximate (``tests/test_vector_engine.py`` pins the contract).

This module is the *control plane* only: graph sharding, the outer
superstep protocol (checkpoints, master compute, quiescence, fault
injection — shared with the dictionary engine via
:mod:`repro.pregel.run_loop`) and result assembly.  The per-superstep
data plane is delegated to a pluggable
:class:`~repro.pregel.executor.SuperstepExecutor`:

* ``parallel=1`` (default) — :class:`~repro.pregel.serial_executor.SerialExecutor`,
  the in-process reference extracted from the former monolithic engine;
* ``parallel=N`` — :class:`~repro.pregel.shm_executor.SharedMemoryExecutor`,
  which hosts contiguous shard groups in ``N`` persistent OS processes
  over shared-memory arrays, byte-identical to the serial backend.

``repro.pregel.vector_engine`` remains the import location for existing
code (it re-exports everything from the split modules).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.errors import PregelError
from repro.faults import FaultPlan, InjectedWorkerCrash
from repro.graph.csr import CSRGraph, build_csr_arrays
from repro.graph.digraph import DiGraph
from repro.graph.undirected import UndirectedGraph
from repro.pregel.aggregators import AggregatorRegistry
from repro.pregel.batch import (
    BatchVertexProgram,
    DeliveredMessages,
    ShardedGraph,
    _dense_ids,
    _neutral_payload,
)
from repro.pregel.checkpoint import (
    VECTOR_KIND,
    CheckpointManager,
    RecoveryBookkeeping,
    Snapshot,
    apply_delivery_faults,
    validate_fault_tolerance_args as _validate_fault_tolerance_args,
)
from repro.pregel.cost_model import ClusterCostModel, RunStats
from repro.pregel.executor import SuperstepExecutor
from repro.pregel.master import MasterCompute
from repro.pregel.run_loop import (
    finalize_run_stats,
    record_aggregator_history,
    run_with_recovery,
    superstep_preamble,
)
from repro.pregel.serial_executor import SerialExecutor
from repro.pregel.shm_executor import SharedMemoryExecutor
from repro.pregel.worker import PlacementFn, hash_placement


@dataclass
class _VectorRunState:
    """Everything the vector engine needs to continue a run.

    The checkpoint counterpart of ``engine._DictRunState``: the dynamic
    arrays (vertex values, halted mask, combined in-flight messages) plus
    the object state (program, master, aggregators and history, run
    statistics, worker stores).  The static :class:`ShardedGraph` is
    *not* here — it never changes during a run, so snapshots store its
    arrays once per checkpoint directory (``shard.npz``) instead of once
    per snapshot.
    """

    program: BatchVertexProgram
    master: MasterCompute | None
    values: np.ndarray
    halted: np.ndarray
    incoming: DeliveredMessages
    run_stats: RunStats
    aggregators: AggregatorRegistry
    aggregator_history: dict[str, list[Any]]
    worker_stores: list[dict[str, Any]]
    superstep: int = 0


@dataclass
class VectorPregelResult:
    """Outcome of a vector-engine run (mirrors :class:`PregelResult`).

    As with the dictionary engine, a crash recovery restores the run from
    a checkpoint: the program/master objects the caller passed in may end
    up stale copies, so final state must be read from the result
    (``values``, ``master``), never from the inputs.
    """

    values: np.ndarray
    original_ids: np.ndarray
    num_supersteps: int
    stats: RunStats
    aggregators: AggregatorRegistry
    aggregator_history: dict[str, list[Any]]
    halt_reason: str = "converged"
    #: The master compute the run actually finished with (``None`` when
    #: the run had no master); after a recovery, the restored instance.
    master: MasterCompute | None = None

    def vertex_values(self) -> dict[int, Any]:
        """Mapping of original vertex id to final value (as floats)."""
        return dict(zip(self.original_ids.tolist(), self.values.tolist()))

    def simulated_time(self, model: ClusterCostModel) -> float:
        """Total simulated runtime under ``model``."""
        return self.stats.simulated_time(model)


class VectorPregelEngine:
    """Sharded, array-native simulation of a Giraph cluster.

    Accepts the same placement functions, cost models and master computes
    as :class:`~repro.pregel.engine.PregelEngine` and produces the same
    statistics; only the program interface differs
    (:class:`BatchVertexProgram` instead of per-vertex ``compute``).

    ``parallel`` selects the superstep executor: ``1`` runs the serial
    in-process reference, ``N > 1`` runs ``N`` shard-group host
    processes over shared memory with byte-identical results.
    """

    def __init__(
        self,
        num_workers: int = 4,
        placement: PlacementFn | None = None,
        cost_model: ClusterCostModel | None = None,
        max_supersteps: int = 500,
        drop_unknown_targets: bool = False,
        checkpoint_interval: int | None = None,
        checkpoint_dir: str | os.PathLike | None = None,
        fault_plan: FaultPlan | None = None,
        parallel: int = 1,
    ) -> None:
        if num_workers <= 0:
            raise PregelError("num_workers must be positive")
        if max_supersteps <= 0:
            raise PregelError("max_supersteps must be positive")
        if parallel < 1:
            raise PregelError("parallel must be positive")
        _validate_fault_tolerance_args(checkpoint_interval, checkpoint_dir, fault_plan)
        self.num_workers = num_workers
        self.placement = placement if placement is not None else hash_placement(num_workers)
        self.cost_model = cost_model if cost_model is not None else ClusterCostModel()
        self.max_supersteps = max_supersteps
        self.drop_unknown_targets = drop_unknown_targets
        self.checkpoint_interval = checkpoint_interval
        self.checkpoint_dir = checkpoint_dir
        self.fault_plan = fault_plan
        self.parallel = parallel

    # ------------------------------------------------------------------
    # graph loading
    # ------------------------------------------------------------------
    def shard_graph(
        self,
        indptr: np.ndarray,
        targets: np.ndarray,
        weights: np.ndarray,
        original_ids: np.ndarray,
    ) -> ShardedGraph:
        """Place every vertex and build the sharded adjacency."""
        original_ids = np.asarray(original_ids, dtype=np.int64)
        if original_ids.size and int(original_ids.min()) < 0:
            raise PregelError("vertex ids must be non-negative")
        worker_of = np.fromiter(
            (self.placement(v) for v in original_ids.tolist()),
            dtype=np.int64,
            count=original_ids.shape[0],
        )
        if worker_of.size and not (
            0 <= int(worker_of.min()) and int(worker_of.max()) < self.num_workers
        ):
            raise PregelError(
                f"placement returned a worker outside [0, {self.num_workers})"
            )
        return ShardedGraph(
            indptr, targets, weights, original_ids, worker_of, self.num_workers
        )

    def shard_csr(self, csr: CSRGraph) -> ShardedGraph:
        """Shard a :class:`CSRGraph` (undirected: slots are out-edges)."""
        return self.shard_graph(csr.indptr, csr.indices, csr.weights, csr.original_ids)

    def shard_digraph(self, graph: DiGraph) -> ShardedGraph:
        """Shard a directed graph; every directed edge is one out-edge.

        Vertex and edge iteration order matches
        :meth:`PregelEngine.vertices_from_digraph`, so runs over the two
        representations are comparable slot for slot.  Edge weights
        default to 1, like the dictionary loader.  The only per-edge
        Python work is draining the edge iterator once; densification and
        CSR construction run vectorized.
        """
        ids = np.fromiter(graph.vertices(), dtype=np.int64, count=graph.num_vertices)
        edge_rows = [(source, target) for source, target in graph.edges()]
        if edge_rows:
            pairs = np.asarray(edge_rows, dtype=np.int64)
        else:
            pairs = np.empty((0, 2), dtype=np.int64)
        sources = _dense_ids(ids, pairs[:, 0])
        targets = _dense_ids(ids, pairs[:, 1])
        weights = np.ones(sources.shape[0], dtype=np.int64)
        return self._shard_half_edges(ids, sources, targets, weights)

    def shard_undirected(self, graph: UndirectedGraph) -> ShardedGraph:
        """Shard an undirected graph; every edge becomes two out-edges.

        The two directions are interleaved in edge-iteration order,
        matching the insertion order of
        :meth:`PregelEngine.vertices_from_undirected`; as with the
        directed loader, only the edge-iterator drain is per-edge Python.
        """
        ids = np.fromiter(graph.vertices(), dtype=np.int64, count=graph.num_vertices)
        edge_rows = [(u, v, w) for u, v, w in graph.edges()]
        if edge_rows:
            triples = np.asarray(edge_rows, dtype=np.int64)
        else:
            triples = np.empty((0, 3), dtype=np.int64)
        u = _dense_ids(ids, triples[:, 0])
        v = _dense_ids(ids, triples[:, 1])
        num_slots = 2 * u.shape[0]
        sources = np.empty(num_slots, dtype=np.int64)
        targets = np.empty(num_slots, dtype=np.int64)
        weights = np.empty(num_slots, dtype=np.int64)
        sources[0::2], sources[1::2] = u, v
        targets[0::2], targets[1::2] = v, u
        weights[0::2] = weights[1::2] = triples[:, 2]
        return self._shard_half_edges(ids, sources, targets, weights)

    def _shard_half_edges(
        self,
        ids: np.ndarray,
        sources: np.ndarray,
        targets: np.ndarray,
        weights: np.ndarray,
    ) -> ShardedGraph:
        # build_csr_arrays sorts stably by source, which keeps the
        # per-vertex slot order identical to the dictionary engine's
        # edge-insertion order.
        indptr, sorted_targets, sorted_weights = build_csr_arrays(
            sources, targets, weights, ids.shape[0]
        )
        return self.shard_graph(indptr, sorted_targets, sorted_weights, ids)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(
        self,
        program: BatchVertexProgram,
        shard: ShardedGraph,
        master: MasterCompute | None = None,
    ) -> VectorPregelResult:
        """Execute ``program`` over ``shard`` until convergence.

        When checkpointing is enabled and a fault recovery occurred, the
        run continues on state restored from a snapshot — read final
        state from the returned :class:`VectorPregelResult` (``values``,
        ``master``), not from the ``program``/``master`` arguments.
        """
        combine = program.combine
        if combine not in ("sum", "min"):
            raise PregelError(f"unsupported combine mode {combine!r}")
        num_vertices = shard.num_vertices

        aggregators = AggregatorRegistry()
        program.register_aggregators(aggregators)
        if master is not None:
            master.initialize(aggregators)

        state = _VectorRunState(
            program=program,
            master=master,
            values=np.zeros(num_vertices, dtype=np.float64),
            halted=np.zeros(num_vertices, dtype=bool),
            incoming=DeliveredMessages(
                np.zeros(num_vertices, dtype=bool),
                _neutral_payload(combine, num_vertices),
                0,
            ),
            run_stats=RunStats(),
            aggregators=aggregators,
            aggregator_history={name: [] for name in aggregators.names()},
            worker_stores=[{} for _ in range(self.num_workers)],
        )
        manager = None
        if self.checkpoint_interval is not None:
            manager = CheckpointManager(
                self.checkpoint_dir, self.checkpoint_interval, VECTOR_KIND
            )
        if self.fault_plan is not None:
            self.fault_plan.reset()
        return self._execute(
            state, shard, manager, self.fault_plan, RecoveryBookkeeping()
        )

    def _make_executor(self) -> SuperstepExecutor:
        """The superstep executor selected by ``parallel``."""
        if self.parallel <= 1:
            return SerialExecutor(self)
        return SharedMemoryExecutor(self, self.parallel)

    def _execute(
        self,
        state: _VectorRunState,
        shard: ShardedGraph,
        manager: CheckpointManager | None,
        plan: FaultPlan | None,
        bookkeeping: RecoveryBookkeeping,
    ) -> VectorPregelResult:
        """Run to completion, recovering injected crashes from snapshots.

        Mirrors ``PregelEngine._execute``: a crash rolls back to the
        latest snapshot written this run; an exhausted ``max_recoveries``
        budget aborts with :class:`~repro.errors.RecoveryAbortedError`,
        leaving the checkpoint directory ready for
        :func:`~repro.pregel.checkpoint.resume_from_checkpoint`.  The
        executor is closed on every exit path (normal halt, abort,
        KeyboardInterrupt), releasing worker processes and shared
        memory.
        """
        executor = self._make_executor()
        try:
            executor.start(shard, state)

            def restore() -> _VectorRunState:
                snapshot = manager.load_latest(this_run_only=True)
                restored = self._state_from_snapshot(snapshot)
                executor.reset(restored)
                return restored

            def loop(current: _VectorRunState) -> VectorPregelResult:
                return self._superstep_loop(
                    current, shard, manager, plan, bookkeeping, executor
                )

            return run_with_recovery(loop, state, restore, plan, bookkeeping)
        finally:
            executor.close()

    def _engine_params(self) -> dict[str, Any]:
        """Constructor arguments a snapshot needs to rebuild this engine.

        As in the dictionary engine, the placement function is excluded:
        the shard's ``worker_of`` array already encodes the placement.
        """
        return {
            "num_workers": self.num_workers,
            "cost_model": self.cost_model,
            "max_supersteps": self.max_supersteps,
            "drop_unknown_targets": self.drop_unknown_targets,
            "parallel": self.parallel,
        }

    @staticmethod
    def _state_from_snapshot(snapshot: Snapshot) -> _VectorRunState:
        """Rebuild a :class:`_VectorRunState` from a loaded snapshot."""
        arrays = snapshot.arrays
        objects = snapshot.objects
        return _VectorRunState(
            program=objects["program"],
            master=objects["master"],
            values=arrays["values"],
            halted=arrays["halted"],
            incoming=DeliveredMessages(
                arrays["msg_has"], arrays["msg_payload"], int(objects["msg_count"])
            ),
            run_stats=objects["run_stats"],
            aggregators=objects["aggregators"],
            aggregator_history=objects["aggregator_history"],
            worker_stores=objects["worker_stores"],
            superstep=snapshot.superstep,
        )

    @classmethod
    def _resume_from_snapshot(
        cls,
        snapshot: Snapshot,
        checkpoint_dir: str | os.PathLike,
        fault_plan: FaultPlan | None = None,
    ) -> VectorPregelResult:
        """Rebuild engine and shard from ``checkpoint_dir`` and finish.

        The static CSR arrays come from the directory's ``shard.npz``;
        :class:`ShardedGraph` recomputes its canonical orderings from
        them deterministically (stable argsorts), so a resumed run sends
        and aggregates in exactly the original order.
        """
        params = snapshot.engine_params
        engine = cls(
            num_workers=params["num_workers"],
            cost_model=params["cost_model"],
            max_supersteps=params["max_supersteps"],
            drop_unknown_targets=params["drop_unknown_targets"],
            checkpoint_interval=snapshot.interval,
            checkpoint_dir=checkpoint_dir,
            fault_plan=fault_plan,
            parallel=params.get("parallel", 1),
        )
        manager = CheckpointManager(checkpoint_dir, snapshot.interval, VECTOR_KIND)
        manager._written.add(snapshot.superstep)
        shard_arrays = manager.load_shard_arrays()
        shard = ShardedGraph(
            shard_arrays["indptr"],
            shard_arrays["targets"],
            shard_arrays["weights"],
            shard_arrays["original_ids"],
            shard_arrays["worker_of"],
            int(shard_arrays["num_workers"][0]),
        )
        if fault_plan is not None:
            fault_plan.reset()
        state = cls._state_from_snapshot(snapshot)
        return engine._execute(state, shard, manager, fault_plan, RecoveryBookkeeping())

    @staticmethod
    def _shard_arrays(shard: ShardedGraph) -> dict[str, np.ndarray]:
        """The static shard arrays persisted once per checkpoint dir."""
        return {
            "indptr": shard.indptr,
            "targets": shard.adj_targets,
            "weights": shard.adj_weights,
            "original_ids": shard.original_ids,
            "worker_of": shard.worker_of,
            "num_workers": np.array([shard.num_workers], dtype=np.int64),
        }

    def _superstep_loop(
        self,
        state: _VectorRunState,
        shard: ShardedGraph,
        manager: CheckpointManager | None,
        plan: FaultPlan | None,
        bookkeeping: RecoveryBookkeeping,
        executor: SuperstepExecutor,
    ) -> VectorPregelResult:
        program = state.program
        master = state.master
        worker_stores = state.worker_stores
        run_stats = state.run_stats
        aggregators = state.aggregators
        aggregator_history = state.aggregator_history
        halt_reason = "converged"

        def save_checkpoint(superstep: int) -> None:
            # Superstep-boundary checkpoint, before the master computes
            # (mirrors the dictionary engine; see its _superstep_loop).
            if manager is None or not manager.due(superstep):
                return
            arrays = {
                "values": state.values,
                "halted": state.halted,
                "msg_has": state.incoming.has_message,
                "msg_payload": state.incoming.payload,
            }
            objects = {
                "program": executor.checkpoint_program(state),
                "master": master,
                "msg_count": state.incoming.count,
                "run_stats": run_stats,
                "aggregators": aggregators,
                "aggregator_history": aggregator_history,
                "worker_stores": worker_stores,
            }
            if manager.save_vector(
                superstep,
                arrays,
                objects,
                self._engine_params(),
                self._shard_arrays(shard),
            ):
                bookkeeping.checkpoints_written += 1

        def quiescent() -> bool:
            any_active = bool((~state.halted).any())
            return state.superstep > 0 and state.incoming.count == 0 and not any_active

        while True:
            superstep = state.superstep
            reason = superstep_preamble(
                superstep,
                self.max_supersteps,
                save_checkpoint,
                master,
                aggregators,
                quiescent,
            )
            if reason is not None:
                halt_reason = reason
                break

            # Probe the crash plan in worker order before the batch
            # compute: the batch is one barrier, so a crashing worker
            # takes the whole superstep down, but the budget consumption
            # order matches the dictionary engine's per-worker probes.
            # Under the shared-memory executor the crash takes down the
            # real host process of the simulated worker first.
            if plan is not None:
                for worker in range(self.num_workers):
                    if plan.crash_fires(superstep, worker):
                        executor.kill_worker(worker)
                        raise InjectedWorkerCrash(superstep, worker)

            for store in worker_stores:
                store.clear()
                program.pre_superstep(superstep, store, aggregators)

            outcome = executor.compute(state, superstep, run_stats)

            for store in worker_stores:
                program.post_superstep(superstep, store, aggregators)

            record_aggregator_history(aggregators, aggregator_history)

            delivered = executor.deliver(superstep, outcome, state, run_stats)
            # The synchronous barrier: transient delivery faults retry
            # here (simulated backoff) and may escalate to a crash.
            if plan is not None:
                apply_delivery_faults(plan, superstep, bookkeeping)

            executor.commit(state, outcome, delivered)
            state.superstep = superstep + 1
            # Drop the loop's own references to executor-owned buffers:
            # an injected crash next iteration propagates with this frame
            # in its traceback, and stale views must not pin the
            # shared-memory executor's segments past close().
            del outcome, delivered

        finalize_run_stats(run_stats, bookkeeping)
        return VectorPregelResult(
            values=executor.export_values(state),
            original_ids=shard.original_ids,
            num_supersteps=state.superstep,
            stats=run_stats,
            aggregators=aggregators,
            aggregator_history=aggregator_history,
            halt_reason=halt_reason,
            master=master,
        )

    # ------------------------------------------------------------------
    def run_on_csr(
        self,
        program: BatchVertexProgram,
        csr: CSRGraph,
        master: MasterCompute | None = None,
    ) -> VectorPregelResult:
        """Convenience wrapper: shard a CSR graph and run ``program``."""
        return self.run(program, self.shard_csr(csr), master=master)

    def run_on_digraph(
        self,
        program: BatchVertexProgram,
        graph: DiGraph,
        master: MasterCompute | None = None,
    ) -> VectorPregelResult:
        """Convenience wrapper: shard a directed graph and run ``program``."""
        return self.run(program, self.shard_digraph(graph), master=master)

    def run_on_undirected(
        self,
        program: BatchVertexProgram,
        graph: UndirectedGraph,
        master: MasterCompute | None = None,
    ) -> VectorPregelResult:
        """Convenience wrapper: shard an undirected graph and run ``program``."""
        return self.run(program, self.shard_undirected(graph), master=master)
