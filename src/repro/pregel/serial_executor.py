"""In-process superstep executor (the bit-exact reference backend).

This is the data plane of the former monolithic ``VectorPregelEngine``,
extracted by code motion: one :class:`~repro.pregel.batch.BatchComputeContext`
over the full shard, statistics and delivery as single whole-graph
bincount passes.  Every numeric code path is unchanged, so runs through
this executor are byte-identical to the pre-split engine — and serve as
the reference the shared-memory backend is tested against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.errors import PregelError
from repro.pregel.batch import (
    BatchComputeContext,
    DeliveredMessages,
    Outbox,
    ShardedGraph,
)
from repro.pregel.cost_model import RunStats
from repro.pregel.executor import (
    SuperstepExecutor,
    build_superstep_stats,
    combine_messages,
    superstep_stats_arrays,
)


@dataclass
class SerialStepOutcome:
    """Arrays produced by one serial superstep, pending commit."""

    values: np.ndarray
    halted: np.ndarray
    outbox: Outbox
    unknown: np.ndarray


class SerialExecutor(SuperstepExecutor):
    """Single-process executor over the full shard."""

    def __init__(self, engine: Any) -> None:
        self._engine = engine
        self._shard: ShardedGraph | None = None

    def start(self, shard: ShardedGraph, state: Any) -> None:
        """Remember the shard; the serial backend needs no other setup."""
        self._shard = shard

    def compute(self, state: Any, superstep: int, run_stats: RunStats) -> SerialStepOutcome:
        """Run the batch program over the full shard for one superstep."""
        shard = self._shard
        program = state.program
        incoming = state.incoming
        # A message re-activates its target; already-active vertices
        # compute regardless.
        computed = incoming.has_message | ~state.halted

        ctx = BatchComputeContext(
            superstep, shard, state.values, computed, state.aggregators
        )
        step = program.compute_batch(shard, incoming, ctx)
        values = np.asarray(step.values, dtype=np.float64)
        votes = np.asarray(step.votes, dtype=bool)
        halted = np.where(computed, votes, state.halted)

        # Unknown-target mask, computed once and shared by the
        # statistics and delivery passes.
        outbox = step.outbox
        unknown = (outbox.targets < 0) | (outbox.targets >= shard.num_vertices)

        run_stats.superstep_stats.append(
            build_superstep_stats(
                superstep,
                self._engine.num_workers,
                *superstep_stats_arrays(
                    shard,
                    self._engine.num_workers,
                    computed,
                    outbox,
                    unknown,
                    step.edges_scanned,
                ),
            )
        )
        return SerialStepOutcome(values, halted, outbox, unknown)

    def deliver(
        self,
        superstep: int,
        outcome: SerialStepOutcome,
        state: Any,
        run_stats: RunStats,
    ) -> DeliveredMessages:
        """Combine the outbox per target vertex for the next superstep."""
        shard = self._shard
        targets = outcome.outbox.targets
        payloads = outcome.outbox.payloads
        unknown = outcome.unknown
        if unknown.any():
            if not self._engine.drop_unknown_targets:
                bad_ids = np.unique(targets[unknown])
                raise PregelError(
                    f"messages sent to {bad_ids.shape[0]} nonexistent "
                    f"vertex id(s) during superstep {superstep} "
                    f"(e.g. {bad_ids[:5].tolist()}); pass "
                    "drop_unknown_targets=True to drop them instead"
                )
            run_stats.messages_dropped += int(unknown.sum())
            targets = targets[~unknown]
            payloads = payloads[~unknown]
        has_message, payload = combine_messages(
            targets, payloads, shard.num_vertices, state.program.combine
        )
        return DeliveredMessages(has_message, payload, int(targets.size))

    def commit(
        self, state: Any, outcome: SerialStepOutcome, delivered: DeliveredMessages
    ) -> None:
        """Publish the superstep's arrays into the run state."""
        state.values = outcome.values
        state.halted = outcome.halted
        state.incoming = delivered
