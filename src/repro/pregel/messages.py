"""Message routing and combiners for the simulated Pregel engine.

Messages sent during superstep *S* are delivered at the beginning of
superstep *S + 1*, exactly as in Pregel.  A :class:`MessageCombiner` can
be installed to merge messages addressed to the same vertex before
delivery, which is how Giraph reduces network traffic for commutative
reductions (sum, min, ...).
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Iterable
from typing import Any, Callable


class MessageCombiner:
    """Combine two messages addressed to the same target vertex.

    Subclasses implement :meth:`combine`.  The engine applies the combiner
    eagerly as messages are enqueued, so at most one message per target is
    stored when a combiner is installed.
    """

    def combine(self, first: Any, second: Any) -> Any:
        """Return the combination of two messages."""
        raise NotImplementedError


class SumCombiner(MessageCombiner):
    """Adds messages together (numeric messages)."""

    def combine(self, first: Any, second: Any) -> Any:
        """Add the two messages."""
        return first + second


class MinCombiner(MessageCombiner):
    """Keeps the minimum message (numeric messages)."""

    def combine(self, first: Any, second: Any) -> Any:
        """Keep the smaller of the two messages."""
        return first if first <= second else second


class MessageStore:
    """Holds messages for the *next* superstep, keyed by target vertex."""

    def __init__(self, combiner: MessageCombiner | None = None) -> None:
        self._combiner = combiner
        self._messages: dict[int, list[Any]] = defaultdict(list)
        self.messages_enqueued = 0

    def send(self, target: int, message: Any) -> None:
        """Enqueue a message for delivery in the next superstep."""
        self.messages_enqueued += 1
        box = self._messages[target]
        if self._combiner is not None and box:
            box[0] = self._combiner.combine(box[0], message)
        else:
            box.append(message)

    def targets(self) -> set[int]:
        """Vertices that will receive at least one message."""
        return set(self._messages)

    def drop_targets(self, targets: Iterable[int]) -> None:
        """Discard all messages addressed to ``targets``.

        Used by the engine to drop messages sent to vertex ids that do not
        exist in the graph (it counts the dropped sends itself, at send
        time, so the count stays per-message even with a combiner).
        """
        for target in targets:
            self._messages.pop(target, None)

    def messages_for(self, target: int) -> list[Any]:
        """Messages addressed to ``target`` (empty list when none)."""
        return self._messages.get(target, [])

    def __len__(self) -> int:
        return sum(len(box) for box in self._messages.values())

    def is_empty(self) -> bool:
        """Whether no vertex has pending messages."""
        return not self._messages


def make_message_router(
    store: MessageStore, on_send: Callable[[int], None] | None = None
) -> Callable[[int, Any], None]:
    """Return a ``send(target, message)`` callable bound to a store.

    ``on_send`` is invoked with the target vertex id for every message,
    which the engine uses to attribute local/remote traffic to workers.
    """

    def send(target: int, message: Any) -> None:
        """Append (or eagerly combine) a message for ``target``."""
        if on_send is not None:
            on_send(target)
        store.send(target, message)

    return send
