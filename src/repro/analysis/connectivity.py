"""B-connectivity of partition (load-exchange) graphs (Definition 1).

The convergence result of Proposition 1 requires that, over every window
of ``B`` consecutive iterations, the union of the partition graphs (one
node per partition, an edge ``(i, j)`` whenever load moved from ``i`` to
``j``) is strongly connected — i.e. every partition periodically exchanges
load with every other, directly or transitively.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence


def _reachable(num_nodes: int, adjacency: dict[int, set[int]], start: int) -> set[int]:
    seen = {start}
    stack = [start]
    while stack:
        node = stack.pop()
        for neighbour in adjacency.get(node, ()):  # pragma: no branch
            if neighbour not in seen:
                seen.add(neighbour)
                stack.append(neighbour)
    return seen


def is_strongly_connected(num_nodes: int, edges: Iterable[tuple[int, int]]) -> bool:
    """Whether the directed graph on ``0..num_nodes-1`` is strongly connected."""
    if num_nodes <= 1:
        return True
    forward: dict[int, set[int]] = {}
    backward: dict[int, set[int]] = {}
    for source, target in edges:
        forward.setdefault(source, set()).add(target)
        backward.setdefault(target, set()).add(source)
    return (
        len(_reachable(num_nodes, forward, 0)) == num_nodes
        and len(_reachable(num_nodes, backward, 0)) == num_nodes
    )


def is_b_connected(
    num_partitions: int,
    partition_graphs: Sequence[Iterable[tuple[int, int]]],
    window: int,
) -> bool:
    """Check Definition 1 over a recorded sequence of partition graphs.

    ``partition_graphs[t]`` holds the directed load-exchange edges of
    iteration ``t``.  The sequence is B-connected (for ``B = window``) when
    every window of ``window`` consecutive graphs has a strongly connected
    union.  Trailing iterations that do not fill a whole window are
    ignored, matching the asymptotic nature of the definition.
    """
    if window <= 0:
        raise ValueError("window must be positive")
    num_windows = len(partition_graphs) // window
    for index in range(num_windows):
        union_edges: set[tuple[int, int]] = set()
        for offset in range(window):
            union_edges.update(partition_graphs[index * window + offset])
        if not is_strongly_connected(num_partitions, union_edges):
            return False
    return True


def migration_edges(
    labels_before: Sequence[int], labels_after: Sequence[int]
) -> set[tuple[int, int]]:
    """Directed load-exchange edges implied by one migration step.

    An edge ``(i, j)`` is present when at least one vertex moved from
    partition ``i`` to partition ``j``.  Self-loops are omitted.
    """
    edges: set[tuple[int, int]] = set()
    for before, after in zip(labels_before, labels_after):
        if before != after:
            edges.add((int(before), int(after)))
    return edges
