"""Stochastic load-vector model (paper Section III-C, Proposition 1).

The analysis abstracts Spinner's balance dynamics into a k-dimensional
load vector ``x`` that evolves as ``x_{t+1} = X_t x_t`` where each ``X_t``
is a row-stochastic, 1-local, uniformly bounded matrix describing which
fraction of every partition's load moved where during iteration ``t``.
Under B-connectivity the product is ergodic and the load converges
exponentially fast to the even balancing ``x* = [C, ..., C]``.

:class:`LoadVectorModel` simulates exactly that process and is used by
tests and benchmarks to demonstrate (and measure) the exponential rate.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError


@dataclass
class LoadVectorModel:
    """Simulate the load-exchange dynamics among ``k`` partitions.

    Parameters
    ----------
    num_partitions:
        Dimension ``k`` of the load vector.
    exchange_fraction:
        Fraction of a partition's load offered to other partitions per
        iteration (the off-diagonal mass of the stochastic matrix).
    seed:
        Seed for the random exchange pattern.
    """

    num_partitions: int
    exchange_fraction: float = 0.2
    seed: int | None = 0

    def __post_init__(self) -> None:
        if self.num_partitions < 2:
            raise ConfigurationError("num_partitions must be at least 2")
        if not 0.0 < self.exchange_fraction < 1.0:
            raise ConfigurationError("exchange_fraction must lie in (0, 1)")
        self._rng = np.random.default_rng(self.seed)

    # ------------------------------------------------------------------
    def random_stochastic_matrix(self) -> np.ndarray:
        """One row-stochastic, 1-local, uniformly bounded exchange matrix.

        Every partition keeps ``1 - exchange_fraction`` of its load and
        spreads the rest over a random non-empty subset of the others,
        which guarantees the self-loop and uniform-boundedness properties
        used in the proof of Proposition 1.
        """
        k = self.num_partitions
        matrix = np.zeros((k, k), dtype=np.float64)
        for row in range(k):
            others = [col for col in range(k) if col != row]
            num_targets = int(self._rng.integers(1, k))
            targets = self._rng.choice(others, size=num_targets, replace=False)
            matrix[row, row] = 1.0 - self.exchange_fraction
            share = self.exchange_fraction / num_targets
            for target in targets:
                matrix[row, target] = share
        return matrix

    def simulate(self, initial_loads: np.ndarray, iterations: int) -> np.ndarray:
        """Run the dynamics and return the load vector after each iteration.

        Returns an array of shape ``(iterations + 1, k)`` whose first row is
        the initial load vector.  The update follows eq. (9) of the paper,
        ``x_{t+1} = X_t x_t`` with row-stochastic ``X_t``: under
        B-connectivity the product ``X_t:1`` is ergodic, so every component
        converges to the same value (the even balancing ``x*``), which is
        what Proposition 1 states.
        """
        loads = np.asarray(initial_loads, dtype=np.float64)
        if loads.shape != (self.num_partitions,):
            raise ConfigurationError(
                f"initial_loads must have shape ({self.num_partitions},)"
            )
        trajectory = np.empty((iterations + 1, self.num_partitions), dtype=np.float64)
        trajectory[0] = loads
        current = loads.copy()
        for step in range(1, iterations + 1):
            matrix = self.random_stochastic_matrix()
            current = matrix @ current
            trajectory[step] = current
        return trajectory


def estimate_convergence_rate(trajectory: np.ndarray) -> float:
    """Estimate the geometric convergence rate ``mu`` from a trajectory.

    Fits ``||x_t - x*||_inf ≈ q * mu^t`` by least squares on the log of the
    distances (iterations where the distance is numerically zero are
    ignored).  Values below 1 indicate exponential convergence.
    """
    trajectory = np.asarray(trajectory, dtype=np.float64)
    target = trajectory[-1].mean()
    distances = np.abs(trajectory - target).max(axis=1)
    mask = distances > 1e-12
    if mask.sum() < 2:
        return 0.0
    steps = np.arange(trajectory.shape[0])[mask]
    logs = np.log(distances[mask])
    slope, _intercept = np.polyfit(steps, logs, 1)
    return float(np.exp(slope))
