"""Hoeffding bound on capacity violations (paper Proposition 3).

During the ComputeMigrations step every candidate for partition ``l``
migrates independently with probability ``p = r(l) / m(l)``, so the load
arriving at ``l`` is a sum of independent bounded random variables with
expectation ``r(l)``.  Proposition 3 bounds the probability that the new
load exceeds the capacity by more than ``epsilon * r(l)``:

``Pr[b(l) >= C + eps * r(l)] <= exp(-2 |M(l)| * (eps * r(l) / (Delta - delta))^2)``

where ``delta`` and ``Delta`` are the minimum and maximum degree among the
candidates.  :func:`empirical_overload_rate` measures the same probability
by Monte-Carlo simulation so tests can check the bound actually holds.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

import numpy as np


def overload_probability_bound(
    num_candidates: int,
    epsilon: float,
    remaining_capacity: float,
    min_degree: float,
    max_degree: float,
) -> float:
    """Right-hand side of Proposition 3.

    Returns 1.0 when the bound is vacuous (no candidates, or all candidate
    degrees equal, in which case the load is deterministic and the bound is
    not needed).
    """
    if num_candidates <= 0 or epsilon <= 0 or remaining_capacity <= 0:
        return 1.0
    spread = max_degree - min_degree
    if spread <= 0:
        return 0.0 if epsilon > 0 else 1.0
    phi = (epsilon * remaining_capacity / spread) ** 2
    return math.exp(-2.0 * num_candidates * phi)


def empirical_overload_rate(
    candidate_degrees: Sequence[float],
    remaining_capacity: float,
    epsilon: float,
    trials: int = 2000,
    seed: int | None = 0,
) -> float:
    """Monte-Carlo estimate of the overload probability.

    Simulates the ComputeMigrations step ``trials`` times: each candidate
    migrates independently with probability
    ``p = remaining_capacity / sum(candidate_degrees)`` and we count how
    often the arriving load exceeds ``(1 + epsilon) * remaining_capacity``.
    """
    degrees = np.asarray(candidate_degrees, dtype=np.float64)
    if degrees.size == 0 or remaining_capacity <= 0:
        return 0.0
    total = degrees.sum()
    probability = min(1.0, remaining_capacity / total) if total > 0 else 1.0
    rng = np.random.default_rng(seed)
    draws = rng.random((trials, degrees.size))
    arriving = (draws < probability) @ degrees
    threshold = (1.0 + epsilon) * remaining_capacity
    return float(np.mean(arriving >= threshold))
