"""Analytical results of the paper (Propositions 1-3) as executable models.

* :mod:`repro.analysis.load_model` — the stochastic load-vector model of
  Section III-C: the per-partition load evolves as a product of
  row-stochastic matrices; under B-connectivity it converges exponentially
  to the even balancing (Proposition 1).
* :mod:`repro.analysis.connectivity` — B-connectivity of a sequence of
  partition (load-exchange) graphs (Definition 1).
* :mod:`repro.analysis.overload_bound` — the Hoeffding bound of
  Proposition 3 on the probability that a partition exceeds its capacity
  after one probabilistic migration step.

These are used by property tests (the implementation should respect the
bounds) and by the ablation/analysis benchmarks.
"""

from repro.analysis.connectivity import is_b_connected, is_strongly_connected
from repro.analysis.load_model import LoadVectorModel, estimate_convergence_rate
from repro.analysis.overload_bound import empirical_overload_rate, overload_probability_bound

__all__ = [
    "LoadVectorModel",
    "empirical_overload_rate",
    "estimate_convergence_rate",
    "is_b_connected",
    "is_strongly_connected",
    "overload_probability_bound",
]
