"""Load-balance helpers built on top of the core quality metrics.

These are used by the worker-load experiment (Table IV) and by the
analytical load model in :mod:`repro.analysis.load_model`.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.undirected import UndirectedGraph
from repro.metrics.quality import partition_loads


@dataclass(frozen=True)
class LoadStatistics:
    """Summary of a load vector (per-partition or per-worker)."""

    mean: float
    maximum: float
    minimum: float
    std: float

    @property
    def imbalance(self) -> float:
        """``maximum / mean`` — 1.0 is perfect balance."""
        if self.mean == 0:
            return 1.0
        return self.maximum / self.mean

    @property
    def idle_fraction(self) -> float:
        """Average fraction of the barrier time workers spend idle.

        Under a synchronous barrier every worker waits for the slowest one,
        so a worker with load ``x`` idles for ``(max - x) / max`` of the
        superstep.  This is the quantity discussed around Table IV.
        """
        if self.maximum == 0:
            return 0.0
        return float(1.0 - self.mean / self.maximum)


def load_statistics(loads: Sequence[float] | np.ndarray) -> LoadStatistics:
    """Summarize a vector of loads."""
    arr = np.asarray(loads, dtype=np.float64)
    if arr.size == 0:
        return LoadStatistics(0.0, 0.0, 0.0, 0.0)
    return LoadStatistics(
        mean=float(arr.mean()),
        maximum=float(arr.max()),
        minimum=float(arr.min()),
        std=float(arr.std()),
    )


def partition_load_statistics(
    graph: UndirectedGraph | CSRGraph,
    assignment: Mapping[int, int] | np.ndarray,
    num_partitions: int,
) -> LoadStatistics:
    """Load statistics of a partitioning (wrapper around ``partition_loads``)."""
    return load_statistics(partition_loads(graph, assignment, num_partitions))
