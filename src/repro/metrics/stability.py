"""Partitioning stability metrics (paper Section V-D).

The *partitioning difference* between two partitionings is the fraction of
vertices whose label differs — the fraction of vertices a graph management
system would have to shuffle across machines when adopting the new
partitioning.
"""

from __future__ import annotations

from collections.abc import Mapping

import numpy as np

from repro.errors import PartitioningError


def partitioning_difference(
    before: Mapping[int, int] | np.ndarray,
    after: Mapping[int, int] | np.ndarray,
) -> float:
    """Fraction of vertices assigned to different partitions in ``after``.

    Both partitionings must cover the same vertex set (array inputs must
    have the same length).  Vertices present only in ``after`` (e.g. newly
    added vertices) are ignored, since they had no previous location to
    move from.
    """
    if isinstance(before, np.ndarray) or isinstance(after, np.ndarray):
        before_arr = np.asarray(before)
        after_arr = np.asarray(after)
        if before_arr.shape != after_arr.shape:
            raise PartitioningError("label arrays must have the same shape")
        if before_arr.size == 0:
            return 0.0
        return float(np.mean(before_arr != after_arr))

    common = [vertex for vertex in before if vertex in after]
    if not common:
        return 0.0
    moved = sum(1 for vertex in common if before[vertex] != after[vertex])
    return moved / len(common)


def migration_volume(
    before: Mapping[int, int],
    after: Mapping[int, int],
    weights: Mapping[int, int] | None = None,
) -> float:
    """Total weight of vertices that change partition.

    With ``weights`` (for example the vertex degrees, or serialized state
    sizes) this measures the amount of data the graph management system
    must move; without weights it degenerates to a vertex count.
    """
    volume = 0.0
    for vertex, old_label in before.items():
        new_label = after.get(vertex)
        if new_label is None or new_label == old_label:
            continue
        volume += 1.0 if weights is None else float(weights.get(vertex, 1))
    return volume
