"""Locality, balance and score metrics (paper Section V, eq. 16).

All functions accept either an :class:`~repro.graph.undirected.UndirectedGraph`
with a ``{vertex: label}`` mapping, or a :class:`~repro.graph.csr.CSRGraph`
with a NumPy label array (dense vertex ids).  Labels must lie in
``[0, num_partitions)``.

On the out-of-core tier (``graph.storage == "mmap"``) the edge-touching
metrics stream the half-edge arrays chunk by chunk instead of calling
``edge_array()``, keeping peak RSS at ``O(chunk + labels)``.  The values
are bit-identical to the single-pass expressions: every accumulated
quantity is a sum of integer edge weights (exact in ``float64``), so the
accumulation order cannot change the result.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass

import numpy as np

from repro.errors import InvalidPartitionCountError, PartitioningError
from repro.graph.csr import CSRGraph
from repro.graph.undirected import UndirectedGraph


def _check_k(num_partitions: int) -> None:
    if num_partitions <= 0:
        raise InvalidPartitionCountError(num_partitions, "must be positive")


def _metric_chunk() -> int:
    """Half-edges per streamed chunk for the mmap-tier metric passes."""
    from repro.graph.mmap_store import DEFAULT_STORAGE_CHUNK

    return DEFAULT_STORAGE_CHUNK


def _labels_array(graph: CSRGraph, labels: np.ndarray) -> np.ndarray:
    arr = np.asarray(labels, dtype=np.int64)
    if arr.shape[0] != graph.num_vertices:
        raise PartitioningError(
            f"label array has {arr.shape[0]} entries for {graph.num_vertices} vertices"
        )
    return arr


# ----------------------------------------------------------------------
# locality (phi)
# ----------------------------------------------------------------------
def locality(
    graph: UndirectedGraph | CSRGraph,
    assignment: Mapping[int, int] | np.ndarray,
) -> float:
    """Ratio of local edge weight: ``phi`` in the paper (eq. 16, left).

    Edge weights are taken into account so that, for graphs converted from
    a directed input, ``phi`` equals the fraction of *directed* edges whose
    endpoints are co-located — exactly the fraction of messages that stay
    local in a Pregel computation.
    """
    if isinstance(graph, CSRGraph):
        labels = _labels_array(graph, assignment)  # type: ignore[arg-type]
        if graph.storage == "mmap":
            total = 2 * graph.total_weight
            if total == 0:
                return 1.0
            local = 0.0
            for _, _, src, tgt, w in graph.iter_edge_chunks(_metric_chunk()):
                local += float(w[labels[src] == labels[tgt]].sum())
            return float(local / total)
        sources, targets, weights = graph.edge_array()
        if weights.sum() == 0:
            return 1.0
        local = weights[labels[sources] == labels[targets]].sum()
        return float(local / weights.sum())
    total = 0
    local = 0
    for u, v, weight in graph.edges():
        total += weight
        if assignment[u] == assignment[v]:  # type: ignore[index]
            local += weight
    if total == 0:
        return 1.0
    return local / total


def cut_edges(
    graph: UndirectedGraph | CSRGraph,
    assignment: Mapping[int, int] | np.ndarray,
) -> int:
    """Number of undirected edges whose endpoints lie in different partitions."""
    if isinstance(graph, CSRGraph):
        labels = _labels_array(graph, assignment)  # type: ignore[arg-type]
        if graph.storage == "mmap":
            crossing_halves = 0
            for _, _, src, tgt, _w in graph.iter_edge_chunks(_metric_chunk()):
                crossing_halves += int((labels[src] != labels[tgt]).sum())
            return crossing_halves // 2
        sources, targets, _weights = graph.edge_array()
        crossing = labels[sources] != labels[targets]
        # Each undirected edge appears twice in the edge array.
        return int(crossing.sum() // 2)
    return sum(
        1 for u, v, _w in graph.edges() if assignment[u] != assignment[v]  # type: ignore[index]
    )


# ----------------------------------------------------------------------
# balance (rho)
# ----------------------------------------------------------------------
def partition_loads(
    graph: UndirectedGraph | CSRGraph,
    assignment: Mapping[int, int] | np.ndarray,
    num_partitions: int,
) -> np.ndarray:
    """Load ``b(l)`` of every partition (eq. 6).

    The load of a partition is the sum of the weighted degrees of its
    vertices, i.e. the number of messages its vertices exchange per
    superstep — the quantity Spinner balances.
    """
    _check_k(num_partitions)
    loads = np.zeros(num_partitions, dtype=np.float64)
    if isinstance(graph, CSRGraph):
        labels = _labels_array(graph, assignment)  # type: ignore[arg-type]
        if labels.size and (labels.min() < 0 or labels.max() >= num_partitions):
            raise PartitioningError("labels outside [0, num_partitions)")
        np.add.at(loads, labels, graph.weighted_degrees.astype(np.float64))
        return loads
    for vertex, label in assignment.items():  # type: ignore[union-attr]
        if not 0 <= label < num_partitions:
            raise PartitioningError(f"label {label} outside [0, {num_partitions})")
        loads[label] += graph.weighted_degree(vertex)
    return loads


def max_normalized_load(
    graph: UndirectedGraph | CSRGraph,
    assignment: Mapping[int, int] | np.ndarray,
    num_partitions: int,
) -> float:
    """Maximum normalized load ``rho`` (eq. 16, right).

    ``rho = 1.0`` means perfect balance; ``rho = 1.05`` means the most
    loaded partition holds 5% more than the ideal share.
    """
    loads = partition_loads(graph, assignment, num_partitions)
    total = loads.sum()
    if total == 0:
        return 1.0
    ideal = total / num_partitions
    return float(loads.max() / ideal)


# ----------------------------------------------------------------------
# global score (eq. 10)
# ----------------------------------------------------------------------
def global_score(
    graph: UndirectedGraph | CSRGraph,
    assignment: Mapping[int, int] | np.ndarray,
    num_partitions: int,
    additional_capacity: float = 1.05,
) -> float:
    """Aggregate partitioning score ``score(G)`` (eq. 10).

    Each vertex contributes its normalized locality score minus the penalty
    of its current partition (eq. 8).  The experiment harness tracks this
    value per iteration to reproduce Figure 4.
    """
    _check_k(num_partitions)
    loads = partition_loads(graph, assignment, num_partitions)
    total_load = loads.sum()
    if total_load == 0:
        return 0.0
    capacity = additional_capacity * total_load / num_partitions
    penalties = loads / capacity

    if isinstance(graph, CSRGraph):
        labels = _labels_array(graph, assignment)  # type: ignore[arg-type]
        degrees = graph.weighted_degrees.astype(np.float64)
        safe_degrees = np.where(degrees > 0, degrees, 1.0)
        local_weight = np.zeros(graph.num_vertices, dtype=np.float64)
        if graph.storage == "mmap":
            for _, _, src, tgt, w in graph.iter_edge_chunks(_metric_chunk()):
                same = labels[src] == labels[tgt]
                np.add.at(local_weight, src[same], w[same].astype(np.float64))
        else:
            sources, targets, weights = graph.edge_array()
            same = labels[sources] == labels[targets]
            np.add.at(local_weight, sources[same], weights[same].astype(np.float64))
        per_vertex = local_weight / safe_degrees - penalties[labels]
        return float(per_vertex.sum())

    score = 0.0
    for vertex in graph.vertices():
        label = assignment[vertex]  # type: ignore[index]
        degree = graph.weighted_degree(vertex)
        if degree == 0:
            score -= penalties[label]
            continue
        local = sum(
            weight
            for neighbour, weight in graph.neighbors(vertex).items()
            if assignment[neighbour] == label  # type: ignore[index]
        )
        score += local / degree - penalties[label]
    return score


# ----------------------------------------------------------------------
# summary
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class QualitySummary:
    """Bundle of the headline quality metrics for one partitioning."""

    num_partitions: int
    phi: float
    rho: float
    cut_edges: int
    score: float

    def as_row(self) -> dict[str, float | int]:
        """Render as a flat dictionary (used by the reporting helpers)."""
        return {
            "k": self.num_partitions,
            "phi": round(self.phi, 4),
            "rho": round(self.rho, 4),
            "cut_edges": self.cut_edges,
            "score": round(self.score, 2),
        }


def quality_summary(
    graph: UndirectedGraph | CSRGraph,
    assignment: Mapping[int, int] | np.ndarray,
    num_partitions: int,
    additional_capacity: float = 1.05,
) -> QualitySummary:
    """Compute :class:`QualitySummary` for a partitioning."""
    return QualitySummary(
        num_partitions=num_partitions,
        phi=locality(graph, assignment),
        rho=max_normalized_load(graph, assignment, num_partitions),
        cut_edges=cut_edges(graph, assignment),
        score=global_score(graph, assignment, num_partitions, additional_capacity),
    )
