"""Partitioning quality metrics.

The paper evaluates partitionings with two headline metrics (Section V-A):

* ``phi`` — the *ratio of local edges*: the fraction of edges whose two
  endpoints live in the same partition (weighted by the directed-edge
  multiplicity when the graph came from a directed input);
* ``rho`` — the *maximum normalized load*: the load of the most loaded
  partition divided by the ideal (perfectly balanced) load.

It also uses the aggregate score ``score(G)`` (eq. 10) to drive halting and
the *partitioning difference* to quantify stability across repartitionings
(Section V-D).
"""

from repro.metrics.quality import (
    cut_edges,
    global_score,
    locality,
    max_normalized_load,
    partition_loads,
    quality_summary,
)
from repro.metrics.stability import partitioning_difference

__all__ = [
    "cut_edges",
    "global_score",
    "locality",
    "max_normalized_load",
    "partition_loads",
    "partitioning_difference",
    "quality_summary",
]
