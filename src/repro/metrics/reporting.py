"""Plain-text table rendering for experiment output.

The benchmark harness prints, for every reproduced table and figure, rows
that mirror the paper's presentation.  This module keeps that formatting in
one place so the benchmarks stay focused on the experiment logic.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from typing import Any


def format_table(
    rows: Sequence[Mapping[str, Any]],
    columns: Sequence[str] | None = None,
    title: str | None = None,
    float_format: str = "{:.3f}",
) -> str:
    """Render a list of row dictionaries as an aligned text table.

    Parameters
    ----------
    rows:
        The rows; missing keys render as an empty cell.
    columns:
        Column order; defaults to the keys of the first row.
    title:
        Optional title printed above the table.
    float_format:
        Format spec applied to float cells.
    """
    if not rows:
        return f"{title}\n(empty)" if title else "(empty)"
    if columns is None:
        columns = list(rows[0].keys())

    def render(value: Any) -> str:
        """Render the table as aligned plain-text lines."""
        if isinstance(value, float):
            return float_format.format(value)
        if value is None:
            return ""
        return str(value)

    rendered = [[render(row.get(col)) for col in columns] for row in rows]
    widths = [
        max(len(str(col)), *(len(r[i]) for r in rendered)) for i, col in enumerate(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(str(col).ljust(widths[i]) for i, col in enumerate(columns))
    lines.append(header)
    lines.append("  ".join("-" * widths[i] for i in range(len(columns))))
    for r in rendered:
        lines.append("  ".join(r[i].ljust(widths[i]) for i in range(len(columns))))
    return "\n".join(lines)


def format_series(
    xs: Sequence[Any],
    ys: Sequence[Any],
    x_label: str = "x",
    y_label: str = "y",
    title: str | None = None,
) -> str:
    """Render paired series (the textual equivalent of a figure's curve)."""
    rows = [{x_label: x, y_label: y} for x, y in zip(xs, ys)]
    return format_table(rows, columns=[x_label, y_label], title=title)


def improvement_percentage(baseline: float, improved: float) -> float:
    """Relative improvement of ``improved`` over ``baseline`` in percent.

    Positive values mean ``improved`` is smaller (faster / cheaper) than the
    baseline, matching how the paper reports runtime improvements.
    """
    if baseline == 0:
        return 0.0
    return 100.0 * (baseline - improved) / baseline
