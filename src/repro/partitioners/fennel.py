"""Fennel streaming partitioner (Tsourakakis et al., WSDM 2014).

The "Fennel" row of Table I.  Like LDG it is a one-pass streaming
heuristic, but the balance term is a concave cost on the partition size:
vertex ``v`` goes to the partition maximizing

``|N(v) ∩ P_i| - alpha * gamma * |P_i|^(gamma - 1)``

with ``gamma = 1.5`` and ``alpha = sqrt(k) * m / n^1.5`` (the paper's
recommended setting), subject to a hard capacity ``nu * n / k`` on the
partition's vertex count (``nu = 1.1`` matches the load factor used in the
Fennel paper and the ~1.10 balance the Spinner paper reports for it).

Like LDG this module ships a per-vertex dictionary reference and a
chunked CSR kernel (:meth:`FennelPartitioner.partition_array`) that is
assignment-exact with it for the same seed and stream order.  The CSR
kernel precomputes the marginal cost for every possible integer partition
size with the same vectorized ``np.power`` call as the reference, so the
scalar loop reads exact score values from a table instead of evaluating
``k`` powers per vertex.
"""

from __future__ import annotations

import numpy as np

from repro.graph.conversion import ensure_undirected
from repro.graph.csr import CSRGraph
from repro.graph.digraph import DiGraph
from repro.graph.undirected import UndirectedGraph
from repro.partitioners.base import Partitioner
from repro.partitioners.csr_stream import (
    DEFAULT_CHUNK,
    gather_chunk,
    intra_chunk_links,
    merge_intra_chunk_patches,
    rowwise_label_counts,
    stream_order,
)


class FennelPartitioner(Partitioner):
    """One-pass streaming partitioner with a concave balance cost."""

    name = "fennel"

    def __init__(
        self,
        gamma: float = 1.5,
        load_factor: float = 1.1,
        stream_order: str = "random",
        seed: int | None = 0,
    ) -> None:
        if gamma <= 1.0:
            raise ValueError("gamma must exceed 1")
        if load_factor < 1.0:
            raise ValueError("load_factor must be at least 1")
        if stream_order not in ("natural", "random"):
            raise ValueError(f"unknown stream order {stream_order!r}")
        self.gamma = gamma
        self.load_factor = load_factor
        self.stream_order = stream_order
        self.seed = seed

    def partition(
        self, graph: UndirectedGraph | DiGraph | CSRGraph, num_partitions: int
    ) -> dict[int, int]:
        """Stream vertices through the Fennel objective and return the assignment."""
        if isinstance(graph, CSRGraph):
            labels = self.partition_array(graph, num_partitions)
            return {
                int(vertex): int(label)
                for vertex, label in zip(graph.original_ids.tolist(), labels.tolist())
            }
        undirected = ensure_undirected(graph)
        n = undirected.num_vertices
        if n == 0:
            return {}
        m = max(undirected.num_edges, 1)
        alpha = np.sqrt(num_partitions) * m / (n ** 1.5)
        capacity = self.load_factor * n / num_partitions

        vertices = sorted(undirected.vertices())
        if self.stream_order == "random":
            rng = np.random.default_rng(self.seed)
            rng.shuffle(vertices)

        sizes = np.zeros(num_partitions, dtype=np.float64)
        assignment: dict[int, int] = {}
        for vertex in vertices:
            neighbour_counts = np.zeros(num_partitions, dtype=np.float64)
            for neighbour, weight in undirected.neighbors(vertex).items():
                label = assignment.get(neighbour)
                if label is not None:
                    neighbour_counts[label] += weight
            marginal_cost = alpha * self.gamma * np.power(sizes, self.gamma - 1.0)
            scores = neighbour_counts - marginal_cost
            scores[sizes >= capacity] = -np.inf
            best = int(np.argmax(scores))
            if not np.isfinite(scores[best]):
                best = int(np.argmin(sizes))
            assignment[vertex] = best
            sizes[best] += 1.0
        return assignment

    # ------------------------------------------------------------------
    def partition_array(
        self, graph: CSRGraph, num_partitions: int, chunk: int = DEFAULT_CHUNK
    ) -> np.ndarray:
        """CSR fast path: identical assignments to :meth:`partition`.

        The reference argmax runs over all ``k`` partitions, but only
        partitions holding a placed neighbour can beat the best *empty*
        candidate — and among empty candidates the marginal cost is
        monotone in the partition size, so the winner is always the
        least-loaded partition (first index on ties, exactly like
        ``np.argmax``).  The scalar loop therefore scores the sparse
        neighbour candidates plus that single least-loaded partition.
        """
        n = graph.num_vertices
        k = num_partitions
        if n == 0:
            return np.empty(0, dtype=np.int64)
        indptr, indices = graph.indptr, graph.indices
        # Raw (possibly memory-mapped) weights: gather_chunk converts each
        # gathered slice to float64, so no full-length float copy exists.
        weights_f = graph.weights
        m = max(graph.num_edges, 1)
        alpha = np.sqrt(k) * m / (n ** 1.5)
        capacity = self.load_factor * n / k
        # Marginal cost by integer partition size, computed with the same
        # vectorized np.power expression as the reference so table entries
        # are bit-identical to what the dictionary path evaluates.
        max_size = min(n, int(capacity) + 2)
        cost_table = (
            alpha * self.gamma * np.power(np.arange(max_size + 1, dtype=np.float64), self.gamma - 1.0)
        ).tolist()
        order = stream_order(graph, self.stream_order, self.seed)

        labels = np.full(n, k, dtype=np.int64)
        position_of = np.full(n, -1, dtype=np.int64)
        sizes = [0] * k
        # Least-loaded tracking: histogram of sizes plus the first index at
        # the minimum, recomputed lazily only when consumed.  num_capped
        # counts partitions at the hard capacity so the common no-cap case
        # skips the per-candidate capacity check.
        size_histogram = [0] * (max_size + 2)
        size_histogram[0] = k
        min_size = 0
        num_capped = 0

        for start in range(0, n, chunk):
            chunk_vertices = order[start : start + chunk]
            rows, neighbors, wts = gather_chunk(indptr, indices, weights_f, chunk_vertices)
            graph.release_pages()
            gathered = labels[neighbors]
            assigned = gathered < k
            row_starts, cand_labels, cand_sums = rowwise_label_counts(
                rows[assigned],
                gathered[assigned],
                wts[assigned],
                chunk_vertices.shape[0],
                k,
            )
            position_of[chunk_vertices] = np.arange(chunk_vertices.shape[0])
            patch_rows, patch_sources, patch_weights = intra_chunk_links(
                rows, neighbors, wts, position_of
            )
            position_of[chunk_vertices] = -1

            chunk_labels = [0] * chunk_vertices.shape[0]
            patch_index = 0
            num_patches = len(patch_rows)
            for row in range(chunk_vertices.shape[0]):
                lo, hi = row_starts[row], row_starts[row + 1]
                if patch_index < num_patches and patch_rows[patch_index] == row:
                    merged, patch_index = merge_intra_chunk_patches(
                        row, lo, hi, cand_labels, cand_sums, chunk_labels,
                        patch_rows, patch_sources, patch_weights, patch_index,
                    )
                    candidates = sorted(merged.items())
                else:
                    candidates = None
                best = -1
                best_score = -np.inf
                if candidates is None:
                    if num_capped:
                        for t in range(lo, hi):
                            label = cand_labels[t]
                            if sizes[label] >= capacity:
                                continue
                            score = cand_sums[t] - cost_table[sizes[label]]
                            if score > best_score:
                                best_score = score
                                best = label
                    else:
                        for t in range(lo, hi):
                            label = cand_labels[t]
                            score = cand_sums[t] - cost_table[sizes[label]]
                            if score > best_score:
                                best_score = score
                                best = label
                else:
                    for label, summed in candidates:
                        if num_capped and sizes[label] >= capacity:
                            continue
                        score = summed - cost_table[sizes[label]]
                        if score > best_score:
                            best_score = score
                            best = label
                empty_score = -cost_table[min_size]
                if best < 0 or empty_score > best_score:
                    # Least-loaded partition (first index at the minimum
                    # size) wins outright.
                    best = sizes.index(min_size)
                elif empty_score == best_score:
                    # Exact tie: np.argmax takes the smaller index.
                    least = sizes.index(min_size)
                    if least < best:
                        best = least
                chunk_labels[row] = best
                old_size = sizes[best]
                sizes[best] = old_size + 1
                size_histogram[old_size] -= 1
                size_histogram[old_size + 1] += 1
                if old_size == min_size and size_histogram[min_size] == 0:
                    min_size += 1
                if old_size < capacity <= old_size + 1:
                    num_capped += 1
            labels[chunk_vertices] = chunk_labels
        return labels
