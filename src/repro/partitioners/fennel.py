"""Fennel streaming partitioner (Tsourakakis et al., WSDM 2014).

The "Fennel" row of Table I.  Like LDG it is a one-pass streaming
heuristic, but the balance term is a concave cost on the partition size:
vertex ``v`` goes to the partition maximizing

``|N(v) ∩ P_i| - alpha * gamma * |P_i|^(gamma - 1)``

with ``gamma = 1.5`` and ``alpha = sqrt(k) * m / n^1.5`` (the paper's
recommended setting), subject to a hard capacity ``nu * n / k`` on the
partition's vertex count (``nu = 1.1`` matches the load factor used in the
Fennel paper and the ~1.10 balance the Spinner paper reports for it).
"""

from __future__ import annotations

import numpy as np

from repro.graph.conversion import ensure_undirected
from repro.graph.digraph import DiGraph
from repro.graph.undirected import UndirectedGraph
from repro.partitioners.base import Partitioner


class FennelPartitioner(Partitioner):
    """One-pass streaming partitioner with a concave balance cost."""

    name = "fennel"

    def __init__(
        self,
        gamma: float = 1.5,
        load_factor: float = 1.1,
        stream_order: str = "random",
        seed: int | None = 0,
    ) -> None:
        if gamma <= 1.0:
            raise ValueError("gamma must exceed 1")
        if load_factor < 1.0:
            raise ValueError("load_factor must be at least 1")
        if stream_order not in ("natural", "random"):
            raise ValueError(f"unknown stream order {stream_order!r}")
        self.gamma = gamma
        self.load_factor = load_factor
        self.stream_order = stream_order
        self.seed = seed

    def partition(
        self, graph: UndirectedGraph | DiGraph, num_partitions: int
    ) -> dict[int, int]:
        """Stream vertices through the Fennel objective and return the assignment."""
        undirected = ensure_undirected(graph)
        n = undirected.num_vertices
        if n == 0:
            return {}
        m = max(undirected.num_edges, 1)
        alpha = np.sqrt(num_partitions) * m / (n ** 1.5)
        capacity = self.load_factor * n / num_partitions

        vertices = list(undirected.vertices())
        if self.stream_order == "random":
            rng = np.random.default_rng(self.seed)
            rng.shuffle(vertices)
        else:
            vertices.sort()

        sizes = np.zeros(num_partitions, dtype=np.float64)
        assignment: dict[int, int] = {}
        for vertex in vertices:
            neighbour_counts = np.zeros(num_partitions, dtype=np.float64)
            for neighbour, weight in undirected.neighbors(vertex).items():
                label = assignment.get(neighbour)
                if label is not None:
                    neighbour_counts[label] += weight
            marginal_cost = alpha * self.gamma * np.power(sizes, self.gamma - 1.0)
            scores = neighbour_counts - marginal_cost
            scores[sizes >= capacity] = -np.inf
            best = int(np.argmax(scores))
            if not np.isfinite(scores[best]):
                best = int(np.argmin(sizes))
            assignment[vertex] = best
            sizes[best] += 1.0
        return assignment
