"""Adapters exposing the two Spinner implementations as `Partitioner`s.

The comparison harness (Table I, Figure 3) treats every approach through
the :class:`~repro.partitioners.base.Partitioner` interface; these thin
adapters let Spinner participate.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import SpinnerConfig
from repro.core.fast import FastSpinner
from repro.core.spinner import SpinnerPartitioner
from repro.graph.csr import CSRGraph
from repro.graph.digraph import DiGraph
from repro.graph.undirected import UndirectedGraph
from repro.partitioners.base import Partitioner


class SpinnerFastAdapter(Partitioner):
    """Vectorized Spinner behind the common partitioner interface.

    Accepts CSR input directly so array-based callers skip the
    dictionary-based graph conversion entirely; the kernel choice
    (frontier vs. dense reference) follows ``config.kernel``.

    ``storage``, ``storage_dir`` and ``storage_chunk`` override the
    matching :class:`~repro.core.config.SpinnerConfig` fields (mirroring
    how :class:`SpinnerPregelAdapter` overrides ``engine``):
    ``storage="mmap"`` runs the kernels out-of-core against an on-disk
    CSR store, bit-exact with the in-RAM tier.
    """

    name = "spinner"

    def __init__(
        self,
        config: SpinnerConfig | None = None,
        storage: str | None = None,
        storage_dir: str | None = None,
        storage_chunk: int | None = None,
    ) -> None:
        config = config if config is not None else SpinnerConfig()
        overrides: dict[str, object] = {}
        if storage is not None:
            overrides["storage"] = storage
        if storage_dir is not None:
            overrides["storage_dir"] = storage_dir
        if storage_chunk is not None:
            overrides["storage_chunk"] = storage_chunk
        if overrides:
            config = config.with_options(**overrides)
        self.config = config

    def partition(
        self, graph: UndirectedGraph | DiGraph | CSRGraph, num_partitions: int
    ) -> dict[int, int]:
        """Run FastSpinner and return its ``{vertex: partition}`` assignment."""
        result = FastSpinner(self.config).partition(graph, num_partitions)
        return result.to_assignment()

    def partition_array(self, graph: CSRGraph, num_partitions: int) -> np.ndarray:
        """Run FastSpinner on the CSR graph and return its dense label array."""
        result = FastSpinner(self.config).partition(
            graph, num_partitions, track_history=False
        )
        return result.labels


class SpinnerPregelAdapter(Partitioner):
    """Pregel-based Spinner behind the common partitioner interface.

    The ``engine`` argument selects the runtime — ``"dict"`` for the
    per-vertex reference engine, ``"vector"`` for the array-native
    sharded engine (bit-exact, much faster) — and defaults to
    ``config.engine``.  ``parallel`` selects the vector engine's
    shared-memory multiprocess executor (``N`` shard-group processes,
    bit-exact with serial); it defaults to ``config.parallel``.
    """

    name = "spinner-pregel"

    def __init__(
        self,
        config: SpinnerConfig | None = None,
        num_workers: int = 4,
        engine: str | None = None,
        parallel: int | None = None,
    ) -> None:
        self.config = config if config is not None else SpinnerConfig()
        self.num_workers = num_workers
        self.engine = engine if engine is not None else self.config.engine
        self.parallel = parallel

    def partition(
        self, graph: UndirectedGraph | DiGraph, num_partitions: int
    ) -> dict[int, int]:
        """Run the Pregel Spinner (selected engine) and return its assignment."""
        partitioner = SpinnerPartitioner(
            self.config,
            num_workers=self.num_workers,
            engine=self.engine,
            parallel=self.parallel,
        )
        return partitioner.partition(graph, num_partitions).assignment
