"""Shared machinery for the CSR fast paths of the streaming baselines.

The baseline partitioners (LDG, Fennel, Wang's LPA coarsening) are
sequential by definition: every decision depends on the assignments made
before it, so the per-vertex loop cannot be replaced by one vectorized
pass without changing the output.  The CSR kernels therefore split the
stream into *chunks*:

* all neighbour/label gathers for a chunk run as flat NumPy operations
  against a snapshot of the labels taken at the chunk boundary, and
* a light scalar loop walks the chunk in stream order, consuming the
  pre-aggregated neighbour counts and patching them with the few
  *intra-chunk* edges whose earlier endpoint was (re)labelled after the
  snapshot was taken.

Because the patch step replays exactly the contributions the dictionary
implementation would have seen, the chunked kernels are assignment-exact
with the per-vertex reference paths (pinned in
``tests/test_csr_partitioners.py``).  All helpers here operate on dense
vertex ids (``0 .. n-1``); the mapping back to original ids lives in
:class:`~repro.graph.csr.CSRGraph`.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.undirected import UndirectedGraph

#: Default number of stream positions gathered per chunk.  Larger chunks
#: amortize the NumPy call overhead but grow the number of intra-chunk
#: edges that need scalar patching; 2048 is the measured sweet spot at
#: 100k vertices across all three kernels.
DEFAULT_CHUNK = 2048


def canonical_undirected(csr: CSRGraph) -> UndirectedGraph:
    """Materialize a CSR graph as an :class:`UndirectedGraph` canonically.

    Vertices are inserted in ascending original-id order and edges in
    ascending ``(u, v)`` order, so two equal CSR graphs always produce
    dictionaries with identical iteration order — the property the
    equivalence tests (and the default :meth:`Partitioner.partition_array`
    fallback) rely on.
    """
    graph = UndirectedGraph()
    ids = csr.original_ids
    for vertex in ids.tolist():
        graph.add_vertex(vertex)
    sources, targets, weights = csr.edge_array()
    forward = sources < targets
    u = ids[sources[forward]]
    v = ids[targets[forward]]
    w = weights[forward]
    order = np.lexsort((v, u))
    for a, b, weight in zip(u[order].tolist(), v[order].tolist(), w[order].tolist()):
        graph.add_edge(a, b, weight=weight)
    return graph


def bfs_stream(csr: CSRGraph, shuffled_roots: list[int]) -> np.ndarray:
    """Level-synchronous BFS order over all components (dense ids).

    Matches the queue-based reference exactly: roots are tried in the
    given (shuffled) order, neighbours are expanded in ascending id order,
    and a vertex is marked visited when first *enqueued*.  Within a BFS
    level the first occurrence of each vertex wins, which is precisely the
    FIFO enqueue order of the reference implementation.

    Each level's adjacency is gathered raw and then sorted per row with
    one ``lexsort`` on ``(neighbour, row)`` — reproducing the ascending
    per-vertex expansion the reference's ``sorted(graph.neighbors(v))``
    performs, without ever materializing a globally sorted copy of
    ``indices`` (which would be ``O(m)`` RAM and defeat the mmap tier).
    """
    n = csr.num_vertices
    indptr = csr.indptr
    indices = csr.indices
    visited = np.zeros(n, dtype=bool)
    order = np.empty(n, dtype=np.int64)
    filled = 0
    for root in shuffled_roots:
        if visited[root]:
            continue
        visited[root] = True
        level = np.asarray([root], dtype=np.int64)
        while level.size:
            order[filled : filled + level.size] = level
            filled += level.size
            rows, candidates, _ = gather_chunk(indptr, indices, None, level)
            csr.release_pages()
            if candidates.size == 0:
                break
            sort = np.lexsort((candidates, rows))
            candidates = candidates[sort]
            candidates = candidates[~visited[candidates]]
            if candidates.size == 0:
                break
            _, first = np.unique(candidates, return_index=True)
            level = candidates[np.sort(first)]
            visited[level] = True
    return order[:filled]


def stream_order(csr: CSRGraph, order: str, seed: int | None) -> np.ndarray:
    """Dense-id stream order matching the canonical dictionary paths.

    ``"natural"`` is ascending id order; ``"random"`` shuffles a Python
    list with the same :class:`numpy.random.Generator` calls as the
    reference (so the permutation is bit-identical for a given seed);
    ``"bfs"`` shuffles the roots the same way and expands with
    :func:`bfs_stream`.
    """
    n = csr.num_vertices
    if order == "natural":
        return np.arange(n, dtype=np.int64)
    rng = np.random.default_rng(seed)
    vertices = list(range(n))
    rng.shuffle(vertices)
    if order == "random":
        return np.asarray(vertices, dtype=np.int64)
    if order == "bfs":
        return bfs_stream(csr, vertices)
    raise ValueError(f"unknown stream order {order!r}")


def gather_chunk(
    indptr: np.ndarray,
    indices: np.ndarray,
    weights_f: np.ndarray | None,
    chunk_vertices: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray | None]:
    """Gather the adjacency of a chunk of vertices as flat arrays.

    Returns ``(rows, neighbours, weights)`` where ``rows[i]`` is the
    position within ``chunk_vertices`` whose adjacency produced entry
    ``i``.  Rows are emitted in chunk order, so downstream groupings can
    rely on ``rows`` being non-decreasing.  ``weights_f`` may be ``None``
    for weight-free traversals (the returned weights are then ``None``);
    an integer weight array is converted to ``float64`` *after* the
    gather — elementwise, so the values are identical to gathering from a
    pre-converted array, but only one chunk's worth of floats ever
    exists.  ``indices``/``weights_f`` may be memory-mapped: the fancy
    gathers copy just the chunk into RAM, which (with the caller
    releasing pages between chunks) is what keeps the streaming baselines
    at ``O(chunk + labels)`` peak RSS on the mmap tier.
    """
    counts = indptr[chunk_vertices + 1] - indptr[chunk_vertices]
    total = int(counts.sum())
    rows = np.repeat(np.arange(chunk_vertices.shape[0], dtype=np.int64), counts)
    if total == 0:
        empty = np.empty(0, dtype=np.int64)
        return rows, empty, None if weights_f is None else np.empty(0, dtype=np.float64)
    offsets = np.cumsum(counts) - counts
    flat = (
        np.arange(total, dtype=np.int64)
        - np.repeat(offsets, counts)
        + np.repeat(indptr[chunk_vertices], counts)
    )
    gathered_w = None
    if weights_f is not None:
        gathered_w = np.asarray(weights_f[flat])
        if gathered_w.dtype != np.float64:
            gathered_w = gathered_w.astype(np.float64)
    return rows, np.asarray(indices[flat]), gathered_w


def merge_intra_chunk_patches(
    row: int,
    lo: int,
    hi: int,
    cand_labels: list[int],
    cand_sums: list[float],
    chunk_labels: list[int],
    patch_rows: list[int],
    patch_sources: list[int],
    patch_weights: list[float],
    patch_index: int,
) -> tuple[dict[int, float], int]:
    """Replay intra-chunk contributions into a row's snapshot counts.

    Builds the ``{label: weight}`` mapping a dictionary-path vertex would
    have seen: the snapshot candidates ``[lo, hi)`` plus, for every
    intra-chunk link targeting ``row``, the weight of the neighbour that
    was labelled after the chunk gather.  Returns the merged mapping and
    the advanced patch cursor.  Shared by the LDG and Fennel kernels so
    the patch-replay semantics cannot drift apart.
    """
    merged: dict[int, float] = {}
    for t in range(lo, hi):
        merged[cand_labels[t]] = cand_sums[t]
    num_patches = len(patch_rows)
    while patch_index < num_patches and patch_rows[patch_index] == row:
        source_label = chunk_labels[patch_sources[patch_index]]
        merged[source_label] = merged.get(source_label, 0.0) + patch_weights[patch_index]
        patch_index += 1
    return merged, patch_index


def rowwise_label_counts(
    rows: np.ndarray,
    labels: np.ndarray,
    weights: np.ndarray,
    num_rows: int,
    num_labels: int,
) -> tuple[list[int], list[int], list[float]]:
    """Aggregate ``weights`` per ``(row, label)`` for a *small* label space.

    Used by the LDG and Fennel kernels where labels are partition ids
    (``num_labels = k``): one dense ``bincount`` over the composite key
    followed by a single ``nonzero`` yields, per row, the candidate labels
    in ascending order with their exact weight sums.  Returns
    ``(row_starts, labels, sums)`` as Python lists ready for the scalar
    stream loop; entries with an exact zero sum are dropped, mirroring a
    dictionary path in which those labels score zero.
    """
    counts = np.bincount(
        rows * num_labels + labels, weights=weights, minlength=num_rows * num_labels
    )
    nonzero = np.nonzero(counts)[0]
    row_starts = np.searchsorted(nonzero // num_labels, np.arange(num_rows + 1))
    return (
        row_starts.tolist(),
        (nonzero % num_labels).tolist(),
        counts[nonzero].tolist(),
    )


def rowwise_sparse_counts(
    rows: np.ndarray,
    labels: np.ndarray,
    weights: np.ndarray,
    num_rows: int,
    modulus: int,
) -> tuple[list[int], np.ndarray, np.ndarray, list[int]]:
    """Aggregate ``weights`` per ``(row, label)`` for a *large* label space.

    Used by the LPA kernel where labels are community ids (up to ``n``
    values), which makes a dense bincount infeasible.  A stable (radix)
    sort on the composite key groups equal ``(row, label)`` pairs; segment
    sums then produce, per row, the candidate labels in ascending order.

    In addition to the ``(row_starts, labels, sums)`` triple this also
    returns, per row, the reference ``argmax`` under label propagation's
    tie rule (highest sum, then smallest label) as ``best_labels`` so rows
    without intra-chunk patches skip the scalar candidate scan entirely.
    Rows without candidates get best label ``-1``.  ``labels`` and
    ``sums`` stay NumPy arrays: only the (rare) rows that need an
    intra-chunk patch ever read them, so converting them wholesale to
    Python lists would dominate the chunk cost.
    """
    if rows.shape[0] == 0:
        empty = np.empty(0, dtype=np.int64)
        return [0] * (num_rows + 1), empty, np.empty(0), [-1] * num_rows
    modulus = np.int64(modulus)
    composite = rows * modulus + labels
    order = np.argsort(composite, kind="stable")
    sorted_keys = composite[order]
    sorted_weights = weights[order]
    starts = np.concatenate([[0], np.flatnonzero(np.diff(sorted_keys)) + 1])
    sums = np.add.reduceat(sorted_weights, starts)
    keys = sorted_keys[starts]
    seg_rows = keys // modulus
    seg_labels = keys % modulus
    row_starts = np.searchsorted(seg_rows, np.arange(num_rows + 1))
    # Per-row argmax with ties to the smallest label: segments are sorted
    # by label within a row, so the first occurrence of the row maximum is
    # the reference winner.
    nonempty = np.diff(row_starts) > 0
    row_best = np.full(num_rows, -1, dtype=np.int64)
    if nonempty.any():
        lead = row_starts[:-1][nonempty]
        maxima = np.maximum.reduceat(sums, lead)
        spread = np.repeat(maxima, np.diff(row_starts)[nonempty])
        positions = np.arange(sums.shape[0], dtype=np.int64)
        hit = np.where(sums == spread, positions, sums.shape[0])
        first = np.minimum.reduceat(hit, lead)
        row_best[nonempty] = seg_labels[first]
    return row_starts.tolist(), seg_labels, sums, row_best.tolist()


def intra_chunk_links(
    rows: np.ndarray,
    neighbors: np.ndarray,
    weights: np.ndarray,
    position_of: np.ndarray,
) -> tuple[list[int], list[int], list[float]]:
    """Edges whose *earlier* endpoint sits in the same chunk.

    ``position_of`` maps dense vertex ids to their chunk position (or a
    negative value for vertices outside the chunk).  Returns, grouped by
    the later endpoint's row (ascending, because ``rows`` is), the chunk
    position of the earlier endpoint and the edge weight.  The stream
    loops use these to patch the snapshot counts when the earlier endpoint
    was labelled after the chunk gather.
    """
    neighbor_pos = position_of[neighbors]
    mask = (neighbor_pos >= 0) & (neighbor_pos < rows)
    return (
        rows[mask].tolist(),
        neighbor_pos[mask].tolist(),
        weights[mask].tolist(),
    )
