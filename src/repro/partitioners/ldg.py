"""Linear Deterministic Greedy streaming partitioner (Stanton & Kliot).

The "Stanton et al." row of Table I.  Vertices arrive one at a time
together with their adjacency list; each is immediately and permanently
assigned to the partition

``argmax_i |N(v) ∩ P_i| * (1 - |P_i| / C)``

where ``C = n / k`` is the per-partition vertex capacity.  The linear
penalty keeps partitions balanced in vertex count while the intersection
term favours locality.  Ties break towards the currently smallest
partition.

Two implementations share this module: the per-vertex dictionary
reference (:meth:`LinearDeterministicGreedy.partition` on an
:class:`UndirectedGraph`) and a chunked CSR kernel
(:meth:`LinearDeterministicGreedy.partition_array`) that produces the
same assignment for the same seed and stream order — pinned in
``tests/test_csr_partitioners.py``.  Both stream vertices in ascending-id
canonical order (sorted before shuffling, sorted neighbour expansion in
BFS), so the result depends only on the graph, not on dictionary
insertion order.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.graph.conversion import ensure_undirected
from repro.graph.csr import CSRGraph
from repro.graph.digraph import DiGraph
from repro.graph.undirected import UndirectedGraph
from repro.partitioners.base import Partitioner
from repro.partitioners.csr_stream import (
    DEFAULT_CHUNK,
    gather_chunk,
    intra_chunk_links,
    merge_intra_chunk_patches,
    rowwise_label_counts,
    stream_order,
)


class LinearDeterministicGreedy(Partitioner):
    """One-pass streaming partitioner with a linear balance penalty.

    Parameters
    ----------
    capacity_slack:
        Multiplier on the ideal per-partition vertex count used as the
        capacity ``C``; 1.0 reproduces the original formulation.
    stream_order:
        ``"natural"`` streams vertices in id order, ``"random"`` shuffles
        them (with ``seed``), ``"bfs"`` approximates a crawl order.
    seed:
        Seed for the random stream order.
    """

    name = "ldg"

    def __init__(
        self,
        capacity_slack: float = 1.0,
        stream_order: str = "random",
        seed: int | None = 0,
    ) -> None:
        if stream_order not in ("natural", "random", "bfs"):
            raise ValueError(f"unknown stream order {stream_order!r}")
        self.capacity_slack = capacity_slack
        self.stream_order = stream_order
        self.seed = seed

    # ------------------------------------------------------------------
    def _stream(self, graph: UndirectedGraph) -> list[int]:
        vertices = sorted(graph.vertices())
        if self.stream_order == "natural":
            return vertices
        rng = np.random.default_rng(self.seed)
        rng.shuffle(vertices)
        if self.stream_order == "random":
            return vertices
        # BFS order from a random root, covering all components.  The
        # queue is a deque (popleft is O(1); a list's pop(0) made this
        # O(n^2)) and neighbours expand in ascending id order so the
        # traversal is canonical.
        order: list[int] = []
        visited: set[int] = set()
        for root in vertices:
            if root in visited:
                continue
            queue: deque[int] = deque([root])
            visited.add(root)
            while queue:
                current = queue.popleft()
                order.append(current)
                for neighbour in sorted(graph.neighbors(current)):
                    if neighbour not in visited:
                        visited.add(neighbour)
                        queue.append(neighbour)
        return order

    # ------------------------------------------------------------------
    def partition(
        self, graph: UndirectedGraph | DiGraph | CSRGraph, num_partitions: int
    ) -> dict[int, int]:
        """Stream vertices through the LDG greedy rule and return the assignment."""
        if isinstance(graph, CSRGraph):
            labels = self.partition_array(graph, num_partitions)
            return {
                int(vertex): int(label)
                for vertex, label in zip(graph.original_ids.tolist(), labels.tolist())
            }
        undirected = ensure_undirected(graph)
        n = undirected.num_vertices
        if n == 0:
            return {}
        capacity = self.capacity_slack * n / num_partitions
        sizes = np.zeros(num_partitions, dtype=np.float64)
        assignment: dict[int, int] = {}

        for vertex in self._stream(undirected):
            neighbour_counts = np.zeros(num_partitions, dtype=np.float64)
            for neighbour, weight in undirected.neighbors(vertex).items():
                label = assignment.get(neighbour)
                if label is not None:
                    neighbour_counts[label] += weight
            penalties = 1.0 - sizes / capacity
            scores = neighbour_counts * np.clip(penalties, 0.0, None)
            best = int(np.argmax(scores))
            if scores[best] <= 0.0:
                # No placed neighbours (or every preferred partition full):
                # fall back to the least loaded partition.
                best = int(np.argmin(sizes))
            assignment[vertex] = best
            sizes[best] += 1.0
        return assignment

    # ------------------------------------------------------------------
    def partition_array(
        self, graph: CSRGraph, num_partitions: int, chunk: int = DEFAULT_CHUNK
    ) -> np.ndarray:
        """CSR fast path: identical assignments to :meth:`partition`.

        Streams the same vertex order but gathers neighbour-label counts
        one chunk at a time with flat array operations; the scalar loop
        only scores the (few) candidate partitions of each vertex and
        patches intra-chunk contributions, so the cost per vertex is
        bounded by its candidate count rather than the dictionary and
        ``ndarray`` overhead of the reference path.
        """
        n = graph.num_vertices
        k = num_partitions
        if n == 0:
            return np.empty(0, dtype=np.int64)
        indptr, indices = graph.indptr, graph.indices
        # Raw (possibly memory-mapped) weights: gather_chunk converts each
        # gathered slice to float64, so no full-length float copy exists.
        weights_f = graph.weights
        capacity = self.capacity_slack * n / k
        order = stream_order(graph, self.stream_order, self.seed)

        labels = np.full(n, k, dtype=np.int64)  # k == "unassigned" sentinel
        position_of = np.full(n, -1, dtype=np.int64)
        sizes = [0.0] * k
        sizes_np = np.zeros(k, dtype=np.float64)
        # Penalty per partition, maintained incrementally with the exact
        # arithmetic of the reference (`clip(1 - size / capacity, 0, None)`).
        penalty = [1.0 - 0.0 / capacity] * k
        for start in range(0, n, chunk):
            chunk_vertices = order[start : start + chunk]
            rows, neighbors, wts = gather_chunk(indptr, indices, weights_f, chunk_vertices)
            graph.release_pages()
            gathered = labels[neighbors]
            assigned = gathered < k
            row_starts, cand_labels, cand_sums = rowwise_label_counts(
                rows[assigned],
                gathered[assigned],
                wts[assigned],
                chunk_vertices.shape[0],
                k,
            )
            position_of[chunk_vertices] = np.arange(chunk_vertices.shape[0])
            patch_rows, patch_sources, patch_weights = intra_chunk_links(
                rows, neighbors, wts, position_of
            )
            position_of[chunk_vertices] = -1

            chunk_labels = [0] * chunk_vertices.shape[0]
            patch_index = 0
            num_patches = len(patch_rows)
            for row in range(chunk_vertices.shape[0]):
                lo, hi = row_starts[row], row_starts[row + 1]
                if patch_index < num_patches and patch_rows[patch_index] == row:
                    merged, patch_index = merge_intra_chunk_patches(
                        row, lo, hi, cand_labels, cand_sums, chunk_labels,
                        patch_rows, patch_sources, patch_weights, patch_index,
                    )
                    best = -1
                    best_score = 0.0
                    for label in sorted(merged):
                        score = merged[label] * penalty[label]
                        if score > best_score:
                            best_score = score
                            best = label
                else:
                    best = -1
                    best_score = 0.0
                    for t in range(lo, hi):
                        label = cand_labels[t]
                        score = cand_sums[t] * penalty[label]
                        if score > best_score:
                            best_score = score
                            best = label
                if best < 0:
                    # All scores zero: least-loaded fallback (first minimum,
                    # like np.argmin on the reference path).
                    best = int(sizes_np.argmin())
                chunk_labels[row] = best
                new_size = sizes[best] + 1.0
                sizes[best] = new_size
                sizes_np[best] = new_size
                updated = 1.0 - new_size / capacity
                penalty[best] = updated if updated > 0.0 else 0.0
            labels[chunk_vertices] = chunk_labels
        return labels
