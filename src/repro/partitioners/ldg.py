"""Linear Deterministic Greedy streaming partitioner (Stanton & Kliot).

The "Stanton et al." row of Table I.  Vertices arrive one at a time
together with their adjacency list; each is immediately and permanently
assigned to the partition

``argmax_i |N(v) ∩ P_i| * (1 - |P_i| / C)``

where ``C = n / k`` is the per-partition vertex capacity.  The linear
penalty keeps partitions balanced in vertex count while the intersection
term favours locality.  Ties break towards the currently smallest
partition.
"""

from __future__ import annotations

import numpy as np

from repro.graph.conversion import ensure_undirected
from repro.graph.digraph import DiGraph
from repro.graph.undirected import UndirectedGraph
from repro.partitioners.base import Partitioner


class LinearDeterministicGreedy(Partitioner):
    """One-pass streaming partitioner with a linear balance penalty.

    Parameters
    ----------
    capacity_slack:
        Multiplier on the ideal per-partition vertex count used as the
        capacity ``C``; 1.0 reproduces the original formulation.
    stream_order:
        ``"natural"`` streams vertices in id order, ``"random"`` shuffles
        them (with ``seed``), ``"bfs"`` approximates a crawl order.
    seed:
        Seed for the random stream order.
    """

    name = "ldg"

    def __init__(
        self,
        capacity_slack: float = 1.0,
        stream_order: str = "random",
        seed: int | None = 0,
    ) -> None:
        if stream_order not in ("natural", "random", "bfs"):
            raise ValueError(f"unknown stream order {stream_order!r}")
        self.capacity_slack = capacity_slack
        self.stream_order = stream_order
        self.seed = seed

    # ------------------------------------------------------------------
    def _stream(self, graph: UndirectedGraph) -> list[int]:
        vertices = list(graph.vertices())
        if self.stream_order == "natural":
            return sorted(vertices)
        rng = np.random.default_rng(self.seed)
        if self.stream_order == "random":
            rng.shuffle(vertices)
            return vertices
        # BFS order from a random root, covering all components.
        order: list[int] = []
        visited: set[int] = set()
        rng.shuffle(vertices)
        for root in vertices:
            if root in visited:
                continue
            queue = [root]
            visited.add(root)
            while queue:
                current = queue.pop(0)
                order.append(current)
                for neighbour in graph.neighbors(current):
                    if neighbour not in visited:
                        visited.add(neighbour)
                        queue.append(neighbour)
        return order

    # ------------------------------------------------------------------
    def partition(
        self, graph: UndirectedGraph | DiGraph, num_partitions: int
    ) -> dict[int, int]:
        """Stream vertices through the LDG greedy rule and return the assignment."""
        undirected = ensure_undirected(graph)
        n = undirected.num_vertices
        if n == 0:
            return {}
        capacity = self.capacity_slack * n / num_partitions
        sizes = np.zeros(num_partitions, dtype=np.float64)
        assignment: dict[int, int] = {}

        for vertex in self._stream(undirected):
            neighbour_counts = np.zeros(num_partitions, dtype=np.float64)
            for neighbour, weight in undirected.neighbors(vertex).items():
                label = assignment.get(neighbour)
                if label is not None:
                    neighbour_counts[label] += weight
            penalties = 1.0 - sizes / capacity
            scores = neighbour_counts * np.clip(penalties, 0.0, None)
            best = int(np.argmax(scores))
            if scores[best] <= 0.0:
                # No placed neighbours (or every preferred partition full):
                # fall back to the least loaded partition.
                best = int(np.argmin(sizes))
            assignment[vertex] = best
            sizes[best] += 1.0
        return assignment
