"""A multilevel k-way partitioner in the spirit of METIS.

The paper compares Spinner against METIS (Karypis & Kumar), the offline
"golden standard": excellent locality and balance at the cost of a global
view of the graph.  Since the real METIS is a C library outside this
environment, this module implements the same three-phase multilevel
scheme from scratch:

1. **Coarsening** — repeatedly contract a heavy-edge matching until the
   graph is small (vertex weights accumulate, parallel edges merge their
   weights), preserving the structure that matters for cuts;
2. **Initial partitioning** — greedy region growing on the coarsest graph:
   ``k`` balanced regions are grown around spread-out seeds, picking at
   each step the frontier vertex with the strongest connection to the
   region;
3. **Uncoarsening with refinement** — the assignment is projected back
   level by level and improved with a boundary Kernighan–Lin/FM pass that
   moves border vertices to the neighbouring partition with the highest
   gain whenever the balance constraint allows it.

The result behaves like the paper's METIS column: slightly better locality
than Spinner with very tight balance, at a much higher (and inherently
centralized) computational cost.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.conversion import ensure_undirected
from repro.graph.digraph import DiGraph
from repro.graph.undirected import UndirectedGraph
from repro.partitioners.base import Partitioner


@dataclass
class _Level:
    """One level of the coarsening hierarchy."""

    graph: UndirectedGraph
    vertex_weight: dict[int, float]
    # Mapping of each vertex of this level to its parent (coarser) vertex.
    parent: dict[int, int] | None = None


class MetisLikePartitioner(Partitioner):
    """Multilevel partitioner: coarsen, partition, refine.

    Parameters
    ----------
    balance_tolerance:
        Allowed imbalance of the vertex-weight (edge-load) balance, e.g.
        1.03 allows partitions 3% above the ideal share — METIS' default
        ballpark and the balance the paper reports for it.
    coarsest_size:
        Coarsening stops once the graph has at most
        ``max(coarsest_size, 4 * k)`` vertices.
    refinement_passes:
        Number of boundary refinement sweeps per level.
    seed:
        Seed for the matching and seeding randomness.
    """

    name = "metis-like"

    def __init__(
        self,
        balance_tolerance: float = 1.03,
        coarsest_size: int = 128,
        refinement_passes: int = 4,
        seed: int | None = 0,
    ) -> None:
        if balance_tolerance < 1.0:
            raise ValueError("balance_tolerance must be at least 1")
        self.balance_tolerance = balance_tolerance
        self.coarsest_size = coarsest_size
        self.refinement_passes = refinement_passes
        self.seed = seed

    # ------------------------------------------------------------------
    # public entry point
    # ------------------------------------------------------------------
    def partition(
        self, graph: UndirectedGraph | DiGraph, num_partitions: int
    ) -> dict[int, int]:
        """Coarsen, partition the coarsest graph and refine back (multilevel)."""
        undirected = ensure_undirected(graph)
        if undirected.num_vertices == 0:
            return {}
        rng = np.random.default_rng(self.seed)
        # Vertex weight = weighted degree, so balance matches the paper's
        # edge-based load definition.
        base_weights = {
            v: float(max(undirected.weighted_degree(v), 1)) for v in undirected.vertices()
        }
        levels = self._coarsen(undirected, base_weights, num_partitions, rng)
        coarsest = levels[-1]
        assignment = self._initial_partition(coarsest, num_partitions, rng)
        assignment = self._refine(coarsest, assignment, num_partitions)
        # Project back through the hierarchy, refining at each level.
        for level_index in range(len(levels) - 2, -1, -1):
            finer = levels[level_index]
            assert finer.parent is not None
            assignment = {
                vertex: assignment[finer.parent[vertex]] for vertex in finer.graph.vertices()
            }
            assignment = self._refine(finer, assignment, num_partitions)
        return assignment

    # ------------------------------------------------------------------
    # phase 1: coarsening
    # ------------------------------------------------------------------
    def _coarsen(
        self,
        graph: UndirectedGraph,
        vertex_weight: dict[int, float],
        num_partitions: int,
        rng: np.random.Generator,
    ) -> list[_Level]:
        levels = [_Level(graph=graph, vertex_weight=vertex_weight)]
        target = max(self.coarsest_size, 4 * num_partitions)
        while levels[-1].graph.num_vertices > target:
            current = levels[-1]
            matching = self._heavy_edge_matching(current, rng)
            coarse, coarse_weights, parent = self._contract(current, matching)
            if coarse.num_vertices >= current.graph.num_vertices:
                break  # no progress; stop coarsening
            current.parent = parent
            levels.append(_Level(graph=coarse, vertex_weight=coarse_weights))
        return levels

    def _heavy_edge_matching(
        self, level: _Level, rng: np.random.Generator
    ) -> dict[int, int]:
        """Match each unmatched vertex with its heaviest unmatched neighbour."""
        graph = level.graph
        vertices = list(graph.vertices())
        rng.shuffle(vertices)
        matched: dict[int, int] = {}
        for vertex in vertices:
            if vertex in matched:
                continue
            best_neighbour = None
            best_weight = -1.0
            for neighbour, weight in graph.neighbors(vertex).items():
                if neighbour in matched or neighbour == vertex:
                    continue
                if weight > best_weight:
                    best_weight = weight
                    best_neighbour = neighbour
            if best_neighbour is None:
                matched[vertex] = vertex
            else:
                matched[vertex] = best_neighbour
                matched[best_neighbour] = vertex
        return matched

    def _contract(
        self, level: _Level, matching: dict[int, int]
    ) -> tuple[UndirectedGraph, dict[int, float], dict[int, int]]:
        graph = level.graph
        parent: dict[int, int] = {}
        coarse_weights: dict[int, float] = {}
        next_id = 0
        for vertex in graph.vertices():
            if vertex in parent:
                continue
            partner = matching.get(vertex, vertex)
            parent[vertex] = next_id
            weight = level.vertex_weight[vertex]
            if partner != vertex and partner not in parent:
                parent[partner] = next_id
                weight += level.vertex_weight[partner]
            coarse_weights[next_id] = weight
            next_id += 1
        coarse = UndirectedGraph()
        for coarse_id in range(next_id):
            coarse.add_vertex(coarse_id)
        edge_weights: dict[tuple[int, int], int] = {}
        for u, v, weight in graph.edges():
            cu, cv = parent[u], parent[v]
            if cu == cv:
                continue
            key = (cu, cv) if cu < cv else (cv, cu)
            edge_weights[key] = edge_weights.get(key, 0) + weight
        for (cu, cv), weight in edge_weights.items():
            coarse.add_edge(cu, cv, weight=weight)
        return coarse, coarse_weights, parent

    # ------------------------------------------------------------------
    # phase 2: initial partitioning (greedy region growing)
    # ------------------------------------------------------------------
    def _initial_partition(
        self, level: _Level, num_partitions: int, rng: np.random.Generator
    ) -> dict[int, int]:
        graph = level.graph
        weights = level.vertex_weight
        vertices = list(graph.vertices())
        total_weight = sum(weights[v] for v in vertices)
        target = total_weight / num_partitions

        assignment: dict[int, int] = {}
        loads = np.zeros(num_partitions, dtype=np.float64)
        # Seeds: high-degree vertices spread over the graph.
        seeds = sorted(vertices, key=lambda v: -graph.degree(v))
        seed_iter = iter(seeds)

        for label in range(num_partitions):
            seed = next((s for s in seed_iter if s not in assignment), None)
            if seed is None:
                break
            frontier = {seed}
            while frontier and loads[label] < target:
                # Pick the frontier vertex with the strongest connection to
                # the growing region.
                best_vertex = None
                best_connection = -1.0
                for candidate in frontier:
                    connection = sum(
                        w
                        for nbr, w in graph.neighbors(candidate).items()
                        if assignment.get(nbr) == label
                    )
                    if connection > best_connection:
                        best_connection = connection
                        best_vertex = candidate
                assert best_vertex is not None
                frontier.discard(best_vertex)
                if best_vertex in assignment:
                    continue
                assignment[best_vertex] = label
                loads[label] += weights[best_vertex]
                for neighbour in graph.neighbors(best_vertex):
                    if neighbour not in assignment:
                        frontier.add(neighbour)
        # Any vertex not reached by region growing goes to the lightest part.
        for vertex in vertices:
            if vertex not in assignment:
                label = int(np.argmin(loads))
                assignment[vertex] = label
                loads[label] += weights[vertex]
        return assignment

    # ------------------------------------------------------------------
    # phase 3: boundary refinement
    # ------------------------------------------------------------------
    def _refine(
        self,
        level: _Level,
        assignment: dict[int, int],
        num_partitions: int,
    ) -> dict[int, int]:
        graph = level.graph
        weights = level.vertex_weight
        loads = np.zeros(num_partitions, dtype=np.float64)
        for vertex, label in assignment.items():
            loads[label] += weights[vertex]
        total = loads.sum()
        max_load = self.balance_tolerance * total / num_partitions

        for _ in range(self.refinement_passes):
            moved = 0
            for vertex in graph.vertices():
                current = assignment[vertex]
                connection = np.zeros(num_partitions, dtype=np.float64)
                for neighbour, weight in graph.neighbors(vertex).items():
                    connection[assignment[neighbour]] += weight
                best_label = current
                best_gain = 0.0
                for label in range(num_partitions):
                    if label == current:
                        continue
                    if loads[label] + weights[vertex] > max_load:
                        continue
                    gain = connection[label] - connection[current]
                    if gain > best_gain:
                        best_gain = gain
                        best_label = label
                if best_label != current:
                    assignment[vertex] = best_label
                    loads[current] -= weights[vertex]
                    loads[best_label] += weights[vertex]
                    moved += 1
            if moved == 0:
                break
        return assignment
