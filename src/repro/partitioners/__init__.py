"""Baseline partitioners used in the paper's comparison (Table I).

All partitioners implement the :class:`repro.partitioners.base.Partitioner`
interface — they take an (un)directed graph plus a number of partitions and
return a ``{vertex: partition}`` mapping — so the experiment harness can
swap them freely:

* :class:`repro.partitioners.hashing.HashPartitioner` — Giraph's default
  hash partitioning, the baseline Spinner is designed to replace.
* :class:`repro.partitioners.random_part.RandomPartitioner` — uniformly
  random assignment (used to initialize Spinner and as a sanity baseline).
* :class:`repro.partitioners.ldg.LinearDeterministicGreedy` — the streaming
  heuristic of Stanton & Kliot (SIGKDD 2012).
* :class:`repro.partitioners.fennel.FennelPartitioner` — the streaming
  algorithm of Tsourakakis et al. (WSDM 2014).
* :class:`repro.partitioners.metis.MetisLikePartitioner` — a multilevel
  partitioner in the spirit of METIS (coarsen / initial partition / refine).
* :class:`repro.partitioners.wang.WangPartitioner` — the LPA-coarsening +
  METIS approach of Wang et al. (ICDE 2014), which balances on vertices.
"""

from repro.partitioners.base import Partitioner, PartitioningOutput
from repro.partitioners.fennel import FennelPartitioner
from repro.partitioners.hashing import HashPartitioner
from repro.partitioners.ldg import LinearDeterministicGreedy
from repro.partitioners.metis import MetisLikePartitioner
from repro.partitioners.random_part import RandomPartitioner
from repro.partitioners.registry import available_partitioners, make_partitioner
from repro.partitioners.wang import WangPartitioner

__all__ = [
    "FennelPartitioner",
    "HashPartitioner",
    "LinearDeterministicGreedy",
    "MetisLikePartitioner",
    "Partitioner",
    "PartitioningOutput",
    "RandomPartitioner",
    "WangPartitioner",
    "available_partitioners",
    "make_partitioner",
]
