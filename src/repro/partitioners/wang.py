"""The Wang et al. partitioner (ICDE 2014): LPA coarsening + METIS.

The "Wang et al." row of Table I.  The approach ("How to Partition a
Billion-Node Graph") first shrinks the graph by running a size-bounded
label propagation that groups vertices into small communities, contracts
each community into a super-vertex, partitions the coarse graph with METIS
*balancing on vertex count*, and finally projects the coarse assignment
back to the original vertices.

Two properties of the original are deliberately preserved because the
Spinner paper calls them out:

* the method balances the number of *vertices*, not edges, so on skewed
  graphs its edge-load balance ``rho`` is poor (Table I shows values up to
  2.6), and
* the coarsening can hide cut edges inside communities whose members end
  up split anyway, giving lower locality than Spinner for large ``k``.

The expensive stage — the label-propagation sweeps over the full graph —
has a chunked CSR kernel (:meth:`WangPartitioner.partition_array`) that
is assignment-exact with the dictionary path.  Both paths iterate
vertices and contract coarse edges in canonical ascending order, so the
result depends only on the graph and the seed.  The coarse graph is
orders of magnitude smaller than the input, so the (shared) multilevel
partitioning of it is reused unchanged by the CSR path.
"""

from __future__ import annotations

import numpy as np

from repro.graph.conversion import ensure_undirected
from repro.graph.csr import CSRGraph
from repro.graph.digraph import DiGraph
from repro.graph.undirected import UndirectedGraph
from repro.partitioners.base import Partitioner
from repro.partitioners.csr_stream import (
    DEFAULT_CHUNK,
    gather_chunk,
    rowwise_sparse_counts,
)
from repro.partitioners.metis import MetisLikePartitioner


class WangPartitioner(Partitioner):
    """LPA coarsening followed by a METIS-style partitioning of the
    coarse graph, balanced on vertex count.

    Parameters
    ----------
    max_community_fraction:
        Upper bound on a community's size as a fraction of ``n / k``;
        bounding community size keeps the coarse graph partitionable.
    lpa_iterations:
        Number of size-bounded label-propagation sweeps used to coarsen.
    seed:
        Seed for the label-propagation order.
    """

    name = "wang"

    def __init__(
        self,
        max_community_fraction: float = 0.5,
        lpa_iterations: int = 5,
        seed: int | None = 0,
    ) -> None:
        if max_community_fraction <= 0:
            raise ValueError("max_community_fraction must be positive")
        self.max_community_fraction = max_community_fraction
        self.lpa_iterations = lpa_iterations
        self.seed = seed

    # ------------------------------------------------------------------
    def _max_community_size(self, num_vertices: int, num_partitions: int) -> int:
        return max(
            2,
            int(self.max_community_fraction * num_vertices / max(num_partitions, 1)),
        )

    def _coarsen_with_lpa(
        self, graph: UndirectedGraph, num_partitions: int
    ) -> dict[int, int]:
        """Group vertices into size-bounded communities via label propagation."""
        rng = np.random.default_rng(self.seed)
        community = {vertex: vertex for vertex in graph.vertices()}
        sizes = {vertex: 1 for vertex in graph.vertices()}
        max_size = self._max_community_size(graph.num_vertices, num_partitions)
        vertices = sorted(graph.vertices())
        for _ in range(self.lpa_iterations):
            rng.shuffle(vertices)
            moved = 0
            for vertex in vertices:
                current = community[vertex]
                counts: dict[int, float] = {}
                for neighbour, weight in graph.neighbors(vertex).items():
                    label = community[neighbour]
                    counts[label] = counts.get(label, 0.0) + weight
                if not counts:
                    continue
                best = max(counts, key=lambda label: (counts[label], -label))
                if best == current:
                    continue
                if sizes.get(best, 0) >= max_size:
                    continue
                community[vertex] = best
                sizes[best] = sizes.get(best, 0) + 1
                sizes[current] -= 1
                moved += 1
            if moved == 0:
                break
        return community

    # ------------------------------------------------------------------
    def partition(
        self, graph: UndirectedGraph | DiGraph | CSRGraph, num_partitions: int
    ) -> dict[int, int]:
        """Coarsen with LPA, then partition the communities METIS-style."""
        if isinstance(graph, CSRGraph):
            labels = self.partition_array(graph, num_partitions)
            return {
                int(vertex): int(label)
                for vertex, label in zip(graph.original_ids.tolist(), labels.tolist())
            }
        undirected = ensure_undirected(graph)
        if undirected.num_vertices == 0:
            return {}
        community = self._coarsen_with_lpa(undirected, num_partitions)

        # Contract communities into super-vertices.
        community_ids = sorted(set(community.values()))
        dense_of = {cid: index for index, cid in enumerate(community_ids)}
        edge_weights: dict[tuple[int, int], int] = {}
        for u, v, weight in undirected.edges():
            cu = dense_of[community[u]]
            cv = dense_of[community[v]]
            if cu == cv:
                continue
            key = (cu, cv) if cu < cv else (cv, cu)
            edge_weights[key] = edge_weights.get(key, 0) + weight
        community_sizes = {dense_of[cid]: 0.0 for cid in community_ids}
        for cid in community.values():
            community_sizes[dense_of[cid]] += 1.0
        coarse_assignment = self._partition_coarse(
            len(community_ids), edge_weights, community_sizes, num_partitions
        )

        return {
            vertex: coarse_assignment[dense_of[community[vertex]]]
            for vertex in undirected.vertices()
        }

    def _partition_coarse(
        self,
        num_communities: int,
        edge_weights: dict[tuple[int, int], int],
        community_sizes: dict[int, float],
        num_partitions: int,
    ) -> dict[int, int]:
        """Build the coarse graph canonically and partition it METIS-style.

        Edges are inserted in ascending ``(u, v)`` order so the coarse
        graph's adjacency iteration order — which the multilevel
        partitioner's matching phase is sensitive to — is identical no
        matter which path (dictionary or CSR) produced the contraction.
        """
        coarse = UndirectedGraph()
        for index in range(num_communities):
            coarse.add_vertex(index)
        for (cu, cv) in sorted(edge_weights):
            coarse.add_edge(cu, cv, weight=edge_weights[(cu, cv)])
        # Balance on the *number of original vertices* per partition — the
        # vertex balance of Wang et al.
        metis = _VertexBalancedMetis(seed=self.seed)
        return metis.partition_with_weights(coarse, num_partitions, community_sizes)

    # ------------------------------------------------------------------
    def partition_array(
        self, graph: CSRGraph, num_partitions: int, chunk: int = DEFAULT_CHUNK
    ) -> np.ndarray:
        """CSR fast path: identical assignments to :meth:`partition`.

        The LPA sweeps run on the chunked CSR machinery; the contraction
        and the final projection are single vectorized passes.  On top of
        the chunked gathers the kernel skips vertices that provably cannot
        move: a vertex needs re-evaluation only if a neighbour changed
        community since its last evaluation or its last attempted move was
        blocked by the community size bound (the bound may have freed up
        since).  Because skipped evaluations could not have changed any
        state, the skip is assignment-exact.

        The dictionary reference cannot represent self-loops or
        non-positive edge weights (``UndirectedGraph`` rejects both), so
        the CSR kernel treats such entries as absent: a graph containing
        either is rebuilt without them before partitioning, which keeps
        the result consistent with the equivalent clean graph.

        Accepts graphs on either storage tier (the mmap tier's arrays are
        byte-identical, so the assignments are too), but unlike LDG and
        Fennel this kernel materializes the edge arrays internally — the
        LPA sweeps consult arbitrary adjacency lists every round, so it
        does not run at ``O(chunk)`` memory on the mmap tier.
        """
        n = graph.num_vertices
        if n == 0:
            return np.empty(0, dtype=np.int64)
        sources, targets, weights = graph.edge_array()
        has_nonpositive = weights.shape[0] and int(weights.min()) <= 0
        has_self_loops = bool((sources == targets).any())
        if has_nonpositive or has_self_loops:
            keep = (sources < targets) & (weights > 0)
            clean = CSRGraph.from_edge_list(
                np.stack([sources[keep], targets[keep]], axis=1),
                n,
                weights=weights[keep],
            )
            return self.partition_array(clean, num_partitions, chunk)
        community = self._coarsen_with_lpa_csr(graph, num_partitions, chunk)

        # Contract communities into super-vertices (vectorized).
        community_ids = np.unique(community)
        dense = np.searchsorted(community_ids, community)
        forward = sources < targets
        cu = dense[sources[forward]]
        cv = dense[targets[forward]]
        wf = weights[forward]
        crossing = cu != cv
        lo = np.minimum(cu[crossing], cv[crossing])
        hi = np.maximum(cu[crossing], cv[crossing])
        crossing_weights = wf[crossing]
        num_communities = int(community_ids.shape[0])
        key = lo * np.int64(num_communities) + hi
        order = np.argsort(key, kind="stable")
        sorted_key = key[order]
        sorted_w = crossing_weights[order]
        if sorted_key.shape[0]:
            starts = np.concatenate([[0], np.flatnonzero(np.diff(sorted_key)) + 1])
            sums = np.add.reduceat(sorted_w, starts)
            unique_keys = sorted_key[starts]
        else:
            sums = np.empty(0, dtype=np.int64)
            unique_keys = np.empty(0, dtype=np.int64)
        edge_weights = {
            (int(k0) // num_communities, int(k0) % num_communities): int(w0)
            for k0, w0 in zip(unique_keys.tolist(), sums.tolist())
        }
        size_counts = np.bincount(dense, minlength=num_communities).astype(np.float64)
        community_sizes = {index: float(s) for index, s in enumerate(size_counts)}
        coarse_assignment = self._partition_coarse(
            num_communities, edge_weights, community_sizes, num_partitions
        )
        coarse_labels = np.asarray(
            [coarse_assignment[index] for index in range(num_communities)],
            dtype=np.int64,
        )
        return coarse_labels[dense]

    # ------------------------------------------------------------------
    def _coarsen_with_lpa_csr(
        self, graph: CSRGraph, num_partitions: int, chunk: int
    ) -> np.ndarray:
        """Size-bounded LPA on CSR arrays, bit-exact with the dict sweeps."""
        n = graph.num_vertices
        indptr, indices = graph.indptr, graph.indices
        weights_f = graph.weights.astype(np.float64)
        indptr_l = indptr.tolist()
        indices_l = indices.tolist()
        weights_l = weights_f.tolist()
        rng = np.random.default_rng(self.seed)
        community = np.arange(n, dtype=np.int64)
        community_l = community.tolist()
        sizes = [1] * n
        max_size = self._max_community_size(n, num_partitions)
        vertices = list(range(n))
        needs_eval = np.ones(n, dtype=bool)
        # Per-chunk bookkeeping: chunk position of every chunk member, and
        # the gathered-row index of the members selected for evaluation.
        position_of = np.full(n, -1, dtype=np.int64)
        gathered_row_of = np.full(n, -1, dtype=np.int64)

        for _ in range(self.lpa_iterations):
            rng.shuffle(vertices)
            moved = 0
            order = np.asarray(vertices, dtype=np.int64)
            for start in range(0, n, chunk):
                window = order[start : start + chunk]
                selected = needs_eval[window]
                gathered = window[selected]
                num_rows = gathered.shape[0]
                if num_rows:
                    rows, neighbors, wts = gather_chunk(
                        indptr, indices, weights_f, gathered
                    )
                    row_starts, cand_labels, cand_sums, row_best = rowwise_sparse_counts(
                        rows, community[neighbors], wts, num_rows, n
                    )
                    position_of[window] = np.arange(window.shape[0])
                    gathered_row_of[gathered] = np.arange(num_rows)
                    # Intra-chunk links, grouped by the *earlier* endpoint's
                    # gathered row: when that endpoint moves, the later
                    # endpoint either gets its snapshot counts patched (if
                    # it was gathered) or is flagged for the fallback path.
                    window_positions = np.flatnonzero(selected)
                    neighbor_window_pos = position_of[neighbors]
                    in_chunk_later = neighbor_window_pos > window_positions[rows]
                    link_rows = rows[in_chunk_later].tolist()
                    link_targets = neighbors[in_chunk_later].tolist()
                    link_target_rows = gathered_row_of[
                        neighbors[in_chunk_later]
                    ].tolist()
                    link_weights = wts[in_chunk_later].tolist()
                else:
                    row_starts, row_best = [0], []
                    cand_labels = cand_sums = np.empty(0)
                    link_rows, link_targets, link_target_rows, link_weights = [], [], [], []

                patches: dict[int, dict[int, float]] = {}
                newly_dirty: set[int] = set()
                moved_vertices: list[int] = []
                moved_labels: list[int] = []
                link_index = 0
                num_links = len(link_rows)
                row = 0
                for vertex, was_selected in zip(window.tolist(), selected.tolist()):
                    if was_selected:
                        this_row = row
                        row += 1
                        pending = patches.pop(this_row, None)
                        if pending is None:
                            best = row_best[this_row]
                            if best < 0:
                                # No neighbours: never re-evaluate.
                                needs_eval[vertex] = False
                                while link_index < num_links and link_rows[link_index] == this_row:
                                    link_index += 1
                                continue
                        else:
                            lo, hi = row_starts[this_row], row_starts[this_row + 1]
                            merged = dict(
                                zip(cand_labels[lo:hi].tolist(), cand_sums[lo:hi].tolist())
                            )
                            for label, delta in pending.items():
                                merged[label] = merged.get(label, 0.0) + delta
                            # Highest patched sum, ties to the smallest label
                            # (label propagation's rule) — iteration order of
                            # the dict is irrelevant to this total order.
                            best = -1
                            best_sum = 0.0
                            for label, value in merged.items():
                                if value > best_sum or (value == best_sum and label < best):
                                    best_sum = value
                                    best = label
                            if best < 0:
                                needs_eval[vertex] = False
                                while link_index < num_links and link_rows[link_index] == this_row:
                                    link_index += 1
                                continue
                    else:
                        if vertex not in newly_dirty:
                            continue
                        # Dirtied by a move earlier in this same chunk after
                        # the gather: evaluate from the live arrays.
                        lo, hi = indptr_l[vertex], indptr_l[vertex + 1]
                        if lo == hi:
                            continue
                        fallback: dict[int, float] = {}
                        for t in range(lo, hi):
                            label = community_l[indices_l[t]]
                            fallback[label] = fallback.get(label, 0.0) + weights_l[t]
                        best = -1
                        best_sum = 0.0
                        for label, value in fallback.items():
                            if value > best_sum or (value == best_sum and label < best):
                                best_sum = value
                                best = label
                        this_row = -1
                    current = community_l[vertex]
                    if best == current:
                        needs_eval[vertex] = False
                        if this_row >= 0:
                            while link_index < num_links and link_rows[link_index] == this_row:
                                link_index += 1
                        continue
                    if sizes[best] >= max_size:
                        # Size-blocked: stays flagged so the next sweep
                        # re-evaluates it (the bound may have freed up).
                        needs_eval[vertex] = True
                        if this_row >= 0:
                            while link_index < num_links and link_rows[link_index] == this_row:
                                link_index += 1
                        continue
                    needs_eval[vertex] = False
                    community_l[vertex] = best
                    sizes[best] += 1
                    sizes[current] -= 1
                    moved += 1
                    moved_vertices.append(vertex)
                    moved_labels.append(best)
                    if this_row >= 0:
                        # Patch later chunk members that saw the snapshot.
                        while link_index < num_links and link_rows[link_index] == this_row:
                            target_row = link_target_rows[link_index]
                            if target_row >= 0:
                                delta = patches.setdefault(target_row, {})
                                w0 = link_weights[link_index]
                                delta[current] = delta.get(current, 0.0) - w0
                                delta[best] = delta.get(best, 0.0) + w0
                            else:
                                newly_dirty.add(link_targets[link_index])
                            link_index += 1
                    else:
                        # Fallback move: flag in-chunk later neighbours.
                        for t in range(indptr_l[vertex], indptr_l[vertex + 1]):
                            neighbor = indices_l[t]
                            if position_of[neighbor] >= 0:
                                target_row = gathered_row_of[neighbor]
                                if target_row >= row:
                                    delta = patches.setdefault(int(target_row), {})
                                    w0 = weights_l[t]
                                    delta[current] = delta.get(current, 0.0) - w0
                                    delta[best] = delta.get(best, 0.0) + w0
                                else:
                                    newly_dirty.add(neighbor)
                position_of[window] = -1
                gathered_row_of[gathered] = -1
                if moved_vertices:
                    moved_arr = np.asarray(moved_vertices, dtype=np.int64)
                    # Sync the NumPy label view (the scalar loop only wrote
                    # the Python mirror) before the next chunk's gather.
                    community[moved_arr] = np.asarray(moved_labels, dtype=np.int64)
                    _, touched, _ = gather_chunk(indptr, indices, None, moved_arr)
                    needs_eval[touched] = True
            if moved == 0:
                break
        return community

class _VertexBalancedMetis(MetisLikePartitioner):
    """Multilevel partitioner variant balancing on supplied vertex weights."""

    name = "metis-vertex-balanced"

    def partition_with_weights(
        self,
        graph: UndirectedGraph,
        num_partitions: int,
        vertex_weights: dict[int, float],
    ) -> dict[int, int]:
        """Partition ``graph`` balancing the given per-vertex weights."""
        if graph.num_vertices == 0:
            return {}
        rng = np.random.default_rng(self.seed)
        weights = {v: float(max(vertex_weights.get(v, 1.0), 1e-9)) for v in graph.vertices()}
        levels = self._coarsen(graph, weights, num_partitions, rng)
        coarsest = levels[-1]
        assignment = self._initial_partition(coarsest, num_partitions, rng)
        assignment = self._refine(coarsest, assignment, num_partitions)
        for level_index in range(len(levels) - 2, -1, -1):
            finer = levels[level_index]
            assert finer.parent is not None
            assignment = {
                vertex: assignment[finer.parent[vertex]]
                for vertex in finer.graph.vertices()
            }
            assignment = self._refine(finer, assignment, num_partitions)
        return assignment
