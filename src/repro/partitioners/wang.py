"""The Wang et al. partitioner (ICDE 2014): LPA coarsening + METIS.

The "Wang et al." row of Table I.  The approach ("How to Partition a
Billion-Node Graph") first shrinks the graph by running a size-bounded
label propagation that groups vertices into small communities, contracts
each community into a super-vertex, partitions the coarse graph with METIS
*balancing on vertex count*, and finally projects the coarse assignment
back to the original vertices.

Two properties of the original are deliberately preserved because the
Spinner paper calls them out:

* the method balances the number of *vertices*, not edges, so on skewed
  graphs its edge-load balance ``rho`` is poor (Table I shows values up to
  2.6), and
* the coarsening can hide cut edges inside communities whose members end
  up split anyway, giving lower locality than Spinner for large ``k``.
"""

from __future__ import annotations

import numpy as np

from repro.graph.conversion import ensure_undirected
from repro.graph.digraph import DiGraph
from repro.graph.undirected import UndirectedGraph
from repro.partitioners.base import Partitioner
from repro.partitioners.metis import MetisLikePartitioner


class WangPartitioner(Partitioner):
    """LPA coarsening followed by a METIS-style partitioning of the
    coarse graph, balanced on vertex count.

    Parameters
    ----------
    max_community_fraction:
        Upper bound on a community's size as a fraction of ``n / k``;
        bounding community size keeps the coarse graph partitionable.
    lpa_iterations:
        Number of size-bounded label-propagation sweeps used to coarsen.
    seed:
        Seed for the label-propagation order.
    """

    name = "wang"

    def __init__(
        self,
        max_community_fraction: float = 0.5,
        lpa_iterations: int = 5,
        seed: int | None = 0,
    ) -> None:
        if max_community_fraction <= 0:
            raise ValueError("max_community_fraction must be positive")
        self.max_community_fraction = max_community_fraction
        self.lpa_iterations = lpa_iterations
        self.seed = seed

    # ------------------------------------------------------------------
    def _coarsen_with_lpa(
        self, graph: UndirectedGraph, num_partitions: int
    ) -> dict[int, int]:
        """Group vertices into size-bounded communities via label propagation."""
        rng = np.random.default_rng(self.seed)
        community = {vertex: vertex for vertex in graph.vertices()}
        sizes = {vertex: 1 for vertex in graph.vertices()}
        max_size = max(
            2,
            int(self.max_community_fraction * graph.num_vertices / max(num_partitions, 1)),
        )
        vertices = list(graph.vertices())
        for _ in range(self.lpa_iterations):
            rng.shuffle(vertices)
            moved = 0
            for vertex in vertices:
                current = community[vertex]
                counts: dict[int, float] = {}
                for neighbour, weight in graph.neighbors(vertex).items():
                    label = community[neighbour]
                    counts[label] = counts.get(label, 0.0) + weight
                if not counts:
                    continue
                best = max(counts, key=lambda label: (counts[label], -label))
                if best == current:
                    continue
                if sizes.get(best, 0) >= max_size:
                    continue
                community[vertex] = best
                sizes[best] = sizes.get(best, 0) + 1
                sizes[current] -= 1
                moved += 1
            if moved == 0:
                break
        return community

    # ------------------------------------------------------------------
    def partition(
        self, graph: UndirectedGraph | DiGraph, num_partitions: int
    ) -> dict[int, int]:
        """Coarsen with LPA, then partition the communities METIS-style."""
        undirected = ensure_undirected(graph)
        if undirected.num_vertices == 0:
            return {}
        community = self._coarsen_with_lpa(undirected, num_partitions)

        # Contract communities into super-vertices.
        community_ids = sorted(set(community.values()))
        dense_of = {cid: index for index, cid in enumerate(community_ids)}
        coarse = UndirectedGraph()
        for index in range(len(community_ids)):
            coarse.add_vertex(index)
        edge_weights: dict[tuple[int, int], int] = {}
        for u, v, weight in undirected.edges():
            cu = dense_of[community[u]]
            cv = dense_of[community[v]]
            if cu == cv:
                continue
            key = (cu, cv) if cu < cv else (cv, cu)
            edge_weights[key] = edge_weights.get(key, 0) + weight
        for (cu, cv), weight in edge_weights.items():
            coarse.add_edge(cu, cv, weight=weight)

        # Partition the coarse graph with the multilevel partitioner, but
        # balanced on the *number of original vertices* per partition — the
        # vertex balance of Wang et al.
        metis = _VertexBalancedMetis(seed=self.seed)
        community_sizes = {dense_of[cid]: 0.0 for cid in community_ids}
        for vertex, cid in community.items():
            community_sizes[dense_of[cid]] += 1.0
        coarse_assignment = metis.partition_with_weights(
            coarse, num_partitions, community_sizes
        )

        return {
            vertex: coarse_assignment[dense_of[community[vertex]]]
            for vertex in undirected.vertices()
        }


class _VertexBalancedMetis(MetisLikePartitioner):
    """Multilevel partitioner variant balancing on supplied vertex weights."""

    name = "metis-vertex-balanced"

    def partition_with_weights(
        self,
        graph: UndirectedGraph,
        num_partitions: int,
        vertex_weights: dict[int, float],
    ) -> dict[int, int]:
        """Partition ``graph`` balancing the given per-vertex weights."""
        if graph.num_vertices == 0:
            return {}
        rng = np.random.default_rng(self.seed)
        weights = {v: float(max(vertex_weights.get(v, 1.0), 1e-9)) for v in graph.vertices()}
        levels = self._coarsen(graph, weights, num_partitions, rng)
        coarsest = levels[-1]
        assignment = self._initial_partition(coarsest, num_partitions, rng)
        assignment = self._refine(coarsest, assignment, num_partitions)
        for level_index in range(len(levels) - 2, -1, -1):
            finer = levels[level_index]
            assert finer.parent is not None
            assignment = {
                vertex: assignment[finer.parent[vertex]]
                for vertex in finer.graph.vertices()
            }
            assignment = self._refine(finer, assignment, num_partitions)
        return assignment
