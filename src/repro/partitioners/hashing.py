"""Hash partitioning — the de-facto standard Spinner is compared against.

Giraph assigns vertex ``v`` to worker ``hash(v) mod k``.  It is trivially
balanced in vertex count and requires no computation, but it is oblivious
to the graph structure, so roughly a ``1 - 1/k`` fraction of edges end up
cut — the poor locality the paper's Figure 3(b) quantifies.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.digraph import DiGraph
from repro.graph.undirected import UndirectedGraph
from repro.partitioners.base import Partitioner


def _mix(vertex_id: int) -> int:
    """Deterministic 64-bit integer hash (splitmix64 finalizer).

    Python's builtin ``hash`` of an int is the int itself, which would make
    "hash partitioning" of contiguous ids equivalent to round-robin and
    unrealistically well balanced on some generators; a real hash spreads
    ids pseudo-randomly, which is what we model here.
    """
    z = (vertex_id + 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
    return z ^ (z >> 31)


def hash_label(vertex_id: int, num_partitions: int) -> int:
    """Scalar ``splitmix64(id) mod k`` — the single-vertex twin of
    :func:`hash_labels_array`.

    Operates on plain Python ints so a single miss in the serving layer's
    :meth:`~repro.serving.store.AssignmentSnapshot.lookup` costs no array
    allocation.  Equal to ``hash_labels_array(np.asarray([vertex_id]), k)[0]``
    for every non-negative 63-bit id (the fuzz suite in
    ``tests/test_serving_dataplane.py`` pins this).  Negative ids are
    rejected: every graph layer uses non-negative ids, and the uint64
    wrap the array helper applies to a negative input would silently
    route a corrupt id instead of surfacing the bug.
    """
    if vertex_id < 0:
        raise ValueError(f"vertex id must be non-negative, got {vertex_id}")
    return _mix(vertex_id) % num_partitions


def hash_labels_array(vertex_ids: np.ndarray, num_partitions: int) -> np.ndarray:
    """Vectorized ``_mix(id) mod k`` over an id array (identical to ``_mix``).

    Shared by :class:`HashPartitioner` and the serving layer's
    miss-fallback (:mod:`repro.serving.store`), so a vertex born after the
    current snapshot is routed to the exact partition hash partitioning
    would pick for it.
    """
    z = np.asarray(vertex_ids).astype(np.uint64) + np.uint64(0x9E3779B97F4A7C15)
    z = (z ^ (z >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
    z = (z ^ (z >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
    z = z ^ (z >> np.uint64(31))
    return (z % np.uint64(num_partitions)).astype(np.int64)


class HashPartitioner(Partitioner):
    """Assign vertex ``v`` to partition ``hash(v) mod k``."""

    name = "hash"

    def partition(
        self, graph: UndirectedGraph | DiGraph, num_partitions: int
    ) -> dict[int, int]:
        """Assign every vertex to ``hash(vertex) mod k``."""
        return {vertex: _mix(vertex) % num_partitions for vertex in graph.vertices()}

    def partition_array(self, graph: CSRGraph, num_partitions: int) -> np.ndarray:
        """Vectorized splitmix64 over the original ids (identical to ``_mix``)."""
        return hash_labels_array(graph.original_ids, num_partitions)


class ModuloPartitioner(Partitioner):
    """Plain ``v mod k`` assignment (round-robin over contiguous ids)."""

    name = "modulo"

    def partition(
        self, graph: UndirectedGraph | DiGraph, num_partitions: int
    ) -> dict[int, int]:
        """Assign every vertex to ``vertex mod k``."""
        return {vertex: vertex % num_partitions for vertex in graph.vertices()}

    def partition_array(self, graph: CSRGraph, num_partitions: int) -> np.ndarray:
        """Vectorized ``original_id mod k``."""
        return graph.original_ids % np.int64(num_partitions)
