"""Registry of partitioners by name.

The CLI and the experiment harness look partitioners up by the short names
used in the paper's tables:

``hash`` / ``modulo``
    Giraph's default placement baselines (Section V-B): ``hash(v) mod k``
    respectively ``v mod k``.
``random``
    Uniformly random assignment (Spinner's own initialization state).
``ldg``
    Linear Deterministic Greedy streaming heuristic (Stanton & Kliot).
``fennel``
    The Fennel streaming objective (Tsourakakis et al.).
``metis``
    Multilevel coarsen/partition/refine in the spirit of METIS.
``wang``
    LPA-coarsening + METIS of Wang et al. (balances vertices, not edges).
``spinner``
    FastSpinner (vectorized kernels; ``SpinnerConfig.kernel`` selects
    ``"frontier"`` or ``"dense"``).
``spinner-mmap``
    FastSpinner pinned to the out-of-core storage tier
    (``SpinnerConfig.storage="mmap"``): the CSR arrays live in on-disk
    shard files and the kernels stream them chunk-wise, so peak RSS is
    ``O(chunk + labels)`` instead of ``O(edges)`` — bit-exact with
    ``spinner``.  Accepts ``storage_dir=`` (store/spill directory) and
    ``storage_chunk=`` (half-edges per streamed chunk).
``spinner-pregel``
    Spinner as a Pregel computation; the runtime follows
    ``SpinnerConfig.engine`` (``"dict"`` by default) or an explicit
    ``engine=`` keyword.
``spinner-pregel-vector``
    Same computation pinned to the array-native vector engine
    (bit-exact with ``spinner-pregel``, orders of magnitude faster).
    Accepts ``parallel=N`` to run the supersteps across ``N``
    shared-memory worker processes, still bit-exact with serial.

The three Spinner entries accept a ``config=SpinnerConfig(...)`` keyword
(paper defaults: ``c = 1.05``, ``epsilon = 0.001``, ``w = 5``); all
factories forward their keyword arguments to the constructor.  In
particular the streaming baselines take ``stream_order=`` (``ldg``:
``"natural"``/``"random"``/``"bfs"``; ``fennel``:
``"natural"``/``"random"``) and ``seed=``, so sweeps can vary the stream
order through :func:`make_partitioner` or the CLI's ``--stream-order``.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.core.config import SpinnerConfig
from repro.partitioners.base import Partitioner
from repro.partitioners.fennel import FennelPartitioner
from repro.partitioners.hashing import HashPartitioner, ModuloPartitioner
from repro.partitioners.ldg import LinearDeterministicGreedy
from repro.partitioners.metis import MetisLikePartitioner
from repro.partitioners.random_part import RandomPartitioner
from repro.partitioners.spinner_adapter import SpinnerFastAdapter, SpinnerPregelAdapter
from repro.partitioners.wang import WangPartitioner

def _spinner_pregel_vector(**kwargs) -> SpinnerPregelAdapter:
    """Pregel Spinner pinned to the array-native vector runtime."""
    return SpinnerPregelAdapter(engine="vector", **kwargs)


def _spinner_mmap(**kwargs) -> SpinnerFastAdapter:
    """FastSpinner pinned to the out-of-core mmap storage tier."""
    kwargs.setdefault("storage", "mmap")
    return SpinnerFastAdapter(**kwargs)


_FACTORIES: dict[str, Callable[..., Partitioner]] = {
    "hash": HashPartitioner,
    "modulo": ModuloPartitioner,
    "random": RandomPartitioner,
    "ldg": LinearDeterministicGreedy,
    "fennel": FennelPartitioner,
    "metis": MetisLikePartitioner,
    "wang": WangPartitioner,
    "spinner": SpinnerFastAdapter,
    "spinner-mmap": _spinner_mmap,
    "spinner-pregel": SpinnerPregelAdapter,
    "spinner-pregel-vector": _spinner_pregel_vector,
}

#: Registry names that accept a ``config=SpinnerConfig(...)`` keyword.
SPINNER_PARTITIONERS = frozenset(
    {"spinner", "spinner-mmap", "spinner-pregel", "spinner-pregel-vector"}
)


def available_partitioners() -> list[str]:
    """Names accepted by :func:`make_partitioner`, sorted alphabetically."""
    return sorted(_FACTORIES)


def make_partitioner(name: str, **kwargs) -> Partitioner:
    """Instantiate a partitioner by name.

    ``kwargs`` are forwarded to the constructor; for the Spinner adapters a
    ``config`` keyword accepts a :class:`~repro.core.config.SpinnerConfig`.

    Raises
    ------
    KeyError
        If ``name`` is not a known partitioner.
    """
    try:
        factory = _FACTORIES[name]
    except KeyError:
        known = ", ".join(available_partitioners())
        raise KeyError(f"unknown partitioner {name!r}; available: {known}") from None
    return factory(**kwargs)


def default_spinner_config() -> SpinnerConfig:
    """The paper's default Spinner configuration (c=1.05, eps=0.001, w=5)."""
    return SpinnerConfig()
