"""Registry of partitioners by name.

The CLI and the experiment harness look partitioners up by the short names
used in the paper's tables.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.core.config import SpinnerConfig
from repro.partitioners.base import Partitioner
from repro.partitioners.fennel import FennelPartitioner
from repro.partitioners.hashing import HashPartitioner, ModuloPartitioner
from repro.partitioners.ldg import LinearDeterministicGreedy
from repro.partitioners.metis import MetisLikePartitioner
from repro.partitioners.random_part import RandomPartitioner
from repro.partitioners.spinner_adapter import SpinnerFastAdapter, SpinnerPregelAdapter
from repro.partitioners.wang import WangPartitioner

_FACTORIES: dict[str, Callable[..., Partitioner]] = {
    "hash": HashPartitioner,
    "modulo": ModuloPartitioner,
    "random": RandomPartitioner,
    "ldg": LinearDeterministicGreedy,
    "fennel": FennelPartitioner,
    "metis": MetisLikePartitioner,
    "wang": WangPartitioner,
    "spinner": SpinnerFastAdapter,
    "spinner-pregel": SpinnerPregelAdapter,
}


def available_partitioners() -> list[str]:
    """Names accepted by :func:`make_partitioner`, sorted alphabetically."""
    return sorted(_FACTORIES)


def make_partitioner(name: str, **kwargs) -> Partitioner:
    """Instantiate a partitioner by name.

    ``kwargs`` are forwarded to the constructor; for the Spinner adapters a
    ``config`` keyword accepts a :class:`~repro.core.config.SpinnerConfig`.

    Raises
    ------
    KeyError
        If ``name`` is not a known partitioner.
    """
    try:
        factory = _FACTORIES[name]
    except KeyError:
        known = ", ".join(available_partitioners())
        raise KeyError(f"unknown partitioner {name!r}; available: {known}") from None
    return factory(**kwargs)


def default_spinner_config() -> SpinnerConfig:
    """The paper's default Spinner configuration (c=1.05, eps=0.001, w=5)."""
    return SpinnerConfig()
