"""Common interface for all partitioners.

A partitioner maps every vertex of a graph to one of ``k`` partitions.
The interface is intentionally minimal so the comparison harness (Table I)
can treat Spinner, the streaming baselines and the multilevel baseline
uniformly.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass, field

import numpy as np

from repro.errors import InvalidPartitionCountError
from repro.graph.conversion import ensure_undirected
from repro.graph.csr import CSRGraph
from repro.graph.digraph import DiGraph
from repro.graph.undirected import UndirectedGraph
from repro.metrics.quality import locality, max_normalized_load


@dataclass
class PartitioningOutput:
    """Assignment plus the metadata a comparison needs."""

    assignment: dict[int, int]
    num_partitions: int
    partitioner: str
    phi: float = 0.0
    rho: float = 1.0
    metadata: dict = field(default_factory=dict)


class Partitioner:
    """Base class for partitioners.

    Subclasses set :attr:`name` and implement :meth:`partition`, returning
    a ``{vertex: partition}`` mapping with labels in
    ``[0, num_partitions)``.  :meth:`run` wraps :meth:`partition` and
    attaches the quality metrics used throughout the evaluation.
    """

    name = "base"

    def partition(
        self, graph: UndirectedGraph | DiGraph, num_partitions: int
    ) -> Mapping[int, int]:
        """Compute the assignment (must be overridden)."""
        raise NotImplementedError

    def partition_array(self, graph: CSRGraph, num_partitions: int) -> np.ndarray:
        """Partition a CSR graph and return a dense ``int64`` label array.

        Entry ``i`` is the partition of the vertex with dense id ``i``
        (original id ``graph.original_ids[i]``).  Partitioners with a CSR
        fast path override this; the default materializes a canonical
        dictionary graph (sorted vertex and edge insertion) and runs the
        regular :meth:`partition`, so every partitioner is usable from the
        array-native experiment pipeline.
        """
        from repro.partitioners.csr_stream import canonical_undirected

        assignment = self.partition(canonical_undirected(graph), num_partitions)
        return np.asarray(
            [assignment[int(v)] for v in graph.original_ids.tolist()], dtype=np.int64
        )

    def run(
        self, graph: UndirectedGraph | DiGraph, num_partitions: int
    ) -> PartitioningOutput:
        """Partition ``graph`` and report locality and balance."""
        if num_partitions <= 0:
            raise InvalidPartitionCountError(num_partitions, "must be positive")
        assignment = dict(self.partition(graph, num_partitions))
        undirected = ensure_undirected(graph)
        return PartitioningOutput(
            assignment=assignment,
            num_partitions=num_partitions,
            partitioner=self.name,
            phi=locality(undirected, assignment),
            rho=max_normalized_load(undirected, assignment, num_partitions),
        )
