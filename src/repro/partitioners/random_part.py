"""Uniformly random partitioning.

Functionally close to hash partitioning (structure-oblivious) but with an
explicit seed; used as the initial state of Spinner and as the "random"
baseline of Table IV.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.digraph import DiGraph
from repro.graph.undirected import UndirectedGraph
from repro.partitioners.base import Partitioner


class RandomPartitioner(Partitioner):
    """Assign every vertex to a uniformly random partition."""

    name = "random"

    def __init__(self, seed: int | None = None) -> None:
        self.seed = seed

    def partition(
        self, graph: UndirectedGraph | DiGraph, num_partitions: int
    ) -> dict[int, int]:
        """Assign every vertex to a uniformly random partition."""
        rng = np.random.default_rng(self.seed)
        vertices = list(graph.vertices())
        labels = rng.integers(num_partitions, size=len(vertices))
        return {vertex: int(label) for vertex, label in zip(vertices, labels)}

    def partition_array(self, graph: CSRGraph, num_partitions: int) -> np.ndarray:
        """Vectorized random labels.

        Dense vertex ``i`` receives the ``i``-th draw, which matches the
        dictionary path whenever the dictionary graph was built with
        vertices inserted in ascending id order (true for every generator
        and dataset proxy in this repository).
        """
        rng = np.random.default_rng(self.seed)
        return rng.integers(num_partitions, size=graph.num_vertices).astype(np.int64)
