"""Uniformly random partitioning.

Functionally close to hash partitioning (structure-oblivious) but with an
explicit seed; used as the initial state of Spinner and as the "random"
baseline of Table IV.
"""

from __future__ import annotations

import numpy as np

from repro.graph.digraph import DiGraph
from repro.graph.undirected import UndirectedGraph
from repro.partitioners.base import Partitioner


class RandomPartitioner(Partitioner):
    """Assign every vertex to a uniformly random partition."""

    name = "random"

    def __init__(self, seed: int | None = None) -> None:
        self.seed = seed

    def partition(
        self, graph: UndirectedGraph | DiGraph, num_partitions: int
    ) -> dict[int, int]:
        """Assign every vertex to a uniformly random partition."""
        rng = np.random.default_rng(self.seed)
        vertices = list(graph.vertices())
        labels = rng.integers(num_partitions, size=len(vertices))
        return {vertex: int(label) for vertex, label in zip(vertices, labels)}
