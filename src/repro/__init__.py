"""Reproduction of *Spinner: Scalable Graph Partitioning in the Cloud*.

This package provides a from-scratch Python implementation of the Spinner
graph partitioning algorithm (Martella et al., ICDE 2017), the Pregel-style
execution substrate it was designed for, the baseline partitioners it is
evaluated against, the analytical applications used in the paper's
evaluation, and the benchmark harness that regenerates every table and
figure of the evaluation section.

The most common entry points are:

``repro.graph``
    Graph data structures, generators and synthetic dataset proxies.

``repro.core``
    The Spinner algorithm itself, both the faithful Pregel implementation
    (:class:`repro.core.spinner.SpinnerPartitioner`) and a vectorized
    NumPy implementation (:class:`repro.core.fast.FastSpinner`).

``repro.partitioners``
    Baseline partitioners (hash, LDG, Fennel, METIS-like, Wang et al.).

``repro.pregel``
    The simulated Pregel/Giraph engine with workers, aggregators and a
    cluster cost model.

``repro.metrics``
    Partitioning quality metrics (locality ``phi``, balance ``rho``,
    the global score, partitioning difference).

``repro.experiments``
    One module per table/figure of the paper, used by ``benchmarks/``.
"""

from repro._version import __version__

__all__ = ["__version__"]
