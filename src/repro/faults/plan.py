"""Deterministic fault plans for the simulated Pregel runtimes.

Pregel's fault-tolerance story (Malewicz et al., SIGMOD 2010, §4.2) is
checkpoint at superstep boundaries and recover failed workers from the
last checkpoint.  To test that story without flaky, timing-dependent
kills, failures here are *data*: a :class:`FaultPlan` lists exactly which
faults fire at which superstep, every fault has a finite firing budget,
and retry backoff delays are drawn from a seeded RNG — so a faulted run
is as reproducible as a clean one and can be pinned byte-identical to it
after recovery.

Two fault kinds are modelled:

:class:`WorkerCrash`
    A worker dies at the start of its turn in a superstep.  The engine
    discards all partial superstep state and recovers from the latest
    checkpoint (or aborts with
    :class:`~repro.errors.RecoveryAbortedError` once the plan's
    ``max_recoveries`` budget is spent).
:class:`MessageFault`
    Message delivery at the end of a superstep fails transiently a given
    number of times.  The engine retries with exponential backoff
    (simulated, recorded in the run statistics); when the failures exceed
    ``max_delivery_retries`` the fault escalates to a worker crash and
    takes the same recovery path.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import ConfigurationError


class InjectedWorkerCrash(Exception):
    """Control-flow signal raised inside an engine when a fault fires.

    Not part of the :class:`~repro.errors.ReproError` hierarchy on
    purpose: user code should never catch it — the engine that injected
    it recovers from (or aborts on) it itself.
    """

    def __init__(self, superstep: int, worker: int, reason: str = "injected crash") -> None:
        super().__init__(f"{reason}: worker {worker} at superstep {superstep}")
        self.superstep = superstep
        self.worker = worker
        self.reason = reason


@dataclass(frozen=True)
class WorkerCrash:
    """Crash ``worker`` when superstep ``superstep`` reaches it.

    ``times`` is the firing budget: after the fault has fired that many
    times (each firing forces one recovery) it stays quiet, which is what
    lets a recovered run replay past the crash site deterministically.
    """

    superstep: int
    worker: int = 0
    times: int = 1

    def __post_init__(self) -> None:
        if self.superstep < 0:
            raise ConfigurationError("crash superstep must be non-negative")
        if self.worker < 0:
            raise ConfigurationError("crash worker must be non-negative")
        if self.times < 1:
            raise ConfigurationError("crash times must be at least 1")


@dataclass(frozen=True)
class MessageFault:
    """Fail message delivery at the end of ``superstep``.

    ``failures`` consecutive delivery attempts fail before one succeeds;
    if they exceed the plan's ``max_delivery_retries`` the fault
    escalates to a crash.  ``times`` is the firing budget, as for
    :class:`WorkerCrash`.
    """

    superstep: int
    failures: int = 1
    times: int = 1

    def __post_init__(self) -> None:
        if self.superstep < 0:
            raise ConfigurationError("message-fault superstep must be non-negative")
        if self.failures < 1:
            raise ConfigurationError("message-fault failures must be at least 1")
        if self.times < 1:
            raise ConfigurationError("message-fault times must be at least 1")


class FaultPlan:
    """A seeded, deterministic schedule of injected failures.

    Parameters
    ----------
    crashes:
        :class:`WorkerCrash` entries.
    message_faults:
        :class:`MessageFault` entries.
    seed:
        Seed of the RNG behind the backoff jitter; two runs of the same
        plan produce identical backoff schedules.
    max_recoveries:
        Crash budget for one run: recovering more than this many times
        raises :class:`~repro.errors.RecoveryAbortedError` instead of
        looping forever.
    max_delivery_retries:
        Transient delivery failures tolerated per :class:`MessageFault`
        before it escalates to a crash.
    backoff_base:
        Base delay (simulated seconds) of the exponential retry backoff.

    The plan carries mutable firing counters; engines call :meth:`reset`
    at the start of every run, so one plan instance can be reused across
    runs (e.g. the dict and vector halves of an equivalence test).
    """

    def __init__(
        self,
        crashes: tuple[WorkerCrash, ...] | list[WorkerCrash] = (),
        message_faults: tuple[MessageFault, ...] | list[MessageFault] = (),
        seed: int = 0,
        max_recoveries: int = 3,
        max_delivery_retries: int = 3,
        backoff_base: float = 0.05,
    ) -> None:
        if max_recoveries < 0:
            raise ConfigurationError("max_recoveries must be non-negative")
        if max_delivery_retries < 0:
            raise ConfigurationError("max_delivery_retries must be non-negative")
        if backoff_base <= 0:
            raise ConfigurationError("backoff_base must be positive")
        self.crashes = tuple(crashes)
        self.message_faults = tuple(message_faults)
        self.seed = seed
        self.max_recoveries = max_recoveries
        self.max_delivery_retries = max_delivery_retries
        self.backoff_base = backoff_base
        self.reset()

    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Re-arm every fault and re-seed the backoff RNG (run start)."""
        self._crash_fired = [0] * len(self.crashes)
        self._fault_fired = [0] * len(self.message_faults)
        self._rng = random.Random(self.seed)
        self.backoff_log: list[float] = []

    # ------------------------------------------------------------------
    def crash_fires(self, superstep: int, worker: int) -> bool:
        """Whether a crash fault fires for ``worker`` at ``superstep``.

        Consumes one firing from the budget of the first matching entry;
        deterministic because engines probe workers in a fixed order.
        """
        for index, crash in enumerate(self.crashes):
            if (
                crash.superstep == superstep
                and crash.worker == worker
                and self._crash_fired[index] < crash.times
            ):
                self._crash_fired[index] += 1
                return True
        return False

    def delivery_failures(self, superstep: int) -> int:
        """Transient delivery failures injected at ``superstep``'s barrier.

        Consumes one firing from every matching :class:`MessageFault` and
        returns the summed failure count (0 when nothing fires).
        """
        total = 0
        for index, fault in enumerate(self.message_faults):
            if (
                fault.superstep == superstep
                and self._fault_fired[index] < fault.times
            ):
                self._fault_fired[index] += 1
                total += fault.failures
        return total

    def backoff_delay(self, attempt: int) -> float:
        """Simulated backoff before retry ``attempt`` (seeded jitter).

        Exponential in the attempt index with a jitter factor in
        ``[0.5, 1.0)`` drawn from the plan's RNG; the delay is recorded in
        :attr:`backoff_log` and *not* slept — the engines account it, the
        wall clock never pays it.
        """
        delay = self.backoff_base * (2**attempt) * (0.5 + self._rng.random() / 2.0)
        self.backoff_log.append(delay)
        return delay

    # ------------------------------------------------------------------
    @property
    def is_empty(self) -> bool:
        """Whether the plan injects no faults at all."""
        return not self.crashes and not self.message_faults

    @classmethod
    def parse(cls, spec: str, seed: int = 0, **kwargs) -> "FaultPlan":
        """Build a plan from a compact CLI spec string.

        The spec is a comma-separated list of entries::

            crash:SUPERSTEP[:WORKER[:TIMES]]
            msg:SUPERSTEP[:FAILURES[:TIMES]]

        e.g. ``"crash:2,msg:4:2"`` crashes worker 0 at superstep 2 and
        injects two transient delivery failures at superstep 4.  Raises
        :class:`~repro.errors.ConfigurationError` on malformed entries.
        """
        crashes: list[WorkerCrash] = []
        message_faults: list[MessageFault] = []
        for raw in spec.split(","):
            entry = raw.strip()
            if not entry:
                continue
            parts = entry.split(":")
            kind = parts[0]
            try:
                numbers = [int(part) for part in parts[1:]]
            except ValueError:
                raise ConfigurationError(
                    f"fault entry {entry!r}: fields after the kind must be integers"
                ) from None
            if kind == "crash" and 1 <= len(numbers) <= 3:
                crashes.append(WorkerCrash(*numbers))
            elif kind == "msg" and 1 <= len(numbers) <= 3:
                message_faults.append(MessageFault(*numbers))
            else:
                raise ConfigurationError(
                    f"fault entry {entry!r}: expected "
                    "'crash:SUPERSTEP[:WORKER[:TIMES]]' or "
                    "'msg:SUPERSTEP[:FAILURES[:TIMES]]'"
                )
        if not crashes and not message_faults:
            raise ConfigurationError(f"fault plan spec {spec!r} contains no faults")
        return cls(crashes=crashes, message_faults=message_faults, seed=seed, **kwargs)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"FaultPlan(crashes={self.crashes}, message_faults={self.message_faults}, "
            f"seed={self.seed}, max_recoveries={self.max_recoveries})"
        )
