"""Deterministic fault injection for the simulated Pregel runtimes.

See :mod:`repro.faults.plan` for the model: failures are declared as data
(:class:`FaultPlan`), fire with finite budgets, and are seeded — so a
crash-and-recover run is a reproducible test input rather than a flake.
"""

from repro.faults.plan import (
    FaultPlan,
    InjectedWorkerCrash,
    MessageFault,
    WorkerCrash,
)

__all__ = [
    "FaultPlan",
    "InjectedWorkerCrash",
    "MessageFault",
    "WorkerCrash",
]
