"""Graph and partitioning I/O.

Spinner's Giraph implementation reads edge-list inputs from HDFS and
writes the partitioning as ``(vertex id, label)`` pairs.  This module
implements the equivalent plain-file formats:

* *edge list*: one ``source target`` (optionally ``source target weight``)
  pair per line, ``#`` comments allowed;
* *partitioning file*: one ``vertex_id partition`` pair per line.

Edge lists can be consumed three ways, all streaming (no function here
ever materializes the whole edge list as Python objects):

* :func:`read_directed_edge_list` / :func:`read_undirected_edge_list`
  build the dictionary graphs line by line;
* :func:`read_edge_list_csr` parses in array batches straight into an
  in-RAM :class:`~repro.graph.csr.CSRGraph`;
* :func:`ingest_edge_list` / :func:`ingest_edge_chunks` run a chunked
  external sort and write an out-of-core store for
  :mod:`repro.graph.mmap_store`, with peak RSS bounded by the run size
  regardless of the input size.

All writers are *atomic*: content goes to a temporary file in the target
directory which is renamed over the destination with :func:`os.replace`
only once fully written, so a crash mid-write can never leave a truncated
edge list, partitioning, checkpoint snapshot or ``BENCH_*.json`` behind —
the destination either keeps its previous content or holds the complete
new one.  :func:`atomic_open` / :func:`atomic_write_text` /
:func:`atomic_write_bytes` expose the same guarantee to the checkpoint
subsystem (:mod:`repro.pregel.checkpoint`) and the benchmark emitters.
"""

from __future__ import annotations

import os
import shutil
from collections.abc import Iterable, Iterator, Mapping
from contextlib import contextmanager
from typing import IO

import numpy as np

from repro.errors import GraphError, GraphFormatError
from repro.graph.digraph import DiGraph
from repro.graph.undirected import UndirectedGraph

#: Edges parsed per text batch by the streaming readers/ingesters.
DEFAULT_PARSE_CHUNK_EDGES = 1 << 18
#: Half-edges per sorted run (and per merge range) of the external sort.
DEFAULT_RUN_HALF_EDGES = 1 << 23

#: Spool/run/shard array dtype: little-endian int64 (the RAM tier's dtype).
_DTYPE = np.dtype("<i8")


@contextmanager
def atomic_open(path: str | os.PathLike, mode: str = "w") -> Iterator[IO]:
    """Open ``path`` for atomic writing (write-to-temp + ``os.replace``).

    Yields a handle onto a temporary file next to ``path`` (same
    filesystem, so the final rename is atomic).  On clean exit the
    temporary file is flushed, synced and renamed over ``path``; on an
    exception it is removed and ``path`` is left untouched.  ``mode``
    must be a write mode (``"w"`` or ``"wb"``).
    """
    if mode not in ("w", "wb"):
        raise ValueError(f"atomic_open requires mode 'w' or 'wb', got {mode!r}")
    destination = os.fspath(path)
    temporary = f"{destination}.tmp.{os.getpid()}"
    encoding = "utf-8" if mode == "w" else None
    handle = open(temporary, mode, encoding=encoding)
    try:
        yield handle
        handle.flush()
        os.fsync(handle.fileno())
    except BaseException:
        handle.close()
        if os.path.exists(temporary):
            os.remove(temporary)
        raise
    handle.close()
    os.replace(temporary, destination)


def atomic_write_text(path: str | os.PathLike, text: str) -> None:
    """Atomically replace ``path``'s content with ``text`` (UTF-8)."""
    with atomic_open(path, "w") as handle:
        handle.write(text)


def atomic_write_bytes(path: str | os.PathLike, data: bytes) -> None:
    """Atomically replace ``path``'s content with ``data``."""
    with atomic_open(path, "wb") as handle:
        handle.write(data)


def _parse_edge_line(line: str, line_number: int) -> tuple[int, int, int] | None:
    stripped = line.strip()
    if not stripped or stripped.startswith("#"):
        return None
    parts = stripped.split()
    if len(parts) not in (2, 3):
        raise GraphFormatError(
            f"line {line_number}: expected 2 or 3 fields, got {len(parts)}"
        )
    try:
        source = int(parts[0])
        target = int(parts[1])
        weight = int(parts[2]) if len(parts) == 3 else 1
    except ValueError as exc:
        raise GraphFormatError(f"line {line_number}: non-integer field") from exc
    return source, target, weight


def read_directed_edge_list(path: str | os.PathLike) -> DiGraph:
    """Read a directed graph from an edge-list file."""
    graph = DiGraph()
    with open(path, encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            parsed = _parse_edge_line(line, line_number)
            if parsed is None:
                continue
            source, target, _weight = parsed
            graph.add_edge(source, target)
    return graph


def read_undirected_edge_list(path: str | os.PathLike) -> UndirectedGraph:
    """Read a weighted undirected graph from an edge-list file."""
    graph = UndirectedGraph()
    with open(path, encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            parsed = _parse_edge_line(line, line_number)
            if parsed is None:
                continue
            u, v, weight = parsed
            if u == v:
                continue
            if not graph.has_edge(u, v):
                graph.add_edge(u, v, weight=weight)
    return graph


def write_directed_edge_list(graph: DiGraph, path: str | os.PathLike) -> None:
    """Write a directed graph as a ``source target`` edge list (atomically)."""
    with atomic_open(path, "w") as handle:
        handle.write("# directed edge list: source target\n")
        for source, target in graph.edges():
            handle.write(f"{source} {target}\n")


def write_undirected_edge_list(graph: UndirectedGraph, path: str | os.PathLike) -> None:
    """Write an undirected graph as a ``u v weight`` edge list (atomically)."""
    with atomic_open(path, "w") as handle:
        handle.write("# undirected edge list: u v weight\n")
        for u, v, weight in graph.edges():
            handle.write(f"{u} {v} {weight}\n")


def write_partitioning(
    assignment: Mapping[int, int], path: str | os.PathLike
) -> None:
    """Write a ``vertex_id partition`` file, sorted by id (atomically)."""
    with atomic_open(path, "w") as handle:
        handle.write("# partitioning: vertex_id partition\n")
        for vertex_id in sorted(assignment):
            handle.write(f"{vertex_id} {assignment[vertex_id]}\n")


def read_partitioning(path: str | os.PathLike) -> dict[int, int]:
    """Read a partitioning file written by :func:`write_partitioning`."""
    assignment: dict[int, int] = {}
    with open(path, encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            stripped = line.strip()
            if not stripped or stripped.startswith("#"):
                continue
            parts = stripped.split()
            if len(parts) != 2:
                raise GraphFormatError(
                    f"line {line_number}: expected 2 fields, got {len(parts)}"
                )
            try:
                assignment[int(parts[0])] = int(parts[1])
            except ValueError as exc:
                raise GraphFormatError(f"line {line_number}: non-integer field") from exc
    return assignment


def edges_to_lines(edges: Iterable[tuple[int, int]]) -> list[str]:
    """Render edges as edge-list lines (useful in tests)."""
    return [f"{source} {target}" for source, target in edges]


# ----------------------------------------------------------------------
# streaming CSR ingestion (chunked external sort)
# ----------------------------------------------------------------------
EdgeChunk = tuple[np.ndarray, np.ndarray, "np.ndarray | None"]


def iter_edge_list_chunks(
    path: str | os.PathLike, chunk_edges: int = DEFAULT_PARSE_CHUNK_EDGES
) -> Iterator[EdgeChunk]:
    """Parse an edge-list file into ``(sources, targets, weights)`` batches.

    ``weights`` is ``None`` for a batch in which every edge has the
    default weight 1.  Comments and blank lines are skipped; malformed
    lines raise :class:`~repro.errors.GraphFormatError` with their line
    number, exactly like the dictionary readers.
    """
    sources: list[int] = []
    targets: list[int] = []
    weights: list[int] = []
    any_weight = False

    def _flush() -> EdgeChunk:
        nonlocal any_weight
        chunk = (
            np.asarray(sources, dtype=np.int64),
            np.asarray(targets, dtype=np.int64),
            np.asarray(weights, dtype=np.int64) if any_weight else None,
        )
        sources.clear()
        targets.clear()
        weights.clear()
        any_weight = False
        return chunk

    with open(path, encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            parsed = _parse_edge_line(line, line_number)
            if parsed is None:
                continue
            source, target, weight = parsed
            sources.append(source)
            targets.append(target)
            weights.append(weight)
            if weight != 1:
                any_weight = True
            if len(sources) >= chunk_edges:
                yield _flush()
    if sources:
        yield _flush()


def read_edge_list_csr(
    path: str | os.PathLike,
    num_vertices: int | None = None,
    chunk_edges: int = DEFAULT_PARSE_CHUNK_EDGES,
) -> "CSRGraph":
    """Read an edge list straight into an in-RAM :class:`CSRGraph`.

    Parsing streams in array batches — no per-edge Python containers for
    the whole file are ever built.  Semantics match
    :meth:`CSRGraph.from_edge_list` on the same edge sequence: every line
    is one undirected edge (both directions materialized, duplicates kept
    as parallel edges, self-loops kept).  ``num_vertices`` defaults to
    ``max id + 1``.
    """
    from repro.graph.csr import CSRGraph

    chunks = list(iter_edge_list_chunks(path, chunk_edges))
    sources = np.concatenate([c[0] for c in chunks]) if chunks else np.empty(0, np.int64)
    targets = np.concatenate([c[1] for c in chunks]) if chunks else np.empty(0, np.int64)
    weights = np.concatenate(
        [c[2] if c[2] is not None else np.ones(c[0].shape[0], dtype=np.int64) for c in chunks]
    ) if chunks else np.empty(0, np.int64)
    _validate_ids(sources, targets, num_vertices)
    if num_vertices is None:
        num_vertices = int(max(sources.max(), targets.max())) + 1 if sources.size else 0
    return CSRGraph.from_edge_list(
        np.stack([sources, targets], axis=1), num_vertices, weights=weights
    )


def write_partitioning_array(
    original_ids: np.ndarray, labels: np.ndarray, path: str | os.PathLike
) -> None:
    """Write a ``vertex_id partition`` file from parallel arrays (atomically).

    The array twin of :func:`write_partitioning`: rows are emitted in
    ascending original-id order, streamed in batches so no per-vertex
    dictionary is materialized.
    """
    ids = np.asarray(original_ids, dtype=np.int64)
    labs = np.asarray(labels, dtype=np.int64)
    if ids.shape != labs.shape:
        raise GraphError("original_ids and labels must align")
    order = np.argsort(ids, kind="stable")
    with atomic_open(path, "w") as handle:
        handle.write("# partitioning: vertex_id partition\n")
        for start in range(0, ids.shape[0], DEFAULT_PARSE_CHUNK_EDGES):
            stop = min(start + DEFAULT_PARSE_CHUNK_EDGES, ids.shape[0])
            block = order[start:stop]
            handle.writelines(
                f"{vertex} {label}\n"
                for vertex, label in zip(ids[block].tolist(), labs[block].tolist())
            )


def _validate_ids(
    sources: np.ndarray, targets: np.ndarray, num_vertices: int | None
) -> None:
    if sources.size == 0:
        return
    low = int(min(sources.min(), targets.min()))
    high = int(max(sources.max(), targets.max()))
    if low < 0:
        raise GraphError(f"negative vertex id {low} in edge input")
    if num_vertices is not None and high >= num_vertices:
        raise GraphError(
            f"vertex id {high} outside the declared range [0, {num_vertices})"
        )


class _GrowingCounts:
    """Pair of per-vertex int64 accumulators that grow with the max id seen."""

    def __init__(self) -> None:
        self.half_edges = np.zeros(0, dtype=np.int64)
        self.weighted = np.zeros(0, dtype=np.int64)

    def _grow(self, size: int) -> None:
        if size <= self.half_edges.shape[0]:
            return
        capacity = max(size, 2 * self.half_edges.shape[0], 1024)
        for name in ("half_edges", "weighted"):
            grown = np.zeros(capacity, dtype=np.int64)
            grown[: getattr(self, name).shape[0]] = getattr(self, name)
            setattr(self, name, grown)

    def add(self, u: np.ndarray, v: np.ndarray, w: np.ndarray | None) -> None:
        """Fold one forward-edge chunk into the degree accumulators."""
        if u.size == 0:
            return
        size = int(max(u.max(), v.max())) + 1
        self._grow(size)
        length = self.half_edges.shape[0]
        counts = np.bincount(u, minlength=length) + np.bincount(v, minlength=length)
        self.half_edges += counts
        if w is None:
            self.weighted += counts
        else:
            weighted = np.bincount(u, weights=w, minlength=length) + np.bincount(
                v, weights=w, minlength=length
            )
            self.weighted += weighted.astype(np.int64)


class _Spool:
    """Sequential binary spool of the forward edges (u, v and lazy w files).

    The weight file is only created when a non-unit weight first appears;
    the edges spooled before that point are backfilled with ones, so unit
    graphs never pay for a weight spool at all.
    """

    def __init__(self, directory: str) -> None:
        self.directory = directory
        self.u_path = os.path.join(directory, "spool_u.bin")
        self.v_path = os.path.join(directory, "spool_v.bin")
        self.w_path = os.path.join(directory, "spool_w.bin")
        self._u = open(self.u_path, "wb")
        self._v = open(self.v_path, "wb")
        self._w: IO | None = None
        self.num_edges = 0

    def _ensure_weights(self) -> IO:
        if self._w is None:
            self._w = open(self.w_path, "wb")
            ones = np.ones(min(self.num_edges, DEFAULT_PARSE_CHUNK_EDGES), dtype=_DTYPE)
            remaining = self.num_edges
            while remaining > 0:
                block = ones[: min(remaining, ones.shape[0])]
                self._w.write(block.tobytes())
                remaining -= block.shape[0]
        return self._w

    def append(self, u: np.ndarray, v: np.ndarray, w: np.ndarray | None) -> None:
        """Append one forward-edge chunk to the spool files."""
        self._u.write(np.ascontiguousarray(u, dtype=_DTYPE).tobytes())
        self._v.write(np.ascontiguousarray(v, dtype=_DTYPE).tobytes())
        if w is not None and not (w.size == 0 or (w.min() == 1 and w.max() == 1)):
            self._ensure_weights().write(np.ascontiguousarray(w, dtype=_DTYPE).tobytes())
        elif self._w is not None:
            self._w.write(np.ones(u.shape[0], dtype=_DTYPE).tobytes())
        self.num_edges += int(u.shape[0])

    def finish(self) -> bool:
        """Flush and close the spool; return whether weights were spooled."""
        self._u.close()
        self._v.close()
        if self._w is not None:
            self._w.close()
            return True
        return False


def _read_slice(handle: IO, start: int, count: int) -> np.ndarray:
    """Read ``count`` int64 values at element offset ``start`` from a file."""
    handle.seek(start * _DTYPE.itemsize)
    data = handle.read(count * _DTYPE.itemsize)
    return np.frombuffer(data, dtype=_DTYPE).astype(np.int64, copy=False)


def ingest_edge_chunks(
    chunks: Iterable[EdgeChunk],
    store_dir: str | os.PathLike,
    *,
    num_vertices: int | None = None,
    run_half_edges: int = DEFAULT_RUN_HALF_EDGES,
) -> dict:
    """Build an out-of-core CSR store from a stream of edge-array chunks.

    ``chunks`` yields ``(sources, targets, weights)`` batches of forward
    edges (``weights`` may be ``None`` for all-unit batches); the result
    on disk is byte-identical to spilling
    ``CSRGraph.from_edge_list(edges, n, weights)`` built from the
    concatenated batches — the property the ingestion equivalence suite
    pins.  Peak RSS is bounded by ``run_half_edges`` (the unit of the
    external sort), not by the input size.

    The sort is the classic run/merge scheme, arranged so the half-edge
    order *within every adjacency list* matches the RAM tier's stable
    sort: all forward halves in arrival order, then all backward halves in
    arrival order.  Pass A spools the forward edges and accumulates the
    degree arrays; pass B cuts the spool into source-sorted runs (forward
    runs first, then backward); pass C merges the runs one vertex range at
    a time — concatenating run slices in run order and stable-sorting by
    source reproduces the arrival order exactly — and streams the final
    ``indices``/``weights`` shards out sequentially.

    Returns the store's ``meta.json`` dictionary.
    """
    if run_half_edges < 1:
        raise GraphError(f"run_half_edges must be >= 1, got {run_half_edges}")
    destination = os.fspath(store_dir)
    os.makedirs(destination, exist_ok=True)
    workdir = os.path.join(destination, f".ingest-tmp.{os.getpid()}")
    os.makedirs(workdir, exist_ok=True)
    try:
        meta = _ingest(chunks, destination, workdir, num_vertices, run_half_edges)
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
    return meta


def _ingest(
    chunks: Iterable[EdgeChunk],
    destination: str,
    workdir: str,
    num_vertices: int | None,
    run_half_edges: int,
) -> dict:
    from repro.graph import mmap_store

    # --- pass A: spool forward edges, accumulate degrees ---------------
    spool = _Spool(workdir)
    counts = _GrowingCounts()
    for u, v, w in chunks:
        u = np.ascontiguousarray(u, dtype=np.int64)
        v = np.ascontiguousarray(v, dtype=np.int64)
        if w is not None:
            w = np.ascontiguousarray(w, dtype=np.int64)
            if w.shape != u.shape:
                raise GraphError("weights must align with edges")
        if u.shape != v.shape or u.ndim != 1:
            raise GraphError("edge chunks must be parallel 1-D arrays")
        _validate_ids(u, v, num_vertices)
        spool.append(u, v, w)
        counts.add(u, v, w)
    weighted_spool = spool.finish()
    max_seen = counts.half_edges.shape[0]
    while max_seen > 0 and counts.half_edges[max_seen - 1] == 0:
        max_seen -= 1
    n = num_vertices if num_vertices is not None else max_seen
    half_edges = 2 * spool.num_edges
    half_counts = np.zeros(n, dtype=np.int64)
    half_counts[:max_seen] = counts.half_edges[:max_seen]
    weighted_degrees = np.zeros(n, dtype=np.int64)
    weighted_degrees[:max_seen] = counts.weighted[:max_seen]
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(half_counts, out=indptr[1:])

    # --- pass B: source-sorted runs (forward first, then backward) -----
    runs: list[tuple[str, str]] = []  # (data prefix, direction) in merge order
    run_edges = max(1, run_half_edges)
    for direction in ("fwd", "bwd"):
        with open(spool.u_path, "rb") as u_file, open(spool.v_path, "rb") as v_file:
            w_file = open(spool.w_path, "rb") if weighted_spool else None
            try:
                position = 0
                while position < spool.num_edges:
                    count = min(run_edges, spool.num_edges - position)
                    u = _read_slice(u_file, position, count)
                    v = _read_slice(v_file, position, count)
                    src, dst = (u, v) if direction == "fwd" else (v, u)
                    order = np.argsort(src, kind="stable")
                    prefix = os.path.join(workdir, f"run{len(runs)}")
                    src_sorted = src[order]
                    with open(prefix + ".dst.bin", "wb") as out:
                        out.write(dst[order].astype(_DTYPE, copy=False).tobytes())
                    if w_file is not None:
                        w = _read_slice(w_file, position, count)
                        with open(prefix + ".w.bin", "wb") as out:
                            out.write(w[order].astype(_DTYPE, copy=False).tobytes())
                    run_indptr = np.zeros(n + 1, dtype=np.int64)
                    np.cumsum(np.bincount(src_sorted, minlength=n), out=run_indptr[1:])
                    run_indptr.astype(_DTYPE, copy=False).tofile(prefix + ".indptr.bin")
                    runs.append((prefix, direction))
                    position += count
            finally:
                if w_file is not None:
                    w_file.close()

    # --- pass C: range merge into the final shards ----------------------
    unit_weights = not weighted_spool
    indices_path = os.path.join(destination, "indices.bin")
    weights_path = os.path.join(destination, "weights.bin")
    run_handles = [
        (
            open(prefix + ".indptr.bin", "rb"),
            open(prefix + ".dst.bin", "rb"),
            open(prefix + ".w.bin", "rb") if weighted_spool else None,
        )
        for prefix, _ in runs
    ]
    try:
        with atomic_open(indices_path, "wb") as indices_out:
            weights_ctx = (
                atomic_open(weights_path, "wb") if weighted_spool else _null_context()
            )
            with weights_ctx as weights_out:
                v0 = 0
                while v0 < n:
                    cutoff = indptr[v0] + run_half_edges
                    v1 = int(np.searchsorted(indptr, cutoff, side="right")) - 1
                    v1 = min(max(v1, v0 + 1), n)
                    src_parts: list[np.ndarray] = []
                    dst_parts: list[np.ndarray] = []
                    w_parts: list[np.ndarray] = []
                    for indptr_file, dst_file, w_file in run_handles:
                        bounds = _read_slice(indptr_file, v0, v1 - v0 + 1)
                        start, stop = int(bounds[0]), int(bounds[-1])
                        if stop == start:
                            continue
                        dst_parts.append(_read_slice(dst_file, start, stop - start))
                        src_parts.append(
                            np.repeat(
                                np.arange(v0, v1, dtype=np.int64), np.diff(bounds)
                            )
                        )
                        if w_file is not None:
                            w_parts.append(_read_slice(w_file, start, stop - start))
                    if dst_parts:
                        src_all = np.concatenate(src_parts)
                        order = np.argsort(src_all, kind="stable")
                        dst_all = np.concatenate(dst_parts)[order]
                        indices_out.write(dst_all.astype(_DTYPE, copy=False).tobytes())
                        if weights_out is not None:
                            w_all = np.concatenate(w_parts)[order]
                            weights_out.write(w_all.astype(_DTYPE, copy=False).tobytes())
                    v0 = v1
    finally:
        for handles in run_handles:
            for handle in handles:
                if handle is not None:
                    handle.close()
    if unit_weights and os.path.exists(weights_path):
        os.remove(weights_path)

    with atomic_open(os.path.join(destination, "indptr.bin"), "wb") as out:
        out.write(indptr.astype(_DTYPE, copy=False).tobytes())
    with atomic_open(os.path.join(destination, "degrees.bin"), "wb") as out:
        out.write(weighted_degrees.astype(_DTYPE, copy=False).tobytes())
    ids_path = os.path.join(destination, "ids.bin")
    if os.path.exists(ids_path):
        os.remove(ids_path)
    mmap_store.write_meta(
        destination,
        num_vertices=n,
        num_half_edges=half_edges,
        total_weight=int(weighted_degrees.sum()) // 2,
        unit_weights=unit_weights,
    )
    return mmap_store.read_meta(destination)


@contextmanager
def _null_context() -> Iterator[None]:
    """Context manager yielding ``None`` (stands in for a skipped file)."""
    yield None


def ingest_edge_list(
    path: str | os.PathLike,
    store_dir: str | os.PathLike,
    *,
    num_vertices: int | None = None,
    chunk_edges: int = DEFAULT_PARSE_CHUNK_EDGES,
    run_half_edges: int = DEFAULT_RUN_HALF_EDGES,
) -> dict:
    """Ingest an edge-list *file* into an out-of-core CSR store.

    Streaming end to end: the text is parsed in ``chunk_edges`` batches
    and fed through :func:`ingest_edge_chunks`, so ingesting a file far
    larger than RAM needs only ``O(run_half_edges)`` memory.  Ingesting
    the same file twice produces byte-identical stores.  Returns the
    store's ``meta.json`` dictionary.
    """
    return ingest_edge_chunks(
        iter_edge_list_chunks(path, chunk_edges),
        store_dir,
        num_vertices=num_vertices,
        run_half_edges=run_half_edges,
    )
