"""Graph and partitioning I/O.

Spinner's Giraph implementation reads edge-list inputs from HDFS and
writes the partitioning as ``(vertex id, label)`` pairs.  This module
implements the equivalent plain-file formats:

* *edge list*: one ``source target`` (optionally ``source target weight``)
  pair per line, ``#`` comments allowed;
* *partitioning file*: one ``vertex_id partition`` pair per line.

All writers are *atomic*: content goes to a temporary file in the target
directory which is renamed over the destination with :func:`os.replace`
only once fully written, so a crash mid-write can never leave a truncated
edge list, partitioning, checkpoint snapshot or ``BENCH_*.json`` behind —
the destination either keeps its previous content or holds the complete
new one.  :func:`atomic_open` / :func:`atomic_write_text` /
:func:`atomic_write_bytes` expose the same guarantee to the checkpoint
subsystem (:mod:`repro.pregel.checkpoint`) and the benchmark emitters.
"""

from __future__ import annotations

import os
from collections.abc import Iterable, Iterator, Mapping
from contextlib import contextmanager
from typing import IO

from repro.errors import GraphFormatError
from repro.graph.digraph import DiGraph
from repro.graph.undirected import UndirectedGraph


@contextmanager
def atomic_open(path: str | os.PathLike, mode: str = "w") -> Iterator[IO]:
    """Open ``path`` for atomic writing (write-to-temp + ``os.replace``).

    Yields a handle onto a temporary file next to ``path`` (same
    filesystem, so the final rename is atomic).  On clean exit the
    temporary file is flushed, synced and renamed over ``path``; on an
    exception it is removed and ``path`` is left untouched.  ``mode``
    must be a write mode (``"w"`` or ``"wb"``).
    """
    if mode not in ("w", "wb"):
        raise ValueError(f"atomic_open requires mode 'w' or 'wb', got {mode!r}")
    destination = os.fspath(path)
    temporary = f"{destination}.tmp.{os.getpid()}"
    encoding = "utf-8" if mode == "w" else None
    handle = open(temporary, mode, encoding=encoding)
    try:
        yield handle
        handle.flush()
        os.fsync(handle.fileno())
    except BaseException:
        handle.close()
        if os.path.exists(temporary):
            os.remove(temporary)
        raise
    handle.close()
    os.replace(temporary, destination)


def atomic_write_text(path: str | os.PathLike, text: str) -> None:
    """Atomically replace ``path``'s content with ``text`` (UTF-8)."""
    with atomic_open(path, "w") as handle:
        handle.write(text)


def atomic_write_bytes(path: str | os.PathLike, data: bytes) -> None:
    """Atomically replace ``path``'s content with ``data``."""
    with atomic_open(path, "wb") as handle:
        handle.write(data)


def _parse_edge_line(line: str, line_number: int) -> tuple[int, int, int] | None:
    stripped = line.strip()
    if not stripped or stripped.startswith("#"):
        return None
    parts = stripped.split()
    if len(parts) not in (2, 3):
        raise GraphFormatError(
            f"line {line_number}: expected 2 or 3 fields, got {len(parts)}"
        )
    try:
        source = int(parts[0])
        target = int(parts[1])
        weight = int(parts[2]) if len(parts) == 3 else 1
    except ValueError as exc:
        raise GraphFormatError(f"line {line_number}: non-integer field") from exc
    return source, target, weight


def read_directed_edge_list(path: str | os.PathLike) -> DiGraph:
    """Read a directed graph from an edge-list file."""
    graph = DiGraph()
    with open(path, encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            parsed = _parse_edge_line(line, line_number)
            if parsed is None:
                continue
            source, target, _weight = parsed
            graph.add_edge(source, target)
    return graph


def read_undirected_edge_list(path: str | os.PathLike) -> UndirectedGraph:
    """Read a weighted undirected graph from an edge-list file."""
    graph = UndirectedGraph()
    with open(path, encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            parsed = _parse_edge_line(line, line_number)
            if parsed is None:
                continue
            u, v, weight = parsed
            if u == v:
                continue
            if not graph.has_edge(u, v):
                graph.add_edge(u, v, weight=weight)
    return graph


def write_directed_edge_list(graph: DiGraph, path: str | os.PathLike) -> None:
    """Write a directed graph as a ``source target`` edge list (atomically)."""
    with atomic_open(path, "w") as handle:
        handle.write("# directed edge list: source target\n")
        for source, target in graph.edges():
            handle.write(f"{source} {target}\n")


def write_undirected_edge_list(graph: UndirectedGraph, path: str | os.PathLike) -> None:
    """Write an undirected graph as a ``u v weight`` edge list (atomically)."""
    with atomic_open(path, "w") as handle:
        handle.write("# undirected edge list: u v weight\n")
        for u, v, weight in graph.edges():
            handle.write(f"{u} {v} {weight}\n")


def write_partitioning(
    assignment: Mapping[int, int], path: str | os.PathLike
) -> None:
    """Write a ``vertex_id partition`` file, sorted by id (atomically)."""
    with atomic_open(path, "w") as handle:
        handle.write("# partitioning: vertex_id partition\n")
        for vertex_id in sorted(assignment):
            handle.write(f"{vertex_id} {assignment[vertex_id]}\n")


def read_partitioning(path: str | os.PathLike) -> dict[int, int]:
    """Read a partitioning file written by :func:`write_partitioning`."""
    assignment: dict[int, int] = {}
    with open(path, encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            stripped = line.strip()
            if not stripped or stripped.startswith("#"):
                continue
            parts = stripped.split()
            if len(parts) != 2:
                raise GraphFormatError(
                    f"line {line_number}: expected 2 fields, got {len(parts)}"
                )
            try:
                assignment[int(parts[0])] = int(parts[1])
            except ValueError as exc:
                raise GraphFormatError(f"line {line_number}: non-integer field") from exc
    return assignment


def edges_to_lines(edges: Iterable[tuple[int, int]]) -> list[str]:
    """Render edges as edge-list lines (useful in tests)."""
    return [f"{source} {target}" for source, target in edges]
