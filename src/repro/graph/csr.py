"""Compressed sparse row (CSR) view of a weighted undirected graph.

The vectorized Spinner implementation (:mod:`repro.core.fast`) and several
baseline partitioners operate on flat NumPy arrays rather than Python
dictionaries.  :class:`CSRGraph` stores, for a graph with ``n`` vertices
and ``m`` undirected edges:

``indptr``
    ``int64[n + 1]`` — the adjacency list of vertex ``v`` occupies
    ``indices[indptr[v]:indptr[v + 1]]``.
``indices``
    ``int64[2 m]`` — neighbour ids (each undirected edge appears twice).
``weights``
    ``int64[2 m]`` — edge weights aligned with ``indices``.

Vertex ids are densified to ``0 .. n - 1``; the mapping back to the
original ids is kept in ``original_ids``.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.errors import GraphError
from repro.graph.undirected import UndirectedGraph


class CSRGraph:
    """Immutable CSR representation of a weighted undirected graph."""

    def __init__(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        weights: np.ndarray,
        original_ids: np.ndarray | None = None,
    ) -> None:
        self.indptr = np.asarray(indptr, dtype=np.int64)
        self.indices = np.asarray(indices, dtype=np.int64)
        self.weights = np.asarray(weights, dtype=np.int64)
        if self.indptr.ndim != 1 or self.indptr[0] != 0:
            raise GraphError("indptr must be 1-D and start at 0")
        if self.indptr[-1] != self.indices.shape[0]:
            raise GraphError("indptr[-1] must equal len(indices)")
        if self.indices.shape != self.weights.shape:
            raise GraphError("indices and weights must have the same shape")
        self.num_vertices = self.indptr.shape[0] - 1
        if original_ids is None:
            original_ids = np.arange(self.num_vertices, dtype=np.int64)
        self.original_ids = np.asarray(original_ids, dtype=np.int64)
        if self.original_ids.shape[0] != self.num_vertices:
            raise GraphError("original_ids must have one entry per vertex")
        # Weighted degree per vertex: the balance quantity of the paper.
        sources = np.repeat(
            np.arange(self.num_vertices, dtype=np.int64), np.diff(self.indptr)
        )
        self.weighted_degrees = np.bincount(
            sources, weights=self.weights.astype(np.float64), minlength=self.num_vertices
        ).astype(np.int64)
        # total_weight counts each undirected edge's weight once.
        self.total_weight = int(self.weights.sum() // 2)

    # ------------------------------------------------------------------
    @property
    def num_edges(self) -> int:
        """Number of undirected edges."""
        return self.indices.shape[0] // 2

    def neighbors(self, vertex: int) -> np.ndarray:
        """Return the neighbour ids of a (dense) vertex id."""
        return self.indices[self.indptr[vertex] : self.indptr[vertex + 1]]

    def neighbor_weights(self, vertex: int) -> np.ndarray:
        """Return the edge weights aligned with :meth:`neighbors`."""
        return self.weights[self.indptr[vertex] : self.indptr[vertex + 1]]

    def degree(self, vertex: int) -> int:
        """Return the unweighted degree of a dense vertex id."""
        return int(self.indptr[vertex + 1] - self.indptr[vertex])

    def weighted_degree(self, vertex: int) -> int:
        """Return the weighted degree of a dense vertex id."""
        return int(self.weighted_degrees[vertex])

    def edge_array(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Return ``(sources, targets, weights)`` arrays with both directions.

        Every undirected edge appears twice, once per direction, which is the
        layout the vectorized label-propagation kernel needs.
        """
        sources = np.repeat(np.arange(self.num_vertices, dtype=np.int64), np.diff(self.indptr))
        return sources, self.indices, self.weights

    # ------------------------------------------------------------------
    @classmethod
    def from_undirected(cls, graph: UndirectedGraph) -> "CSRGraph":
        """Build a CSR view from an :class:`UndirectedGraph`.

        Vertex ids are densified in sorted order of the original ids.
        """
        original_ids = np.array(sorted(graph.vertices()), dtype=np.int64)
        dense_of = {int(original): dense for dense, original in enumerate(original_ids)}
        n = original_ids.shape[0]
        degrees = np.zeros(n, dtype=np.int64)
        for original in original_ids:
            degrees[dense_of[int(original)]] = graph.degree(int(original))
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(degrees, out=indptr[1:])
        indices = np.zeros(indptr[-1], dtype=np.int64)
        weights = np.zeros(indptr[-1], dtype=np.int64)
        cursor = indptr[:-1].copy()
        for original in original_ids:
            u = dense_of[int(original)]
            for neighbour, weight in graph.neighbors(int(original)).items():
                position = cursor[u]
                indices[position] = dense_of[neighbour]
                weights[position] = weight
                cursor[u] += 1
        return cls(indptr, indices, weights, original_ids)

    @classmethod
    def from_edge_list(
        cls,
        edges: Sequence[tuple[int, int]] | np.ndarray,
        num_vertices: int,
        weights: Sequence[int] | np.ndarray | None = None,
    ) -> "CSRGraph":
        """Build a CSR view directly from an undirected edge list.

        ``edges`` holds each undirected edge once; both directions are
        materialized internally.  Duplicate edges are the caller's
        responsibility (they are kept as parallel edges).
        """
        edge_array = np.asarray(edges, dtype=np.int64)
        if edge_array.size == 0:
            edge_array = edge_array.reshape(0, 2)
        if edge_array.ndim != 2 or edge_array.shape[1] != 2:
            raise GraphError("edges must be an (m, 2) array")
        if weights is None:
            weight_array = np.ones(edge_array.shape[0], dtype=np.int64)
        else:
            weight_array = np.asarray(weights, dtype=np.int64)
            if weight_array.shape[0] != edge_array.shape[0]:
                raise GraphError("weights must align with edges")
        sources = np.concatenate([edge_array[:, 0], edge_array[:, 1]])
        targets = np.concatenate([edge_array[:, 1], edge_array[:, 0]])
        both_weights = np.concatenate([weight_array, weight_array])
        order = np.argsort(sources, kind="stable")
        sources = sources[order]
        targets = targets[order]
        both_weights = both_weights[order]
        counts = np.bincount(sources, minlength=num_vertices)
        indptr = np.zeros(num_vertices + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        return cls(indptr, targets, both_weights)

    def to_undirected(self) -> UndirectedGraph:
        """Materialize back into an :class:`UndirectedGraph` (original ids)."""
        graph = UndirectedGraph()
        for dense in range(self.num_vertices):
            graph.add_vertex(int(self.original_ids[dense]))
        sources, targets, weights = self.edge_array()
        for u, v, w in zip(sources, targets, weights):
            if u < v:
                graph.add_edge(
                    int(self.original_ids[u]), int(self.original_ids[v]), weight=int(w)
                )
        return graph

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"CSRGraph(|V|={self.num_vertices}, |E|={self.num_edges})"
