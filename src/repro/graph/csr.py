"""Compressed sparse row (CSR) view of a weighted undirected graph.

The vectorized Spinner implementation (:mod:`repro.core.fast`) and several
baseline partitioners operate on flat NumPy arrays rather than Python
dictionaries.  :class:`CSRGraph` stores, for a graph with ``n`` vertices
and ``m`` undirected edges:

``indptr``
    ``int64[n + 1]`` — the adjacency list of vertex ``v`` occupies
    ``indices[indptr[v]:indptr[v + 1]]``.
``indices``
    ``int64[2 m]`` — neighbour ids (each undirected edge appears twice).
``weights``
    ``int64[2 m]`` — edge weights aligned with ``indices``.

Vertex ids are densified to ``0 .. n - 1``; the mapping back to the
original ids is kept in ``original_ids``.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence

import numpy as np

from repro.errors import GraphError
from repro.graph.undirected import UndirectedGraph


def _segment_sums(values: np.ndarray, indptr: np.ndarray) -> np.ndarray:
    """Per-segment sums of ``values`` over CSR ``indptr`` segments.

    ``np.add.reduceat`` mis-handles empty segments (it returns the element
    at the segment start instead of 0), so the reduction runs over the
    non-empty segment starts only: consecutive non-empty starts bound
    exactly one original segment because the empty segments between them
    contribute no elements.
    """
    n = indptr.shape[0] - 1
    out = np.zeros(n, dtype=values.dtype)
    if n == 0 or values.shape[0] == 0:
        return out
    nonempty = np.diff(indptr) > 0
    if nonempty.any():
        out[nonempty] = np.add.reduceat(values, indptr[:-1][nonempty])
    return out


def build_csr_arrays(
    sources: np.ndarray,
    targets: np.ndarray,
    weights: np.ndarray,
    num_vertices: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Sort half-edges by source and return ``(indptr, indices, weights)``."""
    order = np.argsort(sources, kind="stable")
    indptr = np.zeros(num_vertices + 1, dtype=np.int64)
    np.cumsum(np.bincount(sources, minlength=num_vertices), out=indptr[1:])
    return indptr, targets[order], weights[order]


class CSRGraph:
    """Immutable CSR representation of a weighted undirected graph."""

    #: Which storage tier holds ``indices``/``weights``: ``"ram"`` for plain
    #: in-memory arrays, ``"mmap"`` for the on-disk tier
    #: (:class:`repro.graph.mmap_store.MmapCSRGraph`).
    storage = "ram"

    def __init__(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        weights: np.ndarray,
        original_ids: np.ndarray | None = None,
        *,
        weighted_degrees: np.ndarray | None = None,
        total_weight: int | None = None,
    ) -> None:
        self.indptr = np.asarray(indptr, dtype=np.int64)
        self.indices = np.asarray(indices, dtype=np.int64)
        self.weights = np.asarray(weights, dtype=np.int64)
        if self.indptr.ndim != 1 or self.indptr.shape[0] == 0 or self.indptr[0] != 0:
            raise GraphError("indptr must be 1-D and start at 0")
        if self.indptr[-1] != self.indices.shape[0]:
            raise GraphError("indptr[-1] must equal len(indices)")
        if self.indices.shape != self.weights.shape:
            raise GraphError("indices and weights must have the same shape")
        self.num_vertices = self.indptr.shape[0] - 1
        if original_ids is None:
            original_ids = np.arange(self.num_vertices, dtype=np.int64)
        self.original_ids = np.asarray(original_ids, dtype=np.int64)
        if self.original_ids.shape[0] != self.num_vertices:
            raise GraphError("original_ids must have one entry per vertex")
        # Weighted degree per vertex: the balance quantity of the paper.
        # Computed directly in int64 over the indptr segments (no float
        # round-trip); the kernels use the cached float view below.  The
        # out-of-core tier passes precomputed values so that opening a
        # store never has to stream the full weight array.
        if weighted_degrees is None:
            weighted_degrees = _segment_sums(self.weights, self.indptr)
        self.weighted_degrees = np.asarray(weighted_degrees, dtype=np.int64)
        if self.weighted_degrees.shape[0] != self.num_vertices:
            raise GraphError("weighted_degrees must have one entry per vertex")
        self._weighted_degrees_f: np.ndarray | None = None
        # total_weight counts each undirected edge's weight once.
        if total_weight is None:
            total_weight = int(self.weights.sum() // 2)
        self.total_weight = int(total_weight)

    # ------------------------------------------------------------------
    @property
    def num_edges(self) -> int:
        """Number of undirected edges."""
        return self.indices.shape[0] // 2

    @property
    def weighted_degrees_f(self) -> np.ndarray:
        """Cached ``float64`` view of :attr:`weighted_degrees`.

        The label-propagation kernels divide by the weighted degree every
        iteration; caching the float conversion keeps that off the hot
        path.  Callers must not mutate the returned array.
        """
        if self._weighted_degrees_f is None:
            self._weighted_degrees_f = self.weighted_degrees.astype(np.float64)
        return self._weighted_degrees_f

    def neighbors(self, vertex: int) -> np.ndarray:
        """Return the neighbour ids of a (dense) vertex id."""
        return self.indices[self.indptr[vertex] : self.indptr[vertex + 1]]

    def neighbor_weights(self, vertex: int) -> np.ndarray:
        """Return the edge weights aligned with :meth:`neighbors`."""
        return self.weights[self.indptr[vertex] : self.indptr[vertex + 1]]

    def degree(self, vertex: int) -> int:
        """Return the unweighted degree of a dense vertex id."""
        return int(self.indptr[vertex + 1] - self.indptr[vertex])

    def weighted_degree(self, vertex: int) -> int:
        """Return the weighted degree of a dense vertex id."""
        return int(self.weighted_degrees[vertex])

    def edge_array(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Return ``(sources, targets, weights)`` arrays with both directions.

        Every undirected edge appears twice, once per direction, which is the
        layout the vectorized label-propagation kernel needs.
        """
        sources = np.repeat(np.arange(self.num_vertices, dtype=np.int64), np.diff(self.indptr))
        return sources, self.indices, self.weights

    def iter_edge_chunks(
        self, chunk_half_edges: int
    ) -> "Iterator[tuple[int, int, np.ndarray, np.ndarray, np.ndarray]]":
        """Stream the half-edge arrays in contiguous chunks.

        Yields ``(v_lo, v_hi, sources, targets, weights)`` where the chunk
        covers half-edges ``[e0, e1)`` whose source vertices all lie in
        ``[v_lo, v_hi)``; a vertex whose adjacency spans a chunk boundary
        appears in both chunks with the corresponding slice of its
        neighbours.  Because every accumulation the kernels perform over
        these chunks is a sum of exactly-representable integers, results
        are bit-identical for every chunk size — the property the
        out-of-core tier's equivalence suite pins.

        The base implementation yields array views (no copies); the mmap
        tier overrides it to copy each chunk off the mapping and drop the
        consumed pages so peak RSS stays ``O(chunk)``.
        """
        if chunk_half_edges < 1:
            raise GraphError(f"chunk_half_edges must be >= 1, got {chunk_half_edges}")
        total = int(self.indptr[-1])
        indptr = self.indptr
        for e0 in range(0, total, chunk_half_edges):
            e1 = min(e0 + chunk_half_edges, total)
            v_lo = int(np.searchsorted(indptr, e0, side="right")) - 1
            v_hi = int(np.searchsorted(indptr, e1 - 1, side="right"))
            bounds = np.clip(indptr[v_lo : v_hi + 1], e0, e1)
            sources = np.repeat(
                np.arange(v_lo, v_hi, dtype=np.int64), np.diff(bounds)
            )
            yield v_lo, v_hi, sources, self.indices[e0:e1], self.weights[e0:e1]

    def release_pages(self) -> None:
        """Drop any file-backed pages this graph holds resident (no-op here).

        The mmap tier overrides this to ``madvise(MADV_DONTNEED)`` its
        mappings after a streaming pass; for the RAM tier there is nothing
        to release.
        """

    # ------------------------------------------------------------------
    @classmethod
    def from_undirected(cls, graph: UndirectedGraph) -> "CSRGraph":
        """Build a CSR view from an :class:`UndirectedGraph`.

        Vertex ids are densified in sorted order of the original ids.  The
        only per-edge Python work is draining the edge iterator once; the
        densification (``np.searchsorted`` against the sorted original
        ids), mirroring and sorting all run vectorized.
        """
        n = graph.num_vertices
        original_ids = np.fromiter(graph.vertices(), dtype=np.int64, count=n)
        original_ids.sort()
        edge_rows = [(u, v, w) for u, v, w in graph.edges()]
        if edge_rows:
            triples = np.asarray(edge_rows, dtype=np.int64)
        else:
            triples = np.empty((0, 3), dtype=np.int64)
        u = np.searchsorted(original_ids, triples[:, 0])
        v = np.searchsorted(original_ids, triples[:, 1])
        w = triples[:, 2]
        indptr, indices, weights = build_csr_arrays(
            np.concatenate([u, v]),
            np.concatenate([v, u]),
            np.concatenate([w, w]),
            n,
        )
        return cls(indptr, indices, weights, original_ids)

    @classmethod
    def from_edge_list(
        cls,
        edges: Sequence[tuple[int, int]] | np.ndarray,
        num_vertices: int,
        weights: Sequence[int] | np.ndarray | None = None,
    ) -> "CSRGraph":
        """Build a CSR view directly from an undirected edge list.

        ``edges`` holds each undirected edge once; both directions are
        materialized internally.  Duplicate edges are the caller's
        responsibility (they are kept as parallel edges).
        """
        edge_array = np.asarray(edges, dtype=np.int64)
        if edge_array.size == 0:
            edge_array = edge_array.reshape(0, 2)
        if edge_array.ndim != 2 or edge_array.shape[1] != 2:
            raise GraphError("edges must be an (m, 2) array")
        if weights is None:
            weight_array = np.ones(edge_array.shape[0], dtype=np.int64)
        else:
            weight_array = np.asarray(weights, dtype=np.int64)
            if weight_array.shape[0] != edge_array.shape[0]:
                raise GraphError("weights must align with edges")
        indptr, targets, both_weights = build_csr_arrays(
            np.concatenate([edge_array[:, 0], edge_array[:, 1]]),
            np.concatenate([edge_array[:, 1], edge_array[:, 0]]),
            np.concatenate([weight_array, weight_array]),
            num_vertices,
        )
        return cls(indptr, targets, both_weights)

    def to_undirected(self) -> UndirectedGraph:
        """Materialize back into an :class:`UndirectedGraph` (original ids).

        The forward half of every edge is selected and mapped back to
        original ids in array form; only the dictionary inserts remain
        per-edge Python work.
        """
        graph = UndirectedGraph()
        for original in self.original_ids.tolist():
            graph.add_vertex(original)
        sources, targets, weights = self.edge_array()
        forward = sources < targets
        for u, v, w in zip(
            self.original_ids[sources[forward]].tolist(),
            self.original_ids[targets[forward]].tolist(),
            self.weights[forward].tolist(),
        ):
            graph.add_edge(u, v, weight=w)
        return graph

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"CSRGraph(|V|={self.num_vertices}, |E|={self.num_edges})"
