"""Out-of-core, memory-mapped CSR storage tier.

The paper partitions graphs far larger than RAM (the Facebook graph has
~1T edges); this module provides the storage layer that lets the repro do
the same on one machine.  A *store* is a directory holding the CSR arrays
of a :class:`~repro.graph.csr.CSRGraph` as flat little-endian ``int64``
shard files plus a JSON descriptor:

``meta.json``
    Format version, ``num_vertices``, ``num_half_edges``, ``total_weight``
    and whether the weights are all 1 (``unit_weights``).  Written last,
    so a complete ``meta.json`` implies a complete store.
``indptr.bin``
    ``int64[n + 1]`` — loaded into RAM on open (``O(n)``, label-sized).
``indices.bin``
    ``int64[2 m]`` — opened as a read-only ``np.memmap``.
``weights.bin``
    ``int64[2 m]`` — memmapped; omitted entirely when every weight is 1
    (the open path substitutes a broadcast view of a single ``1``).
``degrees.bin``
    ``int64[n]`` — weighted degrees, precomputed at write time so opening
    a store never streams the edge files.
``ids.bin``
    ``int64[n]`` — original vertex ids; omitted when they are ``0..n-1``.

:class:`MmapCSRGraph` wraps an open store behind the exact
:class:`~repro.graph.csr.CSRGraph` interface, so every CSR consumer
(FastSpinner, the chunked baseline kernels, the metrics) runs on it
unchanged.  The arrays are byte-identical to the RAM tier's — pinned by
``tests/test_mmap_equivalence.py`` — so the tiers are interchangeable
bit-for-bit.

Keeping peak RSS at ``O(chunk + labels)`` rather than ``O(edges)`` needs
one extra ingredient beyond ``np.memmap``: on a machine with free RAM the
kernel never evicts the file-backed pages a streaming pass touches, so a
full pass would still grow the resident set to the file size.
:meth:`MmapCSRGraph.release_pages` therefore issues
``madvise(MADV_DONTNEED)`` on the mappings (dropping the page-table
entries; the data stays in the OS page cache, which is not charged to the
process), and :meth:`MmapCSRGraph.iter_edge_chunks` copies each chunk off
the mapping and releases the consumed pages as it goes.
"""

from __future__ import annotations

import json
import mmap as _mmap
import os

import numpy as np

from repro.errors import GraphError
from repro.graph.csr import CSRGraph
from repro.graph.io import atomic_open, atomic_write_text

#: On-disk format version (bump on any layout change).
FORMAT_VERSION = 1

#: Default number of half-edges streamed per chunk by the out-of-core
#: kernels.  32 MiB of targets per chunk: large enough to amortize the
#: NumPy call overhead, small enough that a handful of per-chunk
#: temporaries stay far below any realistic memory budget.
DEFAULT_STORAGE_CHUNK = 1 << 22

_META = "meta.json"
_INDPTR = "indptr.bin"
_INDICES = "indices.bin"
_WEIGHTS = "weights.bin"
_DEGREES = "degrees.bin"
_IDS = "ids.bin"

#: Stored array dtype: little-endian int64, matching the RAM tier exactly.
_DTYPE = np.dtype("<i8")


def _write_array_chunked(path: str, array: np.ndarray, chunk: int) -> None:
    """Write ``array`` to ``path`` atomically, ``chunk`` elements at a time."""
    with atomic_open(path, "wb") as handle:
        for start in range(0, array.shape[0], chunk):
            stop = min(start + chunk, array.shape[0])
            handle.write(np.ascontiguousarray(array[start:stop], dtype=_DTYPE).tobytes())


def _read_array(path: str) -> np.ndarray:
    """Load a whole ``int64`` shard file into RAM (closes the file)."""
    with open(path, "rb") as handle:
        return np.fromfile(handle, dtype=_DTYPE).astype(np.int64, copy=False)


def save_csr(
    graph: CSRGraph, path: str | os.PathLike, chunk_half_edges: int = DEFAULT_STORAGE_CHUNK
) -> None:
    """Spill a :class:`CSRGraph` into a store directory at ``path``.

    The written arrays are byte-identical to the in-RAM ones, so a
    round-trip through :func:`open_store` reproduces the graph exactly.
    Existing shard files in ``path`` are replaced atomically; ``meta.json``
    is written last.
    """
    destination = os.fspath(path)
    os.makedirs(destination, exist_ok=True)
    unit_weights = bool(
        graph.weights.shape[0] == 0
        or (int(graph.weights.min()) == 1 and int(graph.weights.max()) == 1)
    )
    _write_array_chunked(os.path.join(destination, _INDPTR), graph.indptr, chunk_half_edges)
    _write_array_chunked(os.path.join(destination, _INDICES), graph.indices, chunk_half_edges)
    if unit_weights:
        stale = os.path.join(destination, _WEIGHTS)
        if os.path.exists(stale):
            os.remove(stale)
    else:
        _write_array_chunked(
            os.path.join(destination, _WEIGHTS), graph.weights, chunk_half_edges
        )
    _write_array_chunked(
        os.path.join(destination, _DEGREES), graph.weighted_degrees, chunk_half_edges
    )
    trivial_ids = bool(
        np.array_equal(graph.original_ids, np.arange(graph.num_vertices, dtype=np.int64))
    )
    if trivial_ids:
        stale = os.path.join(destination, _IDS)
        if os.path.exists(stale):
            os.remove(stale)
    else:
        _write_array_chunked(os.path.join(destination, _IDS), graph.original_ids, chunk_half_edges)
    write_meta(
        destination,
        num_vertices=graph.num_vertices,
        num_half_edges=int(graph.indices.shape[0]),
        total_weight=graph.total_weight,
        unit_weights=unit_weights,
    )


def write_meta(
    path: str | os.PathLike,
    *,
    num_vertices: int,
    num_half_edges: int,
    total_weight: int,
    unit_weights: bool,
) -> None:
    """Write a store's ``meta.json`` (deterministic bytes, written last)."""
    meta = {
        "format": FORMAT_VERSION,
        "num_half_edges": int(num_half_edges),
        "num_vertices": int(num_vertices),
        "total_weight": int(total_weight),
        "unit_weights": bool(unit_weights),
    }
    atomic_write_text(
        os.path.join(os.fspath(path), _META),
        json.dumps(meta, indent=2, sort_keys=True) + "\n",
    )


def read_meta(path: str | os.PathLike) -> dict:
    """Read and validate a store's ``meta.json``."""
    meta_path = os.path.join(os.fspath(path), _META)
    if not os.path.exists(meta_path):
        raise GraphError(f"{os.fspath(path)!r} is not a CSR store (no {_META})")
    with open(meta_path, encoding="utf-8") as handle:
        meta = json.load(handle)
    if meta.get("format") != FORMAT_VERSION:
        raise GraphError(
            f"unsupported store format {meta.get('format')!r} "
            f"(this build reads format {FORMAT_VERSION})"
        )
    return meta


class MmapCSRGraph(CSRGraph):
    """A :class:`CSRGraph` whose edge arrays live in on-disk shard files.

    ``indptr``, ``weighted_degrees`` and ``original_ids`` are loaded into
    RAM (all ``O(n)``, label-sized); ``indices`` and ``weights`` are
    read-only ``np.memmap`` views.  Use as a context manager or call
    :meth:`close` so the mappings are released deterministically — on
    Windows an open mapping blocks deletion of the store directory.
    """

    storage = "mmap"

    def __init__(self, path: str | os.PathLike) -> None:
        directory = os.fspath(path)
        meta = read_meta(directory)
        n = int(meta["num_vertices"])
        half_edges = int(meta["num_half_edges"])
        indptr = _read_array(os.path.join(directory, _INDPTR))
        if indptr.shape[0] != n + 1:
            raise GraphError(
                f"store {directory!r}: indptr has {indptr.shape[0]} entries "
                f"for {n} vertices"
            )
        self._memmaps: list[np.memmap] = []
        indices = self._map(os.path.join(directory, _INDICES), half_edges)
        if meta["unit_weights"]:
            weights = np.broadcast_to(np.ones(1, dtype=np.int64), (half_edges,))
        else:
            weights = self._map(os.path.join(directory, _WEIGHTS), half_edges)
        degrees = _read_array(os.path.join(directory, _DEGREES))
        ids_path = os.path.join(directory, _IDS)
        original_ids = _read_array(ids_path) if os.path.exists(ids_path) else None
        self.path = directory
        self._closed = False
        super().__init__(
            indptr,
            indices,
            weights,
            original_ids,
            weighted_degrees=degrees,
            total_weight=int(meta["total_weight"]),
        )

    def _map(self, path: str, length: int) -> np.ndarray:
        """Memory-map one shard file read-only (empty files map to empty arrays)."""
        if length == 0:
            return np.empty(0, dtype=np.int64)
        if not os.path.exists(path):
            raise GraphError(f"store shard {path!r} is missing")
        mapped = np.memmap(path, dtype=_DTYPE, mode="r", shape=(length,))
        self._memmaps.append(mapped)
        return mapped

    # ------------------------------------------------------------------
    def release_pages(self) -> None:
        """Drop the resident pages of every mapping (``MADV_DONTNEED``).

        The data stays in the OS page cache, so re-reading it later is a
        soft fault, but the pages no longer count against this process's
        RSS — the call that keeps full streaming passes at ``O(chunk)``
        peak memory.  Silently a no-op where ``madvise`` is unavailable.
        """
        for mapped in self._memmaps:
            buffer = getattr(mapped, "_mmap", None)
            if buffer is None or not hasattr(buffer, "madvise"):
                continue
            try:
                buffer.madvise(getattr(_mmap, "MADV_DONTNEED"))
            except (AttributeError, ValueError, OSError):  # pragma: no cover
                pass

    def iter_edge_chunks(self, chunk_half_edges: int):
        """Stream half-edge chunks as RAM copies, releasing consumed pages.

        Overrides the base implementation to copy each chunk out of the
        mappings (fancy downstream indexing would copy anyway) and then
        drop the pages the chunk touched, so a full pass over a graph much
        larger than the memory budget keeps peak RSS at ``O(chunk)``.
        """
        for v_lo, v_hi, sources, targets, weights in super().iter_edge_chunks(
            chunk_half_edges
        ):
            targets = np.array(targets, dtype=np.int64, copy=True)
            weights = np.array(weights, dtype=np.int64, copy=True)
            self.release_pages()
            yield v_lo, v_hi, sources, targets, weights

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release the memory mappings (idempotent).

        After closing, the edge arrays must not be touched again; the
        store directory can then be deleted immediately, even on Windows.
        """
        if self._closed:
            return
        self._closed = True
        buffers = [getattr(mapped, "_mmap", None) for mapped in self._memmaps]
        self._memmaps.clear()
        # Drop the ndarray references first so the underlying buffers have
        # no exporters left, then close the mappings for real.
        self.indices = np.empty(0, dtype=np.int64)
        self.weights = np.empty(0, dtype=np.int64)
        for buffer in buffers:
            if buffer is not None:
                try:
                    buffer.close()
                except BufferError:  # pragma: no cover - caller kept a view
                    pass

    def __enter__(self) -> "MmapCSRGraph":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"MmapCSRGraph(path={self.path!r}, |V|={self.num_vertices}, |E|={self.num_edges})"


def open_store(path: str | os.PathLike) -> MmapCSRGraph:
    """Open a store directory as an :class:`MmapCSRGraph`."""
    return MmapCSRGraph(path)
