"""Directed to weighted-undirected conversion (paper eq. 3).

Spinner partitions a weighted undirected graph even when the input is
directed.  The weight of the undirected edge ``{u, v}`` encodes how many
directed edges connect ``u`` and ``v`` in the input graph:

* weight 1 when exactly one of ``(u, v)`` or ``(v, u)`` exists, and
* weight 2 when both exist.

The weighted score function of eq. (4) then counts exactly the number of
messages that would be exchanged locally by a Pregel application running
on the original directed graph.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph, build_csr_arrays
from repro.graph.digraph import DiGraph
from repro.graph.undirected import UndirectedGraph

#: Weight of an undirected edge backed by a single directed edge.
SINGLE_DIRECTION_WEIGHT = 1
#: Weight of an undirected edge backed by directed edges in both directions.
BOTH_DIRECTIONS_WEIGHT = 2


def to_weighted_undirected(graph: DiGraph) -> UndirectedGraph:
    """Convert a directed graph to Spinner's weighted undirected form.

    Parameters
    ----------
    graph:
        The directed input graph.

    Returns
    -------
    UndirectedGraph
        A graph with the same vertex set where every pair of vertices
        connected in either direction is joined by one undirected edge whose
        weight follows eq. (3) of the paper.  Self-loops are dropped.

    Examples
    --------
    >>> d = DiGraph.from_edges([(0, 1), (1, 0), (1, 2)])
    >>> u = to_weighted_undirected(d)
    >>> u.weight(0, 1), u.weight(1, 2)
    (2, 1)
    >>> u.total_weight == d.num_edges
    True
    """
    undirected = UndirectedGraph()
    for vertex_id in graph.vertices():
        undirected.add_vertex(vertex_id)

    for source, target in graph.edges():
        if source == target:
            continue
        if undirected.has_edge(source, target):
            # The reciprocal edge was already processed; upgrade the weight.
            if graph.has_edge(target, source):
                undirected.set_weight(source, target, BOTH_DIRECTIONS_WEIGHT)
            continue
        weight = (
            BOTH_DIRECTIONS_WEIGHT
            if graph.has_edge(target, source)
            else SINGLE_DIRECTION_WEIGHT
        )
        undirected.add_edge(source, target, weight=weight)
    return undirected


def undirected_view_unweighted(graph: DiGraph) -> UndirectedGraph:
    """Naive conversion that ignores edge direction (weight always 1).

    This is the conversion the paper argues against in Section III-A; it is
    kept as an ablation baseline so the benefit of direction-aware weights
    can be measured (``benchmarks/test_ablations.py``).
    """
    undirected = UndirectedGraph()
    for vertex_id in graph.vertices():
        undirected.add_vertex(vertex_id)
    for source, target in graph.edges():
        if source == target:
            continue
        undirected.add_edge(source, target, weight=SINGLE_DIRECTION_WEIGHT)
    return undirected


def directed_pair_weights(
    num_vertices: int, sources: np.ndarray, targets: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Eq. (3) weights of a dense directed edge list, one row per pair.

    ``sources``/``targets`` hold dense (``0..num_vertices-1``) endpoint
    ids of directed edges with no self-loops and no parallel duplicates.
    Returns ``(u, v, weight)`` with ``u <= v``: each unordered pair
    connected in either direction appears once, and its multiplicity in
    the input — 1 (single direction) or 2 (reciprocal pair) — *is* the
    eq. (3) weight.  Detected with one composite-key ``np.unique`` pass;
    shared by :func:`to_weighted_csr` and the batch Spinner's shard
    builder (:mod:`repro.core.batch_program`) so the encoding lives in
    exactly one place.
    """
    n = np.int64(num_vertices)
    keys, counts = np.unique(
        np.minimum(sources, targets) * n + np.maximum(sources, targets),
        return_counts=True,
    )
    return keys // n, keys % n, counts.astype(np.int64)


def to_weighted_csr(graph: DiGraph, direction_aware: bool = True) -> CSRGraph:
    """Convert a directed graph straight to the weighted undirected CSR form.

    Produces the same graph as ``CSRGraph.from_undirected`` applied to
    :func:`to_weighted_undirected` (or to
    :func:`undirected_view_unweighted` when ``direction_aware`` is
    ``False``) without materializing the intermediate dictionary-based
    :class:`UndirectedGraph`.  Reciprocal directed pairs are detected with
    one composite-key ``np.unique`` over the densified edge list: each
    unordered pair occurs once or twice, and that multiplicity *is* the
    eq. (3) weight.  Self-loops are dropped, matching the dict-based
    conversions.
    """
    n = graph.num_vertices
    original_ids = np.fromiter(graph.vertices(), dtype=np.int64, count=n)
    original_ids.sort()
    pairs = [(s, t) for s, t in graph.edges() if s != t]
    if not pairs:
        empty = np.empty(0, dtype=np.int64)
        return CSRGraph(np.zeros(n + 1, dtype=np.int64), empty, empty, original_ids)
    arr = np.asarray(pairs, dtype=np.int64)
    s = np.searchsorted(original_ids, arr[:, 0])
    t = np.searchsorted(original_ids, arr[:, 1])
    # DiGraph collapses parallel edges, so the multiplicity is 1 or 2 (eq. 3).
    u, v, w = directed_pair_weights(n, s, t)
    if not direction_aware:
        w = np.ones(u.shape[0], dtype=np.int64)
    indptr, indices, weights = build_csr_arrays(
        np.concatenate([u, v]),
        np.concatenate([v, u]),
        np.concatenate([w, w]),
        n,
    )
    return CSRGraph(indptr, indices, weights, original_ids)


def ensure_undirected(
    graph: DiGraph | UndirectedGraph, direction_aware: bool = True
) -> UndirectedGraph:
    """Return an undirected view of ``graph`` suitable for partitioning.

    Undirected graphs are returned unchanged; directed graphs are converted
    with :func:`to_weighted_undirected` (or the naive conversion when
    ``direction_aware`` is ``False``).
    """
    if isinstance(graph, UndirectedGraph):
        return graph
    if direction_aware:
        return to_weighted_undirected(graph)
    return undirected_view_unweighted(graph)
