"""Adjacency-list directed graph.

This mirrors the data model of Pregel/Giraph: every vertex knows its
outgoing edges but not its incoming ones.  Vertex identifiers are
non-negative integers; parallel edges are collapsed, self-loops are
allowed but ignored by the partitioners (they never cross a cut).
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.errors import GraphError, VertexNotFoundError


class DiGraph:
    """A directed graph stored as out-adjacency sets.

    The class intentionally exposes a small, explicit API: vertices are
    created lazily by :meth:`add_edge` or explicitly by :meth:`add_vertex`,
    and traversal is done through :meth:`vertices`, :meth:`edges` and
    :meth:`successors`.

    Examples
    --------
    >>> g = DiGraph()
    >>> g.add_edge(0, 1)
    >>> g.add_edge(1, 0)
    >>> g.add_edge(1, 2)
    >>> sorted(g.successors(1))
    [0, 2]
    >>> g.num_vertices, g.num_edges
    (3, 3)
    """

    def __init__(self) -> None:
        self._succ: dict[int, set[int]] = {}
        self._num_edges = 0

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_vertex(self, vertex_id: int) -> None:
        """Add an isolated vertex; a no-op if it already exists."""
        if vertex_id < 0:
            raise GraphError(f"vertex ids must be non-negative, got {vertex_id}")
        self._succ.setdefault(vertex_id, set())

    def add_edge(self, source: int, target: int) -> bool:
        """Add a directed edge, creating endpoints as needed.

        Returns ``True`` if the edge was new and ``False`` if it already
        existed (parallel edges are collapsed).
        """
        self.add_vertex(source)
        self.add_vertex(target)
        out = self._succ[source]
        if target in out:
            return False
        out.add(target)
        self._num_edges += 1
        return True

    def add_edges(self, edges: Iterable[tuple[int, int]]) -> int:
        """Add many edges at once; returns the number of new edges."""
        added = 0
        for source, target in edges:
            if self.add_edge(source, target):
                added += 1
        return added

    def remove_edge(self, source: int, target: int) -> bool:
        """Remove a directed edge if present; returns whether it existed."""
        out = self._succ.get(source)
        if out is None or target not in out:
            return False
        out.remove(target)
        self._num_edges -= 1
        return True

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Number of vertices currently in the graph."""
        return len(self._succ)

    @property
    def num_edges(self) -> int:
        """Number of directed edges currently in the graph."""
        return self._num_edges

    def __contains__(self, vertex_id: int) -> bool:
        return vertex_id in self._succ

    def __len__(self) -> int:
        return len(self._succ)

    def has_edge(self, source: int, target: int) -> bool:
        """Return whether the directed edge ``source -> target`` exists."""
        out = self._succ.get(source)
        return out is not None and target in out

    def vertices(self) -> Iterator[int]:
        """Iterate over vertex ids."""
        return iter(self._succ)

    def edges(self) -> Iterator[tuple[int, int]]:
        """Iterate over directed edges as ``(source, target)`` pairs."""
        for source, targets in self._succ.items():
            for target in targets:
                yield source, target

    def successors(self, vertex_id: int) -> set[int]:
        """Return the set of out-neighbours of ``vertex_id``."""
        try:
            return self._succ[vertex_id]
        except KeyError:
            raise VertexNotFoundError(vertex_id) from None

    def out_degree(self, vertex_id: int) -> int:
        """Return the out-degree of ``vertex_id``."""
        return len(self.successors(vertex_id))

    def copy(self) -> "DiGraph":
        """Return a deep copy of the graph."""
        clone = DiGraph()
        clone._succ = {v: set(targets) for v, targets in self._succ.items()}
        clone._num_edges = self._num_edges
        return clone

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"DiGraph(|V|={self.num_vertices}, |E|={self.num_edges})"

    # ------------------------------------------------------------------
    # convenience constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(
        cls, edges: Iterable[tuple[int, int]], num_vertices: int | None = None
    ) -> "DiGraph":
        """Build a graph from an iterable of ``(source, target)`` pairs.

        If ``num_vertices`` is given, vertices ``0 .. num_vertices - 1`` are
        created even when isolated, so the vertex set is deterministic.
        """
        graph = cls()
        if num_vertices is not None:
            for vertex_id in range(num_vertices):
                graph.add_vertex(vertex_id)
        graph.add_edges(edges)
        return graph
