"""Weighted undirected graph — the representation Spinner partitions.

Spinner converts directed input graphs into weighted undirected graphs
(Section III-A of the paper): an undirected edge gets weight 1 when the
directed edge exists in only one direction and weight 2 when both
directions exist.  This module provides that representation, together
with the degree definition used by the balance machinery (the degree of a
vertex is the *sum of the weights* of its incident edges, which equals the
number of directed messages it exchanges).
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.errors import GraphError, VertexNotFoundError


class UndirectedGraph:
    """An undirected graph with integer edge weights.

    Edges are stored once per endpoint in a nested mapping
    ``{vertex: {neighbour: weight}}``.  Self-loops are rejected because the
    partitioning objective ignores them.

    Examples
    --------
    >>> g = UndirectedGraph()
    >>> g.add_edge(0, 1, weight=2)
    >>> g.add_edge(1, 2)
    >>> g.weighted_degree(1)
    3
    >>> g.num_edges
    2
    """

    def __init__(self) -> None:
        self._adj: dict[int, dict[int, int]] = {}
        self._num_edges = 0
        self._total_weight = 0

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_vertex(self, vertex_id: int) -> None:
        """Add an isolated vertex; a no-op if it already exists."""
        if vertex_id < 0:
            raise GraphError(f"vertex ids must be non-negative, got {vertex_id}")
        self._adj.setdefault(vertex_id, {})

    def add_edge(self, u: int, v: int, weight: int = 1) -> bool:
        """Add an undirected edge of the given weight.

        If the edge already exists its weight is left unchanged and the
        method returns ``False``.  Use :meth:`set_weight` to update weights.
        """
        if u == v:
            raise GraphError("self-loops are not supported")
        if weight <= 0:
            raise GraphError(f"edge weights must be positive, got {weight}")
        self.add_vertex(u)
        self.add_vertex(v)
        if v in self._adj[u]:
            return False
        self._adj[u][v] = weight
        self._adj[v][u] = weight
        self._num_edges += 1
        self._total_weight += weight
        return True

    def set_weight(self, u: int, v: int, weight: int) -> None:
        """Set the weight of an existing edge."""
        if weight <= 0:
            raise GraphError(f"edge weights must be positive, got {weight}")
        if not self.has_edge(u, v):
            raise GraphError(f"edge ({u}, {v}) does not exist")
        old = self._adj[u][v]
        self._adj[u][v] = weight
        self._adj[v][u] = weight
        self._total_weight += weight - old

    def remove_edge(self, u: int, v: int) -> bool:
        """Remove the edge ``{u, v}`` if present; returns whether it existed."""
        if not self.has_edge(u, v):
            return False
        weight = self._adj[u].pop(v)
        self._adj[v].pop(u)
        self._num_edges -= 1
        self._total_weight -= weight
        return True

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Number of vertices in the graph."""
        return len(self._adj)

    @property
    def num_edges(self) -> int:
        """Number of undirected edges in the graph."""
        return self._num_edges

    @property
    def total_weight(self) -> int:
        """Sum of all edge weights.

        This equals the number of directed edges of the original graph when
        the graph was produced by
        :func:`repro.graph.conversion.to_weighted_undirected`.
        """
        return self._total_weight

    def __contains__(self, vertex_id: int) -> bool:
        return vertex_id in self._adj

    def __len__(self) -> int:
        return len(self._adj)

    def has_edge(self, u: int, v: int) -> bool:
        """Return whether the undirected edge ``{u, v}`` exists."""
        adj_u = self._adj.get(u)
        return adj_u is not None and v in adj_u

    def weight(self, u: int, v: int) -> int:
        """Return the weight of the edge ``{u, v}``."""
        if not self.has_edge(u, v):
            raise GraphError(f"edge ({u}, {v}) does not exist")
        return self._adj[u][v]

    def vertices(self) -> Iterator[int]:
        """Iterate over vertex ids."""
        return iter(self._adj)

    def edges(self) -> Iterator[tuple[int, int, int]]:
        """Iterate over edges as ``(u, v, weight)`` with ``u < v``."""
        for u, neighbours in self._adj.items():
            for v, weight in neighbours.items():
                if u < v:
                    yield u, v, weight

    def neighbors(self, vertex_id: int) -> dict[int, int]:
        """Return the mapping ``{neighbour: weight}`` of a vertex."""
        try:
            return self._adj[vertex_id]
        except KeyError:
            raise VertexNotFoundError(vertex_id) from None

    def degree(self, vertex_id: int) -> int:
        """Return the number of incident edges of a vertex."""
        return len(self.neighbors(vertex_id))

    def weighted_degree(self, vertex_id: int) -> int:
        """Return the sum of incident edge weights of a vertex.

        This is the quantity Spinner balances on: it equals the number of
        messages the vertex exchanges in the original directed graph.
        """
        return sum(self.neighbors(vertex_id).values())

    def copy(self) -> "UndirectedGraph":
        """Return a deep copy of the graph."""
        clone = UndirectedGraph()
        clone._adj = {v: dict(nbrs) for v, nbrs in self._adj.items()}
        clone._num_edges = self._num_edges
        clone._total_weight = self._total_weight
        return clone

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"UndirectedGraph(|V|={self.num_vertices}, |E|={self.num_edges}, "
            f"W={self.total_weight})"
        )

    # ------------------------------------------------------------------
    # convenience constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(
        cls,
        edges: Iterable[tuple[int, int] | tuple[int, int, int]],
        num_vertices: int | None = None,
    ) -> "UndirectedGraph":
        """Build a graph from ``(u, v)`` or ``(u, v, weight)`` tuples."""
        graph = cls()
        if num_vertices is not None:
            for vertex_id in range(num_vertices):
                graph.add_vertex(vertex_id)
        for edge in edges:
            if len(edge) == 2:
                u, v = edge  # type: ignore[misc]
                graph.add_edge(u, v)
            else:
                u, v, weight = edge  # type: ignore[misc]
                graph.add_edge(u, v, weight=weight)
        return graph
