"""Graph substrate: data structures, generators, datasets and statistics.

The Spinner paper operates on directed graphs loaded into Giraph and
converts them internally to weighted undirected graphs (Section III-A).
This subpackage provides the equivalent building blocks:

* :class:`repro.graph.digraph.DiGraph` — adjacency-list directed graph.
* :class:`repro.graph.undirected.UndirectedGraph` — weighted undirected
  graph, the representation Spinner actually partitions.
* :func:`repro.graph.conversion.to_weighted_undirected` — the directed to
  weighted-undirected conversion of eq. (3) in the paper.
* :class:`repro.graph.csr.CSRGraph` — a compressed sparse row view used by
  the vectorized Spinner implementation and by the baselines.
* :mod:`repro.graph.generators` — synthetic generators (Watts–Strogatz,
  Barabási–Albert, Erdős–Rényi, …).
* :mod:`repro.graph.datasets` — scaled-down proxies for the paper's
  real-world datasets (Table II).
* :mod:`repro.graph.dynamic` — edge-arrival streams for the dynamic
  repartitioning experiments (Figure 7).
"""

from repro.graph.conversion import to_weighted_undirected
from repro.graph.csr import CSRGraph
from repro.graph.digraph import DiGraph
from repro.graph.undirected import UndirectedGraph

__all__ = [
    "DiGraph",
    "UndirectedGraph",
    "CSRGraph",
    "to_weighted_undirected",
]
