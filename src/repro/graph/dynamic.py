"""Dynamic graph change streams.

Section V-C of the paper evaluates incremental repartitioning by taking a
snapshot of the Tuenti graph, adding a varying percentage of *new* edges
(actual new friendships) and measuring how cheaply Spinner adapts compared
to repartitioning from scratch.  This module provides the equivalent
machinery: it withholds a fraction of a graph's edges, exposes the
remaining snapshot, and then releases batches of the withheld edges as
change sets.

Beyond the paper's uniform arrivals, the adversarial generators
(:func:`random_new_edges`, :func:`bursty_new_edges`,
:func:`hub_birth_edges`) produce seeded :class:`GraphDelta` batches with
deliberately hostile shapes — structure-ignoring noise, hotspot bursts
and high-degree vertex births — used by the stability sweep and as the
serving benchmark's churn sources.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import GraphError
from repro.graph.undirected import UndirectedGraph


@dataclass
class GraphDelta:
    """A batch of changes to apply to a graph.

    Attributes
    ----------
    added_edges:
        Undirected edges ``(u, v, weight)`` to add.
    added_vertices:
        Vertices that appear for the first time in this delta.
    """

    added_edges: list[tuple[int, int, int]] = field(default_factory=list)
    added_vertices: set[int] = field(default_factory=set)

    @property
    def num_new_edges(self) -> int:
        """Number of edges introduced by the delta."""
        return len(self.added_edges)

    def apply(self, graph: UndirectedGraph) -> UndirectedGraph:
        """Apply this delta to ``graph`` in place and return it."""
        for vertex in self.added_vertices:
            graph.add_vertex(vertex)
        for u, v, weight in self.added_edges:
            if not graph.has_edge(u, v):
                graph.add_edge(u, v, weight=weight)
        return graph


class EdgeArrivalStream:
    """Split a graph into a snapshot plus a stream of edge-arrival deltas.

    Parameters
    ----------
    graph:
        The full ("future") undirected graph.
    holdout_fraction:
        Fraction of edges withheld from the snapshot and released later.
    seed:
        Seed for the random selection of withheld edges.

    Examples
    --------
    >>> from repro.graph.generators import erdos_renyi
    >>> full = erdos_renyi(200, 800, seed=7)
    >>> stream = EdgeArrivalStream(full, holdout_fraction=0.2, seed=7)
    >>> snapshot = stream.snapshot()
    >>> delta = stream.delta(fraction_of_snapshot=0.05)
    >>> delta.num_new_edges <= stream.num_withheld_edges
    True
    """

    def __init__(
        self,
        graph: UndirectedGraph,
        holdout_fraction: float = 0.3,
        seed: int | None = None,
    ) -> None:
        if not 0.0 < holdout_fraction < 1.0:
            raise GraphError("holdout_fraction must lie strictly between 0 and 1")
        self._full = graph
        self._rng = np.random.default_rng(seed)
        all_edges = list(graph.edges())
        self._rng.shuffle(all_edges)
        num_withheld = int(round(len(all_edges) * holdout_fraction))
        self._withheld = all_edges[:num_withheld]
        self._snapshot_edges = all_edges[num_withheld:]
        self._cursor = 0

    @property
    def num_withheld_edges(self) -> int:
        """Number of edges that have not yet been released."""
        return len(self._withheld) - self._cursor

    @property
    def num_snapshot_edges(self) -> int:
        """Number of edges in the initial snapshot."""
        return len(self._snapshot_edges)

    def snapshot(self) -> UndirectedGraph:
        """Return a fresh copy of the initial snapshot graph.

        The snapshot contains every vertex of the full graph (so vertex ids
        stay aligned) but only the non-withheld edges.
        """
        snapshot = UndirectedGraph()
        for vertex in self._full.vertices():
            snapshot.add_vertex(vertex)
        for u, v, weight in self._snapshot_edges:
            snapshot.add_edge(u, v, weight=weight)
        return snapshot

    def delta(
        self,
        fraction_of_snapshot: float | None = None,
        num_edges: int | None = None,
    ) -> GraphDelta:
        """Release the next batch of withheld edges.

        Exactly one of ``fraction_of_snapshot`` (relative to the snapshot
        edge count, matching the paper's "% new edges" axis) or
        ``num_edges`` must be provided.
        """
        if (fraction_of_snapshot is None) == (num_edges is None):
            raise GraphError("provide exactly one of fraction_of_snapshot or num_edges")
        if fraction_of_snapshot is not None:
            num_edges = int(round(self.num_snapshot_edges * fraction_of_snapshot))
        assert num_edges is not None
        num_edges = min(num_edges, self.num_withheld_edges)
        batch = self._withheld[self._cursor : self._cursor + num_edges]
        self._cursor += num_edges
        delta = GraphDelta(added_edges=list(batch))
        return delta

    def reset(self) -> None:
        """Rewind the stream so withheld edges can be released again."""
        self._cursor = 0


def random_new_edges(
    graph: UndirectedGraph,
    fraction: float,
    seed: int | None = None,
) -> GraphDelta:
    """Create a delta of brand-new random edges between existing vertices.

    This is an alternative change model to :class:`EdgeArrivalStream` used
    by property tests: edges are sampled uniformly among non-existing pairs,
    so they do not follow the community structure of the graph.
    """
    target = _delta_target(graph, fraction)
    rng = np.random.default_rng(seed)
    vertices = list(graph.vertices())
    delta = GraphDelta()
    if not vertices:
        return delta
    attempts = 0
    while len(delta.added_edges) < target and attempts < target * 50 + 100:
        attempts += 1
        u = vertices[int(rng.integers(len(vertices)))]
        v = vertices[int(rng.integers(len(vertices)))]
        if u == v or graph.has_edge(u, v):
            continue
        delta.added_edges.append((u, v, 1))
    return delta


def _delta_target(graph: UndirectedGraph, fraction: float) -> int:
    """Validate ``fraction`` and return the target new-edge count."""
    if not 0.0 <= fraction <= 1.0:
        raise GraphError("fraction must lie in [0, 1]")
    return int(round(graph.num_edges * fraction))


def bursty_new_edges(
    graph: UndirectedGraph,
    fraction: float,
    seed: int | None = None,
    num_hotspots: int = 8,
) -> GraphDelta:
    """Adversarial burst: new edges concentrated around a few hotspots.

    Models a viral event — a small random set of existing vertices (the
    hotspots) suddenly gains edges to vertices sampled uniformly from the
    whole graph, so the new edges ignore community structure *and* pile
    their load onto few partitions at once.  Same seeded
    :class:`GraphDelta` contract as :func:`random_new_edges`: ``fraction``
    is relative to the current edge count, duplicates of existing edges
    and self-loops are never emitted, and each pair appears at most once
    in the delta.
    """
    target = _delta_target(graph, fraction)
    if num_hotspots < 1:
        raise GraphError(f"num_hotspots must be >= 1, got {num_hotspots}")
    rng = np.random.default_rng(seed)
    vertices = list(graph.vertices())
    delta = GraphDelta()
    if not vertices or target == 0:
        return delta
    chosen = rng.choice(
        len(vertices), size=min(num_hotspots, len(vertices)), replace=False
    )
    hotspots = [vertices[int(index)] for index in chosen]
    seen: set[tuple[int, int]] = set()
    attempts = 0
    while len(delta.added_edges) < target and attempts < target * 50 + 100:
        attempts += 1
        u = hotspots[int(rng.integers(len(hotspots)))]
        v = vertices[int(rng.integers(len(vertices)))]
        if u == v or graph.has_edge(u, v):
            continue
        key = (min(u, v), max(u, v))
        if key in seen:
            continue
        seen.add(key)
        delta.added_edges.append((u, v, 1))
    return delta


def hub_birth_edges(
    graph: UndirectedGraph,
    fraction: float,
    seed: int | None = None,
    num_hubs: int = 4,
) -> GraphDelta:
    """Adversarial hub births: brand-new high-degree vertices appear.

    Models a celebrity joining the network — ``num_hubs`` vertices that
    did not exist before (ids above the current maximum) arrive together
    with large neighbourhoods sampled uniformly from the existing
    vertices.  This stresses the incremental path's new-vertex placement:
    the hubs carry a large weighted degree the least-loaded rule must
    absorb without violating balance.  Same seeded :class:`GraphDelta`
    contract as :func:`random_new_edges` (``fraction`` of the current
    edge count, no duplicates), with the hubs listed in
    ``added_vertices``.
    """
    target = _delta_target(graph, fraction)
    if num_hubs < 1:
        raise GraphError(f"num_hubs must be >= 1, got {num_hubs}")
    rng = np.random.default_rng(seed)
    vertices = list(graph.vertices())
    delta = GraphDelta()
    if not vertices or target == 0:
        return delta
    next_id = max(vertices) + 1
    hubs = [next_id + offset for offset in range(num_hubs)]
    delta.added_vertices.update(hubs)
    linked: set[tuple[int, int]] = set()
    attempts = 0
    while len(delta.added_edges) < target and attempts < target * 50 + 100:
        attempts += 1
        hub = hubs[len(delta.added_edges) % len(hubs)]
        v = vertices[int(rng.integers(len(vertices)))]
        if (hub, v) in linked:
            continue
        linked.add((hub, v))
        delta.added_edges.append((hub, v, 1))
    return delta
