"""Synthetic graph generators.

The Spinner evaluation uses Watts–Strogatz small-world graphs for the
scalability study (Section V-B) and real social/web graphs elsewhere.
This module implements the generators needed to reproduce the synthetic
workloads and to build scaled-down structural proxies of the real
datasets (see :mod:`repro.graph.datasets`):

* :func:`watts_strogatz` — ring lattice with random rewiring.
* :func:`barabasi_albert` — preferential attachment (power-law degrees,
  hubs — the "Twitter-like" structure).
* :func:`erdos_renyi` — uniform random graph.
* :func:`powerlaw_cluster` — preferential attachment with triad closure
  (power-law degrees plus clustering — the "social-network-like"
  structure).
* :func:`ring_lattice` — the deterministic skeleton used by
  :func:`watts_strogatz`.

All generators take an explicit ``seed`` and are deterministic for a given
seed, which the experiment harness relies on.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GraphError
from repro.graph.digraph import DiGraph
from repro.graph.undirected import UndirectedGraph


def _rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def ring_lattice(num_vertices: int, degree: int) -> UndirectedGraph:
    """Return a ring lattice where each vertex connects to ``degree`` nearest
    neighbours (``degree // 2`` on each side).

    Parameters
    ----------
    num_vertices:
        Number of vertices; must be larger than ``degree``.
    degree:
        Even number of neighbours per vertex.
    """
    if degree % 2 != 0:
        raise GraphError("ring lattice degree must be even")
    if num_vertices <= degree:
        raise GraphError("num_vertices must exceed degree")
    graph = UndirectedGraph()
    for v in range(num_vertices):
        graph.add_vertex(v)
    half = degree // 2
    for v in range(num_vertices):
        for offset in range(1, half + 1):
            graph.add_edge(v, (v + offset) % num_vertices)
    return graph


def watts_strogatz(
    num_vertices: int,
    degree: int,
    beta: float,
    seed: int | np.random.Generator | None = None,
) -> UndirectedGraph:
    """Watts–Strogatz small-world graph.

    Starts from :func:`ring_lattice` and rewires each edge's far endpoint
    with probability ``beta``, matching the construction used for the
    scalability experiments of the paper (degree 40, ``beta = 0.3``).
    """
    if not 0.0 <= beta <= 1.0:
        raise GraphError("beta must lie in [0, 1]")
    rng = _rng(seed)
    graph = ring_lattice(num_vertices, degree)
    half = degree // 2
    for v in range(num_vertices):
        for offset in range(1, half + 1):
            if rng.random() >= beta:
                continue
            old_target = (v + offset) % num_vertices
            if not graph.has_edge(v, old_target):
                continue
            # Draw a new endpoint that is neither v nor an existing neighbour.
            for _ in range(16):
                candidate = int(rng.integers(num_vertices))
                if candidate != v and not graph.has_edge(v, candidate):
                    graph.remove_edge(v, old_target)
                    graph.add_edge(v, candidate)
                    break
    return graph


def erdos_renyi(
    num_vertices: int,
    num_edges: int,
    seed: int | np.random.Generator | None = None,
) -> UndirectedGraph:
    """Uniform random graph with (approximately) ``num_edges`` distinct edges."""
    rng = _rng(seed)
    graph = UndirectedGraph()
    for v in range(num_vertices):
        graph.add_vertex(v)
    added = 0
    attempts = 0
    max_attempts = num_edges * 20 + 100
    while added < num_edges and attempts < max_attempts:
        attempts += 1
        u = int(rng.integers(num_vertices))
        v = int(rng.integers(num_vertices))
        if u == v:
            continue
        if graph.add_edge(u, v):
            added += 1
    return graph


def barabasi_albert(
    num_vertices: int,
    edges_per_vertex: int,
    seed: int | np.random.Generator | None = None,
    directed: bool = False,
) -> UndirectedGraph | DiGraph:
    """Barabási–Albert preferential attachment graph.

    Each new vertex attaches to ``edges_per_vertex`` existing vertices with
    probability proportional to their degree, producing a power-law degree
    distribution with pronounced hubs (the structure the paper highlights
    for the Twitter graph).

    When ``directed`` is ``True`` the attachment edges point from the new
    vertex to the chosen targets, which mimics "follower" style graphs.
    """
    if num_vertices <= edges_per_vertex:
        raise GraphError("num_vertices must exceed edges_per_vertex")
    rng = _rng(seed)
    # Repeated-nodes list implements preferential attachment in O(1) per draw.
    repeated: list[int] = []
    undirected_edges: list[tuple[int, int]] = []
    initial = edges_per_vertex
    for v in range(initial):
        repeated.append(v)
    for v in range(initial, num_vertices):
        targets: set[int] = set()
        while len(targets) < edges_per_vertex:
            if repeated and rng.random() < 0.9:
                candidate = repeated[int(rng.integers(len(repeated)))]
            else:
                candidate = int(rng.integers(v))
            if candidate != v:
                targets.add(candidate)
        for target in targets:
            undirected_edges.append((v, target))
            repeated.append(v)
            repeated.append(target)
    if directed:
        digraph = DiGraph.from_edges(undirected_edges, num_vertices=num_vertices)
        return digraph
    return UndirectedGraph.from_edges(undirected_edges, num_vertices=num_vertices)


def powerlaw_cluster(
    num_vertices: int,
    edges_per_vertex: int,
    triangle_probability: float,
    seed: int | np.random.Generator | None = None,
) -> UndirectedGraph:
    """Holme–Kim power-law graph with tunable clustering.

    Like :func:`barabasi_albert` but, after each preferential attachment
    step, a triad-closure step adds an edge to a random neighbour of the
    previous target with probability ``triangle_probability``.  The result
    has both a heavy-tailed degree distribution and the high clustering
    typical of social graphs, which is what makes the social-network
    proxies partitionable with good locality.
    """
    if not 0.0 <= triangle_probability <= 1.0:
        raise GraphError("triangle_probability must lie in [0, 1]")
    rng = _rng(seed)
    graph = UndirectedGraph()
    for v in range(num_vertices):
        graph.add_vertex(v)
    repeated: list[int] = list(range(edges_per_vertex))
    for v in range(edges_per_vertex, num_vertices):
        previous_target: int | None = None
        added = 0
        guard = 0
        while added < edges_per_vertex and guard < edges_per_vertex * 20:
            guard += 1
            close_triangle = (
                previous_target is not None
                and rng.random() < triangle_probability
                and graph.degree(previous_target) > 0
            )
            if close_triangle:
                neighbours = list(graph.neighbors(previous_target))
                candidate = neighbours[int(rng.integers(len(neighbours)))]
            elif repeated:
                candidate = repeated[int(rng.integers(len(repeated)))]
            else:
                candidate = int(rng.integers(v))
            if candidate == v or graph.has_edge(v, candidate):
                continue
            graph.add_edge(v, candidate)
            repeated.append(v)
            repeated.append(candidate)
            previous_target = candidate
            added += 1
    return graph


def to_directed_reciprocal(
    graph: UndirectedGraph,
    reciprocity: float,
    seed: int | np.random.Generator | None = None,
) -> DiGraph:
    """Orient an undirected graph, making a fraction of edges reciprocal.

    Each undirected edge becomes either a single directed edge (random
    direction) or a reciprocal pair with probability ``reciprocity``.  This
    is how the directed dataset proxies (Twitter, Google+, LiveJournal,
    Yahoo!) are produced from the structural generators.
    """
    if not 0.0 <= reciprocity <= 1.0:
        raise GraphError("reciprocity must lie in [0, 1]")
    rng = _rng(seed)
    digraph = DiGraph()
    for v in graph.vertices():
        digraph.add_vertex(v)
    for u, v, _weight in graph.edges():
        if rng.random() < reciprocity:
            digraph.add_edge(u, v)
            digraph.add_edge(v, u)
        elif rng.random() < 0.5:
            digraph.add_edge(u, v)
        else:
            digraph.add_edge(v, u)
    return digraph
