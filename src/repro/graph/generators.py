"""Synthetic graph generators.

The Spinner evaluation uses Watts–Strogatz small-world graphs for the
scalability study (Section V-B) and real social/web graphs elsewhere.
This module implements the generators needed to reproduce the synthetic
workloads and to build scaled-down structural proxies of the real
datasets (see :mod:`repro.graph.datasets`):

* :func:`watts_strogatz` — ring lattice with random rewiring.
* :func:`barabasi_albert` — preferential attachment (power-law degrees,
  hubs — the "Twitter-like" structure).
* :func:`erdos_renyi` — uniform random graph.
* :func:`powerlaw_cluster` — preferential attachment with triad closure
  (power-law degrees plus clustering — the "social-network-like"
  structure).
* :func:`ring_lattice` — the deterministic skeleton used by
  :func:`watts_strogatz`.

All generators take an explicit ``seed`` and are deterministic for a given
seed, which the experiment harness relies on.

Every random generator also has a ``*_csr`` twin (``watts_strogatz_csr``,
``erdos_renyi_csr``, ``barabasi_albert_csr``, ``powerlaw_cluster_csr``,
plus the deterministic :func:`ring_lattice_csr`) that returns a
:class:`~repro.graph.csr.CSRGraph` directly.  The twins replay the exact
control flow — and therefore the exact random stream — of the dictionary
builders against a slim insertion-ordered edge-list structure, so for a
given seed they produce the *identical* graph (pinned in
``tests/test_csr_generators.py``) while skipping the
:class:`UndirectedGraph` construction and the dict-to-CSR conversion the
experiment pipeline previously paid on every run.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GraphError
from repro.graph.csr import CSRGraph
from repro.graph.digraph import DiGraph
from repro.graph.undirected import UndirectedGraph


def _rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def ring_lattice(num_vertices: int, degree: int) -> UndirectedGraph:
    """Return a ring lattice where each vertex connects to ``degree`` nearest
    neighbours (``degree // 2`` on each side).

    Parameters
    ----------
    num_vertices:
        Number of vertices; must be larger than ``degree``.
    degree:
        Even number of neighbours per vertex.
    """
    if degree % 2 != 0:
        raise GraphError("ring lattice degree must be even")
    if num_vertices <= degree:
        raise GraphError("num_vertices must exceed degree")
    graph = UndirectedGraph()
    for v in range(num_vertices):
        graph.add_vertex(v)
    half = degree // 2
    for v in range(num_vertices):
        for offset in range(1, half + 1):
            graph.add_edge(v, (v + offset) % num_vertices)
    return graph


def watts_strogatz(
    num_vertices: int,
    degree: int,
    beta: float,
    seed: int | np.random.Generator | None = None,
) -> UndirectedGraph:
    """Watts–Strogatz small-world graph.

    Starts from :func:`ring_lattice` and rewires each edge's far endpoint
    with probability ``beta``, matching the construction used for the
    scalability experiments of the paper (degree 40, ``beta = 0.3``).
    """
    if not 0.0 <= beta <= 1.0:
        raise GraphError("beta must lie in [0, 1]")
    rng = _rng(seed)
    graph = ring_lattice(num_vertices, degree)
    half = degree // 2
    for v in range(num_vertices):
        for offset in range(1, half + 1):
            if rng.random() >= beta:
                continue
            old_target = (v + offset) % num_vertices
            if not graph.has_edge(v, old_target):
                continue
            # Draw a new endpoint that is neither v nor an existing neighbour.
            for _ in range(16):
                candidate = int(rng.integers(num_vertices))
                if candidate != v and not graph.has_edge(v, candidate):
                    graph.remove_edge(v, old_target)
                    graph.add_edge(v, candidate)
                    break
    return graph


def erdos_renyi(
    num_vertices: int,
    num_edges: int,
    seed: int | np.random.Generator | None = None,
) -> UndirectedGraph:
    """Uniform random graph with (approximately) ``num_edges`` distinct edges."""
    rng = _rng(seed)
    graph = UndirectedGraph()
    for v in range(num_vertices):
        graph.add_vertex(v)
    added = 0
    attempts = 0
    max_attempts = num_edges * 20 + 100
    while added < num_edges and attempts < max_attempts:
        attempts += 1
        u = int(rng.integers(num_vertices))
        v = int(rng.integers(num_vertices))
        if u == v:
            continue
        if graph.add_edge(u, v):
            added += 1
    return graph


def barabasi_albert(
    num_vertices: int,
    edges_per_vertex: int,
    seed: int | np.random.Generator | None = None,
    directed: bool = False,
) -> UndirectedGraph | DiGraph:
    """Barabási–Albert preferential attachment graph.

    Each new vertex attaches to ``edges_per_vertex`` existing vertices with
    probability proportional to their degree, producing a power-law degree
    distribution with pronounced hubs (the structure the paper highlights
    for the Twitter graph).

    When ``directed`` is ``True`` the attachment edges point from the new
    vertex to the chosen targets, which mimics "follower" style graphs.
    """
    if num_vertices <= edges_per_vertex:
        raise GraphError("num_vertices must exceed edges_per_vertex")
    rng = _rng(seed)
    # Repeated-nodes list implements preferential attachment in O(1) per draw.
    repeated: list[int] = []
    undirected_edges: list[tuple[int, int]] = []
    initial = edges_per_vertex
    for v in range(initial):
        repeated.append(v)
    for v in range(initial, num_vertices):
        targets: set[int] = set()
        while len(targets) < edges_per_vertex:
            if repeated and rng.random() < 0.9:
                candidate = repeated[int(rng.integers(len(repeated)))]
            else:
                candidate = int(rng.integers(v))
            if candidate != v:
                targets.add(candidate)
        for target in targets:
            undirected_edges.append((v, target))
            repeated.append(v)
            repeated.append(target)
    if directed:
        digraph = DiGraph.from_edges(undirected_edges, num_vertices=num_vertices)
        return digraph
    return UndirectedGraph.from_edges(undirected_edges, num_vertices=num_vertices)


def powerlaw_cluster(
    num_vertices: int,
    edges_per_vertex: int,
    triangle_probability: float,
    seed: int | np.random.Generator | None = None,
) -> UndirectedGraph:
    """Holme–Kim power-law graph with tunable clustering.

    Like :func:`barabasi_albert` but, after each preferential attachment
    step, a triad-closure step adds an edge to a random neighbour of the
    previous target with probability ``triangle_probability``.  The result
    has both a heavy-tailed degree distribution and the high clustering
    typical of social graphs, which is what makes the social-network
    proxies partitionable with good locality.
    """
    if not 0.0 <= triangle_probability <= 1.0:
        raise GraphError("triangle_probability must lie in [0, 1]")
    rng = _rng(seed)
    graph = UndirectedGraph()
    for v in range(num_vertices):
        graph.add_vertex(v)
    repeated: list[int] = list(range(edges_per_vertex))
    for v in range(edges_per_vertex, num_vertices):
        previous_target: int | None = None
        added = 0
        guard = 0
        while added < edges_per_vertex and guard < edges_per_vertex * 20:
            guard += 1
            close_triangle = (
                previous_target is not None
                and rng.random() < triangle_probability
                and graph.degree(previous_target) > 0
            )
            if close_triangle:
                neighbours = list(graph.neighbors(previous_target))
                candidate = neighbours[int(rng.integers(len(neighbours)))]
            elif repeated:
                candidate = repeated[int(rng.integers(len(repeated)))]
            else:
                candidate = int(rng.integers(v))
            if candidate == v or graph.has_edge(v, candidate):
                continue
            graph.add_edge(v, candidate)
            repeated.append(v)
            repeated.append(candidate)
            previous_target = candidate
            added += 1
    return graph


class _EdgeListBuilder:
    """Insertion-ordered adjacency mirror of :class:`UndirectedGraph`.

    The CSR generators replay the dictionary builders' control flow
    against this structure: per-vertex neighbour dictionaries preserve
    insertion order exactly like ``UndirectedGraph._adj`` (so
    :meth:`edges` yields the same sequence), but there is no bookkeeping
    beyond what the generators consult, and the final graph is assembled
    into CSR arrays in one vectorized pass.
    """

    __slots__ = ("num_vertices", "_adj")

    def __init__(self, num_vertices: int) -> None:
        self.num_vertices = num_vertices
        self._adj: list[dict[int, int]] = [{} for _ in range(num_vertices)]

    def has_edge(self, u: int, v: int) -> bool:
        """Return whether the undirected edge ``{u, v}`` exists."""
        return v in self._adj[u]

    def add_edge(self, u: int, v: int, weight: int = 1) -> bool:
        """Add ``{u, v}``; ``False`` (and no change) if it already exists."""
        adj_u = self._adj[u]
        if v in adj_u:
            return False
        adj_u[v] = weight
        self._adj[v][u] = weight
        return True

    def remove_edge(self, u: int, v: int) -> None:
        """Remove the edge ``{u, v}`` (must exist)."""
        del self._adj[u][v]
        del self._adj[v][u]

    def degree(self, v: int) -> int:
        """Number of incident edges of ``v``."""
        return len(self._adj[v])

    def neighbors(self, v: int) -> dict[int, int]:
        """Insertion-ordered ``{neighbour: weight}`` mapping of ``v``."""
        return self._adj[v]

    def edges(self) -> "list[tuple[int, int]]":
        """Edges as ``(u, v)`` with ``u < v`` in ``UndirectedGraph.edges`` order."""
        out: list[tuple[int, int]] = []
        for u, neighbours in enumerate(self._adj):
            for v in neighbours:
                if u < v:
                    out.append((u, v))
        return out

    def to_csr(self) -> CSRGraph:
        """Assemble the accumulated edge list into a :class:`CSRGraph`.

        Produces bit-identical arrays to
        ``CSRGraph.from_undirected(equivalent UndirectedGraph)`` because
        both feed the same edge sequence through the same stable sort.
        """
        edge_list = self.edges()
        if not edge_list:
            empty = np.empty(0, dtype=np.int64)
            return CSRGraph(
                np.zeros(self.num_vertices + 1, dtype=np.int64), empty, empty
            )
        return CSRGraph.from_edge_list(
            np.asarray(edge_list, dtype=np.int64), self.num_vertices
        )


def _ring_lattice_builder(num_vertices: int, degree: int) -> _EdgeListBuilder:
    """Ring-lattice skeleton on the edge-list builder (same edge order)."""
    if degree % 2 != 0:
        raise GraphError("ring lattice degree must be even")
    if num_vertices <= degree:
        raise GraphError("num_vertices must exceed degree")
    builder = _EdgeListBuilder(num_vertices)
    half = degree // 2
    for v in range(num_vertices):
        for offset in range(1, half + 1):
            builder.add_edge(v, (v + offset) % num_vertices)
    return builder


def ring_lattice_csr(num_vertices: int, degree: int) -> CSRGraph:
    """CSR twin of :func:`ring_lattice` (identical graph)."""
    return _ring_lattice_builder(num_vertices, degree).to_csr()


def _watts_strogatz_builder(
    num_vertices: int,
    degree: int,
    beta: float,
    seed: int | np.random.Generator | None = None,
) -> _EdgeListBuilder:
    """Watts–Strogatz rewiring replayed on the edge-list builder."""
    if not 0.0 <= beta <= 1.0:
        raise GraphError("beta must lie in [0, 1]")
    rng = _rng(seed)
    builder = _ring_lattice_builder(num_vertices, degree)
    half = degree // 2
    for v in range(num_vertices):
        for offset in range(1, half + 1):
            if rng.random() >= beta:
                continue
            old_target = (v + offset) % num_vertices
            if not builder.has_edge(v, old_target):
                continue
            for _ in range(16):
                candidate = int(rng.integers(num_vertices))
                if candidate != v and not builder.has_edge(v, candidate):
                    builder.remove_edge(v, old_target)
                    builder.add_edge(v, candidate)
                    break
    return builder


def watts_strogatz_csr(
    num_vertices: int,
    degree: int,
    beta: float,
    seed: int | np.random.Generator | None = None,
) -> CSRGraph:
    """CSR twin of :func:`watts_strogatz` (identical graph for a seed)."""
    return _watts_strogatz_builder(num_vertices, degree, beta, seed).to_csr()


def _erdos_renyi_builder(
    num_vertices: int,
    num_edges: int,
    seed: int | np.random.Generator | None = None,
) -> _EdgeListBuilder:
    """Erdős–Rényi sampling replayed on the edge-list builder."""
    rng = _rng(seed)
    builder = _EdgeListBuilder(num_vertices)
    added = 0
    attempts = 0
    max_attempts = num_edges * 20 + 100
    while added < num_edges and attempts < max_attempts:
        attempts += 1
        u = int(rng.integers(num_vertices))
        v = int(rng.integers(num_vertices))
        if u == v:
            continue
        if builder.add_edge(u, v):
            added += 1
    return builder


def erdos_renyi_csr(
    num_vertices: int,
    num_edges: int,
    seed: int | np.random.Generator | None = None,
) -> CSRGraph:
    """CSR twin of :func:`erdos_renyi` (identical graph for a seed)."""
    return _erdos_renyi_builder(num_vertices, num_edges, seed).to_csr()


def _barabasi_albert_edges(
    num_vertices: int,
    edges_per_vertex: int,
    seed: int | np.random.Generator | None = None,
) -> list[tuple[int, int]]:
    """Preferential-attachment edge list (same random stream as the dict path)."""
    if num_vertices <= edges_per_vertex:
        raise GraphError("num_vertices must exceed edges_per_vertex")
    rng = _rng(seed)
    repeated: list[int] = []
    undirected_edges: list[tuple[int, int]] = []
    initial = edges_per_vertex
    for v in range(initial):
        repeated.append(v)
    for v in range(initial, num_vertices):
        targets: set[int] = set()
        while len(targets) < edges_per_vertex:
            if repeated and rng.random() < 0.9:
                candidate = repeated[int(rng.integers(len(repeated)))]
            else:
                candidate = int(rng.integers(v))
            if candidate != v:
                targets.add(candidate)
        for target in targets:
            undirected_edges.append((v, target))
            repeated.append(v)
            repeated.append(target)
    return undirected_edges


def _barabasi_albert_builder(
    num_vertices: int,
    edges_per_vertex: int,
    seed: int | np.random.Generator | None = None,
) -> _EdgeListBuilder:
    """Barabási–Albert graph on the edge-list builder (insertion order kept)."""
    builder = _EdgeListBuilder(num_vertices)
    for u, v in _barabasi_albert_edges(num_vertices, edges_per_vertex, seed):
        builder.add_edge(u, v)
    return builder


def barabasi_albert_csr(
    num_vertices: int,
    edges_per_vertex: int,
    seed: int | np.random.Generator | None = None,
) -> CSRGraph:
    """CSR twin of the undirected :func:`barabasi_albert` (identical graph).

    The attachment loop never consults the partially built graph, so the
    edge list goes straight into the vectorized CSR assembly with no
    adjacency bookkeeping at all.
    """
    edges = _barabasi_albert_edges(num_vertices, edges_per_vertex, seed)
    return CSRGraph.from_edge_list(np.asarray(edges, dtype=np.int64), num_vertices)


def _powerlaw_cluster_builder(
    num_vertices: int,
    edges_per_vertex: int,
    triangle_probability: float,
    seed: int | np.random.Generator | None = None,
) -> _EdgeListBuilder:
    """Holme–Kim construction replayed on the edge-list builder."""
    if not 0.0 <= triangle_probability <= 1.0:
        raise GraphError("triangle_probability must lie in [0, 1]")
    rng = _rng(seed)
    builder = _EdgeListBuilder(num_vertices)
    repeated: list[int] = list(range(edges_per_vertex))
    for v in range(edges_per_vertex, num_vertices):
        previous_target: int | None = None
        added = 0
        guard = 0
        while added < edges_per_vertex and guard < edges_per_vertex * 20:
            guard += 1
            close_triangle = (
                previous_target is not None
                and rng.random() < triangle_probability
                and builder.degree(previous_target) > 0
            )
            if close_triangle:
                neighbours = list(builder.neighbors(previous_target))
                candidate = neighbours[int(rng.integers(len(neighbours)))]
            elif repeated:
                candidate = repeated[int(rng.integers(len(repeated)))]
            else:
                candidate = int(rng.integers(v))
            if candidate == v or builder.has_edge(v, candidate):
                continue
            builder.add_edge(v, candidate)
            repeated.append(v)
            repeated.append(candidate)
            previous_target = candidate
            added += 1
    return builder


def powerlaw_cluster_csr(
    num_vertices: int,
    edges_per_vertex: int,
    triangle_probability: float,
    seed: int | np.random.Generator | None = None,
) -> CSRGraph:
    """CSR twin of :func:`powerlaw_cluster` (identical graph for a seed)."""
    return _powerlaw_cluster_builder(
        num_vertices, edges_per_vertex, triangle_probability, seed
    ).to_csr()


def _weighted_reciprocal_csr(
    builder: _EdgeListBuilder,
    reciprocity: float,
    seed: int | np.random.Generator | None = None,
) -> CSRGraph:
    """Weighted undirected CSR of a skeleton oriented with reciprocity.

    Produces exactly
    ``CSRGraph.from_undirected(to_weighted_undirected(to_directed_reciprocal(g)))``
    without materializing either dictionary graph: an edge drawn as
    reciprocal gets eq. (3) weight 2 (one random draw), any other edge
    gets weight 1 after a second draw for the (irrelevant here) direction
    — the same stream consumption, edge for edge, as
    :func:`to_directed_reciprocal`.
    """
    if not 0.0 <= reciprocity <= 1.0:
        raise GraphError("reciprocity must lie in [0, 1]")
    rng = _rng(seed)
    edges = builder.edges()
    weights = np.ones(len(edges), dtype=np.int64)
    for index in range(len(edges)):
        if rng.random() < reciprocity:
            weights[index] = 2
        else:
            rng.random()  # direction draw of the reference path
    if not edges:
        empty = np.empty(0, dtype=np.int64)
        return CSRGraph(np.zeros(builder.num_vertices + 1, dtype=np.int64), empty, empty)
    return CSRGraph.from_edge_list(
        np.asarray(edges, dtype=np.int64), builder.num_vertices, weights=weights
    )


def to_directed_reciprocal(
    graph: UndirectedGraph,
    reciprocity: float,
    seed: int | np.random.Generator | None = None,
) -> DiGraph:
    """Orient an undirected graph, making a fraction of edges reciprocal.

    Each undirected edge becomes either a single directed edge (random
    direction) or a reciprocal pair with probability ``reciprocity``.  This
    is how the directed dataset proxies (Twitter, Google+, LiveJournal,
    Yahoo!) are produced from the structural generators.
    """
    if not 0.0 <= reciprocity <= 1.0:
        raise GraphError("reciprocity must lie in [0, 1]")
    rng = _rng(seed)
    digraph = DiGraph()
    for v in graph.vertices():
        digraph.add_vertex(v)
    for u, v, _weight in graph.edges():
        if rng.random() < reciprocity:
            digraph.add_edge(u, v)
            digraph.add_edge(v, u)
        elif rng.random() < 0.5:
            digraph.add_edge(u, v)
        else:
            digraph.add_edge(v, u)
    return digraph
