"""Scaled-down structural proxies for the paper's real-world datasets.

Table II of the paper lists six graphs (LiveJournal, Tuenti, Google+,
Twitter, Friendster, Yahoo! web) with 4.8M–1.4B vertices.  Those datasets
are either proprietary or far too large for this environment, so — per the
substitution rule documented in ``DESIGN.md`` — each is replaced by a
synthetic graph that preserves the structural properties the evaluation
depends on:

* directed vs. undirected (Table II's "Directed" column),
* heavy-tailed degree distribution with hubs (Twitter, Friendster),
* community structure / clustering (LiveJournal, Tuenti, Google+), and
* sparse, shallow, web-like structure (Yahoo!).

Every proxy accepts a ``scale`` multiplier so tests can run on tiny graphs
while benchmarks use larger ones.  The default sizes (scale 1.0) are a few
thousand vertices — large enough for the quality trends to be visible,
small enough for a pure-Python evaluation to finish quickly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graph.csr import CSRGraph
from repro.graph.digraph import DiGraph
from repro.graph.generators import (
    _barabasi_albert_builder,
    _powerlaw_cluster_builder,
    _watts_strogatz_builder,
    _weighted_reciprocal_csr,
    barabasi_albert,
    powerlaw_cluster,
    powerlaw_cluster_csr,
    to_directed_reciprocal,
    watts_strogatz,
)
from repro.graph.undirected import UndirectedGraph


@dataclass(frozen=True)
class DatasetSpec:
    """Descriptor of a dataset proxy.

    Attributes
    ----------
    name:
        Short name used throughout the paper (``"LJ"``, ``"TW"``, ...).
    full_name:
        Human-readable name.
    directed:
        Whether the original dataset is directed (Table II).
    base_vertices:
        Number of vertices at ``scale = 1.0``.
    description:
        What the proxy mimics and which generator builds it.
    """

    name: str
    full_name: str
    directed: bool
    base_vertices: int
    description: str


#: Registry of dataset proxies keyed by the short name used in the paper.
DATASET_SPECS: dict[str, DatasetSpec] = {
    "LJ": DatasetSpec(
        name="LJ",
        full_name="LiveJournal (proxy)",
        directed=True,
        base_vertices=4000,
        description="power-law cluster graph with moderate reciprocity",
    ),
    "TU": DatasetSpec(
        name="TU",
        full_name="Tuenti (proxy)",
        directed=False,
        base_vertices=5000,
        description="undirected social graph with high clustering",
    ),
    "G+": DatasetSpec(
        name="G+",
        full_name="Google+ (proxy)",
        directed=True,
        base_vertices=4500,
        description="directed follower graph with low reciprocity",
    ),
    "TW": DatasetSpec(
        name="TW",
        full_name="Twitter (proxy)",
        directed=True,
        base_vertices=5000,
        description="preferential-attachment graph with pronounced hubs",
    ),
    "FR": DatasetSpec(
        name="FR",
        full_name="Friendster (proxy)",
        directed=False,
        base_vertices=6000,
        description="large undirected social graph, weaker clustering",
    ),
    "Y!": DatasetSpec(
        name="Y!",
        full_name="Yahoo! web (proxy)",
        directed=True,
        base_vertices=8000,
        description="sparse small-world web graph with low average degree",
    ),
}


def _scaled(base: int, scale: float) -> int:
    return max(64, int(round(base * scale)))


def livejournal_proxy(scale: float = 1.0, seed: int = 1) -> DiGraph:
    """LiveJournal proxy: clustered power-law graph, ~50% reciprocal edges."""
    n = _scaled(DATASET_SPECS["LJ"].base_vertices, scale)
    skeleton = powerlaw_cluster(n, edges_per_vertex=7, triangle_probability=0.5, seed=seed)
    return to_directed_reciprocal(skeleton, reciprocity=0.5, seed=seed + 1)


def tuenti_proxy(scale: float = 1.0, seed: int = 2) -> UndirectedGraph:
    """Tuenti proxy: undirected, highly clustered social graph."""
    n = _scaled(DATASET_SPECS["TU"].base_vertices, scale)
    return powerlaw_cluster(n, edges_per_vertex=10, triangle_probability=0.7, seed=seed)


def googleplus_proxy(scale: float = 1.0, seed: int = 3) -> DiGraph:
    """Google+ proxy: directed follower graph with low reciprocity."""
    n = _scaled(DATASET_SPECS["G+"].base_vertices, scale)
    skeleton = powerlaw_cluster(n, edges_per_vertex=8, triangle_probability=0.4, seed=seed)
    return to_directed_reciprocal(skeleton, reciprocity=0.25, seed=seed + 1)


def twitter_proxy(scale: float = 1.0, seed: int = 4) -> DiGraph:
    """Twitter proxy: hub-dominated preferential-attachment follower graph."""
    n = _scaled(DATASET_SPECS["TW"].base_vertices, scale)
    skeleton = barabasi_albert(n, edges_per_vertex=12, seed=seed)
    assert isinstance(skeleton, UndirectedGraph)
    return to_directed_reciprocal(skeleton, reciprocity=0.2, seed=seed + 1)


def friendster_proxy(scale: float = 1.0, seed: int = 5) -> UndirectedGraph:
    """Friendster proxy: large undirected graph with weaker clustering."""
    n = _scaled(DATASET_SPECS["FR"].base_vertices, scale)
    return powerlaw_cluster(n, edges_per_vertex=9, triangle_probability=0.3, seed=seed)


def yahoo_proxy(scale: float = 1.0, seed: int = 6) -> DiGraph:
    """Yahoo! web proxy: sparse small-world graph with low average degree."""
    n = _scaled(DATASET_SPECS["Y!"].base_vertices, scale)
    skeleton = watts_strogatz(n, degree=6, beta=0.2, seed=seed)
    return to_directed_reciprocal(skeleton, reciprocity=0.1, seed=seed + 1)


_LOADERS = {
    "LJ": livejournal_proxy,
    "TU": tuenti_proxy,
    "G+": googleplus_proxy,
    "TW": twitter_proxy,
    "FR": friendster_proxy,
    "Y!": yahoo_proxy,
}


# ----------------------------------------------------------------------
# CSR-native proxies
# ----------------------------------------------------------------------
# Each proxy also has a CSR loader producing the *weighted undirected*
# view Spinner and the baselines partition — the same graph, edge for
# edge and weight for weight, as ``ensure_undirected(load_dataset(...))``
# for the same seed (the generators replay the dictionary builders'
# random stream; see ``tests/test_csr_generators.py``) — without ever
# materializing a dictionary graph.


def livejournal_proxy_csr(scale: float = 1.0, seed: int = 1) -> CSRGraph:
    """Weighted undirected CSR view of :func:`livejournal_proxy`."""
    n = _scaled(DATASET_SPECS["LJ"].base_vertices, scale)
    skeleton = _powerlaw_cluster_builder(n, 7, 0.5, seed)
    return _weighted_reciprocal_csr(skeleton, reciprocity=0.5, seed=seed + 1)


def tuenti_proxy_csr(scale: float = 1.0, seed: int = 2) -> CSRGraph:
    """CSR view of :func:`tuenti_proxy` (already undirected, weights 1)."""
    n = _scaled(DATASET_SPECS["TU"].base_vertices, scale)
    return powerlaw_cluster_csr(n, 10, 0.7, seed)


def googleplus_proxy_csr(scale: float = 1.0, seed: int = 3) -> CSRGraph:
    """Weighted undirected CSR view of :func:`googleplus_proxy`."""
    n = _scaled(DATASET_SPECS["G+"].base_vertices, scale)
    skeleton = _powerlaw_cluster_builder(n, 8, 0.4, seed)
    return _weighted_reciprocal_csr(skeleton, reciprocity=0.25, seed=seed + 1)


def twitter_proxy_csr(scale: float = 1.0, seed: int = 4) -> CSRGraph:
    """Weighted undirected CSR view of :func:`twitter_proxy`."""
    n = _scaled(DATASET_SPECS["TW"].base_vertices, scale)
    skeleton = _barabasi_albert_builder(n, 12, seed)
    return _weighted_reciprocal_csr(skeleton, reciprocity=0.2, seed=seed + 1)


def friendster_proxy_csr(scale: float = 1.0, seed: int = 5) -> CSRGraph:
    """CSR view of :func:`friendster_proxy` (already undirected, weights 1)."""
    n = _scaled(DATASET_SPECS["FR"].base_vertices, scale)
    return powerlaw_cluster_csr(n, 9, 0.3, seed)


def yahoo_proxy_csr(scale: float = 1.0, seed: int = 6) -> CSRGraph:
    """Weighted undirected CSR view of :func:`yahoo_proxy`."""
    n = _scaled(DATASET_SPECS["Y!"].base_vertices, scale)
    skeleton = _watts_strogatz_builder(n, degree=6, beta=0.2, seed=seed)
    return _weighted_reciprocal_csr(skeleton, reciprocity=0.1, seed=seed + 1)


_CSR_LOADERS = {
    "LJ": livejournal_proxy_csr,
    "TU": tuenti_proxy_csr,
    "G+": googleplus_proxy_csr,
    "TW": twitter_proxy_csr,
    "FR": friendster_proxy_csr,
    "Y!": yahoo_proxy_csr,
}


def load_dataset_csr(name: str, scale: float = 1.0, seed: int | None = None) -> CSRGraph:
    """Load a dataset proxy as its weighted undirected CSR view.

    Same names, seeds and graphs as :func:`load_dataset` followed by
    ``ensure_undirected`` — but array-native end to end.
    """
    try:
        loader = _CSR_LOADERS[name]
    except KeyError:
        known = ", ".join(sorted(_CSR_LOADERS))
        raise KeyError(f"unknown dataset {name!r}; known datasets: {known}") from None
    if seed is None:
        return loader(scale=scale)
    return loader(scale=scale, seed=seed)


def load_dataset(name: str, scale: float = 1.0, seed: int | None = None):
    """Load a dataset proxy by its paper short name.

    Parameters
    ----------
    name:
        One of ``"LJ"``, ``"TU"``, ``"G+"``, ``"TW"``, ``"FR"``, ``"Y!"``.
    scale:
        Size multiplier relative to the default proxy size.
    seed:
        Optional seed override; each dataset has a stable default seed.

    Returns
    -------
    DiGraph | UndirectedGraph
        Directed or undirected graph matching Table II's directedness.
    """
    try:
        loader = _LOADERS[name]
    except KeyError:
        known = ", ".join(sorted(_LOADERS))
        raise KeyError(f"unknown dataset {name!r}; known datasets: {known}") from None
    if seed is None:
        return loader(scale=scale)
    return loader(scale=scale, seed=seed)


def dataset_names() -> list[str]:
    """Return the dataset short names in the order used by the paper."""
    return ["LJ", "TU", "G+", "TW", "FR", "Y!"]
