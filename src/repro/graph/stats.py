"""Descriptive statistics for graphs.

Used by tests (to check that the dataset proxies actually have the claimed
structure — hubs, clustering, sparsity) and by the experiment harness when
reporting workload characteristics alongside results.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.digraph import DiGraph
from repro.graph.undirected import UndirectedGraph


@dataclass(frozen=True)
class DegreeStats:
    """Summary of a graph's degree distribution."""

    minimum: int
    maximum: int
    mean: float
    median: float
    p99: float

    @property
    def hub_ratio(self) -> float:
        """Ratio of the maximum degree to the mean degree.

        A large value indicates hub-dominated (power-law-like) structure,
        the property the paper calls out for the Twitter graph.
        """
        if self.mean == 0:
            return 0.0
        return self.maximum / self.mean


def degree_sequence(graph: UndirectedGraph | DiGraph) -> np.ndarray:
    """Return the degree (out-degree for directed graphs) of every vertex."""
    if isinstance(graph, DiGraph):
        return np.array([graph.out_degree(v) for v in graph.vertices()], dtype=np.int64)
    return np.array([graph.degree(v) for v in graph.vertices()], dtype=np.int64)


def degree_stats(graph: UndirectedGraph | DiGraph) -> DegreeStats:
    """Compute :class:`DegreeStats` for a graph."""
    degrees = degree_sequence(graph)
    if degrees.size == 0:
        return DegreeStats(0, 0, 0.0, 0.0, 0.0)
    return DegreeStats(
        minimum=int(degrees.min()),
        maximum=int(degrees.max()),
        mean=float(degrees.mean()),
        median=float(np.median(degrees)),
        p99=float(np.percentile(degrees, 99)),
    )


def average_clustering(
    graph: UndirectedGraph, sample_size: int = 500, seed: int | None = 0
) -> float:
    """Estimate the average local clustering coefficient.

    For graphs with more than ``sample_size`` vertices a uniform sample of
    vertices is used; the estimate is deterministic for a fixed seed.
    """
    rng = np.random.default_rng(seed)
    vertices = list(graph.vertices())
    if not vertices:
        return 0.0
    if len(vertices) > sample_size:
        picked = rng.choice(len(vertices), size=sample_size, replace=False)
        vertices = [vertices[i] for i in picked]
    total = 0.0
    counted = 0
    for v in vertices:
        neighbours = list(graph.neighbors(v))
        k = len(neighbours)
        if k < 2:
            continue
        links = 0
        for i in range(k):
            for j in range(i + 1, k):
                if graph.has_edge(neighbours[i], neighbours[j]):
                    links += 1
        total += 2.0 * links / (k * (k - 1))
        counted += 1
    if counted == 0:
        return 0.0
    return total / counted


def density(graph: UndirectedGraph) -> float:
    """Return the edge density ``2|E| / (|V| (|V| - 1))``."""
    n = graph.num_vertices
    if n < 2:
        return 0.0
    return 2.0 * graph.num_edges / (n * (n - 1))


def reciprocity(graph: DiGraph) -> float:
    """Fraction of directed edges whose reverse edge also exists."""
    if graph.num_edges == 0:
        return 0.0
    reciprocal = sum(1 for u, v in graph.edges() if graph.has_edge(v, u))
    return reciprocal / graph.num_edges
