"""Table I — comparison with state-of-the-art approaches.

The paper partitions the Twitter graph into k = 2, 4, 8, 16, 32 parts with
Wang et al., Stanton et al. (LDG), Fennel, METIS and Spinner, reporting
locality ``phi`` and balance ``rho`` for each.  This harness runs the same
five approaches (our from-scratch implementations) on the Twitter proxy
graph and emits one row per (approach, k).

Expected shape (paper): METIS has the best locality, Spinner is within a
few percent of it with near-perfect balance, the streaming approaches trail
in locality and/or balance, and Wang et al. shows large ``rho`` because it
balances vertices rather than edges.

With ``scale.graph_backend == "csr"`` the whole sweep — proxy generation,
partitioning and metrics — runs on CSR arrays; LDG, Fennel, Wang and
Spinner produce identical rows on either backend (their CSR kernels are
assignment-exact), while the dictionary-only METIS baseline runs on a
canonical dictionary materialization of the same graph.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentScale, spinner_config
from repro.graph.conversion import ensure_undirected
from repro.graph.csr import CSRGraph
from repro.graph.datasets import twitter_proxy, twitter_proxy_csr
from repro.metrics.quality import locality, max_normalized_load
from repro.partitioners.registry import make_partitioner

#: Approaches of Table I, in the paper's row order.
TABLE1_APPROACHES = ("wang", "ldg", "fennel", "metis", "spinner")
#: Partition counts of Table I.
TABLE1_K_VALUES = (2, 4, 8, 16, 32)


def run_table1(
    k_values: tuple[int, ...] = TABLE1_K_VALUES,
    approaches: tuple[str, ...] = TABLE1_APPROACHES,
    scale: ExperimentScale | None = None,
) -> list[dict]:
    """Run the Table I comparison and return one row per (approach, k)."""
    scale = scale or ExperimentScale.default()
    graph: CSRGraph | object
    if scale.graph_backend == "csr":
        graph = twitter_proxy_csr(scale=scale.graph_scale, seed=scale.seed)
    else:
        graph = ensure_undirected(twitter_proxy(scale=scale.graph_scale, seed=scale.seed))
    rows: list[dict] = []
    for approach in approaches:
        for k in k_values:
            if approach == "spinner":
                partitioner = make_partitioner(approach, config=spinner_config(scale.seed))
            else:
                partitioner = make_partitioner(approach)
            if isinstance(graph, CSRGraph):
                assignment = partitioner.partition_array(graph, k)
            else:
                assignment = dict(partitioner.partition(graph, k))
            rows.append(
                {
                    "approach": approach,
                    "k": k,
                    "phi": round(locality(graph, assignment), 3),
                    "rho": round(max_normalized_load(graph, assignment, k), 3),
                }
            )
    return rows
