"""Figure 7 — adapting to dynamic graph changes.

The paper snapshots the Tuenti graph, adds a varying percentage of new
edges (real new friendships) and compares incremental adaptation against
repartitioning from scratch along two axes:

(a) *cost savings* — percentage of processing time and of exchanged
    messages saved by adapting instead of restarting (85%+ for small
    changes, still ~80% of the time at 30% new edges);
(b) *partitioning stability* — the fraction of vertices that end up in a
    different partition (8-11% when adapting vs 95-98% from scratch).

Here processing cost is measured in label-propagation iterations and the
message count of the runs (both implementations expose them), which is
what determines time and network traffic on the real cluster.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentScale, SpinnerRunner, spinner_config
from repro.graph.datasets import tuenti_proxy
from repro.graph.dynamic import EdgeArrivalStream
from repro.metrics.reporting import improvement_percentage
from repro.metrics.stability import partitioning_difference

FIG7_CHANGE_FRACTIONS = (0.005, 0.01, 0.05, 0.10, 0.20, 0.30)


def run_fig7(
    change_fractions: tuple[float, ...] = FIG7_CHANGE_FRACTIONS,
    num_partitions: int = 16,
    scale: ExperimentScale | None = None,
    engine: str = "fast",
) -> list[dict]:
    """Return one row per change fraction with savings and stability.

    ``engine`` selects the Spinner runtime for every run in the sweep:
    ``"fast"`` (default, vectorized kernels), ``"dict"`` or ``"vector"``
    (the two Pregel runtimes, via ``--engine`` on the CLI).
    """
    scale = scale or ExperimentScale.default()
    full_graph = tuenti_proxy(scale=scale.graph_scale, seed=scale.seed)
    stream = EdgeArrivalStream(full_graph, holdout_fraction=0.35, seed=scale.seed)
    snapshot = stream.snapshot()

    config = spinner_config(scale.seed)
    spinner = SpinnerRunner(engine, config)
    initial = spinner.partition(snapshot, num_partitions)
    initial_assignment = initial.to_assignment()

    rows: list[dict] = []
    for fraction in change_fractions:
        stream.reset()
        changed = stream.snapshot()
        delta = stream.delta(fraction_of_snapshot=fraction)
        delta.apply(changed)

        adaptive = spinner.adapt_to_graph_changes(
            changed, initial_assignment, num_partitions
        )
        scratch = SpinnerRunner(
            engine, config.with_options(seed=config.seed + 1)
        ).partition(changed, num_partitions)

        adaptive_assignment = adaptive.to_assignment()
        scratch_assignment = scratch.to_assignment()
        rows.append(
            {
                "new_edges_pct": round(fraction * 100.0, 1),
                "time_savings_pct": round(
                    improvement_percentage(scratch.iterations, adaptive.iterations), 1
                ),
                "message_savings_pct": round(
                    improvement_percentage(scratch.total_messages, adaptive.total_messages), 1
                ),
                "moved_adaptive_pct": round(
                    100.0 * partitioning_difference(initial_assignment, adaptive_assignment), 1
                ),
                "moved_scratch_pct": round(
                    100.0 * partitioning_difference(initial_assignment, scratch_assignment), 1
                ),
                "phi_adaptive": round(adaptive.phi, 3),
                "phi_scratch": round(scratch.phi, 3),
                "rho_adaptive": round(adaptive.rho, 3),
            }
        )
    return rows
