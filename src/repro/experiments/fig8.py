"""Figure 8 — adapting to resource (partition-count) changes.

The paper partitions the Tuenti snapshot into 32 parts, then adds 1..8 new
partitions and compares elastic adaptation against repartitioning from
scratch: (a) savings in processing time and messages, (b) the fraction of
vertices that must move.  Expected shape: savings shrink as more
partitions are added (more random migrations are needed), but adaptation
always moves far fewer vertices than a from-scratch run (<17% vs ~96% when
adding a single partition).
"""

from __future__ import annotations

from repro.experiments.common import ExperimentScale, SpinnerRunner, spinner_config
from repro.graph.datasets import tuenti_proxy
from repro.metrics.reporting import improvement_percentage
from repro.metrics.stability import partitioning_difference

FIG8_NEW_PARTITIONS = (1, 2, 4, 6, 8)


def run_fig8(
    new_partition_counts: tuple[int, ...] = FIG8_NEW_PARTITIONS,
    initial_partitions: int = 16,
    scale: ExperimentScale | None = None,
    engine: str = "fast",
) -> list[dict]:
    """Return one row per number of added partitions.

    ``engine`` selects the Spinner runtime for every run in the sweep:
    ``"fast"`` (default, vectorized kernels), ``"dict"`` or ``"vector"``
    (the two Pregel runtimes, via ``--engine`` on the CLI).
    """
    scale = scale or ExperimentScale.default()
    graph = tuenti_proxy(scale=scale.graph_scale, seed=scale.seed)

    config = spinner_config(scale.seed)
    spinner = SpinnerRunner(engine, config)
    initial = spinner.partition(graph, initial_partitions)
    initial_assignment = initial.to_assignment()

    rows: list[dict] = []
    for added in new_partition_counts:
        new_k = initial_partitions + added
        elastic = spinner.adapt_to_partition_change(
            graph, initial_assignment, initial_partitions, new_k
        )
        scratch = SpinnerRunner(
            engine, config.with_options(seed=config.seed + 1)
        ).partition(graph, new_k)
        elastic_assignment = elastic.to_assignment()
        scratch_assignment = scratch.to_assignment()
        rows.append(
            {
                "new_partitions": added,
                "time_savings_pct": round(
                    improvement_percentage(scratch.iterations, elastic.iterations), 1
                ),
                "message_savings_pct": round(
                    improvement_percentage(scratch.total_messages, elastic.total_messages), 1
                ),
                "moved_adaptive_pct": round(
                    100.0 * partitioning_difference(initial_assignment, elastic_assignment), 1
                ),
                "moved_scratch_pct": round(
                    100.0 * partitioning_difference(initial_assignment, scratch_assignment), 1
                ),
                "phi_adaptive": round(elastic.phi, 3),
                "phi_scratch": round(scratch.phi, 3),
                "rho_adaptive": round(elastic.rho, 3),
            }
        )
    return rows
