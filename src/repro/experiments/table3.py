"""Table III — partitioning balance per graph.

The paper reports the average maximum normalized load ``rho`` obtained by
Spinner on each real graph (values between 1.04 and 1.06 with c = 1.05).
This harness partitions each dataset proxy for a few values of k and
reports the average ``rho`` per graph.
"""

from __future__ import annotations

import numpy as np

from repro.core.fast import FastSpinner
from repro.experiments.common import ExperimentScale, partitioning_dataset, spinner_config

#: Graphs of Table III, in the paper's column order.
TABLE3_DATASETS = ("LJ", "G+", "TU", "TW", "FR")
#: Partition counts averaged over (scaled down from the paper's sweep).
TABLE3_K_VALUES = (4, 8, 16)


def run_table3(
    datasets: tuple[str, ...] = TABLE3_DATASETS,
    k_values: tuple[int, ...] = TABLE3_K_VALUES,
    scale: ExperimentScale | None = None,
) -> list[dict]:
    """Return one row per dataset with the average ``rho`` across k values.

    Honours ``scale.graph_backend``: on ``"csr"`` the proxies are
    generated directly as CSR graphs and FastSpinner consumes them without
    any dictionary materialization.
    """
    scale = scale or ExperimentScale.default()
    rows: list[dict] = []
    for name in datasets:
        graph = partitioning_dataset(name, scale)
        spinner = FastSpinner(spinner_config(scale.seed))
        rhos = [
            spinner.partition(graph, k, track_history=False).rho for k in k_values
        ]
        rows.append({"graph": name, "rho": round(float(np.mean(rhos)), 3)})
    return rows
