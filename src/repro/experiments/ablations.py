"""Ablations of Spinner's design choices (DESIGN.md section 4).

Each ablation toggles one of the switches in
:class:`~repro.core.config.SpinnerConfig` and measures its effect on the
final partitioning quality and on convergence:

* ``balance_penalty`` off — pure LPA: locality may rise but balance
  collapses (large ``rho``), which is exactly why eq. (8) exists;
* ``probabilistic_migration`` off — all candidates migrate at once: the
  capacity can be overshot and the score oscillates;
* ``prefer_current_label`` off — ties no longer keep the current label,
  causing unnecessary migrations;
* ``direction_aware`` off — directed inputs converted naively (weight 1
  everywhere), so the locality metric no longer counts directed messages
  and the effective message locality drops;
* ``worker_local_updates`` off (Pregel implementation only) — migration
  decisions use stale loads within a superstep, slowing convergence.
"""

from __future__ import annotations

from repro.core.config import SpinnerConfig
from repro.core.fast import FastSpinner
from repro.core.spinner import SpinnerPartitioner
from repro.experiments.common import ExperimentScale, undirected_dataset
from repro.graph.datasets import twitter_proxy
from repro.graph.conversion import ensure_undirected
from repro.metrics.quality import locality, max_normalized_load

ABLATION_SWITCHES = (
    "balance_penalty",
    "probabilistic_migration",
    "prefer_current_label",
)


def run_quality_ablations(
    num_partitions: int = 16,
    dataset: str = "TU",
    scale: ExperimentScale | None = None,
) -> list[dict]:
    """Toggle each quality-affecting switch and report phi/rho/iterations."""
    scale = scale or ExperimentScale.default()
    graph = undirected_dataset(dataset, scale)
    rows: list[dict] = []

    baseline_config = SpinnerConfig(seed=scale.seed)
    baseline = FastSpinner(baseline_config).partition(graph, num_partitions)
    rows.append(
        {
            "variant": "baseline",
            "phi": round(baseline.phi, 3),
            "rho": round(baseline.rho, 3),
            "iterations": baseline.iterations,
        }
    )
    for switch in ABLATION_SWITCHES:
        config = baseline_config.with_options(**{switch: False})
        result = FastSpinner(config).partition(graph, num_partitions)
        rows.append(
            {
                "variant": f"no_{switch}",
                "phi": round(result.phi, 3),
                "rho": round(result.rho, 3),
                "iterations": result.iterations,
            }
        )
    return rows


def run_conversion_ablation(
    num_partitions: int = 8,
    scale: ExperimentScale | None = None,
) -> list[dict]:
    """Direction-aware vs naive conversion on the (directed) Twitter proxy.

    The locality of *directed messages* is measured on the weighted view in
    both cases, so the comparison isolates the effect of ignoring edge
    direction during partitioning (Section III-A's example).
    """
    scale = scale or ExperimentScale.default()
    digraph = twitter_proxy(scale=scale.graph_scale, seed=scale.seed)
    weighted_view = ensure_undirected(digraph, direction_aware=True)
    rows: list[dict] = []
    for direction_aware in (True, False):
        config = SpinnerConfig(seed=scale.seed, direction_aware=direction_aware)
        result = FastSpinner(config).partition(digraph, num_partitions)
        assignment = result.to_assignment()
        rows.append(
            {
                "variant": "weighted" if direction_aware else "naive",
                "message_phi": round(locality(weighted_view, assignment), 3),
                "rho": round(
                    max_normalized_load(weighted_view, assignment, num_partitions), 3
                ),
            }
        )
    return rows


def run_worker_local_ablation(
    num_partitions: int = 4,
    num_vertices_scale: float = 0.04,
    scale: ExperimentScale | None = None,
) -> list[dict]:
    """Per-worker asynchronous load updates on vs off (Pregel implementation)."""
    scale = scale or ExperimentScale(graph_scale=num_vertices_scale)
    graph = undirected_dataset("TU", scale)
    rows: list[dict] = []
    for enabled in (True, False):
        config = SpinnerConfig(seed=scale.seed, worker_local_updates=enabled, max_iterations=60)
        partitioner = SpinnerPartitioner(config, num_workers=4)
        result = partitioner.partition(graph, num_partitions)
        rows.append(
            {
                "variant": "async_worker_loads" if enabled else "sync_only",
                "phi": round(result.phi, 3),
                "rho": round(result.rho, 3),
                "iterations": result.iterations,
            }
        )
    return rows
