"""Figure 4 — evolution of phi, rho and score(G) across iterations.

The paper partitions the Twitter graph (256 parts) and the Yahoo! web
graph (115 parts) and plots, per label-propagation iteration, the ratio of
local edges, the maximum normalized load and the aggregate score.  The
characteristic shape: ``rho`` drops to ~c within the first iterations
(balance is restored first), then ``phi`` and the score climb steadily
until they flatten out.

This harness runs the same measurement on the Twitter and Yahoo! proxies
and returns the full per-iteration history.
"""

from __future__ import annotations

from repro.core.fast import FastSpinner
from repro.experiments.common import ExperimentScale, spinner_config, undirected_dataset


def run_fig4(
    dataset: str = "TW",
    num_partitions: int = 32,
    max_iterations: int = 80,
    scale: ExperimentScale | None = None,
) -> list[dict]:
    """Return one row per iteration with ``phi``, ``rho`` and ``score``.

    Use ``dataset="TW"`` for Figure 4(a) and ``dataset="Y!"`` (with a
    smaller ``num_partitions``) for Figure 4(b).
    """
    scale = scale or ExperimentScale.default()
    graph = undirected_dataset(dataset, scale)
    config = spinner_config(scale.seed, max_iterations=max_iterations,
                            halt_window=max_iterations)
    # halt_window = max_iterations disables early halting so the full curve
    # is visible, mirroring the paper ("we let the algorithm run for 115
    # iterations ignoring the halting condition").
    spinner = FastSpinner(config)
    result = spinner.partition(graph, num_partitions, track_history=True)
    rows = [
        {
            "iteration": record.iteration,
            "phi": round(record.phi, 4),
            "rho": round(record.rho, 4),
            "score": round(record.score, 2),
            "migrations": record.migrations,
        }
        for record in result.history
    ]
    return rows


def halting_iteration(rows: list[dict], threshold: float = 0.001, window: int = 5) -> int:
    """Iteration at which the halting heuristic would have stopped.

    Reproduces the vertical line of Figure 4(a) (the paper reports the run
    would have halted at iteration 41 out of the 115 it was allowed).
    """
    from repro.core.halting import HaltingTracker

    tracker = HaltingTracker(threshold=threshold, window=window)
    for row in rows:
        if tracker.update(row["score"]):
            return row["iteration"]
    return rows[-1]["iteration"] if rows else 0
