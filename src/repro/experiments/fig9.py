"""Figure 9 — impact of the partitioning on application performance.

The paper runs three applications (Shortest Paths/BFS, PageRank, Weakly
Connected Components) on LiveJournal (16 partitions), Tuenti (32) and
Twitter (64), once with hash partitioning and once with the Spinner
partitioning driving vertex placement, and reports the percentage runtime
improvement (25-50%, i.e. up to a factor of 2).

Here the runtime is the simulated cluster time of the Pregel run — the
slowest worker's cost per superstep, summed over supersteps — which
captures both effects the paper describes: fewer remote messages (better
locality) and less idling at the synchronization barrier (better balance).
"""

from __future__ import annotations

from repro.apps import make_app_program
from repro.core.fast import FastSpinner
from repro.experiments.common import ExperimentScale, spinner_config, undirected_dataset
from repro.experiments.giraph import run_application
from repro.metrics.reporting import improvement_percentage

#: (dataset, number of partitions/workers) pairs of Figure 9, scaled down.
FIG9_WORKLOADS = (("LJ", 8), ("TU", 8), ("TW", 16))
FIG9_APPLICATIONS = ("SP", "PR", "CC")


def _make_program(app: str, source: int, engine: str = "dict"):
    if app == "SP":
        return make_app_program("sssp", engine, source=source)
    if app == "PR":
        return make_app_program("pagerank", engine, num_iterations=10)
    if app == "CC":
        return make_app_program("wcc", engine)
    raise ValueError(f"unknown application {app!r}")


def run_fig9(
    workloads: tuple[tuple[str, int], ...] = FIG9_WORKLOADS,
    applications: tuple[str, ...] = FIG9_APPLICATIONS,
    scale: ExperimentScale | None = None,
    engine: str = "dict",
    parallel: int = 1,
) -> list[dict]:
    """Return one row per (application, dataset) with the runtime improvement.

    ``engine`` selects the Pregel runtime (``"dict"`` or ``"vector"``);
    ``parallel`` spreads the vector engine's supersteps over that many
    shared-memory worker processes (reported statistics are identical).
    """
    scale = scale or ExperimentScale.default()
    rows: list[dict] = []
    for dataset, num_partitions in workloads:
        graph = undirected_dataset(dataset, scale)
        spinner = FastSpinner(spinner_config(scale.seed))
        assignment = spinner.partition(
            graph, num_partitions, track_history=False
        ).to_assignment()
        source = next(iter(graph.vertices()))
        for app in applications:
            hash_run = run_application(
                _make_program(app, source, engine),
                graph,
                num_workers=num_partitions,
                engine=engine,
                parallel=parallel,
            )
            spinner_run = run_application(
                _make_program(app, source, engine),
                graph,
                num_workers=num_partitions,
                assignment=assignment,
                engine=engine,
                parallel=parallel,
            )
            rows.append(
                {
                    "application": app,
                    "graph": dataset,
                    "k": num_partitions,
                    "time_hash": round(hash_run.simulated_time, 1),
                    "time_spinner": round(spinner_run.simulated_time, 1),
                    "improvement_pct": round(
                        improvement_percentage(
                            hash_run.simulated_time, spinner_run.simulated_time
                        ),
                        1,
                    ),
                    "remote_msgs_hash": hash_run.remote_messages,
                    "remote_msgs_spinner": spinner_run.remote_messages,
                }
            )
    return rows
