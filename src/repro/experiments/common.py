"""Shared helpers for the experiment harnesses."""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import SpinnerConfig
from repro.graph.conversion import ensure_undirected
from repro.graph.datasets import load_dataset
from repro.graph.undirected import UndirectedGraph


@dataclass(frozen=True)
class ExperimentScale:
    """Size knobs for an experiment run.

    ``graph_scale`` multiplies the dataset-proxy sizes; ``quick`` presets
    are used by the test suite, ``default`` by the benchmark harness.
    """

    graph_scale: float = 0.2
    seed: int = 7

    @classmethod
    def quick(cls) -> "ExperimentScale":
        """Tiny sizes for the integration tests."""
        return cls(graph_scale=0.05, seed=7)

    @classmethod
    def default(cls) -> "ExperimentScale":
        """Benchmark sizes (seconds per experiment, not hours)."""
        return cls(graph_scale=0.25, seed=7)


def spinner_config(seed: int = 7, **overrides) -> SpinnerConfig:
    """The paper's default Spinner parameters with a fixed seed."""
    return SpinnerConfig(seed=seed, **overrides)


def undirected_dataset(name: str, scale: ExperimentScale) -> UndirectedGraph:
    """Load a dataset proxy and return its weighted undirected view."""
    graph = load_dataset(name, scale=scale.graph_scale)
    return ensure_undirected(graph)
