"""Shared helpers for the experiment harnesses."""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass

from repro.core.config import SpinnerConfig
from repro.core.fast import FastSpinner
from repro.core.spinner import SpinnerPartitioner
from repro.errors import ConfigurationError
from repro.graph.conversion import ensure_undirected
from repro.graph.csr import CSRGraph
from repro.graph.datasets import load_dataset, load_dataset_csr
from repro.graph.digraph import DiGraph
from repro.graph.undirected import UndirectedGraph

#: Spinner runtimes the dynamic/elastic experiments can run on.
SPINNER_RUNTIMES = ("fast", "dict", "vector")

#: Graph substrates the partitioning experiments can run on.  ``"dict"``
#: materializes dictionary graphs (the reference path); ``"csr"`` keeps
#: generators, partitioners and metrics on flat CSR arrays end to end.
GRAPH_BACKENDS = ("dict", "csr")


@dataclass(frozen=True)
class ExperimentScale:
    """Size knobs for an experiment run.

    ``graph_scale`` multiplies the dataset-proxy sizes; ``quick`` presets
    are used by the test suite, ``default`` by the benchmark harness.
    ``graph_backend`` selects the substrate the partitioning experiments
    (table1, table3, fig3, fig5) run on: the CSR generators and kernels
    produce the same graphs and assignments as the dictionary path for
    the same seed, so the backends report identical rows — ``"csr"`` just
    gets there without building dictionary graphs on the hot path.
    """

    graph_scale: float = 0.2
    seed: int = 7
    graph_backend: str = "dict"

    def __post_init__(self) -> None:
        if self.graph_backend not in GRAPH_BACKENDS:
            raise ConfigurationError(
                f"graph_backend must be one of {GRAPH_BACKENDS}, "
                f"got {self.graph_backend!r}"
            )

    @classmethod
    def quick(cls) -> "ExperimentScale":
        """Tiny sizes for the integration tests."""
        return cls(graph_scale=0.05, seed=7)

    @classmethod
    def default(cls) -> "ExperimentScale":
        """Benchmark sizes (seconds per experiment, not hours)."""
        return cls(graph_scale=0.25, seed=7)


def spinner_config(seed: int = 7, **overrides) -> SpinnerConfig:
    """The paper's default Spinner parameters with a fixed seed."""
    return SpinnerConfig(seed=seed, **overrides)


def undirected_dataset(name: str, scale: ExperimentScale) -> UndirectedGraph:
    """Load a dataset proxy and return its weighted undirected view."""
    graph = load_dataset(name, scale=scale.graph_scale)
    return ensure_undirected(graph)


def partitioning_dataset(name: str, scale: ExperimentScale) -> UndirectedGraph | CSRGraph:
    """Load a dataset proxy on the substrate selected by ``scale``.

    Returns the weighted undirected view either as a dictionary graph
    (``graph_backend="dict"``) or as a :class:`CSRGraph`
    (``graph_backend="csr"``); both represent the identical graph for the
    same scale and seed.
    """
    if scale.graph_backend == "csr":
        return load_dataset_csr(name, scale=scale.graph_scale)
    return undirected_dataset(name, scale)


@dataclass(frozen=True)
class SpinnerRunSummary:
    """Runtime-agnostic view of one Spinner run.

    Normalizes :class:`~repro.core.fast.FastSpinnerResult` and
    :class:`~repro.core.spinner.SpinnerResult` to the quantities the
    dynamic/elastic experiments report (Figures 7 and 8): iterations and
    message counts proxy processing time and network traffic, the
    assignment feeds the stability metrics.
    """

    assignment: dict[int, int]
    iterations: int
    total_messages: int
    phi: float
    rho: float

    def to_assignment(self) -> dict[int, int]:
        """Return the ``{vertex: partition}`` mapping (runner-API parity)."""
        return self.assignment


class SpinnerRunner:
    """One Spinner implementation behind a runtime-agnostic interface.

    ``engine`` selects among the three runtimes documented in
    ``docs/ARCHITECTURE.md``: ``"fast"`` (vectorized
    :class:`~repro.core.fast.FastSpinner` kernels, the default for the
    experiment sweeps), ``"dict"`` (per-vertex Pregel reference) and
    ``"vector"`` (array-native Pregel).  All three implement the same
    algorithm; the Pregel pair is bit-exact for a fixed seed, while
    ``"fast"`` consumes its random stream differently.
    """

    def __init__(self, engine: str, config: SpinnerConfig, num_workers: int = 4) -> None:
        if engine not in SPINNER_RUNTIMES:
            raise ConfigurationError(
                f"engine must be one of {SPINNER_RUNTIMES}, got {engine!r}"
            )
        self.engine = engine
        self.config = config
        self.num_workers = num_workers

    def _summarize(self, result) -> SpinnerRunSummary:
        if self.engine == "fast":
            return SpinnerRunSummary(
                assignment=result.to_assignment(),
                iterations=result.iterations,
                total_messages=result.total_messages,
                phi=result.phi,
                rho=result.rho,
            )
        return SpinnerRunSummary(
            assignment=result.assignment,
            iterations=result.iterations,
            total_messages=result.total_messages,
            phi=result.phi,
            rho=result.rho,
        )

    def _partitioner(self):
        if self.engine == "fast":
            return FastSpinner(self.config)
        return SpinnerPartitioner(
            self.config, num_workers=self.num_workers, engine=self.engine
        )

    def partition(
        self, graph: UndirectedGraph | DiGraph, num_partitions: int
    ) -> SpinnerRunSummary:
        """Partition from scratch."""
        if self.engine == "fast":
            result = self._partitioner().partition(
                graph, num_partitions, track_history=False
            )
        else:
            result = self._partitioner().partition(graph, num_partitions)
        return self._summarize(result)

    def adapt_to_graph_changes(
        self,
        graph: UndirectedGraph | DiGraph,
        previous_assignment: Mapping[int, int],
        num_partitions: int,
    ) -> SpinnerRunSummary:
        """Incrementally adapt after graph changes (Section III-D)."""
        if self.engine == "fast":
            result = self._partitioner().adapt_to_graph_changes(
                graph, previous_assignment, num_partitions, track_history=False
            )
        else:
            result = self._partitioner().adapt_to_graph_changes(
                graph, previous_assignment, num_partitions
            )
        return self._summarize(result)

    def adapt_to_partition_change(
        self,
        graph: UndirectedGraph | DiGraph,
        previous_assignment: Mapping[int, int],
        old_num_partitions: int,
        new_num_partitions: int,
    ) -> SpinnerRunSummary:
        """Elastically adapt to a new partition count (Section III-E)."""
        if self.engine == "fast":
            result = self._partitioner().adapt_to_partition_change(
                graph,
                previous_assignment,
                old_num_partitions,
                new_num_partitions,
                track_history=False,
            )
        else:
            result = self._partitioner().adapt_to_partition_change(
                graph, previous_assignment, old_num_partitions, new_num_partitions
            )
        return self._summarize(result)
