"""Figure 6 — scalability of Spinner.

The paper measures the runtime of the first (most expensive, fully
deterministic) label-propagation iteration on Watts-Strogatz graphs while
varying (a) the number of vertices, (b) the number of workers and (c) the
number of partitions, observing near-linear trends in (a) and (c) and
near-linear speedup in (b).

Substitution (documented in DESIGN.md): the paper's wall-clock numbers
come from Hadoop clusters with up to 116 machines and billion-vertex
graphs.  Here (a) and (c) time the vectorized kernel's first iteration on
growing graphs, and (b) uses the simulated Pregel cluster's cost model,
whose superstep time is the maximum per-worker cost — the same quantity
the paper measures, in arbitrary units.
"""

from __future__ import annotations

import time

from repro.core.fast import FastSpinner
from repro.core.spinner import SpinnerPartitioner
from repro.experiments.common import ExperimentScale, spinner_config
from repro.graph.generators import watts_strogatz
from repro.pregel.cost_model import ClusterCostModel


def _first_iteration_runtime(graph, num_partitions: int, seed: int) -> float:
    """Wall-clock seconds of one full Spinner iteration (vectorized kernel)."""
    config = spinner_config(seed, max_iterations=1)
    spinner = FastSpinner(config)
    # Warm-up run so first-call costs (page faults, allocator, CSR
    # conversion caches) don't pollute the first measured configuration,
    # then best-of-three to keep the scaling trend above scheduler noise.
    spinner.partition(graph, num_partitions, track_history=False)
    best = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        spinner.partition(graph, num_partitions, track_history=False)
        best = min(best, time.perf_counter() - start)
    return best


def run_fig6a(
    vertex_counts: tuple[int, ...] = (1000, 2000, 4000, 8000, 16000),
    degree: int = 10,
    beta: float = 0.3,
    num_partitions: int = 16,
    scale: ExperimentScale | None = None,
) -> list[dict]:
    """Runtime of the first iteration vs. graph size (Figure 6a)."""
    scale = scale or ExperimentScale.default()
    rows = []
    for n in vertex_counts:
        graph = watts_strogatz(n, degree=degree, beta=beta, seed=scale.seed)
        runtime = _first_iteration_runtime(graph, num_partitions, scale.seed)
        rows.append(
            {
                "vertices": n,
                "edges": graph.num_edges,
                "runtime_ms": round(runtime * 1000.0, 2),
            }
        )
    return rows


def run_fig6b(
    worker_counts: tuple[int, ...] = (2, 4, 8, 16),
    num_vertices: int = 2000,
    degree: int = 10,
    num_partitions: int = 16,
    scale: ExperimentScale | None = None,
    engine: str = "dict",
) -> list[dict]:
    """Simulated first-iteration time vs. number of workers (Figure 6b).

    Uses the Pregel implementation so the per-worker cost accounting (and
    therefore the speedup from splitting the same work across more
    workers) is visible.  ``engine`` picks the Pregel runtime (``"dict"``
    or ``"vector"``); the simulated times are identical — the runtimes
    are bit-exact — but ``"vector"`` sweeps much larger graphs in the
    same wall-clock budget.
    """
    scale = scale or ExperimentScale.default()
    graph = watts_strogatz(num_vertices, degree=degree, beta=0.3, seed=scale.seed)
    cost_model = ClusterCostModel()
    rows = []
    for workers in worker_counts:
        config = spinner_config(scale.seed, max_iterations=1)
        partitioner = SpinnerPartitioner(
            config, num_workers=workers, cost_model=cost_model, engine=engine
        )
        result = partitioner.partition(graph, num_partitions)
        assert result.pregel_result is not None
        # Sum the two supersteps of the first iteration (ComputeScores +
        # ComputeMigrations), mirroring the paper's definition.
        iteration_stats = result.pregel_result.stats.superstep_stats[1:3]
        simulated = sum(s.simulated_time(cost_model) for s in iteration_stats)
        rows.append(
            {
                "workers": workers,
                "simulated_time": round(simulated, 1),
            }
        )
    return rows


def run_fig6c(
    partition_counts: tuple[int, ...] = (2, 4, 8, 16, 32, 64),
    num_vertices: int = 8000,
    degree: int = 10,
    scale: ExperimentScale | None = None,
) -> list[dict]:
    """Runtime of the first iteration vs. number of partitions (Figure 6c)."""
    scale = scale or ExperimentScale.default()
    graph = watts_strogatz(num_vertices, degree=degree, beta=0.3, seed=scale.seed)
    rows = []
    for k in partition_counts:
        runtime = _first_iteration_runtime(graph, k, scale.seed)
        rows.append({"partitions": k, "runtime_ms": round(runtime * 1000.0, 2)})
    return rows
