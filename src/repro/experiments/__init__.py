"""Experiment harnesses — one module per table/figure of the paper.

Every module exposes a ``run_*`` function that executes the experiment at a
configurable (scaled-down) size and returns plain row dictionaries, plus
the benchmarks in ``benchmarks/`` that execute them under pytest-benchmark
and print the same rows the paper reports.

| Paper artifact | Module |
|----------------|--------|
| Table I        | :mod:`repro.experiments.table1` |
| Table III      | :mod:`repro.experiments.table3` |
| Table IV       | :mod:`repro.experiments.table4` |
| Figure 3       | :mod:`repro.experiments.fig3` |
| Figure 4       | :mod:`repro.experiments.fig4` |
| Figure 5       | :mod:`repro.experiments.fig5` |
| Figure 6       | :mod:`repro.experiments.fig6` |
| Figure 7       | :mod:`repro.experiments.fig7` |
| Figure 8       | :mod:`repro.experiments.fig8` |
| Figure 9       | :mod:`repro.experiments.fig9` |
"""

__all__ = [
    "common",
    "table1",
    "table3",
    "table4",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "giraph",
    "ablations",
]
