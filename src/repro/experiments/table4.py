"""Table IV — impact of partitioning balance on worker load.

The paper runs 20 PageRank iterations on the Twitter graph over 256
workers, once with hash partitioning and once with the Spinner
partitioning, and reports the mean / max / min time workers spend per
superstep.  The headline observation: with hash partitioning workers idle
~31% of each superstep waiting for the slowest one, with Spinner only
~19%, because the partition loads (and hence worker loads) are balanced
and fewer messages cross the network.

This harness reproduces the same measurement on the simulated cluster with
the cost model of :mod:`repro.pregel.cost_model`.
"""

from __future__ import annotations

import numpy as np

from repro.apps import make_app_program
from repro.core.fast import FastSpinner
from repro.experiments.common import ExperimentScale, spinner_config
from repro.experiments.giraph import run_application
from repro.graph.conversion import ensure_undirected
from repro.graph.datasets import twitter_proxy


def run_table4(
    num_workers: int = 16,
    num_partitions: int = 16,
    pagerank_iterations: int = 10,
    scale: ExperimentScale | None = None,
    engine: str = "dict",
    parallel: int = 1,
) -> list[dict]:
    """Return one row per approach with mean/max/min superstep worker time.

    ``engine`` selects the Pregel runtime (``"dict"`` or ``"vector"``); the
    two produce identical statistics, the vector engine just gets there
    orders of magnitude faster on large proxies.  ``parallel`` spreads the
    vector engine's supersteps over that many shared-memory worker
    processes (statistics unchanged — the executors are bit-exact).
    """
    scale = scale or ExperimentScale.default()
    graph = twitter_proxy(scale=scale.graph_scale, seed=scale.seed)
    undirected = ensure_undirected(graph)

    spinner = FastSpinner(spinner_config(scale.seed))
    assignment = spinner.partition(undirected, num_partitions, track_history=False).to_assignment()

    rows: list[dict] = []
    for approach, placement_assignment in (("random", None), ("spinner", assignment)):
        run = run_application(
            make_app_program("pagerank", engine, num_iterations=pagerank_iterations),
            undirected,
            num_workers=num_workers,
            assignment=placement_assignment,
            engine=engine,
            parallel=parallel,
        )
        per_superstep = run.superstep_times()
        means = np.array([row["mean"] for row in per_superstep])
        maxes = np.array([row["max"] for row in per_superstep])
        mins = np.array([row["min"] for row in per_superstep])
        idle = float(np.mean(1.0 - means / np.where(maxes > 0, maxes, 1.0)))
        rows.append(
            {
                "approach": approach,
                "mean": round(float(means.mean()), 1),
                "mean_std": round(float(means.std()), 1),
                "max": round(float(maxes.mean()), 1),
                "max_std": round(float(maxes.std()), 1),
                "min": round(float(mins.mean()), 1),
                "min_std": round(float(mins.std()), 1),
                "idle_fraction": round(idle, 3),
            }
        )
    return rows
