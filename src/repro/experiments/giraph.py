"""Running analytical applications on the simulated Giraph cluster.

The application-performance experiments (Table IV and Figure 9) compare
two vertex-to-worker placements for the same application and graph:

* **hash placement** — Giraph's default, vertex ``v`` lands on worker
  ``hash(v) mod W``;
* **Spinner placement** — vertices sharing a Spinner label land on the
  same worker, exactly the integration described in Section V-F of the
  paper (a vertex id type carrying the computed partition plus a hash
  function that only looks at the partition field).

This module provides that plumbing and returns the per-superstep worker
statistics the experiments summarize.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass

from repro.errors import PregelError
from repro.faults import FaultPlan
from repro.graph.digraph import DiGraph
from repro.graph.undirected import UndirectedGraph
from repro.pregel.cost_model import ClusterCostModel, RunStats
from repro.pregel.engine import PregelEngine, PregelResult
from repro.pregel.program import VertexProgram
from repro.pregel.vector_engine import (
    BatchVertexProgram,
    VectorPregelEngine,
    VectorPregelResult,
)
from repro.pregel.worker import hash_placement, partition_placement


@dataclass
class ApplicationRun:
    """Result of one application run under one placement."""

    placement: str
    result: PregelResult | VectorPregelResult
    cost_model: ClusterCostModel

    @property
    def stats(self) -> RunStats:
        """Per-superstep statistics of the run."""
        return self.result.stats

    @property
    def simulated_time(self) -> float:
        """Total simulated runtime."""
        return self.stats.simulated_time(self.cost_model)

    @property
    def remote_messages(self) -> int:
        """Messages that crossed worker boundaries (network traffic)."""
        return self.stats.remote_messages

    def superstep_times(self) -> list[dict]:
        """Mean/max/min simulated worker time per superstep (Table IV rows)."""
        rows = []
        for stats in self.stats.superstep_stats:
            rows.append(
                {
                    "superstep": stats.superstep,
                    "mean": stats.mean_worker_time(self.cost_model),
                    "max": stats.simulated_time(self.cost_model),
                    "min": stats.min_worker_time(self.cost_model),
                }
            )
        return rows


def run_application(
    program: VertexProgram | BatchVertexProgram,
    graph: UndirectedGraph | DiGraph,
    num_workers: int,
    assignment: Mapping[int, int] | None = None,
    cost_model: ClusterCostModel | None = None,
    max_supersteps: int = 200,
    engine: str = "dict",
    checkpoint_interval: int | None = None,
    checkpoint_dir: str | None = None,
    fault_plan: FaultPlan | None = None,
    parallel: int = 1,
) -> ApplicationRun:
    """Run ``program`` on ``graph`` with hash or Spinner-driven placement.

    ``assignment`` is a Spinner partitioning; when omitted the default hash
    placement is used.  ``engine`` selects the runtime: ``"dict"`` executes
    a per-vertex :class:`VertexProgram` on :class:`PregelEngine`,
    ``"vector"`` executes a :class:`BatchVertexProgram` on the array-native
    :class:`VectorPregelEngine`; both report the same statistics.  The
    checkpoint/fault knobs are forwarded to the engine unchanged (see
    :class:`PregelEngine`).  ``parallel`` selects the vector engine's
    shared-memory multiprocess executor (bit-exact with serial); the
    dictionary engine rejects values greater than 1.
    """
    cost_model = cost_model or ClusterCostModel()
    if parallel > 1 and engine != "vector":
        raise PregelError(
            f"parallel execution requires the vector engine (got engine={engine!r})"
        )
    if assignment is None:
        placement = hash_placement(num_workers)
        placement_name = "hash"
    else:
        placement = partition_placement(dict(assignment), num_workers)
        placement_name = "spinner"
    if engine == "dict":
        if not isinstance(program, VertexProgram):
            raise PregelError("the dict engine requires a VertexProgram")
        runtime: PregelEngine | VectorPregelEngine = PregelEngine(
            num_workers=num_workers,
            placement=placement,
            cost_model=cost_model,
            max_supersteps=max_supersteps,
            checkpoint_interval=checkpoint_interval,
            checkpoint_dir=checkpoint_dir,
            fault_plan=fault_plan,
        )
    elif engine == "vector":
        if not isinstance(program, BatchVertexProgram):
            raise PregelError("the vector engine requires a BatchVertexProgram")
        runtime = VectorPregelEngine(
            num_workers=num_workers,
            placement=placement,
            cost_model=cost_model,
            max_supersteps=max_supersteps,
            checkpoint_interval=checkpoint_interval,
            checkpoint_dir=checkpoint_dir,
            fault_plan=fault_plan,
            parallel=parallel,
        )
    else:
        raise PregelError(f"unknown engine {engine!r} (expected 'dict' or 'vector')")
    if isinstance(graph, DiGraph):
        result = runtime.run_on_digraph(program, graph)
    else:
        result = runtime.run_on_undirected(program, graph)
    return ApplicationRun(placement=placement_name, result=result, cost_model=cost_model)
