"""Out-of-core scale driver: 100M-edge ingestion + partitioning run.

The paper's headline claim is operating at Facebook scale (Section V-D);
this driver exercises the repro's equivalent capability on one machine:
a synthetic edge stream far larger than the configured memory budget is
ingested through the chunked external sort (:func:`repro.graph.io.
ingest_edge_chunks`) into an on-disk CSR store, then partitioned with the
out-of-core FastSpinner kernels (``SpinnerConfig.storage="mmap"``) — all
while the process's peak RSS stays bounded by the chunk sizes, not the
edge count.

Run as a module so the measurement is isolated in a fresh process (peak
RSS via ``resource.getrusage`` is a process-lifetime high-water mark and
would otherwise be polluted by whatever ran before)::

    PYTHONPATH=src python -m repro.experiments.scale \
        --num-edges 100000000 --num-partitions 8

The resulting JSON (one object on stdout) is consumed by
``benchmarks/test_scale_speed.py``, which asserts the RSS budget and
records the numbers in ``BENCH_scale.json``.
"""

from __future__ import annotations

import argparse
import json
import resource
import shutil
import sys
import tempfile
import time
from collections.abc import Iterator

import numpy as np

from repro.core.config import SpinnerConfig
from repro.core.fast import FastSpinner
from repro.graph.io import DEFAULT_RUN_HALF_EDGES, ingest_edge_chunks
from repro.graph.mmap_store import DEFAULT_STORAGE_CHUNK, open_store

#: Default synthetic-workload shape: average degree ~40 (between the
#: paper's LiveJournal and Twitter graphs) at 100M edges.
DEFAULT_NUM_EDGES = 100_000_000
DEFAULT_EDGES_PER_VERTEX = 20


def synthetic_edge_chunks(
    num_edges: int,
    num_vertices: int,
    seed: int,
    chunk_edges: int = 1 << 21,
) -> Iterator[tuple[np.ndarray, np.ndarray, None]]:
    """Seeded generator of forward-edge chunks (no self-loops).

    Endpoints are uniform; the target is drawn uniformly from the other
    ``num_vertices - 1`` vertices via a shift, so no edge is a self-loop
    and the stream is reproducible chunk-for-chunk for a given seed.
    Peak memory is ``O(chunk_edges)``.
    """
    if num_vertices < 2:
        raise ValueError("synthetic stream needs at least 2 vertices")
    rng = np.random.default_rng(seed)
    remaining = num_edges
    while remaining > 0:
        count = min(chunk_edges, remaining)
        u = rng.integers(0, num_vertices, count, dtype=np.int64)
        shift = rng.integers(0, num_vertices - 1, count, dtype=np.int64)
        v = (u + 1 + shift) % num_vertices
        yield u, v, None
        remaining -= count


def peak_rss_mb() -> float:
    """Current process-lifetime peak RSS in MiB (``ru_maxrss``)."""
    maxrss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # Linux reports KiB; macOS reports bytes.
    if sys.platform == "darwin":  # pragma: no cover - linux CI
        return maxrss / (1024 * 1024)
    return maxrss / 1024


def run_scale(
    num_edges: int = DEFAULT_NUM_EDGES,
    num_vertices: int | None = None,
    num_partitions: int = 8,
    seed: int = 42,
    store_dir: str | None = None,
    storage_chunk: int = DEFAULT_STORAGE_CHUNK,
    run_half_edges: int = DEFAULT_RUN_HALF_EDGES,
    max_iterations: int = 10,
) -> dict:
    """Ingest a synthetic graph out-of-core and partition it; return stats.

    The returned dictionary holds the workload shape, wall-clock seconds
    and throughput (edges/second) of both phases, the partition quality
    (phi / rho), and the peak RSS high-water marks after each phase.
    ``max_iterations`` bounds the label-propagation run: the benchmark
    measures out-of-core throughput under a memory budget, not
    convergence (the equivalence suite pins exactness at test scale).
    """
    if num_vertices is None:
        num_vertices = max(2, num_edges // DEFAULT_EDGES_PER_VERTEX)
    cleanup = store_dir is None
    if store_dir is None:
        store_dir = tempfile.mkdtemp(prefix="spinner-scale-")
    try:
        start = time.perf_counter()
        meta = ingest_edge_chunks(
            synthetic_edge_chunks(num_edges, num_vertices, seed),
            store_dir,
            num_vertices=num_vertices,
            run_half_edges=run_half_edges,
        )
        ingest_seconds = time.perf_counter() - start
        rss_after_ingest = peak_rss_mb()

        config = SpinnerConfig(
            seed=seed,
            max_iterations=max_iterations,
            storage="mmap",
            storage_chunk=storage_chunk,
        )
        start = time.perf_counter()
        with open_store(store_dir) as store:
            result = FastSpinner(config).partition(
                store, num_partitions, track_history=False
            )
        partition_seconds = time.perf_counter() - start
        rss_after_partition = peak_rss_mb()
    finally:
        if cleanup:
            shutil.rmtree(store_dir, ignore_errors=True)

    return {
        "num_edges": int(num_edges),
        "num_vertices": int(num_vertices),
        "num_partitions": int(num_partitions),
        "seed": int(seed),
        "storage_chunk": int(storage_chunk),
        "run_half_edges": int(run_half_edges),
        "store_half_edges": int(meta["num_half_edges"]),
        "ingest_seconds": round(ingest_seconds, 3),
        "ingest_edges_per_s": round(num_edges / ingest_seconds, 1),
        "iterations": int(result.iterations),
        "partition_seconds": round(partition_seconds, 3),
        "partition_half_edges_per_s": round(
            meta["num_half_edges"] * result.iterations / partition_seconds, 1
        ),
        "phi": round(result.phi, 4),
        "rho": round(result.rho, 4),
        "peak_rss_mb_ingest": round(rss_after_ingest, 1),
        "peak_rss_mb": round(rss_after_partition, 1),
    }


def main(argv: list[str] | None = None) -> int:
    """Command-line entry point: run the scale workload, print JSON."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--num-edges", type=int, default=DEFAULT_NUM_EDGES)
    parser.add_argument(
        "--num-vertices",
        type=int,
        default=None,
        help="defaults to num-edges // 20 (average degree ~40)",
    )
    parser.add_argument("--num-partitions", type=int, default=8)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument(
        "--store",
        default=None,
        help="store directory (temporary and removed when unset)",
    )
    parser.add_argument("--storage-chunk", type=int, default=DEFAULT_STORAGE_CHUNK)
    parser.add_argument("--run-half-edges", type=int, default=DEFAULT_RUN_HALF_EDGES)
    parser.add_argument("--max-iterations", type=int, default=10)
    args = parser.parse_args(argv)
    stats = run_scale(
        num_edges=args.num_edges,
        num_vertices=args.num_vertices,
        num_partitions=args.num_partitions,
        seed=args.seed,
        store_dir=args.store,
        storage_chunk=args.storage_chunk,
        run_half_edges=args.run_half_edges,
        max_iterations=args.max_iterations,
    )
    print(json.dumps(stats, indent=2, sort_keys=True))
    return 0


if __name__ == "__main__":
    sys.exit(main())
