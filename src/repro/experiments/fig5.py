"""Figure 5 — impact of the additional capacity c.

(a) the final maximum normalized load ``rho`` as a function of ``c``
(expected: ``rho <= c`` on average), and (b) the number of iterations to
convergence as a function of ``c`` for several k (expected: larger ``c``
converges faster).  The paper runs this on LiveJournal with k in
{8, 16, 32, 64} and c in {1.02, 1.05, 1.10, 1.20}, repeating each run 10
times.
"""

from __future__ import annotations

import numpy as np

from repro.core.fast import FastSpinner
from repro.experiments.common import ExperimentScale, partitioning_dataset, spinner_config

FIG5_C_VALUES = (1.02, 1.05, 1.10, 1.20)
FIG5_K_VALUES = (8, 16, 32, 64)


def run_fig5(
    c_values: tuple[float, ...] = FIG5_C_VALUES,
    k_values: tuple[int, ...] = FIG5_K_VALUES,
    dataset: str = "LJ",
    repeats: int = 3,
    scale: ExperimentScale | None = None,
) -> list[dict]:
    """Return one row per (c, k) with the mean final rho and iteration count.

    Honours ``scale.graph_backend``: on ``"csr"`` the LiveJournal proxy is
    generated directly as a CSR graph and FastSpinner consumes it without
    any dictionary materialization.
    """
    scale = scale or ExperimentScale.default()
    graph = partitioning_dataset(dataset, scale)
    rows: list[dict] = []
    for c in c_values:
        for k in k_values:
            rhos = []
            iterations = []
            for repeat in range(repeats):
                config = spinner_config(scale.seed + repeat, additional_capacity=c)
                result = FastSpinner(config).partition(graph, k, track_history=False)
                rhos.append(result.rho)
                iterations.append(result.iterations)
            rows.append(
                {
                    "c": c,
                    "k": k,
                    "rho_mean": round(float(np.mean(rhos)), 3),
                    "rho_max": round(float(np.max(rhos)), 3),
                    "rho_min": round(float(np.min(rhos)), 3),
                    "iterations": round(float(np.mean(iterations)), 1),
                }
            )
    return rows
