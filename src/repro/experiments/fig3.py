"""Figure 3 — partitioning locality on real graphs.

(a) the ratio of local edges ``phi`` as a function of the number of
partitions for each graph, and (b) the improvement in locality relative to
hash partitioning for the same configurations.  The paper's observation:
``phi`` decreases slowly with k and stays far above hash partitioning (up
to 250x better at k = 512).

With ``scale.graph_backend == "csr"`` every stage — proxy generation,
Spinner, hash partitioning and the locality metric — runs on CSR arrays
and reports the same rows as the dictionary path.
"""

from __future__ import annotations

from repro.core.fast import FastSpinner
from repro.experiments.common import ExperimentScale, partitioning_dataset, spinner_config
from repro.graph.csr import CSRGraph
from repro.metrics.quality import locality
from repro.partitioners.hashing import HashPartitioner

#: Graphs of Figure 3 (the Yahoo! web graph is shown separately in Fig. 4).
FIG3_DATASETS = ("LJ", "G+", "TU", "TW", "FR")
#: Partition counts (the paper sweeps 2..512; scaled down by default).
FIG3_K_VALUES = (2, 4, 8, 16, 32, 64)


def run_fig3(
    datasets: tuple[str, ...] = FIG3_DATASETS,
    k_values: tuple[int, ...] = FIG3_K_VALUES,
    scale: ExperimentScale | None = None,
) -> list[dict]:
    """Return one row per (dataset, k) with Spinner's and hash's locality.

    ``improvement`` is the ratio ``phi_spinner / phi_hash`` — the y-axis of
    Figure 3(b).
    """
    scale = scale or ExperimentScale.default()
    rows: list[dict] = []
    hash_partitioner = HashPartitioner()
    for name in datasets:
        graph = partitioning_dataset(name, scale)
        spinner = FastSpinner(spinner_config(scale.seed))
        for k in k_values:
            result = spinner.partition(graph, k, track_history=False)
            if isinstance(graph, CSRGraph):
                hash_assignment = hash_partitioner.partition_array(graph, k)
            else:
                hash_assignment = hash_partitioner.partition(graph, k)
            hash_phi = locality(graph, hash_assignment)
            improvement = result.phi / hash_phi if hash_phi > 0 else float("inf")
            rows.append(
                {
                    "graph": name,
                    "k": k,
                    "phi": round(result.phi, 3),
                    "phi_hash": round(hash_phi, 3),
                    "improvement": round(improvement, 2),
                }
            )
    return rows
