"""Command-line interface.

``spinner-repro`` exposes the most common operations:

* ``partition`` — partition an edge-list file (or a named dataset proxy)
  with any registered partitioner and write the ``vertex partition``
  assignment to a file;
* ``compare`` — run several partitioners on the same graph and print their
  locality / balance;
* ``experiment`` — run one of the paper's table/figure harnesses and print
  the rows it produces;
* ``recover`` — resume a checkpointed Pregel run from the newest snapshot
  in a checkpoint directory and run it to completion;
* ``ingest`` — stream an undirected edge-list file through the chunked
  external sort into an on-disk CSR store (``--edge-store`` input for
  ``partition``), with peak memory bounded regardless of the file size;
* ``serve`` — run the online sharding service: answer vertex→partition
  lookups over a JSON-lines TCP protocol from a versioned assignment
  store while churn ingestion triggers incremental repartitioning in the
  background (:mod:`repro.serving`).

All user errors (invalid flag combinations, malformed fault plans, bad
checkpoint directories, any :class:`~repro.errors.ReproError`) exit with
status 2 and a one-line ``spinner-repro: error: ...`` message on stderr.
"""

from __future__ import annotations

import argparse
import os
import sys
from collections.abc import Sequence

from repro.core.config import SpinnerConfig
from repro.errors import ReproError
from repro.graph.conversion import ensure_undirected
from repro.experiments import (
    fig3,
    fig4,
    fig5,
    fig6,
    fig7,
    fig8,
    fig9,
    table1,
    table3,
    table4,
)
from repro.experiments.common import ExperimentScale
from repro.faults import FaultPlan
from repro.graph.datasets import dataset_names, load_dataset
from repro.graph.io import (
    DEFAULT_RUN_HALF_EDGES,
    ingest_edge_list,
    read_directed_edge_list,
    read_undirected_edge_list,
    write_partitioning,
    write_partitioning_array,
)
from repro.metrics.quality import locality, max_normalized_load
from repro.metrics.reporting import format_table
from repro.pregel.checkpoint import load_latest_snapshot, resume_from_checkpoint
from repro.partitioners.registry import (
    SPINNER_PARTITIONERS,
    available_partitioners,
    make_partitioner,
)
from repro.serving import SERVING_ENGINES, ServingConfig, ShardingService

# Experiments that honour --engine; the remaining partitioning experiments
# ignore it (the experiment command warns when that happens).
_ENGINE_BACKED_EXPERIMENTS = frozenset({"table4", "fig9", "fig6b", "fig7", "fig8"})

# Experiments that honour --backend (the CSR-native graph substrate); the
# remaining experiments ignore it (the experiment command warns).
_BACKEND_BACKED_EXPERIMENTS = frozenset({"table1", "table3", "fig3", "fig5"})

# Partitioners whose stream order is configurable (--stream-order), with
# the orders each one supports.
_STREAMING_PARTITIONERS = {
    "ldg": ("natural", "random", "bfs"),
    "fennel": ("natural", "random"),
}

# Partitioners that execute on a (checkpointable) Pregel engine; the
# checkpoint/fault flags only apply to these.  "spinner" is FastSpinner —
# vectorized kernels, no Pregel run to snapshot.
_PREGEL_PARTITIONERS = frozenset({"spinner-pregel", "spinner-pregel-vector"})

# FastSpinner-backed partitioners: the only ones whose kernels honour the
# storage tier knobs (--storage / --storage-dir / --storage-chunk).
_FAST_PARTITIONERS = frozenset({"spinner", "spinner-mmap"})


def _fail(message: str) -> None:
    """Print a one-line error and exit with status 2 (user error)."""
    print(f"spinner-repro: error: {message}", file=sys.stderr)
    raise SystemExit(2)


def _pregel_engine(engine: str | None) -> str:
    """Resolve --engine for experiments that only run on a Pregel runtime."""
    if engine in (None, "dict"):
        return "dict"
    if engine == "vector":
        return "vector"
    _fail(f"--engine {engine} is not a Pregel runtime; use 'dict' or 'vector'")


# Experiments that honour --parallel (they run Pregel applications on the
# vector engine, whose supersteps can execute across processes).
_PARALLEL_BACKED_EXPERIMENTS = frozenset({"table4", "fig9"})

_EXPERIMENTS = {
    "table1": lambda scale, engine, parallel: table1.run_table1(scale=scale),
    "table3": lambda scale, engine, parallel: table3.run_table3(scale=scale),
    # (table1/table3/fig3/fig5 pick up the graph backend from the scale.)
    "table4": lambda scale, engine, parallel: table4.run_table4(
        scale=scale, engine=_pregel_engine(engine), parallel=parallel
    ),
    "fig3": lambda scale, engine, parallel: fig3.run_fig3(scale=scale),
    "fig4": lambda scale, engine, parallel: fig4.run_fig4(scale=scale),
    "fig5": lambda scale, engine, parallel: fig5.run_fig5(scale=scale),
    "fig6a": lambda scale, engine, parallel: fig6.run_fig6a(scale=scale),
    "fig6b": lambda scale, engine, parallel: fig6.run_fig6b(
        scale=scale, engine=_pregel_engine(engine)
    ),
    "fig6c": lambda scale, engine, parallel: fig6.run_fig6c(scale=scale),
    "fig7": lambda scale, engine, parallel: fig7.run_fig7(
        scale=scale, engine=engine or "fast"
    ),
    "fig8": lambda scale, engine, parallel: fig8.run_fig8(
        scale=scale, engine=engine or "fast"
    ),
    "fig9": lambda scale, engine, parallel: fig9.run_fig9(
        scale=scale, engine=_pregel_engine(engine), parallel=parallel
    ),
}


def _load_graph(args: argparse.Namespace):
    if args.dataset is not None:
        return load_dataset(args.dataset, scale=args.scale)
    if args.edge_list is not None:
        return read_directed_edge_list(args.edge_list)
    _fail("provide either --dataset or --edge-list")


def _add_graph_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--dataset",
        choices=dataset_names(),
        help="use a built-in dataset proxy instead of an edge list",
    )
    parser.add_argument("--edge-list", help="path to a 'source target' edge-list file")
    parser.add_argument(
        "--scale", type=float, default=0.25, help="dataset proxy size multiplier"
    )


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser for the ``spinner-repro`` command."""
    parser = argparse.ArgumentParser(
        prog="spinner-repro",
        description="Spinner (ICDE 2017) reproduction toolkit",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    partition = subparsers.add_parser("partition", help="partition a graph")
    _add_graph_arguments(partition)
    partition.add_argument("-k", "--num-partitions", type=int, required=True)
    partition.add_argument(
        "--partitioner", default="spinner", choices=available_partitioners()
    )
    partition.add_argument("--seed", type=int, default=42)
    partition.add_argument(
        "--stream-order",
        choices=("natural", "random", "bfs"),
        default=None,
        help="vertex stream order for the streaming partitioners "
        "(ldg: natural/random/bfs, fennel: natural/random); "
        "defaults to each partitioner's own default (random)",
    )
    partition.add_argument("--output", help="write 'vertex partition' pairs to this file")
    partition.add_argument(
        "--checkpoint-interval",
        type=int,
        default=None,
        help="snapshot the Pregel run every N supersteps into "
        "--checkpoint-dir (spinner-pregel / spinner-pregel-vector only)",
    )
    partition.add_argument(
        "--checkpoint-dir",
        default=None,
        help="directory for checkpoint snapshots (created if missing); "
        "required with --checkpoint-interval",
    )
    partition.add_argument(
        "--fault-plan",
        default=None,
        help="inject deterministic faults into the Pregel run, e.g. "
        "'crash:2,msg:4:2' (crash:SUPERSTEP[:WORKER[:TIMES]] / "
        "msg:SUPERSTEP[:FAILURES[:TIMES]]); requires checkpointing",
    )
    partition.add_argument(
        "--parallel",
        type=int,
        default=1,
        help="run the vector Pregel engine's supersteps across N "
        "shared-memory worker processes (spinner-pregel-vector only; "
        "bit-exact with the default serial execution)",
    )
    partition.add_argument(
        "--edge-store",
        default=None,
        help="partition an on-disk CSR store produced by 'ingest' "
        "(out-of-core input; mutually exclusive with --dataset/--edge-list)",
    )
    partition.add_argument(
        "--storage",
        choices=("ram", "mmap"),
        default=None,
        help="storage tier for the FastSpinner kernels ('spinner' / "
        "'spinner-mmap' only): 'mmap' streams the CSR arrays from disk "
        "chunk-wise, bit-exact with 'ram' at O(chunk + labels) peak memory",
    )
    partition.add_argument(
        "--storage-dir",
        default=None,
        help="store/spill directory for --storage mmap (temporary and "
        "removed after the run when unset)",
    )
    partition.add_argument(
        "--storage-chunk",
        type=int,
        default=None,
        help="half-edges per streamed chunk for --storage mmap "
        "(any value >= 1 is bit-exact; smaller bounds memory tighter)",
    )

    compare = subparsers.add_parser("compare", help="compare partitioners on one graph")
    _add_graph_arguments(compare)
    compare.add_argument("-k", "--num-partitions", type=int, required=True)
    compare.add_argument(
        "--partitioners",
        nargs="+",
        default=["hash", "ldg", "fennel", "metis", "spinner"],
        choices=available_partitioners(),
    )

    experiment = subparsers.add_parser("experiment", help="run a paper experiment")
    experiment.add_argument("name", choices=sorted(_EXPERIMENTS))
    experiment.add_argument("--scale", type=float, default=0.25)
    experiment.add_argument("--seed", type=int, default=7)
    experiment.add_argument(
        "--backend",
        choices=("dict", "csr"),
        default="dict",
        help="graph substrate for the partitioning experiments "
        "(table1, table3, fig3, fig5): 'dict' materializes dictionary "
        "graphs, 'csr' runs generators, partitioners and metrics on CSR "
        "arrays end to end (same rows, no dict graphs on the hot path)",
    )
    experiment.add_argument(
        "--engine",
        choices=("fast", "dict", "vector"),
        default=None,
        help="Spinner/Pregel runtime for engine-backed experiments "
        "(table4, fig9, fig6b, fig7, fig8): 'dict' is the per-vertex "
        "reference Pregel engine, 'vector' the array-native sharded "
        "engine (bit-exact with 'dict'), and 'fast' the vectorized "
        "FastSpinner kernels (fig7/fig8 only, their default). "
        "Defaults to each experiment's own default runtime",
    )
    experiment.add_argument(
        "--parallel",
        type=int,
        default=1,
        help="shared-memory worker processes for the vector engine "
        "(table4 and fig9 with --engine vector only; rows are "
        "bit-exact with serial execution)",
    )

    ingest = subparsers.add_parser(
        "ingest", help="ingest an edge list into an on-disk CSR store"
    )
    ingest.add_argument(
        "--edge-list",
        required=True,
        help="path to a 'source target [weight]' edge-list file; each line "
        "is one undirected edge (self-loops and duplicates kept)",
    )
    ingest.add_argument(
        "--store", required=True, help="output store directory (created if missing)"
    )
    ingest.add_argument(
        "--num-vertices",
        type=int,
        default=None,
        help="declared vertex-id range [0, N); defaults to max id + 1",
    )
    ingest.add_argument(
        "--run-half-edges",
        type=int,
        default=DEFAULT_RUN_HALF_EDGES,
        help="half-edges per sorted run of the external sort "
        f"(memory ceiling of the ingestion; default {DEFAULT_RUN_HALF_EDGES})",
    )

    recover = subparsers.add_parser(
        "recover", help="resume a checkpointed Pregel run to completion"
    )
    recover.add_argument(
        "checkpoint_dir",
        help="directory holding checkpoint_*.pkl / checkpoint_*.npz snapshots",
    )
    recover.add_argument(
        "--fault-plan",
        default=None,
        help="keep injecting faults into the resumed run (same spec as "
        "partition --fault-plan); by default the resumed run is clean",
    )
    recover.add_argument(
        "--seed", type=int, default=42, help="seed for the fault plan's backoff jitter"
    )

    serve = subparsers.add_parser(
        "serve", help="run the online sharding service (lookup + churn TCP server)"
    )
    _add_graph_arguments(serve)
    serve.add_argument("-k", "--num-partitions", type=int, required=True)
    serve.add_argument(
        "--assignment",
        default=None,
        help="warm-start from a 'vertex partition' file written by a "
        "previous run (partition --output or serve --save-assignment) "
        "instead of computing the initial partitioning",
    )
    serve.add_argument(
        "--save-assignment",
        default=None,
        help="persist the latest assignment to this file on shutdown "
        "(atomic write; re-usable as --assignment)",
    )
    serve.add_argument("--host", default="127.0.0.1", help="listen address")
    serve.add_argument(
        "--port",
        type=int,
        default=0,
        help="listen port; 0 (default) binds an ephemeral port, printed "
        "as 'serving on HOST:PORT' once bound",
    )
    serve.add_argument(
        "--edge-threshold",
        type=int,
        default=512,
        help="repartition once this many pending churn edges accumulated "
        "(0 disables the count trigger; default 512)",
    )
    serve.add_argument(
        "--phi-drift",
        type=float,
        default=None,
        help="repartition once the incrementally-estimated locality phi "
        "drops this far below the last published value (disabled by default)",
    )
    serve.add_argument(
        "--engine",
        choices=SERVING_ENGINES,
        default="fast",
        help="repartitioning engine: 'fast' (vectorized FastSpinner, "
        "default), 'dict' or 'vector' (the Pregel runtimes)",
    )
    serve.add_argument(
        "--parallel",
        type=int,
        default=1,
        help="shared-memory worker processes for background repartitions "
        "(--engine vector only)",
    )
    serve.add_argument("--seed", type=int, default=42)
    serve.add_argument(
        "--storage",
        choices=("ram", "mmap"),
        default=None,
        help="storage tier for background FastSpinner repartitions "
        "(--engine fast only); 'mmap' streams the CSR arrays from disk",
    )
    serve.add_argument(
        "--storage-dir",
        default=None,
        help="store/spill directory for --storage mmap",
    )
    serve.add_argument(
        "--storage-chunk",
        type=int,
        default=None,
        help="half-edges per streamed chunk for --storage mmap",
    )
    serve.add_argument(
        "--log-interval",
        type=float,
        default=10.0,
        help="seconds between periodic metrics log lines on stderr "
        "(0 disables)",
    )
    serve.add_argument(
        "--latency-sample-every",
        type=int,
        default=16,
        help="record one lookup latency sample in every N requests "
        "(1 samples every request; default 16)",
    )
    serve.add_argument(
        "--max-pipeline",
        type=int,
        default=1024,
        help="most buffered request lines answered as one pipelined "
        "batch with a single coalesced response write "
        "(1 degenerates to one response write per request; default 1024)",
    )

    return parser


def _cmd_partition(args: argparse.Namespace) -> int:
    # Validate flag combinations before the (potentially expensive) graph
    # generation.
    if args.stream_order is not None:
        supported = _STREAMING_PARTITIONERS.get(args.partitioner)
        if supported is None:
            _fail(
                f"--stream-order only applies to {sorted(_STREAMING_PARTITIONERS)}, "
                f"not {args.partitioner!r}"
            )
        if args.stream_order not in supported:
            _fail(
                f"partitioner {args.partitioner!r} supports stream orders "
                f"{supported}, not {args.stream_order!r}"
            )
    if args.parallel < 1:
        _fail(f"--parallel must be >= 1, got {args.parallel}")
    if args.parallel > 1 and args.partitioner != "spinner-pregel-vector":
        _fail(
            "--parallel > 1 requires the vector Pregel runtime; "
            f"use --partitioner spinner-pregel-vector, not {args.partitioner!r}"
        )
    if args.fault_plan is not None and args.checkpoint_interval is None:
        _fail("--fault-plan requires --checkpoint-interval and --checkpoint-dir")
    if (args.checkpoint_interval is None) != (args.checkpoint_dir is None):
        _fail("--checkpoint-interval and --checkpoint-dir must be given together")
    if args.edge_store is not None and (
        args.dataset is not None or args.edge_list is not None
    ):
        _fail("--edge-store is mutually exclusive with --dataset/--edge-list")
    storage = args.storage
    if args.partitioner == "spinner-mmap" and storage is None:
        storage = "mmap"
    if storage is not None and args.partitioner not in _FAST_PARTITIONERS:
        _fail(
            f"--storage only applies to the FastSpinner partitioners "
            f"{sorted(_FAST_PARTITIONERS)}, not {args.partitioner!r}"
        )
    if storage != "mmap":
        if args.storage_dir is not None:
            _fail("--storage-dir requires --storage mmap (or --partitioner spinner-mmap)")
        if args.storage_chunk is not None:
            _fail(
                "--storage-chunk requires --storage mmap (or --partitioner spinner-mmap)"
            )
    if args.storage_chunk is not None and args.storage_chunk < 1:
        _fail(f"--storage-chunk must be >= 1, got {args.storage_chunk}")
    fault_plan = None
    if args.checkpoint_interval is not None:
        if args.partitioner not in _PREGEL_PARTITIONERS:
            _fail(
                f"--checkpoint-interval only applies to the Pregel-backed "
                f"partitioners {sorted(_PREGEL_PARTITIONERS)}, "
                f"not {args.partitioner!r}"
            )
        if args.checkpoint_interval < 1:
            _fail(f"--checkpoint-interval must be >= 1, got {args.checkpoint_interval}")
        if os.path.exists(args.checkpoint_dir) and not os.path.isdir(args.checkpoint_dir):
            _fail(
                f"checkpoint dir {args.checkpoint_dir!r} exists and is not a directory"
            )
        if args.fault_plan is not None:
            fault_plan = FaultPlan.parse(args.fault_plan, seed=args.seed)
    if args.partitioner in SPINNER_PARTITIONERS:
        config = SpinnerConfig(
            seed=args.seed,
            checkpoint_interval=args.checkpoint_interval,
            checkpoint_dir=args.checkpoint_dir,
            fault_plan=fault_plan,
            storage=storage if storage is not None else "ram",
            storage_dir=args.storage_dir,
            storage_chunk=args.storage_chunk,
        )
        kwargs = {"config": config}
        if args.partitioner in _PREGEL_PARTITIONERS:
            kwargs["parallel"] = args.parallel
        partitioner = make_partitioner(args.partitioner, **kwargs)
    elif args.partitioner in _STREAMING_PARTITIONERS:
        kwargs = {"seed": args.seed}
        if args.stream_order is not None:
            kwargs["stream_order"] = args.stream_order
        partitioner = make_partitioner(args.partitioner, **kwargs)
    else:
        partitioner = make_partitioner(args.partitioner)
    if args.edge_store is not None:
        return _partition_store(args, partitioner)
    graph = _load_graph(args)
    output = partitioner.run(graph, args.num_partitions)
    print(
        format_table(
            [
                {
                    "partitioner": output.partitioner,
                    "k": output.num_partitions,
                    "phi": output.phi,
                    "rho": output.rho,
                }
            ],
            title="Partitioning quality",
        )
    )
    if args.output:
        write_partitioning(output.assignment, args.output)
        print(f"assignment written to {args.output}")
    return 0


def _partition_store(args: argparse.Namespace, partitioner) -> int:
    """Partition an on-disk CSR store end to end out-of-core.

    The store is opened memory-mapped, the partitioner runs through its
    array interface, the quality metrics stream the edge arrays chunk by
    chunk, and the assignment (if requested) is written from the label
    array — no dictionary graph and no full-length edge copy is ever
    materialized.
    """
    from repro.graph.mmap_store import open_store

    if not os.path.isdir(args.edge_store):
        _fail(f"edge store {args.edge_store!r} does not exist or is not a directory")
    with open_store(args.edge_store) as store:
        labels = partitioner.partition_array(store, args.num_partitions)
        print(
            format_table(
                [
                    {
                        "partitioner": partitioner.name,
                        "k": args.num_partitions,
                        "phi": locality(store, labels),
                        "rho": max_normalized_load(store, labels, args.num_partitions),
                    }
                ],
                title="Partitioning quality",
            )
        )
        if args.output:
            write_partitioning_array(store.original_ids, labels, args.output)
            print(f"assignment written to {args.output}")
    return 0


def _cmd_ingest(args: argparse.Namespace) -> int:
    if not os.path.isfile(args.edge_list):
        _fail(f"edge list {args.edge_list!r} does not exist")
    if args.run_half_edges < 1:
        _fail(f"--run-half-edges must be >= 1, got {args.run_half_edges}")
    if args.num_vertices is not None and args.num_vertices < 0:
        _fail(f"--num-vertices must be >= 0, got {args.num_vertices}")
    meta = ingest_edge_list(
        args.edge_list,
        args.store,
        num_vertices=args.num_vertices,
        run_half_edges=args.run_half_edges,
    )
    print(
        format_table(
            [
                {
                    "store": args.store,
                    "vertices": meta["num_vertices"],
                    "edges": meta["num_half_edges"] // 2,
                    "total_weight": meta["total_weight"],
                    "unit_weights": meta["unit_weights"],
                }
            ],
            title="Ingested CSR store",
        )
    )
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    graph = _load_graph(args)
    rows = []
    for name in args.partitioners:
        if name in SPINNER_PARTITIONERS:
            partitioner = make_partitioner(name, config=SpinnerConfig())
        else:
            partitioner = make_partitioner(name)
        output = partitioner.run(graph, args.num_partitions)
        rows.append(
            {"partitioner": name, "phi": output.phi, "rho": output.rho}
        )
    print(format_table(rows, title=f"k={args.num_partitions}"))
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    if args.parallel < 1:
        _fail(f"--parallel must be >= 1, got {args.parallel}")
    if args.parallel > 1:
        if args.name not in _PARALLEL_BACKED_EXPERIMENTS:
            _fail(
                f"--parallel only applies to {sorted(_PARALLEL_BACKED_EXPERIMENTS)}, "
                f"not {args.name!r}"
            )
        if args.engine != "vector":
            _fail("--parallel > 1 requires --engine vector")
    if args.engine is not None and args.name not in _ENGINE_BACKED_EXPERIMENTS:
        print(
            f"note: experiment {args.name!r} does not run on a Pregel engine; "
            f"--engine {args.engine} has no effect",
            file=sys.stderr,
        )
    if args.backend != "dict" and args.name not in _BACKEND_BACKED_EXPERIMENTS:
        print(
            f"note: experiment {args.name!r} ignores the graph backend; "
            f"--backend {args.backend} has no effect",
            file=sys.stderr,
        )
    scale = ExperimentScale(
        graph_scale=args.scale, seed=args.seed, graph_backend=args.backend
    )
    rows = _EXPERIMENTS[args.name](scale, args.engine, args.parallel)
    print(format_table(rows, title=f"Experiment {args.name}"))
    return 0


def _cmd_recover(args: argparse.Namespace) -> int:
    if not os.path.isdir(args.checkpoint_dir):
        _fail(
            f"checkpoint dir {args.checkpoint_dir!r} does not exist "
            "or is not a directory"
        )
    fault_plan = None
    if args.fault_plan is not None:
        fault_plan = FaultPlan.parse(args.fault_plan, seed=args.seed)
    snapshot = load_latest_snapshot(args.checkpoint_dir)
    result = resume_from_checkpoint(
        args.checkpoint_dir, fault_plan=fault_plan, snapshot=snapshot
    )
    print(
        format_table(
            [
                {
                    "engine": snapshot.kind,
                    "resumed_from": snapshot.superstep,
                    "supersteps": result.num_supersteps,
                    "halt_reason": result.halt_reason,
                    "checkpoints": result.stats.checkpoints_written,
                    "recoveries": result.stats.recoveries,
                }
            ],
            title=f"Recovered run from {args.checkpoint_dir}",
        )
    )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    import logging

    if args.num_partitions < 1:
        _fail(f"--num-partitions must be >= 1, got {args.num_partitions}")
    if args.edge_threshold < 0:
        _fail(f"--edge-threshold must be >= 0, got {args.edge_threshold}")
    edge_threshold = args.edge_threshold if args.edge_threshold > 0 else None
    if edge_threshold is None and args.phi_drift is None:
        _fail(
            "both repartition triggers are disabled; give --edge-threshold > 0 "
            "and/or --phi-drift"
        )
    if args.phi_drift is not None and not 0.0 < args.phi_drift <= 1.0:
        _fail(f"--phi-drift must lie in (0, 1], got {args.phi_drift}")
    if args.parallel < 1:
        _fail(f"--parallel must be >= 1, got {args.parallel}")
    if args.parallel > 1 and args.engine != "vector":
        _fail("--parallel > 1 requires --engine vector")
    if args.storage is not None and args.engine != "fast":
        _fail("--storage only applies to --engine fast")
    if args.storage != "mmap":
        if args.storage_dir is not None:
            _fail("--storage-dir requires --storage mmap")
        if args.storage_chunk is not None:
            _fail("--storage-chunk requires --storage mmap")
    if args.storage_chunk is not None and args.storage_chunk < 1:
        _fail(f"--storage-chunk must be >= 1, got {args.storage_chunk}")
    if not 0 <= args.port <= 65535:
        _fail(f"--port must lie in [0, 65535], got {args.port}")
    if args.log_interval < 0:
        _fail(f"--log-interval must be >= 0, got {args.log_interval}")
    if args.latency_sample_every < 1:
        _fail(
            f"--latency-sample-every must be >= 1, got {args.latency_sample_every}"
        )
    if args.max_pipeline < 1:
        _fail(f"--max-pipeline must be >= 1, got {args.max_pipeline}")
    if args.assignment is not None and not os.path.isfile(args.assignment):
        _fail(f"assignment file {args.assignment!r} does not exist")

    if args.dataset is not None:
        graph = ensure_undirected(load_dataset(args.dataset, scale=args.scale))
    elif args.edge_list is not None:
        if not os.path.isfile(args.edge_list):
            _fail(f"edge list {args.edge_list!r} does not exist")
        graph = read_undirected_edge_list(args.edge_list)
    else:
        _fail("provide either --dataset or --edge-list")

    config = ServingConfig(
        num_partitions=args.num_partitions,
        edge_threshold=edge_threshold,
        phi_drift=args.phi_drift,
        engine=args.engine,
        parallel=args.parallel,
        spinner=SpinnerConfig(
            seed=args.seed,
            storage=args.storage if args.storage is not None else "ram",
            storage_dir=args.storage_dir,
            storage_chunk=args.storage_chunk,
        ),
        log_interval=args.log_interval,
        latency_sample_every=args.latency_sample_every,
        max_pipeline_batch=args.max_pipeline,
    )
    logging.basicConfig(
        stream=sys.stderr,
        level=logging.INFO,
        format="%(asctime)s %(name)s %(message)s",
    )
    service = ShardingService(
        graph,
        config,
        warm_start=args.assignment,
        host=args.host,
        port=args.port,
    )
    if service.last_report is not None:
        print(
            format_table([service.last_report.as_row()], title="Initial partitioning")
        )
    else:
        print(
            f"warm-started from {args.assignment} "
            f"at version {service.store.version}"
        )

    def _announce(started: ShardingService) -> None:
        print(f"serving on {started.host}:{started.port}", flush=True)

    try:
        asyncio.run(service.serve_forever(ready=_announce))
    except KeyboardInterrupt:
        pass
    if args.save_assignment is not None:
        service.store.save(args.save_assignment)
        print(f"assignment written to {args.save_assignment}")
    print(f"stopped at version {service.store.version}")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point of the ``spinner-repro`` command."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        if args.command == "partition":
            return _cmd_partition(args)
        if args.command == "compare":
            return _cmd_compare(args)
        if args.command == "experiment":
            return _cmd_experiment(args)
        if args.command == "recover":
            return _cmd_recover(args)
        if args.command == "ingest":
            return _cmd_ingest(args)
        if args.command == "serve":
            return _cmd_serve(args)
    except ReproError as exc:
        # Library errors (bad fault specs, unreadable checkpoints, invalid
        # configurations) are user errors at the CLI surface: one line, exit 2.
        _fail(str(exc))
    parser.error(f"unknown command {args.command!r}")
    return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
