"""Exception hierarchy shared across the repro package.

All library-specific errors derive from :class:`ReproError` so that callers
can catch a single base class.  Modules raise the most specific subclass
that describes the failure.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class GraphError(ReproError):
    """Raised for malformed graphs or invalid graph operations."""


class VertexNotFoundError(GraphError):
    """Raised when an operation references a vertex that does not exist."""

    def __init__(self, vertex_id: int) -> None:
        super().__init__(f"vertex {vertex_id!r} does not exist in the graph")
        self.vertex_id = vertex_id


class GraphFormatError(GraphError):
    """Raised when a graph file cannot be parsed."""


class PartitioningError(ReproError):
    """Raised for invalid partitioning configurations or states."""


class InvalidPartitionCountError(PartitioningError):
    """Raised when the requested number of partitions is not usable."""

    def __init__(self, num_partitions: int, reason: str = "") -> None:
        message = f"invalid number of partitions: {num_partitions}"
        if reason:
            message = f"{message} ({reason})"
        super().__init__(message)
        self.num_partitions = num_partitions


class ConfigurationError(ReproError):
    """Raised when algorithm parameters are outside their valid domain."""


class PregelError(ReproError):
    """Raised for errors in the simulated Pregel engine."""


class AggregatorError(PregelError):
    """Raised when an aggregator is redefined or used inconsistently."""


class CheckpointError(PregelError):
    """Raised when a checkpoint cannot be written, found or read back."""


class RecoveryAbortedError(PregelError):
    """Raised when a run exhausts its crash-recovery budget.

    Carries the superstep of the fatal fault and the number of recoveries
    already performed, so callers (and the CLI) can report a one-line
    diagnosis instead of a traceback.
    """

    def __init__(self, superstep: int, recoveries: int) -> None:
        super().__init__(
            f"aborting after {recoveries} recover{'y' if recoveries == 1 else 'ies'}: "
            f"crash budget exhausted by a fault at superstep {superstep}; "
            "the latest checkpoint remains on disk for resume_from_checkpoint()"
        )
        self.superstep = superstep
        self.recoveries = recoveries


class ExperimentError(ReproError):
    """Raised when an experiment harness is configured incorrectly."""


class ServingError(ReproError):
    """Raised for invalid operations against the online sharding service."""
