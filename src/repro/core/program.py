"""The Spinner vertex program and master compute (paper Section IV).

The algorithm is organized in the phases of Figure 2 of the paper, each
implemented as one Pregel superstep:

``NeighborPropagation`` (directed inputs only)
    Every vertex sends its id along its outgoing edges so that incoming
    edges can be discovered.
``NeighborDiscovery`` (directed inputs only)
    Every vertex processes the received ids: an already-known neighbour
    gets edge weight 2 (reciprocal pair), an unknown one is added with
    weight 1 — the weighted undirected conversion of eq. (3).
``Initialize``
    Every vertex takes its initial label (random for scratch partitioning,
    the previous label for incremental/elastic runs — the initial labels
    are decided by the caller and stored in the vertex value), contributes
    its weighted degree to its partition's load aggregator and announces
    its label to its neighbours.
``ComputeScores`` / ``ComputeMigrations``
    One label-propagation iteration, split in two supersteps exactly as in
    Section IV-A2/3: the first computes the best label per vertex and
    aggregates the candidate load ``m(l)``; the second performs the
    probabilistic migration (eq. 14), updates the load aggregators and
    notifies neighbours of label changes.

Partition loads, candidate loads, the number of migrations and the global
score are all maintained through aggregators, mirroring the sharded
aggregators of the Giraph implementation (Section IV-A5).  Per-worker
asynchronous load deltas (Section IV-A4) live in the worker's shared
store.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.core.config import SpinnerConfig
from repro.core.halting import HaltingTracker
from repro.core.scoring import choose_label, label_frequencies, migration_probability
from repro.pregel.aggregators import (
    AggregatorRegistry,
    DoubleSumAggregator,
    LongSumAggregator,
)
from repro.pregel.master import MasterCompute
from repro.pregel.program import ComputeContext, VertexProgram
from repro.pregel.vertex import Vertex

# Phase names (Figure 2 of the paper).
NEIGHBOR_PROPAGATION = "neighbor_propagation"
NEIGHBOR_DISCOVERY = "neighbor_discovery"
INITIALIZE = "initialize"
COMPUTE_SCORES = "compute_scores"
COMPUTE_MIGRATIONS = "compute_migrations"

#: Worker-store key holding the per-worker asynchronous load deltas.
WORKER_LOAD_DELTA_KEY = "spinner_load_delta"


class SpinnerVertexValue:
    """Mutable per-vertex Spinner state stored in ``Vertex.value``."""

    __slots__ = ("label", "candidate_label", "weighted_degree")

    def __init__(self, label: int) -> None:
        self.label = label
        self.candidate_label: int | None = None
        self.weighted_degree: float = 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"SpinnerVertexValue(label={self.label}, "
            f"candidate={self.candidate_label}, degree={self.weighted_degree})"
        )


@dataclass(frozen=True)
class IterationRecord:
    """Quality metrics of one label-propagation iteration."""

    iteration: int
    phi: float
    rho: float
    score: float
    migrations: int = 0


def load_aggregator_name(label: int) -> str:
    """Aggregator name holding the load ``b(l)`` of a partition."""
    return f"spinner_load_{label}"


def candidate_aggregator_name(label: int) -> str:
    """Aggregator name holding the candidate load ``m(l)`` of a partition."""
    return f"spinner_candidates_{label}"


SCORE_AGGREGATOR = "spinner_score"
LOCAL_WEIGHT_AGGREGATOR = "spinner_local_weight"
MIGRATIONS_AGGREGATOR = "spinner_migrations"


class SpinnerPhaseSchedule:
    """Superstep bookkeeping shared by both Spinner vertex programs.

    Maps superstep indices onto the phases of Figure 2 (optionally offset
    by the two directed-conversion supersteps), so the per-vertex
    :class:`SpinnerProgram` and the array-native
    :class:`~repro.core.batch_program.BatchSpinnerProgram` execute the
    identical schedule and share :class:`SpinnerMasterCompute`.

    Parameters
    ----------
    num_partitions:
        The number of partitions ``k``.
    config:
        Algorithm parameters.
    convert_directed:
        Whether the NeighborPropagation/NeighborDiscovery conversion
        supersteps run (directed input graphs only).
    """

    def __init__(
        self,
        num_partitions: int,
        config: SpinnerConfig,
        convert_directed: bool,
    ) -> None:
        self.num_partitions = num_partitions
        self.config = config
        self.convert_directed = convert_directed
        self._rng = np.random.default_rng(config.seed)
        self._phase_offset = 2 if convert_directed else 0

    # ------------------------------------------------------------------
    # phase bookkeeping
    # ------------------------------------------------------------------
    def phase(self, superstep: int) -> str:
        """Map a superstep index to the algorithm phase it implements."""
        if self.convert_directed:
            if superstep == 0:
                return NEIGHBOR_PROPAGATION
            if superstep == 1:
                return NEIGHBOR_DISCOVERY
        if superstep == self._phase_offset:
            return INITIALIZE
        relative = superstep - self._phase_offset - 1
        return COMPUTE_SCORES if relative % 2 == 0 else COMPUTE_MIGRATIONS

    def iteration_of(self, superstep: int) -> int:
        """Label-propagation iteration index a superstep belongs to."""
        relative = superstep - self._phase_offset - 1
        return max(relative // 2, 0)

    def superstep_bound(self) -> int:
        """Safe upper bound on supersteps for ``config.max_iterations``."""
        return self._phase_offset + 2 + 2 * (self.config.max_iterations + 1)

    # ------------------------------------------------------------------
    # aggregators
    # ------------------------------------------------------------------
    def register_aggregators(self, aggregators: AggregatorRegistry) -> None:
        """Register the per-partition load/candidate and global aggregators."""
        for label in range(self.num_partitions):
            aggregators.register(load_aggregator_name(label), DoubleSumAggregator())
            aggregators.register(candidate_aggregator_name(label), DoubleSumAggregator())
        aggregators.register(SCORE_AGGREGATOR, DoubleSumAggregator())
        aggregators.register(LOCAL_WEIGHT_AGGREGATOR, DoubleSumAggregator())
        aggregators.register(MIGRATIONS_AGGREGATOR, LongSumAggregator())


class SpinnerProgram(SpinnerPhaseSchedule, VertexProgram):
    """Vertex-centric (per-vertex ``compute``) implementation of Spinner.

    Runs on the dictionary engine
    (:class:`~repro.pregel.engine.PregelEngine`); the array-native
    counterpart is
    :class:`~repro.core.batch_program.BatchSpinnerProgram`, which is
    bit-exact with this program for the same seed.  Constructor
    parameters are documented on :class:`SpinnerPhaseSchedule`.
    """

    def pre_superstep(
        self,
        superstep: int,
        worker_store: dict[str, Any],
        aggregators: AggregatorRegistry,
    ) -> None:
        """Reset the per-worker asynchronous load deltas (Section IV-A4).

        The deltas only carry information within one superstep, so they
        are cleared before every superstep begins.
        """
        worker_store[WORKER_LOAD_DELTA_KEY] = {}

    # ------------------------------------------------------------------
    # compute
    # ------------------------------------------------------------------
    def compute(self, vertex: Vertex, messages: list[Any], ctx: ComputeContext) -> None:
        """Dispatch the vertex to the current phase's handler (Figure 2)."""
        phase = self.phase(ctx.superstep)
        if phase == NEIGHBOR_PROPAGATION:
            self._neighbor_propagation(vertex, ctx)
        elif phase == NEIGHBOR_DISCOVERY:
            self._neighbor_discovery(vertex, messages)
        elif phase == INITIALIZE:
            self._initialize(vertex, ctx)
        elif phase == COMPUTE_SCORES:
            self._compute_scores(vertex, messages, ctx)
        else:
            self._compute_migrations(vertex, ctx)

    # -- conversion ----------------------------------------------------
    def _neighbor_propagation(self, vertex: Vertex, ctx: ComputeContext) -> None:
        # Normalize edge values to [weight, neighbour_label] and announce
        # this vertex to all out-neighbours.
        for target in list(vertex.edges):
            vertex.edges[target] = [1, None]
            ctx.send_message(target, vertex.vertex_id)

    def _neighbor_discovery(self, vertex: Vertex, messages: list[Any]) -> None:
        for sender in messages:
            edge = vertex.edges.get(sender)
            if edge is not None:
                edge[0] = 2
            else:
                vertex.edges[sender] = [1, None]

    # -- initialization ------------------------------------------------
    def _initialize(self, vertex: Vertex, ctx: ComputeContext) -> None:
        value: SpinnerVertexValue = vertex.value
        value.weighted_degree = float(sum(edge[0] for edge in vertex.edges.values()))
        ctx.aggregate(load_aggregator_name(value.label), value.weighted_degree)
        for target in vertex.edges:
            ctx.send_message(target, (vertex.vertex_id, value.label))

    # -- iteration: scores ----------------------------------------------
    def _partition_loads(self, ctx: ComputeContext) -> np.ndarray:
        loads = np.array(
            [
                ctx.aggregated_value(load_aggregator_name(label))
                for label in range(self.num_partitions)
            ],
            dtype=np.float64,
        )
        return loads

    def _compute_scores(
        self, vertex: Vertex, messages: list[Any], ctx: ComputeContext
    ) -> None:
        value: SpinnerVertexValue = vertex.value
        # (i) update neighbour labels from migration / initialization messages
        for sender, new_label in messages:
            edge = vertex.edges.get(sender)
            if edge is not None:
                edge[1] = new_label

        degree = value.weighted_degree
        ctx.aggregate(load_aggregator_name(value.label), degree)

        # (ii) label frequencies across the neighbourhood
        frequencies = label_frequencies(
            [(edge[1], edge[0]) for edge in vertex.edges.values()]
        )

        # (iii) loads from the previous superstep, optionally adjusted by the
        # per-worker asynchronous deltas of candidates evaluated earlier in
        # this superstep on the same worker (Section IV-A4).
        loads = self._partition_loads(ctx)
        total_load = float(loads.sum())
        capacity = self.config.capacity(total_load, self.num_partitions) if total_load else 1.0
        if self.config.worker_local_updates:
            delta: dict[int, float] = ctx.worker_store.get(WORKER_LOAD_DELTA_KEY, {})
            if delta:
                loads = loads.copy()
                for label, change in delta.items():
                    loads[label] += change

        best_label, _best_score, current_score = choose_label(
            value.label, frequencies, degree, loads, capacity, self.config
        )

        ctx.aggregate(SCORE_AGGREGATOR, current_score)
        ctx.aggregate(LOCAL_WEIGHT_AGGREGATOR, frequencies.get(value.label, 0.0))

        # (iv) flag as migration candidate
        if best_label != value.label:
            value.candidate_label = best_label
            ctx.aggregate(candidate_aggregator_name(best_label), degree)
            if self.config.worker_local_updates:
                delta = ctx.worker_store.setdefault(WORKER_LOAD_DELTA_KEY, {})
                delta[best_label] = delta.get(best_label, 0.0) + degree
                delta[value.label] = delta.get(value.label, 0.0) - degree
        else:
            value.candidate_label = None

    # -- iteration: migrations -------------------------------------------
    def _compute_migrations(self, vertex: Vertex, ctx: ComputeContext) -> None:
        value: SpinnerVertexValue = vertex.value
        degree = value.weighted_degree
        if value.candidate_label is not None:
            target_label = value.candidate_label
            loads = self._partition_loads(ctx)
            total_load = float(loads.sum())
            capacity = (
                self.config.capacity(total_load, self.num_partitions) if total_load else 1.0
            )
            remaining = capacity - float(loads[target_label])
            candidate_load = float(
                ctx.aggregated_value(candidate_aggregator_name(target_label))
            )
            if self.config.probabilistic_migration:
                probability = migration_probability(remaining, candidate_load)
            else:
                probability = 1.0
            if self._rng.random() < probability:
                value.label = target_label
                ctx.aggregate(MIGRATIONS_AGGREGATOR, 1)
                for target in vertex.edges:
                    ctx.send_message(target, (vertex.vertex_id, value.label))
            value.candidate_label = None
        ctx.aggregate(load_aggregator_name(value.label), degree)


class SpinnerMasterCompute(MasterCompute):
    """Master compute implementing the halting heuristic (Section III-C).

    The master runs before every superstep; right after a ComputeScores
    superstep it observes the freshly aggregated global score, partition
    loads and local edge weight, records an :class:`IterationRecord` and
    halts the computation once the score has been steady for ``w``
    iterations (or ``max_iterations`` is reached).
    """

    def __init__(self, program: SpinnerPhaseSchedule) -> None:
        super().__init__()
        self.program = program
        self.config = program.config
        self.tracker = HaltingTracker(
            threshold=self.config.halt_threshold, window=self.config.halt_window
        )
        self.history: list[IterationRecord] = []
        self._pending_migrations = 0

    def compute(self, superstep: int, aggregators: AggregatorRegistry) -> None:
        """Record iteration quality after each ComputeScores superstep and halt on steady state."""
        if superstep == 0:
            return
        previous_phase = self.program.phase(superstep - 1)
        if previous_phase == COMPUTE_MIGRATIONS:
            self._pending_migrations = int(aggregators.value(MIGRATIONS_AGGREGATOR))
            return
        if previous_phase != COMPUTE_SCORES:
            return

        iteration = self.program.iteration_of(superstep - 1)
        loads = np.array(
            [
                aggregators.value(load_aggregator_name(label))
                for label in range(self.program.num_partitions)
            ],
            dtype=np.float64,
        )
        total_load = float(loads.sum())
        score = float(aggregators.value(SCORE_AGGREGATOR))
        local_weight = float(aggregators.value(LOCAL_WEIGHT_AGGREGATOR))
        phi = local_weight / total_load if total_load else 1.0
        ideal = total_load / self.program.num_partitions if total_load else 1.0
        rho = float(loads.max() / ideal) if ideal else 1.0
        self.history.append(
            IterationRecord(
                iteration=iteration,
                phi=phi,
                rho=rho,
                score=score,
                migrations=self._pending_migrations,
            )
        )
        self._pending_migrations = 0

        if iteration + 1 >= self.config.max_iterations:
            self.halt_computation()
            return
        if self.tracker.update(score):
            self.halt_computation()
