"""Elastic repartitioning initialization (paper Section III-E).

When the number of partitions changes — machines are added to or removed
from the cluster — Spinner adapts the existing partitioning instead of
starting over:

* **adding** ``n`` partitions: every vertex independently picks one of the
  new partitions uniformly at random and migrates to it with probability
  ``p = n / (k + n)`` (eq. 11), which leaves all ``k + n`` partitions with
  the same expected load;
* **removing** ``n`` partitions: vertices assigned to a removed partition
  move to one of the surviving partitions chosen uniformly at random.

After this randomized re-initialization the normal Spinner iterations run
to restore locality.

The dict-based functions (:func:`expand_assignment`,
:func:`shrink_assignment`, :func:`resize_assignment`) serve the Pregel
implementation; the array-native ones (:func:`expand_labels`,
:func:`shrink_labels`, :func:`resize_labels`) operate on dense label
arrays with vectorized draws so the :class:`~repro.core.fast.FastSpinner`
adaptation path never loops over vertices in Python.  Both implement the
same distributions; the random streams differ (per-vertex draws vs. one
vectorized draw), so individual outcomes are not comparable across the
two families.
"""

from __future__ import annotations

from collections.abc import Mapping

import numpy as np

from repro.errors import InvalidPartitionCountError
from repro.core.state import validate_label_array, validate_labels


def expand_assignment(
    previous_assignment: Mapping[int, int],
    old_num_partitions: int,
    new_num_partitions: int,
    seed: int | None = None,
) -> dict[int, int]:
    """Re-initialize labels after *adding* partitions (eq. 11).

    Raises
    ------
    InvalidPartitionCountError
        If ``new_num_partitions`` is not strictly larger than
        ``old_num_partitions``.
    """
    if new_num_partitions <= old_num_partitions:
        raise InvalidPartitionCountError(
            new_num_partitions, f"must exceed the previous count {old_num_partitions}"
        )
    validate_labels(previous_assignment.values(), old_num_partitions)
    rng = np.random.default_rng(seed)
    added = new_num_partitions - old_num_partitions
    migrate_probability = added / new_num_partitions
    assignment: dict[int, int] = {}
    for vertex, label in previous_assignment.items():
        if rng.random() < migrate_probability:
            assignment[vertex] = old_num_partitions + int(rng.integers(added))
        else:
            assignment[vertex] = label
    return assignment


def shrink_assignment(
    previous_assignment: Mapping[int, int],
    old_num_partitions: int,
    new_num_partitions: int,
    seed: int | None = None,
) -> dict[int, int]:
    """Re-initialize labels after *removing* partitions.

    Partitions ``new_num_partitions .. old_num_partitions - 1`` disappear;
    their vertices move to a surviving partition chosen uniformly at
    random.  Other vertices keep their label.
    """
    if not 0 < new_num_partitions < old_num_partitions:
        raise InvalidPartitionCountError(
            new_num_partitions,
            f"must be positive and smaller than the previous count {old_num_partitions}",
        )
    validate_labels(previous_assignment.values(), old_num_partitions)
    rng = np.random.default_rng(seed)
    assignment: dict[int, int] = {}
    for vertex, label in previous_assignment.items():
        if label >= new_num_partitions:
            assignment[vertex] = int(rng.integers(new_num_partitions))
        else:
            assignment[vertex] = label
    return assignment


def expand_labels(
    labels: np.ndarray,
    old_num_partitions: int,
    new_num_partitions: int,
    seed: int | None = None,
) -> np.ndarray:
    """Vectorized :func:`expand_assignment` over a dense label array."""
    if new_num_partitions <= old_num_partitions:
        raise InvalidPartitionCountError(
            new_num_partitions,
            f"must exceed the previous count {old_num_partitions}",
        )
    labels = np.asarray(labels, dtype=np.int64)
    validate_label_array(labels, old_num_partitions)
    rng = np.random.default_rng(seed)
    added = new_num_partitions - old_num_partitions
    move = rng.random(labels.shape[0]) < added / new_num_partitions
    resized = labels.copy()
    resized[move] = old_num_partitions + rng.integers(added, size=int(move.sum()))
    return resized


def shrink_labels(
    labels: np.ndarray,
    old_num_partitions: int,
    new_num_partitions: int,
    seed: int | None = None,
) -> np.ndarray:
    """Vectorized :func:`shrink_assignment` over a dense label array."""
    if not 0 < new_num_partitions < old_num_partitions:
        raise InvalidPartitionCountError(
            new_num_partitions,
            f"must be positive and smaller than the previous count {old_num_partitions}",
        )
    labels = np.asarray(labels, dtype=np.int64)
    validate_label_array(labels, old_num_partitions)
    rng = np.random.default_rng(seed)
    move = labels >= new_num_partitions
    resized = labels.copy()
    resized[move] = rng.integers(new_num_partitions, size=int(move.sum()))
    return resized


def resize_labels(
    labels: np.ndarray,
    old_num_partitions: int,
    new_num_partitions: int,
    seed: int | None = None,
) -> np.ndarray:
    """Dispatch to :func:`expand_labels` or :func:`shrink_labels`."""
    if new_num_partitions == old_num_partitions:
        labels = np.asarray(labels, dtype=np.int64)
        validate_label_array(labels, old_num_partitions)
        return labels.copy()
    if new_num_partitions > old_num_partitions:
        return expand_labels(labels, old_num_partitions, new_num_partitions, seed)
    return shrink_labels(labels, old_num_partitions, new_num_partitions, seed)


def resize_assignment(
    previous_assignment: Mapping[int, int],
    old_num_partitions: int,
    new_num_partitions: int,
    seed: int | None = None,
) -> dict[int, int]:
    """Dispatch to :func:`expand_assignment` or :func:`shrink_assignment`."""
    if new_num_partitions == old_num_partitions:
        return dict(previous_assignment)
    if new_num_partitions > old_num_partitions:
        return expand_assignment(
            previous_assignment, old_num_partitions, new_num_partitions, seed
        )
    return shrink_assignment(
        previous_assignment, old_num_partitions, new_num_partitions, seed
    )
