"""Spinner — the paper's primary contribution.

Two interchangeable implementations of the same algorithm are provided:

* :class:`repro.core.spinner.SpinnerPartitioner` — the faithful Pregel
  implementation, organized in the supersteps described in Section IV of
  the paper (NeighborPropagation, NeighborDiscovery, Initialize,
  ComputeScores, ComputeMigrations) and executed on the simulated Giraph
  engine of :mod:`repro.pregel`.  It runs on either Pregel runtime:
  the per-vertex dictionary engine (``engine="dict"``, via
  :class:`repro.core.program.SpinnerProgram`) or the array-native vector
  engine (``engine="vector"``, via
  :class:`repro.core.batch_program.BatchSpinnerProgram`) — the two are
  bit-exact for the same seed.
* :class:`repro.core.fast.FastSpinner` — a vectorized NumPy implementation
  of the identical iteration (same score function, penalty, probabilistic
  migration and halting heuristic) used for large parameter sweeps.

Both share :class:`repro.core.config.SpinnerConfig` and produce results
carrying per-iteration quality history, so any experiment can swap one for
the other.
"""

from repro.core.batch_program import BatchSpinnerProgram, build_spinner_shard
from repro.core.config import SpinnerConfig
from repro.core.fast import FastSpinner, FastSpinnerResult
from repro.core.spinner import SpinnerPartitioner, SpinnerResult

__all__ = [
    "BatchSpinnerProgram",
    "FastSpinner",
    "FastSpinnerResult",
    "SpinnerConfig",
    "SpinnerPartitioner",
    "SpinnerResult",
    "build_spinner_shard",
]
