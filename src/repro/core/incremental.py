"""Incremental repartitioning initialization (paper Section III-D).

When the graph changes, Spinner does not repartition from scratch: it
restarts label propagation from the previous assignment.  Vertices that
existed before keep their label; vertices that appear for the first time
are assigned to the *least loaded* partition so the balance constraint is
not violated before the first iteration.

This module produces that initial assignment; the iterative adaptation
itself is the normal Spinner run seeded with it.

Two families of entry points exist: the dict-based ones
(:func:`incremental_initial_assignment`) used by the Pregel
implementation, and array-native ones
(:func:`incremental_initial_labels`, :func:`map_assignment_to_dense`,
:func:`place_least_loaded`) that operate directly on a
:class:`~repro.graph.csr.CSRGraph` so the vectorized
:class:`~repro.core.fast.FastSpinner` never round-trips through
dictionaries.  Both apply the same placement rule; they only differ in
the order equally heavy new vertices are considered (sorted vertex id
vs. graph insertion order), which coincides for graphs materialized
from a CSR view.
"""

from __future__ import annotations

from collections.abc import Mapping

import numpy as np

from repro.core.state import PartitionLoadTracker, validate_label_array, validate_labels
from repro.graph.csr import CSRGraph
from repro.graph.undirected import UndirectedGraph


def incremental_initial_assignment(
    graph: UndirectedGraph,
    previous_assignment: Mapping[int, int],
    num_partitions: int,
) -> dict[int, int]:
    """Build the initial labels for an incremental repartitioning.

    Parameters
    ----------
    graph:
        The *updated* graph (old vertices plus any new ones).
    previous_assignment:
        The last stable partitioning; may reference vertices that no longer
        exist (they are ignored).
    num_partitions:
        Number of partitions ``k``; unchanged by graph updates.

    Returns
    -------
    dict[int, int]
        A complete assignment for every vertex of ``graph``: previous
        labels are preserved, new vertices go to the least loaded partition
        (by weighted degree) at the moment they are placed.
    """
    validate_labels(previous_assignment.values(), num_partitions)
    weights = {v: graph.weighted_degree(v) for v in graph.vertices()}
    assignment: dict[int, int] = {}
    tracker = PartitionLoadTracker(num_partitions)
    new_vertices: list[int] = []
    for vertex in graph.vertices():
        label = previous_assignment.get(vertex)
        if label is None:
            new_vertices.append(vertex)
        else:
            assignment[vertex] = label
            tracker.add(label, weights[vertex])
    # Place the heaviest new vertices first so the greedy rule balances best.
    for vertex in sorted(new_vertices, key=lambda v: -weights[v]):
        label = tracker.least_loaded()
        assignment[vertex] = label
        tracker.add(label, weights[vertex])
    return assignment


def map_assignment_to_dense(
    csr: CSRGraph,
    assignment: Mapping[int, int],
    num_partitions: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Map an original-id assignment onto dense CSR vertex ids.

    Returns ``(labels, found)``: ``labels[dense]`` holds the previous
    label for vertices covered by ``assignment`` and ``-1`` elsewhere;
    ``found`` is the corresponding boolean mask.  Assignment entries for
    vertices that no longer exist in the graph are ignored, but all label
    values are validated (matching :func:`validate_labels` on the dict
    path).
    """
    count = len(assignment)
    keys = np.fromiter(assignment.keys(), dtype=np.int64, count=count)
    values = np.fromiter(assignment.values(), dtype=np.int64, count=count)
    validate_label_array(values, num_partitions)
    n = csr.num_vertices
    labels = np.full(n, -1, dtype=np.int64)
    found = np.zeros(n, dtype=bool)
    if count and n:
        order = np.argsort(keys, kind="stable")
        sorted_keys = keys[order]
        sorted_values = values[order]
        pos = np.minimum(np.searchsorted(sorted_keys, csr.original_ids), count - 1)
        found = sorted_keys[pos] == csr.original_ids
        labels[found] = sorted_values[pos[found]]
    return labels, found


def place_least_loaded(
    labels: np.ndarray,
    missing: np.ndarray,
    weighted_degrees: np.ndarray,
    num_partitions: int,
) -> None:
    """Greedily place unlabeled vertices on the least loaded partition.

    ``labels`` is updated in place where ``missing`` is set.  Heavier
    vertices are placed first (with dense-id order breaking ties between
    equal degrees), and ties between equally loaded partitions go to the
    lowest partition id — the dict-based initializer's rule, except that
    it considers equally heavy new vertices in graph insertion order
    rather than dense-id order.
    """
    new_idx = np.flatnonzero(missing)
    if new_idx.size == 0:
        return
    degrees_f = weighted_degrees.astype(np.float64)
    loads = np.bincount(
        labels[~missing], weights=degrees_f[~missing], minlength=num_partitions
    ).astype(np.float64)
    order = new_idx[np.argsort(-weighted_degrees[new_idx], kind="stable")]
    order_degrees = degrees_f[order]
    for position, vertex in enumerate(order.tolist()):
        label = int(np.argmin(loads))
        labels[vertex] = label
        loads[label] += order_degrees[position]


def incremental_initial_labels(
    csr: CSRGraph,
    previous_assignment: Mapping[int, int],
    num_partitions: int,
) -> np.ndarray:
    """Array-native :func:`incremental_initial_assignment` over a CSR graph.

    Returns a dense label array aligned with the CSR vertex order:
    vertices covered by ``previous_assignment`` keep their label, new
    vertices go to the least loaded partition (heaviest first).  Matches
    the dict-based path whenever the graph's iteration order is the
    sorted vertex id order (always true for ``csr.to_undirected()``
    round-trips); load sums are exact integer-valued floats, so
    accumulation order cannot introduce drift.
    """
    labels, found = map_assignment_to_dense(csr, previous_assignment, num_partitions)
    place_least_loaded(labels, ~found, csr.weighted_degrees, num_partitions)
    return labels


def affected_vertices(
    graph: UndirectedGraph, changed_edges: list[tuple[int, int, int]]
) -> set[int]:
    """Vertices adjacent to at least one changed edge.

    The paper discusses restricting migration restarts to these vertices as
    a cheaper (but lower quality) alternative; Spinner ultimately lets
    every vertex participate.  This helper supports the restricted
    strategy, which the ablation benchmark compares against.
    """
    affected: set[int] = set()
    for u, v, _weight in changed_edges:
        if u in graph:
            affected.add(u)
        if v in graph:
            affected.add(v)
    return affected
