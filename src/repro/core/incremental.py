"""Incremental repartitioning initialization (paper Section III-D).

When the graph changes, Spinner does not repartition from scratch: it
restarts label propagation from the previous assignment.  Vertices that
existed before keep their label; vertices that appear for the first time
are assigned to the *least loaded* partition so the balance constraint is
not violated before the first iteration.

This module produces that initial assignment; the iterative adaptation
itself is the normal Spinner run seeded with it.
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.core.state import PartitionLoadTracker, validate_labels
from repro.graph.undirected import UndirectedGraph


def incremental_initial_assignment(
    graph: UndirectedGraph,
    previous_assignment: Mapping[int, int],
    num_partitions: int,
) -> dict[int, int]:
    """Build the initial labels for an incremental repartitioning.

    Parameters
    ----------
    graph:
        The *updated* graph (old vertices plus any new ones).
    previous_assignment:
        The last stable partitioning; may reference vertices that no longer
        exist (they are ignored).
    num_partitions:
        Number of partitions ``k``; unchanged by graph updates.

    Returns
    -------
    dict[int, int]
        A complete assignment for every vertex of ``graph``: previous
        labels are preserved, new vertices go to the least loaded partition
        (by weighted degree) at the moment they are placed.
    """
    validate_labels(previous_assignment.values(), num_partitions)
    weights = {v: graph.weighted_degree(v) for v in graph.vertices()}
    assignment: dict[int, int] = {}
    tracker = PartitionLoadTracker(num_partitions)
    new_vertices: list[int] = []
    for vertex in graph.vertices():
        label = previous_assignment.get(vertex)
        if label is None:
            new_vertices.append(vertex)
        else:
            assignment[vertex] = label
            tracker.add(label, weights[vertex])
    # Place the heaviest new vertices first so the greedy rule balances best.
    for vertex in sorted(new_vertices, key=lambda v: -weights[v]):
        label = tracker.least_loaded()
        assignment[vertex] = label
        tracker.add(label, weights[vertex])
    return assignment


def affected_vertices(
    graph: UndirectedGraph, changed_edges: list[tuple[int, int, int]]
) -> set[int]:
    """Vertices adjacent to at least one changed edge.

    The paper discusses restricting migration restarts to these vertices as
    a cheaper (but lower quality) alternative; Spinner ultimately lets
    every vertex participate.  This helper supports the restricted
    strategy, which the ablation benchmark compares against.
    """
    affected: set[int] = set()
    for u, v, _weight in changed_edges:
        if u in graph:
            affected.add(u)
        if v in graph:
            affected.add(v)
    return affected
