"""Halting heuristic (paper Section III-C).

Spinner halts when the aggregate partitioning score has not improved by
more than a threshold ``epsilon`` for ``w`` consecutive iterations.  Both
Spinner implementations (Pregel and vectorized) feed their per-iteration
score into a :class:`HaltingTracker` and stop when it reports a steady
state.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class HaltingTracker:
    """Tracks score improvements and detects the steady state.

    Parameters
    ----------
    threshold:
        Minimum *relative* improvement over the best score seen so far that
        counts as progress (the paper's ``epsilon``).
    window:
        Number of consecutive non-improving iterations required to halt
        (the paper's ``w``).
    """

    threshold: float = 0.001
    window: int = 5
    _best_score: float | None = field(default=None, init=False)
    _stale_iterations: int = field(default=0, init=False)
    _history: list[float] = field(default_factory=list, init=False)

    @property
    def history(self) -> list[float]:
        """Scores observed so far, in order."""
        return list(self._history)

    @property
    def stale_iterations(self) -> int:
        """Consecutive iterations without significant improvement."""
        return self._stale_iterations

    def update(self, score: float) -> bool:
        """Record the score of one iteration.

        Returns ``True`` when the steady state has been reached, i.e. the
        score has failed to improve by more than ``threshold`` (relative to
        the best score's magnitude) for ``window`` consecutive iterations.
        """
        self._history.append(score)
        if self._best_score is None:
            self._best_score = score
            self._stale_iterations = 0
            return False
        scale = max(abs(self._best_score), 1e-12)
        improvement = (score - self._best_score) / scale
        if improvement > self.threshold:
            self._best_score = score
            self._stale_iterations = 0
        else:
            self._stale_iterations += 1
        return self._stale_iterations >= self.window

    def reset(self) -> None:
        """Forget all history (used when the graph or k changes)."""
        self._best_score = None
        self._stale_iterations = 0
        self._history.clear()
