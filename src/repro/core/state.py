"""Shared partitioning state helpers.

Small, well-tested pieces used by both Spinner implementations and by the
incremental / elastic initializers: label validation, load bookkeeping and
the least-loaded-partition rule for newly arrived vertices.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from dataclasses import dataclass, field

import numpy as np

from repro.errors import InvalidPartitionCountError, PartitioningError


def validate_labels(labels: Iterable[int], num_partitions: int) -> None:
    """Raise when any label lies outside ``[0, num_partitions)``."""
    if num_partitions <= 0:
        raise InvalidPartitionCountError(num_partitions, "must be positive")
    for label in labels:
        if not 0 <= label < num_partitions:
            raise PartitioningError(
                f"label {label} outside [0, {num_partitions})"
            )


def validate_label_array(labels: np.ndarray, num_partitions: int) -> None:
    """Array-native :func:`validate_labels` for the vectorized code paths.

    Reports the first offending label (in array order) with the same
    message as the scalar version.
    """
    if num_partitions <= 0:
        raise InvalidPartitionCountError(num_partitions, "must be positive")
    if labels.size:
        bad = (labels < 0) | (labels >= num_partitions)
        if bad.any():
            label = int(labels[np.argmax(bad)])
            raise PartitioningError(f"label {label} outside [0, {num_partitions})")


@dataclass
class PartitionLoadTracker:
    """Mutable per-partition load vector.

    Used by the incremental initializer (new vertices go to the least
    loaded partition, Section III-D) and by streaming baselines.
    """

    num_partitions: int
    loads: np.ndarray = field(init=False)

    def __post_init__(self) -> None:
        if self.num_partitions <= 0:
            raise InvalidPartitionCountError(self.num_partitions, "must be positive")
        self.loads = np.zeros(self.num_partitions, dtype=np.float64)

    @classmethod
    def from_assignment(
        cls,
        assignment: Mapping[int, int],
        num_partitions: int,
        weight_of: Mapping[int, int] | None = None,
    ) -> "PartitionLoadTracker":
        """Build a tracker from an existing assignment.

        ``weight_of`` maps vertices to their load contribution (typically
        the weighted degree); vertices missing from it contribute 1.
        """
        tracker = cls(num_partitions)
        for vertex, label in assignment.items():
            weight = 1.0 if weight_of is None else float(weight_of.get(vertex, 1))
            tracker.add(label, weight)
        return tracker

    def add(self, label: int, weight: float = 1.0) -> None:
        """Add ``weight`` to the load of ``label``."""
        if not 0 <= label < self.num_partitions:
            raise PartitioningError(f"label {label} outside [0, {self.num_partitions})")
        self.loads[label] += weight

    def remove(self, label: int, weight: float = 1.0) -> None:
        """Subtract ``weight`` from the load of ``label``."""
        if not 0 <= label < self.num_partitions:
            raise PartitioningError(f"label {label} outside [0, {self.num_partitions})")
        self.loads[label] -= weight

    def least_loaded(self) -> int:
        """Return the label with the smallest current load."""
        return int(np.argmin(self.loads))

    def most_loaded(self) -> int:
        """Return the label with the largest current load."""
        return int(np.argmax(self.loads))

    @property
    def total(self) -> float:
        """Sum of all loads."""
        return float(self.loads.sum())

    def normalized_max(self) -> float:
        """``rho`` of the current loads (1.0 when perfectly balanced)."""
        total = self.total
        if total == 0:
            return 1.0
        return float(self.loads.max() * self.num_partitions / total)
