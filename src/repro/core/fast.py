"""Vectorized Spinner implementation.

The Pregel implementation in :mod:`repro.core.spinner` is faithful to the
paper's superstep structure but — being pure Python over per-vertex
dictionaries — it is only practical for graphs up to a few hundred
thousand edges.  The evaluation's larger parameter sweeps therefore use
:class:`FastSpinner`, a NumPy implementation of the *identical*
algorithm:

* the same weighted undirected representation (eq. 3),
* the same score function with the balance penalty (eq. 8),
* the same candidate selection with ties kept on the current label,
* the same probabilistic migration dampening ``r(l) / m(l)`` (eq. 14), and
* the same halting heuristic on the aggregate score (Section III-C).

The only intentional difference is that it has no notion of workers, so
the per-worker asynchronous load refinement of Section IV-A4 does not
apply; this corresponds to the purely synchronous variant discussed in the
paper and only affects convergence speed, not the reached quality (the
ablation benchmark quantifies this).
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass, field

import numpy as np

from repro.core.config import SpinnerConfig
from repro.core.elastic import resize_assignment
from repro.core.halting import HaltingTracker
from repro.core.incremental import incremental_initial_assignment
from repro.core.program import IterationRecord
from repro.errors import InvalidPartitionCountError, PartitioningError
from repro.graph.conversion import ensure_undirected
from repro.graph.csr import CSRGraph
from repro.graph.digraph import DiGraph
from repro.graph.undirected import UndirectedGraph

GraphLike = DiGraph | UndirectedGraph | CSRGraph


@dataclass
class FastSpinnerResult:
    """Outcome of a :class:`FastSpinner` run.

    ``labels`` is indexed by dense vertex id; :meth:`to_assignment` maps it
    back to the original vertex identifiers.
    """

    labels: np.ndarray
    num_partitions: int
    iterations: int
    history: list[IterationRecord] = field(default_factory=list)
    phi: float = 0.0
    rho: float = 1.0
    halted_by: str = "steady_state"
    total_messages: int = 0
    original_ids: np.ndarray | None = None

    def to_assignment(self) -> dict[int, int]:
        """Return the ``{original vertex id: partition}`` mapping."""
        ids = (
            self.original_ids
            if self.original_ids is not None
            else np.arange(self.labels.shape[0])
        )
        return {int(vertex): int(label) for vertex, label in zip(ids, self.labels)}


class FastSpinner:
    """Array-based Spinner for large parameter sweeps."""

    name = "spinner-fast"

    def __init__(self, config: SpinnerConfig | None = None) -> None:
        self.config = config if config is not None else SpinnerConfig()

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def partition(
        self,
        graph: GraphLike,
        num_partitions: int,
        initial_labels: np.ndarray | Mapping[int, int] | None = None,
        track_history: bool = True,
    ) -> FastSpinnerResult:
        """Partition ``graph`` into ``num_partitions`` parts.

        ``initial_labels`` may be a dense NumPy array (aligned with the CSR
        vertex order) or a mapping keyed by original vertex ids; when
        omitted every vertex starts with a uniformly random label.
        """
        if num_partitions <= 0:
            raise InvalidPartitionCountError(num_partitions, "must be positive")
        csr = self._to_csr(graph)
        labels = self._resolve_initial_labels(csr, num_partitions, initial_labels)
        return self._run(csr, num_partitions, labels, track_history)

    def adapt_to_graph_changes(
        self,
        graph: GraphLike,
        previous_assignment: Mapping[int, int],
        num_partitions: int,
        track_history: bool = True,
    ) -> FastSpinnerResult:
        """Incremental repartitioning after graph changes (Section III-D)."""
        csr = self._to_csr(graph)
        undirected = csr.to_undirected()
        initial = incremental_initial_assignment(
            undirected, previous_assignment, num_partitions
        )
        return self.partition(csr, num_partitions, initial_labels=initial,
                              track_history=track_history)

    def adapt_to_partition_change(
        self,
        graph: GraphLike,
        previous_assignment: Mapping[int, int],
        old_num_partitions: int,
        new_num_partitions: int,
        track_history: bool = True,
    ) -> FastSpinnerResult:
        """Elastic repartitioning after a change in ``k`` (Section III-E)."""
        resized = resize_assignment(
            previous_assignment,
            old_num_partitions,
            new_num_partitions,
            seed=self.config.seed,
        )
        csr = self._to_csr(graph)
        undirected = csr.to_undirected()
        initial = incremental_initial_assignment(undirected, resized, new_num_partitions)
        return self.partition(
            csr, new_num_partitions, initial_labels=initial, track_history=track_history
        )

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _to_csr(self, graph: GraphLike) -> CSRGraph:
        if isinstance(graph, CSRGraph):
            return graph
        undirected = ensure_undirected(graph, self.config.direction_aware)
        return CSRGraph.from_undirected(undirected)

    def _resolve_initial_labels(
        self,
        csr: CSRGraph,
        num_partitions: int,
        initial_labels: np.ndarray | Mapping[int, int] | None,
    ) -> np.ndarray:
        n = csr.num_vertices
        if initial_labels is None:
            rng = np.random.default_rng(self.config.seed)
            return rng.integers(num_partitions, size=n).astype(np.int64)
        if isinstance(initial_labels, Mapping):
            labels = np.empty(n, dtype=np.int64)
            try:
                for dense, original in enumerate(csr.original_ids):
                    labels[dense] = initial_labels[int(original)]
            except KeyError as exc:
                raise PartitioningError(
                    f"initial labels miss vertex {exc.args[0]!r}"
                ) from None
        else:
            labels = np.asarray(initial_labels, dtype=np.int64).copy()
            if labels.shape[0] != n:
                raise PartitioningError(
                    f"initial label array has {labels.shape[0]} entries for {n} vertices"
                )
        if labels.size and (labels.min() < 0 or labels.max() >= num_partitions):
            raise PartitioningError("initial labels outside [0, num_partitions)")
        return labels

    def _run(
        self,
        csr: CSRGraph,
        num_partitions: int,
        labels: np.ndarray,
        track_history: bool,
    ) -> FastSpinnerResult:
        config = self.config
        rng = np.random.default_rng(config.seed)
        n = csr.num_vertices
        sources, targets, weights = csr.edge_array()
        weights_f = weights.astype(np.float64)
        degrees = csr.weighted_degrees.astype(np.float64)
        safe_degrees = np.where(degrees > 0, degrees, 1.0)
        total_load = float(degrees.sum())
        capacity = config.capacity(total_load, num_partitions) if total_load else 1.0
        vertex_range = np.arange(n)

        tracker = HaltingTracker(threshold=config.halt_threshold, window=config.halt_window)
        history: list[IterationRecord] = []
        halted_by = "max_iterations"
        # Initialization messages: every vertex announces its label once.
        total_messages = int(csr.indices.shape[0])

        iterations_run = 0
        for iteration in range(config.max_iterations):
            iterations_run = iteration + 1

            # --- ComputeScores -----------------------------------------
            label_weight = np.zeros((n, num_partitions), dtype=np.float64)
            np.add.at(label_weight, (sources, labels[targets]), weights_f)

            loads = np.bincount(
                labels, weights=degrees, minlength=num_partitions
            ).astype(np.float64)
            if config.balance_penalty and capacity > 0:
                penalties = loads / capacity
            else:
                penalties = np.zeros(num_partitions, dtype=np.float64)

            scores = label_weight / safe_degrees[:, None] - penalties[None, :]
            current_scores = scores[vertex_range, labels]

            if config.prefer_current_label:
                # Bias the current label so exact ties keep it.
                biased = scores.copy()
                biased[vertex_range, labels] += 1e-9
                best = np.argmax(biased, axis=1)
            else:
                best = np.argmax(scores, axis=1)
            best_scores = scores[vertex_range, best]
            is_candidate = (best != labels) & (best_scores > current_scores + 1e-12)

            # --- ComputeMigrations --------------------------------------
            if is_candidate.any():
                candidate_load = np.bincount(
                    best[is_candidate],
                    weights=degrees[is_candidate],
                    minlength=num_partitions,
                ).astype(np.float64)
                remaining = capacity - loads
                if config.probabilistic_migration:
                    with np.errstate(divide="ignore", invalid="ignore"):
                        probabilities = np.where(
                            candidate_load > 0,
                            np.clip(remaining, 0.0, None) / candidate_load,
                            1.0,
                        )
                    probabilities = np.clip(probabilities, 0.0, 1.0)
                else:
                    probabilities = np.ones(num_partitions, dtype=np.float64)
                draws = rng.random(n)
                migrate = is_candidate & (draws < probabilities[best])
            else:
                migrate = np.zeros(n, dtype=bool)

            migrations = int(migrate.sum())
            if migrations:
                labels[migrate] = best[migrate]
                # Each migrating vertex notifies its neighbours.
                total_messages += int(
                    (csr.indptr[1:] - csr.indptr[:-1])[migrate].sum()
                )

            # --- bookkeeping & halting ----------------------------------
            score_value = float(current_scores.sum())
            if track_history:
                local_weight = float(
                    weights_f[labels[sources] == labels[targets]].sum()
                )
                phi = local_weight / total_load if total_load else 1.0
                post_loads = np.bincount(
                    labels, weights=degrees, minlength=num_partitions
                )
                ideal = total_load / num_partitions
                rho = float(post_loads.max() / ideal) if total_load else 1.0
                history.append(
                    IterationRecord(
                        iteration=iteration,
                        phi=phi,
                        rho=rho,
                        score=score_value,
                        migrations=migrations,
                    )
                )

            if tracker.update(score_value):
                halted_by = "steady_state"
                break

        # Final quality metrics.
        local_weight = float(weights_f[labels[sources] == labels[targets]].sum())
        phi = local_weight / total_load if total_load else 1.0
        final_loads = np.bincount(labels, weights=degrees, minlength=num_partitions)
        ideal = total_load / num_partitions
        rho = float(final_loads.max() / ideal) if total_load else 1.0

        return FastSpinnerResult(
            labels=labels,
            num_partitions=num_partitions,
            iterations=iterations_run,
            history=history,
            phi=phi,
            rho=rho,
            halted_by=halted_by,
            total_messages=total_messages,
            original_ids=csr.original_ids,
        )
