"""Vectorized Spinner implementation.

The Pregel implementation in :mod:`repro.core.spinner` is faithful to the
paper's superstep structure but — being pure Python over per-vertex
dictionaries — it is only practical for graphs up to a few hundred
thousand edges.  The evaluation's larger parameter sweeps therefore use
:class:`FastSpinner`, a NumPy implementation of the *identical*
algorithm:

* the same weighted undirected representation (eq. 3),
* the same score function with the balance penalty (eq. 8),
* the same candidate selection with ties kept on the current label,
* the same probabilistic migration dampening ``r(l) / m(l)`` (eq. 14), and
* the same halting heuristic on the aggregate score (Section III-C).

The only intentional difference is that it has no notion of workers, so
the per-worker asynchronous load refinement of Section IV-A4 does not
apply; this corresponds to the purely synchronous variant discussed in the
paper and only affects convergence speed, not the reached quality (the
ablation benchmark quantifies this).

Performance architecture
------------------------

:class:`FastSpinner` ships two kernels selected by
``SpinnerConfig.kernel``; both produce byte-identical labels for the same
seed.

``"dense"`` (the reference kernel)
    Rebuilds the per-vertex label-weight histogram ``w(v, l)`` from
    scratch every iteration with an unbuffered ``np.add.at`` scatter over
    all ``2m`` half-edges — simple, and kept as the ground truth for the
    equivalence suite and the speed benchmark
    (``benchmarks/test_kernel_speed.py``).

``"frontier"`` (the default, incremental kernel)
    Exploits the paper's observation that after an iteration only the
    vertices adjacent to *migrated* vertices see their neighbourhood
    change.  The kernel keeps two matrices alive across iterations:

    * ``label_weight`` — the ``(n, k)`` histogram ``w(v, l)``, stored as
      ``int32`` when the weighted degrees allow it (histogram entries are
      bounded by the weighted degree), halving the memory traffic of the
      scoring pass, and
    * ``q = label_weight / degree`` — a divide cache of the
      degree-normalized scores before the balance penalty.

    After each migration step the adjacency lists of the migrants (the
    *frontier*) are gathered in one shot, and exactly the ``2 x volume``
    histogram entries that changed — ``(neighbour, old_label)`` and
    ``(neighbour, new_label)`` — are updated with one scatter-add, so the
    per-iteration update cost is proportional to the frontier volume, not
    to ``m``.  Because Spinner's capacity constraint (eq. 5) bounds the
    load that may migrate per iteration, the frontier is a small fraction
    of the graph throughout the run — and it collapses to near zero in
    the converged and incremental-repartitioning regimes (Section III-D),
    which is where the kernel shines.  The full pass (first iteration, or
    whenever the frontier volume approaches ``2m``) uses a single
    composite-key reduction instead of ``np.add.at``::

        np.bincount(source * k + labels[target], weights=w, minlength=n * k)

    The balance penalty changes globally every iteration, so candidate
    selection still scans all ``n`` rows; that scan streams ``q`` once in
    L2-sized row blocks (the kernel is memory-bandwidth bound, so the
    penalty subtraction, tie-biased ``argmax`` and candidate gathers all
    run on a hot ~1 MiB buffer).  Rows of ``q`` are re-divided only when
    their histogram row changed.

    Byte-identical labels fall out of exactness, not luck: every
    histogram entry is an exact small integer (sums of integer edge
    weights), ``int -> float64`` conversion and elementwise division are
    deterministic, and the blocked traversal performs the same scalar
    operations as the dense kernel's full-matrix expressions — so both
    kernels see bit-equal scores and make identical decisions from the
    identical RNG stream.
"""

from __future__ import annotations

import shutil
import tempfile
from collections.abc import Mapping
from dataclasses import dataclass, field

import numpy as np

from repro.core.config import SpinnerConfig
from repro.core.elastic import resize_labels
from repro.core.halting import HaltingTracker
from repro.core.incremental import (
    incremental_initial_labels,
    map_assignment_to_dense,
    place_least_loaded,
)
from repro.core.program import IterationRecord
from repro.errors import InvalidPartitionCountError, PartitioningError
from repro.graph.conversion import to_weighted_csr
from repro.graph.csr import CSRGraph
from repro.graph.digraph import DiGraph
from repro.graph.undirected import UndirectedGraph

GraphLike = DiGraph | UndirectedGraph | CSRGraph


def _accumulate_histogram(
    csr: CSRGraph,
    labels: np.ndarray,
    num_partitions: int,
    chunk_half_edges: int,
    out: np.ndarray,
) -> np.ndarray:
    """Accumulate the ``(n, k)`` label-weight histogram chunk by chunk.

    Bit-exact with the single-pass builds (``np.add.at`` scatter or the
    composite-key ``bincount``) for every chunk size: each histogram cell
    is a sum of integer edge weights, every partial sum is an exact
    integer far below ``2**53``, and integer-valued ``float64`` addition
    (and the cast to an integer ``out`` dtype) is exact — so the
    accumulation order cannot change the result.  Peak extra memory is
    one chunk plus one chunk-range histogram slab.
    """
    k = num_partitions
    for v_lo, v_hi, src, tgt, w in csr.iter_edge_chunks(chunk_half_edges):
        hist = np.bincount(
            (src - v_lo) * k + labels[tgt],
            weights=w.astype(np.float64),
            minlength=(v_hi - v_lo) * k,
        ).reshape(v_hi - v_lo, k)
        out[v_lo:v_hi] += hist.astype(out.dtype, copy=False)
    return out


def _chunked_local_weight(
    csr: CSRGraph, labels: np.ndarray, chunk_half_edges: int
) -> float:
    """Sum the weights of intra-partition half-edges, one chunk at a time.

    Every chunk contribution is an exact integer, so the total equals the
    single-pass masked sum bit-for-bit regardless of chunk size.
    """
    total = 0.0
    for _, _, src, tgt, w in csr.iter_edge_chunks(chunk_half_edges):
        total += float(w[labels[src] == labels[tgt]].sum())
    return total


@dataclass
class FastSpinnerResult:
    """Outcome of a :class:`FastSpinner` run.

    ``labels`` is indexed by dense vertex id; :meth:`to_assignment` maps it
    back to the original vertex identifiers.
    """

    labels: np.ndarray
    num_partitions: int
    iterations: int
    history: list[IterationRecord] = field(default_factory=list)
    phi: float = 0.0
    rho: float = 1.0
    halted_by: str = "steady_state"
    total_messages: int = 0
    original_ids: np.ndarray | None = None

    def to_assignment(self) -> dict[int, int]:
        """Return the ``{original vertex id: partition}`` mapping."""
        ids = (
            self.original_ids
            if self.original_ids is not None
            else np.arange(self.labels.shape[0])
        )
        return {int(vertex): int(label) for vertex, label in zip(ids, self.labels)}


class FastSpinner:
    """Array-based Spinner for large parameter sweeps."""

    name = "spinner-fast"

    def __init__(self, config: SpinnerConfig | None = None) -> None:
        self.config = config if config is not None else SpinnerConfig()

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def partition(
        self,
        graph: GraphLike,
        num_partitions: int,
        initial_labels: np.ndarray | Mapping[int, int] | None = None,
        track_history: bool = True,
    ) -> FastSpinnerResult:
        """Partition ``graph`` into ``num_partitions`` parts.

        ``initial_labels`` may be a dense NumPy array (aligned with the CSR
        vertex order) or a mapping keyed by original vertex ids; when
        omitted every vertex starts with a uniformly random label.
        """
        if num_partitions <= 0:
            raise InvalidPartitionCountError(num_partitions, "must be positive")
        csr = self._to_csr(graph)
        if self.config.storage == "mmap" and csr.storage != "mmap":
            return self._partition_spilled(
                csr, num_partitions, initial_labels, track_history
            )
        labels = self._resolve_initial_labels(csr, num_partitions, initial_labels)
        return self._run(csr, num_partitions, labels, track_history)

    def _partition_spilled(
        self,
        csr: CSRGraph,
        num_partitions: int,
        initial_labels: np.ndarray | Mapping[int, int] | None,
        track_history: bool,
    ) -> FastSpinnerResult:
        """Spill an in-RAM graph to an on-disk store and run out-of-core.

        Used when ``config.storage == "mmap"`` but the input is not
        already an opened store: the CSR arrays are written to
        ``config.storage_dir`` (a temporary directory when unset, removed
        afterwards) and the kernels then stream from the mapping.  Graphs
        that are already :class:`~repro.graph.mmap_store.MmapCSRGraph`
        skip this and stream directly.
        """
        from repro.graph.mmap_store import open_store, save_csr

        directory = self.config.storage_dir
        cleanup = directory is None
        if directory is None:
            directory = tempfile.mkdtemp(prefix="spinner-store-")
        try:
            save_csr(csr, directory, self._storage_chunk())
            with open_store(directory) as store:
                labels = self._resolve_initial_labels(
                    store, num_partitions, initial_labels
                )
                return self._run(store, num_partitions, labels, track_history)
        finally:
            if cleanup:
                shutil.rmtree(directory, ignore_errors=True)

    def _storage_chunk(self) -> int:
        """Half-edges per streamed chunk for the out-of-core kernels."""
        if self.config.storage_chunk is not None:
            return self.config.storage_chunk
        from repro.graph.mmap_store import DEFAULT_STORAGE_CHUNK

        return DEFAULT_STORAGE_CHUNK

    def adapt_to_graph_changes(
        self,
        graph: GraphLike,
        previous_assignment: Mapping[int, int],
        num_partitions: int,
        track_history: bool = True,
    ) -> FastSpinnerResult:
        """Incremental repartitioning after graph changes (Section III-D).

        The previous assignment is mapped straight onto the CSR vertex
        order (no dictionary round-trip); vertices new to the graph go to
        the least loaded partition before label propagation restarts.
        """
        csr = self._to_csr(graph)
        initial = incremental_initial_labels(csr, previous_assignment, num_partitions)
        return self.partition(csr, num_partitions, initial_labels=initial,
                              track_history=track_history)

    def adapt_to_partition_change(
        self,
        graph: GraphLike,
        previous_assignment: Mapping[int, int],
        old_num_partitions: int,
        new_num_partitions: int,
        track_history: bool = True,
    ) -> FastSpinnerResult:
        """Elastic repartitioning after a change in ``k`` (Section III-E).

        The previous labels are resized with the vectorized eq. (11)
        draws; vertices missing from the previous assignment are placed on
        the least loaded partition afterwards.
        """
        csr = self._to_csr(graph)
        labels, found = map_assignment_to_dense(
            csr, previous_assignment, old_num_partitions
        )
        if found.any():
            labels[found] = resize_labels(
                labels[found],
                old_num_partitions,
                new_num_partitions,
                seed=self.config.seed,
            )
        place_least_loaded(labels, ~found, csr.weighted_degrees, new_num_partitions)
        return self.partition(
            csr, new_num_partitions, initial_labels=labels, track_history=track_history
        )

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _to_csr(self, graph: GraphLike) -> CSRGraph:
        if isinstance(graph, CSRGraph):
            return graph
        if isinstance(graph, DiGraph):
            return to_weighted_csr(graph, self.config.direction_aware)
        return CSRGraph.from_undirected(graph)

    def _resolve_initial_labels(
        self,
        csr: CSRGraph,
        num_partitions: int,
        initial_labels: np.ndarray | Mapping[int, int] | None,
    ) -> np.ndarray:
        n = csr.num_vertices
        if initial_labels is None:
            rng = np.random.default_rng(self.config.seed)
            return rng.integers(num_partitions, size=n).astype(np.int64)
        if isinstance(initial_labels, Mapping):
            labels, found = map_assignment_to_dense(csr, initial_labels, num_partitions)
            if not found.all():
                vertex = int(csr.original_ids[np.argmax(~found)])
                raise PartitioningError(f"initial labels miss vertex {vertex!r}")
        else:
            labels = np.asarray(initial_labels, dtype=np.int64).copy()
            if labels.shape[0] != n:
                raise PartitioningError(
                    f"initial label array has {labels.shape[0]} entries for {n} vertices"
                )
        if labels.size and (labels.min() < 0 or labels.max() >= num_partitions):
            raise PartitioningError("initial labels outside [0, num_partitions)")
        return labels

    def _run(
        self,
        csr: CSRGraph,
        num_partitions: int,
        labels: np.ndarray,
        track_history: bool,
    ) -> FastSpinnerResult:
        if self.config.kernel == "dense":
            return self._run_dense(csr, num_partitions, labels, track_history)
        return self._run_frontier(csr, num_partitions, labels, track_history)

    def _run_dense(
        self,
        csr: CSRGraph,
        num_partitions: int,
        labels: np.ndarray,
        track_history: bool,
    ) -> FastSpinnerResult:
        """Reference kernel: full ``np.add.at`` histogram rebuild per iteration.

        On the mmap tier the full-edge expressions are replaced by their
        chunked twins (:func:`_accumulate_histogram` /
        :func:`_chunked_local_weight`), which are exact for every chunk
        size, so the out-of-core run returns bit-identical results.
        """
        config = self.config
        rng = np.random.default_rng(config.seed)
        n = csr.num_vertices
        stream = csr.storage == "mmap"
        if stream:
            chunk = self._storage_chunk()
            sources = targets = weights_f = None
        else:
            sources, targets, weights = csr.edge_array()
            weights_f = weights.astype(np.float64)
        degrees = csr.weighted_degrees_f
        safe_degrees = np.where(degrees > 0, degrees, 1.0)
        total_load = float(degrees.sum())
        capacity = config.capacity(total_load, num_partitions) if total_load else 1.0
        vertex_range = np.arange(n)

        tracker = HaltingTracker(threshold=config.halt_threshold, window=config.halt_window)
        history: list[IterationRecord] = []
        halted_by = "max_iterations"
        # Initialization messages: every vertex announces its label once.
        total_messages = int(csr.indices.shape[0])

        if stream:
            def local_weight_fn(current_labels: np.ndarray) -> float:
                return _chunked_local_weight(csr, current_labels, chunk)
        else:
            def local_weight_fn(current_labels: np.ndarray) -> float:
                mask = current_labels[sources] == current_labels[targets]
                return float(weights_f[mask].sum())

        iterations_run = 0
        for iteration in range(config.max_iterations):
            iterations_run = iteration + 1

            # --- ComputeScores -----------------------------------------
            label_weight = np.zeros((n, num_partitions), dtype=np.float64)
            if stream:
                _accumulate_histogram(csr, labels, num_partitions, chunk, label_weight)
            else:
                np.add.at(label_weight, (sources, labels[targets]), weights_f)

            loads = np.bincount(
                labels, weights=degrees, minlength=num_partitions
            ).astype(np.float64)
            if config.balance_penalty and capacity > 0:
                penalties = loads / capacity
            else:
                penalties = np.zeros(num_partitions, dtype=np.float64)

            scores = label_weight / safe_degrees[:, None] - penalties[None, :]
            current_scores = scores[vertex_range, labels]

            if config.prefer_current_label:
                # Bias the current label so exact ties keep it.
                biased = scores.copy()
                biased[vertex_range, labels] += 1e-9
                best = np.argmax(biased, axis=1)
            else:
                best = np.argmax(scores, axis=1)
            best_scores = scores[vertex_range, best]
            is_candidate = (best != labels) & (best_scores > current_scores + 1e-12)

            # --- ComputeMigrations --------------------------------------
            if is_candidate.any():
                candidate_load = np.bincount(
                    best[is_candidate],
                    weights=degrees[is_candidate],
                    minlength=num_partitions,
                ).astype(np.float64)
                remaining = capacity - loads
                if config.probabilistic_migration:
                    with np.errstate(divide="ignore", invalid="ignore"):
                        probabilities = np.where(
                            candidate_load > 0,
                            np.clip(remaining, 0.0, None) / candidate_load,
                            1.0,
                        )
                    probabilities = np.clip(probabilities, 0.0, 1.0)
                else:
                    probabilities = np.ones(num_partitions, dtype=np.float64)
                draws = rng.random(n)
                migrate = is_candidate & (draws < probabilities[best])
            else:
                migrate = np.zeros(n, dtype=bool)

            migrations = int(migrate.sum())
            if migrations:
                labels[migrate] = best[migrate]
                # Each migrating vertex notifies its neighbours.
                total_messages += int(
                    (csr.indptr[1:] - csr.indptr[:-1])[migrate].sum()
                )

            # --- bookkeeping & halting ----------------------------------
            score_value = float(current_scores.sum())
            if track_history:
                local_weight = local_weight_fn(labels)
                phi = local_weight / total_load if total_load else 1.0
                post_loads = np.bincount(
                    labels, weights=degrees, minlength=num_partitions
                )
                ideal = total_load / num_partitions
                rho = float(post_loads.max() / ideal) if total_load else 1.0
                history.append(
                    IterationRecord(
                        iteration=iteration,
                        phi=phi,
                        rho=rho,
                        score=score_value,
                        migrations=migrations,
                    )
                )

            if tracker.update(score_value):
                halted_by = "steady_state"
                break

        return self._finalize(
            csr, num_partitions, labels, degrees, total_load, iterations_run,
            history, halted_by, total_messages, local_weight_fn(labels),
        )

    def _run_frontier(
        self,
        csr: CSRGraph,
        num_partitions: int,
        labels: np.ndarray,
        track_history: bool,
    ) -> FastSpinnerResult:
        """Incremental kernel: frontier-sized delta updates between full passes.

        See the module docstring ("Performance architecture") for the
        invariants; every arithmetic step mirrors :meth:`_run_dense`
        bit-for-bit, so both kernels return identical results for the
        same seed.  Scoring streams the histogram once per iteration in
        L2-sized row blocks instead of materializing the full
        ``(n, k)`` score matrix — this kernel is memory-bandwidth bound,
        and the blocked pass keeps the divide/penalty/argmax traffic in
        cache.
        """
        config = self.config
        rng = np.random.default_rng(config.seed)
        n = csr.num_vertices
        k = num_partitions
        indptr = csr.indptr
        half_edges = int(indptr[-1])
        stream = csr.storage == "mmap"
        if stream:
            # Out-of-core: never materialize a full-edge array.  The full
            # pass streams chunks, the delta path gathers only the
            # frontier's half-edges from the mapping (and releases the
            # touched pages), and phi sums chunk-wise — all exact.
            chunk = self._storage_chunk()
            sources = targets = weights_f = None
        else:
            sources, targets, weights = csr.edge_array()
            weights_f = weights.astype(np.float64)
            source_keys = sources * k
        degrees = csr.weighted_degrees_f
        safe_degrees = np.where(degrees > 0, degrees, 1.0)
        total_load = float(degrees.sum())
        capacity = config.capacity(total_load, k) if total_load else 1.0
        vertex_degrees = np.diff(indptr)

        tracker = HaltingTracker(threshold=config.halt_threshold, window=config.halt_window)
        history: list[IterationRecord] = []
        halted_by = "max_iterations"
        total_messages = half_edges

        # Histogram entries are bounded by the weighted degree, so they
        # normally fit int32 — half the memory traffic of float64 on the
        # bandwidth-bound scoring pass, while int -> float64 conversion
        # stays exact (so scores match the dense kernel bit-for-bit).
        max_degree = int(csr.weighted_degrees.max()) if n else 0
        hist_dtype = np.int32 if max_degree < np.iinfo(np.int32).max else np.float64
        weights_h = None if stream else weights.astype(hist_dtype)

        if stream:
            def local_weight_fn(current_labels: np.ndarray) -> float:
                return _chunked_local_weight(csr, current_labels, chunk)
        else:
            def local_weight_fn(current_labels: np.ndarray) -> float:
                mask = current_labels[sources] == current_labels[targets]
                return float(weights_f[mask].sum())

        # Persistent kernel state (see module docstring).
        label_weight: np.ndarray | None = None  # (n, k) histogram
        q = np.empty((n, k), dtype=np.float64)  # divide cache: histogram / degree
        # A delta pays for two composite keys per frontier half-edge; fall
        # back to the single full-pass bincount before that exceeds 2m keys.
        rebuild_volume = max(half_edges // 2, 1)
        # (migrant ids, their pre-migration labels) awaiting folding in.
        pending: tuple[np.ndarray, np.ndarray] | None = None

        # Blocked scoring state: ~1 MiB score buffer so each block stays
        # resident in L2 across divide / penalty / bias / argmax.
        block_rows = max(1, min(n, 131072 // max(k, 1)))
        block_scores = np.empty((block_rows, k), dtype=np.float64)
        block_range = np.arange(block_rows)
        best = np.empty(n, dtype=np.int64)
        best_scores = np.empty(n, dtype=np.float64)
        current_scores = np.empty(n, dtype=np.float64)

        iterations_run = 0
        for iteration in range(config.max_iterations):
            iterations_run = iteration + 1

            # --- maintain the histogram and its divide cache -----------
            refresh_full = False
            if label_weight is None:
                # Full pass: composite-key reduction over all half-edges.
                if stream:
                    label_weight = np.zeros((n, k), dtype=hist_dtype)
                    _accumulate_histogram(csr, labels, k, chunk, label_weight)
                else:
                    label_weight = (
                        np.bincount(
                            source_keys + labels[targets],
                            weights=weights_f,
                            minlength=n * k,
                        )
                        .astype(hist_dtype, copy=False)
                        .reshape(n, k)
                    )
                refresh_full = True
            elif pending is not None:
                migrants, old_labels = pending
                frontier = vertex_degrees[migrants]
                volume = int(frontier.sum())
                if volume:
                    touched = np.zeros(n, dtype=bool)
                    if stream:
                        # Split the migrants so each block's frontier is at
                        # most ~chunk half-edges: the delta temporaries stay
                        # O(chunk) instead of O(frontier).  The scatter-adds
                        # are exact integer sums, so the block order cannot
                        # change the histogram.
                        cum = np.cumsum(frontier)
                        bounds = [0]
                        while bounds[-1] < migrants.shape[0]:
                            a = bounds[-1]
                            base = int(cum[a - 1]) if a else 0
                            b = int(np.searchsorted(cum, base + chunk, side="right"))
                            bounds.append(max(b, a + 1))
                    else:
                        bounds = [0, migrants.shape[0]]
                    for a, b in zip(bounds[:-1], bounds[1:]):
                        block_migrants = migrants[a:b]
                        block_frontier = frontier[a:b]
                        offsets = np.cumsum(block_frontier) - block_frontier
                        positions = np.arange(
                            int(block_frontier.sum()), dtype=np.int64
                        ) + np.repeat(indptr[block_migrants] - offsets, block_frontier)
                        if stream:
                            # Gather only the block's half-edges off the
                            # mapping (fancy indexing copies into RAM), then
                            # drop the pages the gather touched.
                            neighbours = np.asarray(csr.indices[positions])
                            moved_weights = np.asarray(csr.weights[positions]).astype(
                                hist_dtype
                            )
                            csr.release_pages()
                        else:
                            neighbours = targets[positions]
                            moved_weights = weights_h[positions]
                        neighbour_keys = neighbours * k
                        # Scatter-add only the 2 * volume histogram entries
                        # that actually change: (neighbour, old) loses the
                        # edge weight, (neighbour, new) gains it.  Unbuffered
                        # np.add.at is slow per element but the element count
                        # here is the frontier volume, not m.
                        np.add.at(
                            label_weight.reshape(-1),
                            np.concatenate(
                                [
                                    neighbour_keys
                                    + np.repeat(old_labels[a:b], block_frontier),
                                    neighbour_keys
                                    + np.repeat(labels[block_migrants], block_frontier),
                                ]
                            ),
                            np.concatenate([-moved_weights, moved_weights]),
                        )
                        touched[neighbours] = True
                    # Refresh the divide cache for the touched rows only;
                    # if most rows changed, a streaming per-block refresh
                    # is cheaper than the scattered row update.
                    rows = np.flatnonzero(touched)
                    if rows.shape[0] > n // 4:
                        refresh_full = True
                    else:
                        q[rows] = label_weight[rows] / safe_degrees[rows, None]
            pending = None

            # --- ComputeScores (blocked) -------------------------------
            loads = np.bincount(labels, weights=degrees, minlength=k).astype(np.float64)
            if config.balance_penalty and capacity > 0:
                penalties = loads / capacity
            else:
                penalties = np.zeros(k, dtype=np.float64)

            for start in range(0, n, block_rows):
                stop = min(start + block_rows, n)
                rows_in_block = stop - start
                scores = block_scores[:rows_in_block]
                if refresh_full:
                    np.divide(
                        label_weight[start:stop],
                        safe_degrees[start:stop, None],
                        out=q[start:stop],
                    )
                np.subtract(q[start:stop], penalties[None, :], out=scores)
                block_index = block_range[:rows_in_block]
                block_labels = labels[start:stop]
                current = scores[block_index, block_labels]
                current_scores[start:stop] = current
                block_best = np.argmax(scores, axis=1)
                if config.prefer_current_label:
                    # Branchless equivalent of biasing the current label by
                    # 1e-9 before the argmax: the current label wins when
                    # its biased score beats the row maximum, and on an
                    # exact biased tie the smaller index wins (argmax
                    # takes the first maximum).
                    row_max = scores[block_index, block_best]
                    biased_current = current + 1e-9
                    block_best = np.where(
                        biased_current > row_max,
                        block_labels,
                        np.where(
                            biased_current == row_max,
                            np.minimum(block_best, block_labels),
                            block_best,
                        ),
                    )
                best[start:stop] = block_best
                best_scores[start:stop] = scores[block_index, block_best]

            is_candidate = (best != labels) & (best_scores > current_scores + 1e-12)

            # --- ComputeMigrations --------------------------------------
            if is_candidate.any():
                candidate_load = np.bincount(
                    best[is_candidate], weights=degrees[is_candidate], minlength=k
                ).astype(np.float64)
                remaining = capacity - loads
                if config.probabilistic_migration:
                    with np.errstate(divide="ignore", invalid="ignore"):
                        probabilities = np.where(
                            candidate_load > 0,
                            np.clip(remaining, 0.0, None) / candidate_load,
                            1.0,
                        )
                    probabilities = np.clip(probabilities, 0.0, 1.0)
                else:
                    probabilities = np.ones(k, dtype=np.float64)
                draws = rng.random(n)
                migrate = is_candidate & (draws < probabilities[best])
            else:
                migrate = np.zeros(n, dtype=bool)

            migrations = int(migrate.sum())
            if migrations:
                migrants = np.flatnonzero(migrate)
                old_labels = labels[migrants].copy()
                labels[migrants] = best[migrants]
                frontier_volume = int(vertex_degrees[migrants].sum())
                total_messages += frontier_volume
                if 2 * frontier_volume >= rebuild_volume:
                    label_weight = None  # next iteration does a full pass
                else:
                    pending = (migrants, old_labels)

            # --- bookkeeping & halting ----------------------------------
            score_value = float(current_scores.sum())
            if track_history:
                local_weight = local_weight_fn(labels)
                phi = local_weight / total_load if total_load else 1.0
                post_loads = np.bincount(labels, weights=degrees, minlength=k)
                ideal = total_load / k
                rho = float(post_loads.max() / ideal) if total_load else 1.0
                history.append(
                    IterationRecord(
                        iteration=iteration,
                        phi=phi,
                        rho=rho,
                        score=score_value,
                        migrations=migrations,
                    )
                )

            if tracker.update(score_value):
                halted_by = "steady_state"
                break

        return self._finalize(
            csr, num_partitions, labels, degrees, total_load, iterations_run,
            history, halted_by, total_messages, local_weight_fn(labels),
        )

    def _finalize(
        self,
        csr: CSRGraph,
        num_partitions: int,
        labels: np.ndarray,
        degrees: np.ndarray,
        total_load: float,
        iterations_run: int,
        history: list[IterationRecord],
        halted_by: str,
        total_messages: int,
        local_weight: float,
    ) -> FastSpinnerResult:
        """Final quality metrics, shared by both kernels."""
        phi = local_weight / total_load if total_load else 1.0
        final_loads = np.bincount(labels, weights=degrees, minlength=num_partitions)
        ideal = total_load / num_partitions
        rho = float(final_loads.max() / ideal) if total_load else 1.0

        return FastSpinnerResult(
            labels=labels,
            num_partitions=num_partitions,
            iterations=iterations_run,
            history=history,
            phi=phi,
            rho=rho,
            halted_by=halted_by,
            total_messages=total_messages,
            original_ids=csr.original_ids,
        )
