"""Spinner configuration.

The paper's algorithm has one primary tuning parameter, the additional
capacity ``c`` (eq. 5), plus the halting thresholds ``epsilon`` and ``w``
(Section III-C).  The evaluation uses ``c = 1.05``, ``epsilon = 0.001`` and
``w = 5`` throughout; these are the defaults here.

The remaining switches expose the design choices that the ablation
benchmarks toggle (balance penalty, probabilistic migration dampening,
per-worker asynchronous load updates, direction-aware conversion,
preference for the current label on ties).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.errors import ConfigurationError
from repro.faults import FaultPlan

#: Paper defaults (Section V-A).
DEFAULT_ADDITIONAL_CAPACITY = 1.05
DEFAULT_HALT_THRESHOLD = 0.001
DEFAULT_HALT_WINDOW = 5
DEFAULT_MAX_ITERATIONS = 200


@dataclass(frozen=True)
class SpinnerConfig:
    """Parameters of the Spinner algorithm.

    Attributes
    ----------
    additional_capacity:
        The constant ``c > 1`` of eq. (5).  Larger values allow more
        migrations per iteration (faster convergence) at the cost of a
        looser balance bound (``rho <= c`` with high probability).
    halt_threshold:
        ``epsilon`` of the halting heuristic: the minimum relative score
        improvement that counts as progress.
    halt_window:
        ``w`` of the halting heuristic: number of consecutive iterations
        without significant improvement required before halting.
    max_iterations:
        Hard bound on label-propagation iterations.
    seed:
        Seed for the random initialization and the probabilistic migration
        decisions; runs are deterministic for a fixed seed.
    balance_penalty:
        Whether the penalty term of eq. (8) is applied (ablation switch).
    probabilistic_migration:
        Whether candidates migrate with probability ``r(l)/m(l)`` (eq. 14)
        rather than unconditionally (ablation switch).
    worker_local_updates:
        Whether candidates update per-worker load counters asynchronously
        within a superstep (Section IV-A4; Pregel implementation only).
    direction_aware:
        Whether directed inputs are converted with the weighted conversion
        of eq. (3) (weight 2 for reciprocal pairs) or naively.
    prefer_current_label:
        Whether ties in the score function keep the current label
        (Section III-A's tie-breaking rule).
    kernel:
        Which :class:`~repro.core.fast.FastSpinner` inner loop to use:
        ``"frontier"`` (default) maintains the per-vertex label-weight
        histogram incrementally and only reprocesses the neighbourhood of
        migrated vertices, while ``"dense"`` rebuilds the full histogram
        every iteration (the reference kernel).  Both produce identical
        labels for the same seed; ``"dense"`` exists for equivalence tests
        and the kernel speed benchmark.
    engine:
        Which Pregel runtime
        :class:`~repro.core.spinner.SpinnerPartitioner` executes on:
        ``"dict"`` (default) runs the per-vertex
        :class:`~repro.core.program.SpinnerProgram` on the dictionary
        engine, ``"vector"`` runs the array-native
        :class:`~repro.core.batch_program.BatchSpinnerProgram` on the
        sharded vector engine.  Both are bit-exact for the same seed
        (assignments, supersteps, aggregator histories); ``"vector"`` is
        orders of magnitude faster on large graphs.  Ignored by
        :class:`~repro.core.fast.FastSpinner`, which has its own
        ``kernel`` switch.
    parallel:
        Number of OS processes the vector engine splits its superstep
        execution across (the simulated workers are grouped into this
        many contiguous shard groups, each hosted by one process over
        shared memory).  ``1`` (default) runs the in-process serial
        executor; any value is bit-exact with serial.  Only meaningful
        with ``engine="vector"`` — the dictionary engine rejects
        ``parallel > 1``.
    checkpoint_interval:
        Snapshot the Pregel run into ``checkpoint_dir`` every this many
        supersteps (superstep-boundary checkpointing, Giraph style).
        Requires ``checkpoint_dir``; ``None`` disables checkpointing.
        Honoured by the Pregel-backed partitioners
        (:class:`~repro.core.spinner.SpinnerPartitioner` on either
        engine); ignored by :class:`~repro.core.fast.FastSpinner`.
    checkpoint_dir:
        Directory for checkpoint snapshots (created if missing).
    fault_plan:
        Deterministic :class:`~repro.faults.FaultPlan` of injected worker
        crashes and message-delivery failures; requires checkpointing,
        because crashes recover from the latest checkpoint.  Excluded
        from equality comparisons (it carries mutable firing counters).
    storage:
        Which storage tier :class:`~repro.core.fast.FastSpinner` runs on:
        ``"ram"`` (default) keeps the CSR arrays in memory, ``"mmap"``
        runs out-of-core against an on-disk store
        (:mod:`repro.graph.mmap_store`), streaming the edge arrays in
        ``storage_chunk``-sized pieces so peak RSS is ``O(chunk +
        labels)`` instead of ``O(edges)``.  Both tiers produce
        byte-identical labels for the same seed (all chunked
        accumulations are sums of exactly-representable integers).
        Ignored by the Pregel-backed partitioners.
    storage_dir:
        Directory holding (or receiving) the on-disk CSR store when
        ``storage="mmap"``.  If the input graph is not already an
        opened store, it is spilled here first; when unset, a temporary
        directory is used and removed after the run.  Requires
        ``storage="mmap"``.
    storage_chunk:
        Half-edges streamed per chunk by the out-of-core kernels
        (default :data:`repro.graph.mmap_store.DEFAULT_STORAGE_CHUNK`).
        Any value >= 1 is bit-exact; smaller values trade speed for a
        lower memory ceiling.
    extra:
        Free-form experiment metadata (not interpreted by the algorithm;
        excluded from equality comparisons).
    """

    additional_capacity: float = DEFAULT_ADDITIONAL_CAPACITY
    halt_threshold: float = DEFAULT_HALT_THRESHOLD
    halt_window: int = DEFAULT_HALT_WINDOW
    max_iterations: int = DEFAULT_MAX_ITERATIONS
    seed: int = 42
    balance_penalty: bool = True
    probabilistic_migration: bool = True
    worker_local_updates: bool = True
    direction_aware: bool = True
    prefer_current_label: bool = True
    kernel: str = "frontier"
    engine: str = "dict"
    parallel: int = 1
    checkpoint_interval: int | None = None
    checkpoint_dir: str | None = None
    fault_plan: FaultPlan | None = field(default=None, compare=False)
    storage: str = "ram"
    storage_dir: str | None = None
    storage_chunk: int | None = None
    extra: dict = field(default_factory=dict, compare=False)

    def __post_init__(self) -> None:
        if self.kernel not in ("frontier", "dense"):
            raise ConfigurationError(
                f"kernel must be 'frontier' or 'dense', got {self.kernel!r}"
            )
        if self.engine not in ("dict", "vector"):
            raise ConfigurationError(
                f"engine must be 'dict' or 'vector', got {self.engine!r}"
            )
        if self.parallel < 1:
            raise ConfigurationError(
                f"parallel must be at least 1, got {self.parallel}"
            )
        if self.additional_capacity <= 1.0:
            raise ConfigurationError(
                f"additional_capacity must be > 1, got {self.additional_capacity}"
            )
        if self.halt_threshold < 0:
            raise ConfigurationError("halt_threshold must be non-negative")
        if self.halt_window < 1:
            raise ConfigurationError("halt_window must be at least 1")
        if self.max_iterations < 1:
            raise ConfigurationError("max_iterations must be at least 1")
        if (self.checkpoint_interval is None) != (self.checkpoint_dir is None):
            raise ConfigurationError(
                "checkpoint_interval and checkpoint_dir must be given together"
            )
        if self.checkpoint_interval is not None and self.checkpoint_interval < 1:
            raise ConfigurationError(
                f"checkpoint_interval must be >= 1, got {self.checkpoint_interval}"
            )
        if self.fault_plan is not None and self.checkpoint_interval is None:
            raise ConfigurationError(
                "a fault_plan requires checkpointing "
                "(set checkpoint_interval and checkpoint_dir)"
            )
        if self.storage not in ("ram", "mmap"):
            raise ConfigurationError(
                f"storage must be 'ram' or 'mmap', got {self.storage!r}"
            )
        if self.storage_dir is not None and self.storage != "mmap":
            raise ConfigurationError("storage_dir requires storage='mmap'")
        if self.storage_chunk is not None and self.storage_chunk < 1:
            raise ConfigurationError(
                f"storage_chunk must be >= 1, got {self.storage_chunk}"
            )

    def with_options(self, **overrides) -> "SpinnerConfig":
        """Return a copy with some fields replaced."""
        return replace(self, **overrides)

    def capacity(self, total_load: float, num_partitions: int) -> float:
        """Partition capacity ``C = c * total_load / k`` (eq. 5).

        ``total_load`` is the sum of weighted vertex degrees, which equals
        twice the total undirected edge weight.
        """
        if num_partitions <= 0:
            raise ConfigurationError("num_partitions must be positive")
        return self.additional_capacity * total_load / num_partitions
