"""Array-native Spinner vertex program for the vector Pregel runtime.

:class:`BatchSpinnerProgram` is the
:class:`~repro.pregel.vector_engine.BatchVertexProgram` port of
:class:`~repro.core.program.SpinnerProgram`: the same superstep schedule
(NeighborPropagation / NeighborDiscovery / Initialize / ComputeScores /
ComputeMigrations, see Figure 2 of the paper), the same aggregators, the
same master-side halting — executed once per superstep over flat NumPy
arrays instead of once per vertex.

The equivalence contract with the dictionary-engine program is **bit
exact** under the seeded RNG contract, not approximate:

* label frequencies and weighted degrees are integer-valued, so the
  composite-key ``np.bincount`` reductions reproduce the per-vertex
  Python sums exactly;
* per-label load/candidate aggregators are per-bin sequential bincounts
  over the canonical (worker-major) vertex order — the order the
  dictionary engine visits vertices — and the global score / local-weight
  aggregators use the strictly sequential ``np.cumsum``;
* the score of every ``(vertex, label)`` pair is computed with the exact
  elementwise operations of :func:`repro.core.scoring.label_score`, and
  the label argmax replays :func:`repro.core.scoring.choose_label`'s
  sequential scan (including its ``1e-12`` tie tolerance and the
  ``prefer_current_label`` rule) as ``k`` vectorized passes;
* migration draws come from one ``Generator.random(n)`` call over the
  candidates in canonical vertex order, which yields the same stream as
  the dictionary program's per-candidate scalar ``random()`` calls
  (NumPy's PCG64 fills blocks sequentially);
* when ``config.worker_local_updates`` is set (Section IV-A4), the
  per-worker asynchronous load deltas make candidate decisions
  *sequentially dependent within a worker*, so the candidate scan runs as
  a per-worker Python loop over precomputed score components — exact by
  construction, and still far cheaper than the dictionary engine because
  frequencies, messaging and aggregation stay vectorized.

``tests/test_batch_spinner.py`` pins the contract (assignments,
superstep counts, aggregator histories, per-worker statistics, halt
reasons) and ``benchmarks/test_spinner_pregel_speed.py`` tracks the
speedup in ``BENCH_spinner.json``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.config import SpinnerConfig
from repro.core.scoring import TIE_EPSILON as _TIE_EPSILON
from repro.core.program import (
    COMPUTE_MIGRATIONS,
    COMPUTE_SCORES,
    INITIALIZE,
    LOCAL_WEIGHT_AGGREGATOR,
    MIGRATIONS_AGGREGATOR,
    NEIGHBOR_DISCOVERY,
    NEIGHBOR_PROPAGATION,
    SCORE_AGGREGATOR,
    SpinnerPhaseSchedule,
    candidate_aggregator_name,
    load_aggregator_name,
)
from repro.errors import PartitioningError
from repro.graph.conversion import directed_pair_weights
from repro.graph.csr import _segment_sums, build_csr_arrays
from repro.graph.digraph import DiGraph
from repro.graph.undirected import UndirectedGraph
from repro.pregel.vector_engine import (
    BatchComputeContext,
    BatchStep,
    BatchVertexProgram,
    DeliveredMessages,
    Outbox,
    ShardedGraph,
    VectorPregelEngine,
)

@dataclass(frozen=True)
class DirectedSendPlan:
    """Superstep-0 send schedule for directed inputs.

    The dictionary engine's NeighborPropagation superstep sends one
    message per *original directed edge* and scans only the original
    out-edges, while every later superstep operates on the converted
    weighted undirected adjacency.  The batch program pre-converts the
    graph, so it needs this plan to reproduce superstep 0's outbox and
    ``edges_scanned`` statistics exactly.

    Attributes
    ----------
    sources / targets:
        Dense endpoint ids of the original directed edges, permuted into
        canonical (worker-major by source) order.
    out_degrees:
        Original out-degree per dense vertex id (``int64``), charged as
        ``edges_scanned`` during superstep 0.
    """

    sources: np.ndarray
    targets: np.ndarray
    out_degrees: np.ndarray


@dataclass(frozen=True)
class SpinnerShard:
    """A :class:`ShardedGraph` prepared for :class:`BatchSpinnerProgram`.

    Attributes
    ----------
    shard:
        The sharded weighted undirected adjacency the label-propagation
        supersteps run over (for directed inputs: the eq. 3 conversion
        the dictionary program would build during NeighborDiscovery).
    directed_plan:
        Superstep-0 emulation data for directed inputs, ``None`` for
        undirected inputs.
    """

    shard: ShardedGraph
    directed_plan: DirectedSendPlan | None = None

    @property
    def convert_directed(self) -> bool:
        """Whether the two conversion supersteps are part of the schedule."""
        return self.directed_plan is not None


def _dense_positions(ids: np.ndarray, originals: np.ndarray) -> np.ndarray:
    """Map original vertex ids to dense insertion-order positions."""
    sorter = np.argsort(ids, kind="stable")
    return sorter[np.searchsorted(ids, originals, sorter=sorter)]


def _converted_half_edges(
    num_vertices: int, sources: np.ndarray, targets: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Eq. 3 weighted undirected half-edges of a dense directed edge list.

    Reproduces the adjacency the dictionary program builds during its
    NeighborPropagation/NeighborDiscovery supersteps: every connected
    unordered pair becomes two half-edges with weight 1 (one direction
    present) or 2 (reciprocal pair, via
    :func:`repro.graph.conversion.directed_pair_weights`), and — unlike
    the metric-side conversions, which drop self-loops — a self-loop
    stays a single slot with weight 2 (its propagation message
    rediscovers the loop edge).
    """
    loops = sources == targets
    u, v, w = directed_pair_weights(num_vertices, sources[~loops], targets[~loops])
    loop_ids = np.unique(sources[loops])
    loop_w = np.full(loop_ids.shape[0], 2, dtype=np.int64)
    half_src = np.concatenate([u, v, loop_ids])
    half_dst = np.concatenate([v, u, loop_ids])
    half_w = np.concatenate([w, w, loop_w])
    return half_src, half_dst, half_w


def build_spinner_shard(
    engine: VectorPregelEngine, graph: DiGraph | UndirectedGraph
) -> SpinnerShard:
    """Shard ``graph`` for a :class:`BatchSpinnerProgram` run.

    Undirected graphs shard directly (two half-edges per edge, weights
    preserved).  Directed graphs are pre-converted to the weighted
    undirected form of eq. (3) — the adjacency the dictionary program
    builds during its two conversion supersteps — and additionally carry
    a :class:`DirectedSendPlan` so superstep 0's messages and statistics
    can be replayed over the *original* directed edges.  Dense vertex
    ids follow graph insertion order in both cases, matching the
    dictionary engine's visit order.
    """
    if isinstance(graph, UndirectedGraph):
        return SpinnerShard(shard=engine.shard_undirected(graph))
    ids = np.fromiter(graph.vertices(), dtype=np.int64, count=graph.num_vertices)
    edge_rows = [(source, target) for source, target in graph.edges()]
    if edge_rows:
        pairs = np.asarray(edge_rows, dtype=np.int64)
        sources = _dense_positions(ids, pairs[:, 0])
        targets = _dense_positions(ids, pairs[:, 1])
    else:
        sources = np.empty(0, dtype=np.int64)
        targets = np.empty(0, dtype=np.int64)
    half_src, half_dst, half_w = _converted_half_edges(ids.shape[0], sources, targets)
    indptr, adj_targets, adj_weights = build_csr_arrays(
        half_src, half_dst, half_w, ids.shape[0]
    )
    shard = engine.shard_graph(indptr, adj_targets, adj_weights, ids)
    order = np.argsort(shard.worker_of[sources], kind="stable")
    plan = DirectedSendPlan(
        sources=sources[order],
        targets=targets[order],
        out_degrees=np.bincount(sources, minlength=ids.shape[0]).astype(np.int64),
    )
    return SpinnerShard(shard=shard, directed_plan=plan)


class BatchSpinnerProgram(SpinnerPhaseSchedule, BatchVertexProgram):
    """Spinner's label-propagation vertex program over flat arrays.

    Construct with the same ``(num_partitions, config,
    convert_directed)`` triple as
    :class:`~repro.core.program.SpinnerProgram`, then :meth:`bind` the
    prepared :class:`SpinnerShard` and the dense initial labels before
    running.  Reuses :class:`~repro.core.program.SpinnerMasterCompute`
    unchanged for the halting heuristic.
    """

    combine = "sum"

    def bind(self, spinner_shard: SpinnerShard, initial_labels: np.ndarray) -> None:
        """Attach the sharded graph and the dense initial label array.

        ``initial_labels`` must hold one label in ``[0, k)`` per dense
        vertex id (the caller decides them: random for scratch runs,
        carried over for incremental/elastic restarts, exactly like the
        per-vertex program's ``SpinnerVertexValue`` seeding).
        """
        if spinner_shard.convert_directed != self.convert_directed:
            raise PartitioningError(
                "spinner shard and program disagree on directed conversion"
            )
        shard = spinner_shard.shard
        labels = np.asarray(initial_labels, dtype=np.int64)
        if labels.shape[0] != shard.num_vertices:
            raise PartitioningError(
                f"expected {shard.num_vertices} initial labels, got {labels.shape[0]}"
            )
        self._spinner_shard = spinner_shard
        self._labels = labels.copy()
        self._candidates = np.full(shard.num_vertices, -1, dtype=np.int64)
        self._degrees = np.zeros(shard.num_vertices, dtype=np.float64)
        #: Source vertex of every adjacency slot (vertex-major CSR order).
        self._slot_src = np.repeat(
            np.arange(shard.num_vertices, dtype=np.int64), shard.degrees
        )
        self._adj_weights_f = shard.adj_weights.astype(np.float64)

    @property
    def labels(self) -> np.ndarray:
        """Current dense label array (final assignment after a run)."""
        return self._labels

    # ------------------------------------------------------------------
    # shared-state protocol (shared-memory executor)
    # ------------------------------------------------------------------
    def shared_state(self) -> dict[str, np.ndarray]:
        """Labels and candidates must be visible across shard groups.

        Migrations update labels in place for owned vertices, and the
        next ComputeScores superstep reads *neighbour* labels globally;
        likewise ComputeMigrations branches on the global candidate
        mask.  Placing both arrays in shared memory makes the owned-
        slice writes visible to every group at the superstep barrier.
        """
        return {"labels": self._labels, "candidates": self._candidates}

    def adopt_shared_state(self, arrays: dict[str, np.ndarray]) -> None:
        """Rebind labels/candidates to executor-provided shared storage."""
        self._labels = arrays["labels"]
        self._candidates = arrays["candidates"]

    def max_outbox_messages(self, shard: ShardedGraph) -> int:
        """Largest outbox any superstep emits over ``shard``.

        Label announcements send along the (portion's) adjacency slots;
        for directed inputs, superstep 0 instead sends one message per
        original directed edge whose source the portion owns.
        """
        base = int(shard.send_src.shape[0])
        plan = self._spinner_shard.directed_plan
        if plan is None:
            return base
        workers = self._spinner_shard.shard.worker_of[plan.sources]
        owned = (workers >= shard.worker_lo) & (workers < shard.worker_hi)
        return max(base, int(owned.sum()))

    # ------------------------------------------------------------------
    # batch compute
    # ------------------------------------------------------------------
    def compute_batch(
        self,
        shard: ShardedGraph,
        messages: DeliveredMessages,
        ctx: BatchComputeContext,
    ) -> BatchStep:
        """Dispatch the superstep to its phase handler (Figure 2)."""
        phase = self.phase(ctx.superstep)
        if phase == NEIGHBOR_PROPAGATION:
            return self._neighbor_propagation(shard, ctx)
        if phase == NEIGHBOR_DISCOVERY:
            return self._step(shard, Outbox.empty())
        if phase == INITIALIZE:
            return self._initialize(shard, ctx)
        if phase == COMPUTE_SCORES:
            return self._compute_scores(shard, ctx)
        return self._compute_migrations(shard, ctx)

    def _step(
        self,
        shard: ShardedGraph,
        outbox: Outbox,
        edges_scanned: np.ndarray | None = None,
    ) -> BatchStep:
        """Assemble a :class:`BatchStep`; Spinner vertices never halt."""
        return BatchStep(
            values=self._labels,
            outbox=outbox,
            votes=np.zeros(shard.num_vertices, dtype=bool),
            edges_scanned=edges_scanned,
        )

    # -- conversion ----------------------------------------------------
    def _neighbor_propagation(
        self, shard: ShardedGraph, ctx: BatchComputeContext
    ) -> BatchStep:
        """Replay superstep 0's sends over the original directed edges.

        The adjacency conversion itself happened eagerly in
        :func:`build_spinner_shard`; this superstep only reproduces the
        observable effects — one message per directed edge and
        ``edges_scanned`` charged at the original out-degrees.  The plan
        is stored in canonical (worker-major by source) order, so a
        shard-group portion restricts it to its owned sources and the
        groups' outboxes concatenate back into the serial send order.
        """
        plan = self._spinner_shard.directed_plan
        assert plan is not None  # guaranteed by bind()
        owned = ctx.owned_source_mask(plan.sources)
        if owned is None:
            sources, targets = plan.sources, plan.targets
        else:
            sources, targets = plan.sources[owned], plan.targets[owned]
        outbox = Outbox(
            sources,
            targets,
            np.zeros(sources.shape[0], dtype=np.float64),
        )
        return self._step(shard, outbox, edges_scanned=plan.out_degrees)

    # -- initialization ------------------------------------------------
    def _initialize(self, shard: ShardedGraph, ctx: BatchComputeContext) -> BatchStep:
        """Compute weighted degrees, seed the load aggregators, announce labels."""
        self._degrees = _segment_sums(shard.adj_weights, shard.indptr).astype(np.float64)
        self._aggregate_per_label(ctx, load_aggregator_name, self._labels, self._degrees)
        senders = np.ones(shard.num_vertices, dtype=bool)
        outbox = ctx.send_to_all_neighbors(senders, self._labels.astype(np.float64))
        return self._step(shard, outbox)

    # -- shared helpers ------------------------------------------------
    def _partition_loads(self, ctx: BatchComputeContext) -> np.ndarray:
        """Previous-superstep partition loads ``b(l)``, as the dict program builds them."""
        return np.array(
            [
                ctx.aggregated_value(load_aggregator_name(label))
                for label in range(self.num_partitions)
            ],
            dtype=np.float64,
        )

    def _capacity(self, loads: np.ndarray) -> float:
        """Capacity ``C`` of eq. (5), with the dict program's empty-graph fallback."""
        total_load = float(loads.sum())
        if not total_load:
            return 1.0
        return self.config.capacity(total_load, self.num_partitions)

    def _aggregate_per_label(
        self,
        ctx: BatchComputeContext,
        name_fn,
        labels: np.ndarray,
        weights: np.ndarray,
        mask: np.ndarray | None = None,
    ) -> None:
        """Aggregate one weight per vertex into its label's aggregator.

        Delegates to :meth:`BatchComputeContext.aggregate_keyed`: the
        bincount runs over the canonical (worker-major) vertex order and
        accumulates each bin strictly sequentially in input order, so
        every per-label sum is bit-identical to the dictionary engine's
        vertex-by-vertex ``DoubleSumAggregator`` reduction — including
        under the shared-memory executor, which replays the per-portion
        operands in canonical order.
        """
        ctx.aggregate_keyed(name_fn, labels, weights, self.num_partitions, mask=mask)

    # -- iteration: scores ----------------------------------------------
    def _frequency_matrix(self, shard: ShardedGraph) -> np.ndarray:
        """Edge weight per ``(vertex, neighbour label)`` (eq. 4 numerator).

        One composite-key bincount over all adjacency slots; entries are
        exact integer-valued floats, so they equal the dictionary
        program's per-vertex ``label_frequencies`` sums bit for bit.
        The neighbour labels are read straight from the global label
        array — the dictionary program's per-edge label cache holds
        exactly the neighbour's post-migration label because every
        migrating vertex notifies all its neighbours.
        """
        k = self.num_partitions
        keys = self._slot_src * k + self._labels[shard.adj_targets]
        return np.bincount(
            keys, weights=self._adj_weights_f, minlength=shard.num_vertices * k
        ).reshape(shard.num_vertices, k)

    def _compute_scores(self, shard: ShardedGraph, ctx: BatchComputeContext) -> BatchStep:
        """One ComputeScores superstep (Section IV-A2) over the whole shard."""
        num_vertices = shard.num_vertices
        k = self.num_partitions
        loads = self._partition_loads(ctx)
        capacity = self._capacity(loads)
        frequencies = self._frequency_matrix(shard)
        degrees = self._degrees

        # Locality term of eq. (8): freq / deg, 0 for isolated vertices —
        # elementwise the same IEEE operations as `label_score`.
        locality = np.divide(
            frequencies,
            degrees[:, None],
            out=np.zeros((num_vertices, k), dtype=np.float64),
            where=degrees[:, None] > 0,
        )
        apply_penalty = self.config.balance_penalty and capacity > 0

        if self.config.worker_local_updates and apply_penalty:
            current_score, best_label = self._scan_scores_with_deltas(
                shard, locality, loads, capacity
            )
        else:
            current_score, best_label = self._scan_scores_vectorized(
                locality, loads, capacity, apply_penalty
            )

        candidates = np.where(best_label != self._labels, best_label, -1)
        self._store_candidates(ctx, candidates)

        self._aggregate_per_label(ctx, load_aggregator_name, self._labels, degrees)
        all_vertices = np.ones(num_vertices, dtype=bool)
        ctx.aggregate_sequential(SCORE_AGGREGATOR, current_score, all_vertices)
        local_weight = frequencies[np.arange(num_vertices), self._labels]
        ctx.aggregate_sequential(LOCAL_WEIGHT_AGGREGATOR, local_weight, all_vertices)
        self._aggregate_per_label(
            ctx, candidate_aggregator_name, candidates, degrees, mask=candidates >= 0
        )
        return self._step(shard, Outbox.empty())

    def _scan_scores_vectorized(
        self,
        locality: np.ndarray,
        loads: np.ndarray,
        capacity: float,
        apply_penalty: bool,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Replay ``choose_label``'s sequential label scan as k array passes.

        The dictionary scan walks labels ``0..k-1`` keeping a running
        best with a ``1e-12`` slack (and the ``prefer_current_label``
        tie rule); iterating labels in the same order with vectorized
        per-vertex state reproduces every comparison bit for bit.
        """
        num_vertices = locality.shape[0]
        labels = self._labels
        if apply_penalty:
            scores = locality - (loads / capacity)[None, :]
        else:
            scores = locality
        current_score = scores[np.arange(num_vertices), labels]
        best_label = labels.copy()
        best_score = current_score.copy()
        prefer_current = self.config.prefer_current_label
        for label in range(self.num_partitions):
            column = scores[:, label]
            not_current = labels != label
            better = not_current & (column > best_score + _TIE_EPSILON)
            best_label[better] = label
            best_score[better] = column[better]
            if not prefer_current:
                tie = (
                    not_current
                    & ~better
                    & (np.abs(column - best_score) <= _TIE_EPSILON)
                    & (label < best_label)
                )
                best_label[tie] = label
                best_score[tie] = column[tie]
        return current_score, best_label

    def _store_candidates(
        self, ctx: BatchComputeContext, candidates: np.ndarray
    ) -> None:
        """Publish the superstep's migration candidates.

        Serially the whole array is rebound; a shard-group portion
        writes only its owned entries of the shared candidate array
        (every portion rewrites its entries each ComputeScores
        superstep, so no stale values survive into ComputeMigrations).
        """
        owned = ctx.owned_vertices()
        if owned is None:
            self._candidates = candidates
        else:
            self._candidates[owned] = candidates[owned]

    def _scan_scores_with_deltas(
        self,
        shard: ShardedGraph,
        locality: np.ndarray,
        loads: np.ndarray,
        capacity: float,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Candidate scan with per-worker asynchronous load deltas (IV-A4).

        Each candidate found earlier on the same worker shifts the loads
        later vertices score against, so the scan is sequentially
        dependent within a worker and runs as a Python loop over the
        canonical vertex order — operating on precomputed locality rows
        and incrementally maintained penalties, with the exact float
        arithmetic of the dictionary program (``(base_load + delta) /
        capacity`` recomputed from the base on every delta change).
        Workers are independent (each starts from the base penalties), so
        running the loop over a shard-group view's workers yields exactly
        the serial scan's decisions for those workers.
        """
        k = self.num_partitions
        prefer_current = self.config.prefer_current_label
        base_loads = loads.tolist()
        base_penalty = [load / capacity for load in base_loads]
        locality_rows = locality.tolist()
        labels_list = self._labels.tolist()
        degrees_list = self._degrees.tolist()
        current_score = np.zeros(shard.num_vertices, dtype=np.float64)
        best_labels = np.asarray(labels_list, dtype=np.int64).copy()
        shard_indptr = shard.shard_indptr
        vertex_order = shard.vertex_order.tolist()
        label_range = range(k)
        for worker in range(shard.num_workers):
            penalty = list(base_penalty)
            delta: dict[int, float] = {}
            start, end = int(shard_indptr[worker]), int(shard_indptr[worker + 1])
            for vertex in vertex_order[start:end]:
                row = locality_rows[vertex]
                current = labels_list[vertex]
                score = row[current] - penalty[current]
                current_score[vertex] = score
                best_label, best_score = current, score
                for label in label_range:
                    if label == current:
                        continue
                    candidate_score = row[label] - penalty[label]
                    if candidate_score > best_score + _TIE_EPSILON:
                        best_label, best_score = label, candidate_score
                    elif (
                        not prefer_current
                        and abs(candidate_score - best_score) <= _TIE_EPSILON
                        and label < best_label
                    ):
                        best_label, best_score = label, candidate_score
                if best_label != current:
                    best_labels[vertex] = best_label
                    degree = degrees_list[vertex]
                    delta[best_label] = delta.get(best_label, 0.0) + degree
                    penalty[best_label] = (base_loads[best_label] + delta[best_label]) / capacity
                    delta[current] = delta.get(current, 0.0) - degree
                    penalty[current] = (base_loads[current] + delta[current]) / capacity
        return current_score, best_labels

    # -- iteration: migrations -------------------------------------------
    def _compute_migrations(
        self, shard: ShardedGraph, ctx: BatchComputeContext
    ) -> BatchStep:
        """One ComputeMigrations superstep (eq. 14) over the whole shard.

        The branch below is taken on the *global* candidate count (via
        ``ctx.global_mask_span``), not this portion's, so every shard
        group makes the same aggregation calls and consumes the same RNG
        block — each group draws the full block over all candidates in
        canonical order and keeps only its own span, which leaves all
        groups' RNG streams identical to the serial one.
        """
        candidates = self._candidates
        has_candidate = candidates >= 0
        total, offset = ctx.global_mask_span(has_candidate)
        order = shard.vertex_order
        ordered = order[has_candidate[order]]
        if total:
            loads = self._partition_loads(ctx)
            capacity = self._capacity(loads)
            candidate_loads = np.array(
                [
                    ctx.aggregated_value(candidate_aggregator_name(label))
                    for label in range(self.num_partitions)
                ],
                dtype=np.float64,
            )
            targets = candidates[ordered]
            remaining = capacity - loads[targets]
            target_load = candidate_loads[targets]
            if self.config.probabilistic_migration:
                # Piecewise eq. (14), evaluated with the same scalar ops
                # and in the same branch order as `migration_probability`.
                ratio = np.divide(
                    remaining,
                    target_load,
                    out=np.ones_like(remaining),
                    where=target_load > 0,
                )
                probability = np.where(
                    target_load <= 0,
                    1.0,
                    np.where(remaining <= 0, 0.0, np.minimum(1.0, ratio)),
                )
            else:
                probability = np.ones(ordered.shape[0], dtype=np.float64)
            # One block draw over the candidates in canonical vertex order
            # == the dict program's per-candidate scalar draws (the seeded
            # RNG contract: PCG64 fills blocks sequentially).
            draws = self._rng.random(total)[offset : offset + ordered.shape[0]]
            migrate = draws < probability
            moved = ordered[migrate]
            self._labels[moved] = targets[migrate]
            ctx.aggregate(MIGRATIONS_AGGREGATOR, int(moved.shape[0]))
        else:
            moved = np.empty(0, dtype=np.int64)
        self._aggregate_per_label(ctx, load_aggregator_name, self._labels, self._degrees)
        migrated = np.zeros(shard.num_vertices, dtype=bool)
        migrated[moved] = True
        outbox = ctx.send_to_all_neighbors(migrated, self._labels.astype(np.float64))
        return self._step(shard, outbox)
