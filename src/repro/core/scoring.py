"""Spinner's score function (paper eqs. 4, 7, 8).

A vertex evaluates every candidate label ``l`` with

``score''(v, l) = (sum of edge weights to neighbours labelled l) / deg(v)
                  - b(l) / C``

where ``deg(v)`` is the weighted degree, ``b(l)`` the current load of
partition ``l`` and ``C`` the partition capacity (eq. 5).  The first term
rewards locality, the second penalizes migrations towards nearly-full
partitions.  These helpers are shared by the Pregel vertex program and are
exercised directly by unit and property tests.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

import numpy as np

from repro.core.config import SpinnerConfig

#: Absolute tolerance under which two label scores count as tied in
#: :func:`choose_label`.  The batch program
#: (:mod:`repro.core.batch_program`) replays the same scan with the same
#: constant; change it here and both implementations stay bit-equal.
TIE_EPSILON = 1e-12


def label_frequencies(
    neighbour_labels: Sequence[tuple[int | None, float]],
) -> dict[int, float]:
    """Accumulate edge weight per neighbour label (eq. 4 numerator).

    ``neighbour_labels`` holds ``(label, weight)`` pairs; entries whose
    label is ``None`` (neighbour label not yet known) are skipped.
    """
    frequencies: dict[int, float] = {}
    for label, weight in neighbour_labels:
        if label is None:
            continue
        frequencies[label] = frequencies.get(label, 0.0) + weight
    return frequencies


def label_score(
    label: int,
    frequencies: Mapping[int, float],
    weighted_degree: float,
    loads: Sequence[float] | np.ndarray,
    capacity: float,
    config: SpinnerConfig,
) -> float:
    """Score of assigning a given label to a vertex (eq. 8)."""
    if weighted_degree <= 0:
        locality_term = 0.0
    else:
        locality_term = frequencies.get(label, 0.0) / weighted_degree
    if not config.balance_penalty or capacity <= 0:
        return locality_term
    return locality_term - float(loads[label]) / capacity


def choose_label(
    current_label: int,
    frequencies: Mapping[int, float],
    weighted_degree: float,
    loads: Sequence[float] | np.ndarray,
    capacity: float,
    config: SpinnerConfig,
) -> tuple[int, float, float]:
    """Pick the label maximizing the vertex score.

    Returns ``(best_label, best_score, current_score)``.  Ties are broken
    in favour of the current label when ``config.prefer_current_label`` is
    set (the paper's rule: it speeds up convergence and avoids needless
    migration messages); otherwise the lowest label index wins, which keeps
    the function deterministic.
    """
    num_partitions = len(loads)
    current_score = label_score(
        current_label, frequencies, weighted_degree, loads, capacity, config
    )
    best_label = current_label
    best_score = current_score
    for label in range(num_partitions):
        if label == current_label:
            continue
        score = label_score(label, frequencies, weighted_degree, loads, capacity, config)
        if score > best_score + TIE_EPSILON:
            best_label = label
            best_score = score
        elif not config.prefer_current_label and abs(score - best_score) <= TIE_EPSILON:
            # Deterministic tie-break towards the smallest label index.
            if label < best_label:
                best_label = label
                best_score = score
    return best_label, best_score, current_score


def migration_probability(remaining_capacity: float, candidate_load: float) -> float:
    """Probability that a candidate vertex is allowed to migrate (eq. 14).

    ``remaining_capacity`` is ``r(l) = C - b(l)`` and ``candidate_load`` is
    ``m(l)``, the total degree of all candidates targeting ``l``.  The
    probability is clamped to ``[0, 1]``: when the partition is already
    over capacity no one migrates, and when all candidates fit they all do.
    """
    if candidate_load <= 0:
        return 1.0
    if remaining_capacity <= 0:
        return 0.0
    return min(1.0, remaining_capacity / candidate_load)
