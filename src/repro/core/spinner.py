"""High-level Spinner partitioner running on the simulated Pregel engine.

:class:`SpinnerPartitioner` wires together the vertex program, the master
compute with the halting heuristic, the initializers for the three modes
described in the paper (from scratch, incremental after graph changes,
elastic after a change in the number of partitions) and the quality
metrics, and returns a :class:`SpinnerResult` carrying the final
assignment, the per-iteration history and the simulated cluster
statistics.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass, field

import numpy as np

from repro.core.batch_program import BatchSpinnerProgram, build_spinner_shard
from repro.core.config import SpinnerConfig
from repro.core.elastic import resize_assignment
from repro.core.incremental import incremental_initial_assignment
from repro.core.program import (
    IterationRecord,
    SpinnerMasterCompute,
    SpinnerProgram,
    SpinnerVertexValue,
)
from repro.errors import ConfigurationError, InvalidPartitionCountError, PartitioningError
from repro.graph.conversion import ensure_undirected
from repro.graph.digraph import DiGraph
from repro.graph.undirected import UndirectedGraph
from repro.metrics.quality import locality, max_normalized_load
from repro.pregel.cost_model import ClusterCostModel
from repro.pregel.engine import PregelEngine, PregelResult
from repro.pregel.vector_engine import VectorPregelEngine, VectorPregelResult
from repro.pregel.worker import PlacementFn


@dataclass
class SpinnerResult:
    """Outcome of a Spinner run.

    Attributes
    ----------
    assignment:
        Final ``{vertex: partition}`` mapping.
    num_partitions:
        The number of partitions ``k``.
    iterations:
        Number of label-propagation iterations executed.
    history:
        Per-iteration quality records (``phi``, ``rho``, ``score``,
        migrations) — the data behind Figure 4.
    phi / rho:
        Final locality and balance of the partitioning.
    pregel_result:
        The underlying Pregel run (superstep statistics, aggregators),
        used by the cost-savings experiments.  A
        :class:`~repro.pregel.engine.PregelResult` for the dictionary
        engine, a
        :class:`~repro.pregel.vector_engine.VectorPregelResult` for the
        vector engine; both expose the same statistics surface.
    """

    assignment: dict[int, int]
    num_partitions: int
    iterations: int
    history: list[IterationRecord] = field(default_factory=list)
    phi: float = 0.0
    rho: float = 1.0
    pregel_result: PregelResult | VectorPregelResult | None = None

    @property
    def total_messages(self) -> int:
        """Messages exchanged by the partitioning run (network cost proxy)."""
        if self.pregel_result is None:
            return 0
        return self.pregel_result.stats.total_messages

    def simulated_time(self, model: ClusterCostModel | None = None) -> float:
        """Simulated time of the partitioning run under ``model``."""
        if self.pregel_result is None:
            return 0.0
        return self.pregel_result.stats.simulated_time(model or ClusterCostModel())


class SpinnerPartitioner:
    """Spinner on the simulated Giraph cluster.

    Parameters
    ----------
    config:
        Algorithm parameters; defaults to the paper's settings.
    num_workers:
        Number of simulated workers executing the partitioning itself.
    cost_model:
        Cost model used when reporting simulated times.
    engine:
        Pregel runtime: ``"dict"`` (per-vertex reference) or ``"vector"``
        (array-native sharded).  Defaults to ``config.engine``.  Both
        runtimes are bit-exact for the same seed — assignments, superstep
        counts, aggregator histories, per-worker statistics and halt
        reasons coincide.
    placement:
        Optional vertex-to-worker placement function shared by both
        runtimes; defaults to Giraph-style hash placement.
    parallel:
        Number of OS processes for the vector engine's shared-memory
        executor; defaults to ``config.parallel``.  Bit-exact with the
        serial executor for any value.  Rejected with the dictionary
        engine when greater than 1.
    """

    name = "spinner"

    def __init__(
        self,
        config: SpinnerConfig | None = None,
        num_workers: int = 4,
        cost_model: ClusterCostModel | None = None,
        engine: str | None = None,
        placement: PlacementFn | None = None,
        parallel: int | None = None,
    ) -> None:
        self.config = config if config is not None else SpinnerConfig()
        self.num_workers = num_workers
        self.cost_model = cost_model if cost_model is not None else ClusterCostModel()
        self.engine = engine if engine is not None else self.config.engine
        if self.engine not in ("dict", "vector"):
            raise ConfigurationError(
                f"engine must be 'dict' or 'vector', got {self.engine!r}"
            )
        self.parallel = parallel if parallel is not None else self.config.parallel
        if self.parallel < 1:
            raise ConfigurationError(
                f"parallel must be at least 1, got {self.parallel}"
            )
        if self.engine == "dict" and self.parallel > 1:
            raise ConfigurationError(
                "parallel execution requires the vector engine "
                f"(engine='dict' with parallel={self.parallel})"
            )
        self.placement = placement

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def partition(
        self,
        graph: DiGraph | UndirectedGraph,
        num_partitions: int,
        initial_assignment: Mapping[int, int] | None = None,
    ) -> SpinnerResult:
        """Partition ``graph`` into ``num_partitions`` parts from scratch.

        When ``initial_assignment`` is provided it seeds the labels instead
        of the random initialization (it must cover every vertex); this is
        the hook the incremental and elastic entry points build on.
        """
        if num_partitions <= 0:
            raise InvalidPartitionCountError(num_partitions, "must be positive")
        initial = self._resolve_initial_assignment(graph, num_partitions, initial_assignment)
        return self._run(graph, num_partitions, initial)

    def adapt_to_graph_changes(
        self,
        graph: UndirectedGraph | DiGraph,
        previous_assignment: Mapping[int, int],
        num_partitions: int,
    ) -> SpinnerResult:
        """Incrementally adapt a partitioning after the graph changed.

        Existing vertices keep their previous label; vertices new to the
        graph are placed on the least loaded partition (Section III-D), and
        label propagation restarts from that state.
        """
        undirected = ensure_undirected(graph, self.config.direction_aware)
        initial = incremental_initial_assignment(
            undirected, previous_assignment, num_partitions
        )
        return self._run(graph, num_partitions, initial)

    def adapt_to_partition_change(
        self,
        graph: UndirectedGraph | DiGraph,
        previous_assignment: Mapping[int, int],
        old_num_partitions: int,
        new_num_partitions: int,
    ) -> SpinnerResult:
        """Elastically adapt a partitioning to a new number of partitions.

        Vertices re-initialize with the probabilistic migration rule of
        Section III-E (eq. 11) and label propagation restarts from there.
        """
        resized = resize_assignment(
            previous_assignment,
            old_num_partitions,
            new_num_partitions,
            seed=self.config.seed,
        )
        undirected = ensure_undirected(graph, self.config.direction_aware)
        initial = incremental_initial_assignment(undirected, resized, new_num_partitions)
        return self._run(graph, new_num_partitions, initial)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _resolve_initial_assignment(
        self,
        graph: DiGraph | UndirectedGraph,
        num_partitions: int,
        initial_assignment: Mapping[int, int] | None,
    ) -> dict[int, int]:
        vertex_ids = list(graph.vertices())
        if initial_assignment is None:
            rng = np.random.default_rng(self.config.seed)
            labels = rng.integers(num_partitions, size=len(vertex_ids))
            return {vertex: int(label) for vertex, label in zip(vertex_ids, labels)}
        missing = [v for v in vertex_ids if v not in initial_assignment]
        if missing:
            raise PartitioningError(
                f"initial assignment misses {len(missing)} vertices (e.g. {missing[:3]})"
            )
        return {v: int(initial_assignment[v]) for v in vertex_ids}

    def _run(
        self,
        graph: DiGraph | UndirectedGraph,
        num_partitions: int,
        initial_assignment: dict[int, int],
    ) -> SpinnerResult:
        if self.engine == "vector":
            assignment, pregel_result = self._run_vector(
                graph, num_partitions, initial_assignment
            )
        else:
            assignment, pregel_result = self._run_dict(
                graph, num_partitions, initial_assignment
            )
        # After a crash recovery the engine finished on restored objects;
        # the result's master is the authoritative one, not the instance
        # this method constructed.
        master = pregel_result.master
        undirected = ensure_undirected(graph, self.config.direction_aware)
        phi = locality(undirected, assignment)
        rho = max_normalized_load(undirected, assignment, num_partitions)
        return SpinnerResult(
            assignment=assignment,
            num_partitions=num_partitions,
            iterations=len(master.history),
            history=master.history,
            phi=phi,
            rho=rho,
            pregel_result=pregel_result,
        )

    def _run_dict(
        self,
        graph: DiGraph | UndirectedGraph,
        num_partitions: int,
        initial_assignment: dict[int, int],
    ) -> tuple[dict[int, int], PregelResult]:
        """Execute on the per-vertex dictionary engine."""
        convert_directed = isinstance(graph, DiGraph)
        program = SpinnerProgram(
            num_partitions=num_partitions,
            config=self.config,
            convert_directed=convert_directed,
        )
        master = SpinnerMasterCompute(program)
        engine = PregelEngine(
            num_workers=self.num_workers,
            placement=self.placement,
            cost_model=self.cost_model,
            max_supersteps=program.superstep_bound(),
            checkpoint_interval=self.config.checkpoint_interval,
            checkpoint_dir=self.config.checkpoint_dir,
            fault_plan=self.config.fault_plan,
        )

        def vertex_value(vertex_id: int) -> SpinnerVertexValue:
            return SpinnerVertexValue(initial_assignment[vertex_id])

        if convert_directed:
            vertices = engine.vertices_from_digraph(
                graph, vertex_value=vertex_value, edge_value=lambda s, t: [1, None]
            )
        else:
            vertices = engine.vertices_from_undirected(
                graph,
                vertex_value=vertex_value,
                edge_value=lambda u, v, w: [w, None],
            )

        pregel_result = engine.run(program, vertices, master=master)
        # Read labels from the result's vertices, not the local dict: after
        # a recovery they are different (restored) objects.
        assignment = {
            vertex_id: vertex.value.label
            for vertex_id, vertex in pregel_result.vertices.items()
        }
        return assignment, pregel_result

    def _run_vector(
        self,
        graph: DiGraph | UndirectedGraph,
        num_partitions: int,
        initial_assignment: dict[int, int],
    ) -> tuple[dict[int, int], VectorPregelResult]:
        """Execute on the array-native sharded vector engine."""
        convert_directed = isinstance(graph, DiGraph)
        program = BatchSpinnerProgram(
            num_partitions=num_partitions,
            config=self.config,
            convert_directed=convert_directed,
        )
        master = SpinnerMasterCompute(program)
        engine = VectorPregelEngine(
            num_workers=self.num_workers,
            placement=self.placement,
            cost_model=self.cost_model,
            max_supersteps=program.superstep_bound(),
            checkpoint_interval=self.config.checkpoint_interval,
            checkpoint_dir=self.config.checkpoint_dir,
            fault_plan=self.config.fault_plan,
            parallel=self.parallel,
        )
        spinner_shard = build_spinner_shard(engine, graph)
        original_ids = spinner_shard.shard.original_ids.tolist()
        initial_labels = np.fromiter(
            (initial_assignment[vertex] for vertex in original_ids),
            dtype=np.int64,
            count=len(original_ids),
        )
        program.bind(spinner_shard, initial_labels)
        pregel_result = engine.run(program, spinner_shard.shard, master=master)
        # Labels come from the result's value array (the batch program
        # returns the label array as its values): after a recovery the
        # local ``program`` is a stale copy of the restored run.
        assignment = dict(
            zip(original_ids, pregel_result.values.astype(np.int64).tolist())
        )
        return assignment, pregel_result
