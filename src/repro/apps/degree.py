"""Degree counting — the smallest useful vertex program.

Used by the quickstart example and by engine tests as a minimal program
with one message exchange.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.pregel.program import ComputeContext, VertexProgram
from repro.pregel.vector_engine import (
    BatchComputeContext,
    BatchStep,
    BatchVertexProgram,
    DeliveredMessages,
    ShardedGraph,
)
from repro.pregel.vertex import Vertex


class DegreeCount(VertexProgram):
    """Compute each vertex's in+out degree.

    Superstep 0: every vertex sends a unit message along its out-edges.
    Superstep 1: every vertex sums its out-degree and the received units
    (its in-degree) into its value, then halts.
    """

    def compute(self, vertex: Vertex, messages: list[Any], ctx: ComputeContext) -> None:
        """Send one unit along every out-edge, then sum in+out degree and halt."""
        if ctx.superstep == 0:
            ctx.send_message_to_all_neighbors(vertex, 1)
            return
        vertex.value = vertex.num_edges + sum(messages)
        vertex.vote_to_halt()


class BatchDegreeCount(BatchVertexProgram):
    """Array-native in+out degree counting for the vector engine."""

    combine = "sum"

    def compute_batch(
        self,
        shard: ShardedGraph,
        messages: DeliveredMessages,
        ctx: BatchComputeContext,
    ) -> BatchStep:
        """Whole-shard counterpart of :meth:`DegreeCount.compute`."""
        if ctx.superstep == 0:
            outbox = ctx.send_to_all_neighbors(
                ctx.computed, np.ones(shard.num_vertices, dtype=np.float64)
            )
            votes = np.zeros(shard.num_vertices, dtype=bool)
            return BatchStep(values=ctx.values, outbox=outbox, votes=votes)

        values = np.where(ctx.computed, shard.degrees + messages.payload, ctx.values)
        votes = np.ones(shard.num_vertices, dtype=bool)
        return BatchStep(values=values, outbox=ctx.no_messages(), votes=votes)
