"""Degree counting — the smallest useful vertex program.

Used by the quickstart example and by engine tests as a minimal program
with one message exchange.
"""

from __future__ import annotations

from typing import Any

from repro.pregel.program import ComputeContext, VertexProgram
from repro.pregel.vertex import Vertex


class DegreeCount(VertexProgram):
    """Compute each vertex's in+out degree.

    Superstep 0: every vertex sends a unit message along its out-edges.
    Superstep 1: every vertex sums its out-degree and the received units
    (its in-degree) into its value, then halts.
    """

    def compute(self, vertex: Vertex, messages: list[Any], ctx: ComputeContext) -> None:
        if ctx.superstep == 0:
            ctx.send_message_to_all_neighbors(vertex, 1)
            return
        vertex.value = vertex.num_edges + sum(messages)
        vertex.vote_to_halt()
