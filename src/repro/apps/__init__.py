"""Analytical applications used in the paper's evaluation (Section V-F).

The paper measures how a Spinner partitioning speeds up three
representative Giraph applications relative to hash partitioning:

* Single-Source Shortest Paths / BFS (:mod:`repro.apps.sssp`),
* PageRank (:mod:`repro.apps.pagerank`), and
* Weakly Connected Components (:mod:`repro.apps.wcc`).

Each application ships in two equivalent implementations: a per-vertex
:class:`~repro.pregel.program.VertexProgram` for the dictionary engine and
an array-native :class:`~repro.pregel.vector_engine.BatchVertexProgram`
for the sharded vector engine.  :func:`make_app_program` builds either
variant by name, which is how the experiment harnesses and the CLI select
a runtime with ``--engine dict|vector``.
"""

from repro.apps.degree import BatchDegreeCount, DegreeCount
from repro.apps.pagerank import BatchPageRank, PageRank
from repro.apps.sssp import BatchShortestPaths, ShortestPaths
from repro.apps.wcc import BatchWeaklyConnectedComponents, WeaklyConnectedComponents

#: app name -> (dict-engine program, vector-engine program)
APP_PROGRAMS = {
    "degree": (DegreeCount, BatchDegreeCount),
    "pagerank": (PageRank, BatchPageRank),
    "sssp": (ShortestPaths, BatchShortestPaths),
    "wcc": (WeaklyConnectedComponents, BatchWeaklyConnectedComponents),
}


def make_app_program(app: str, engine: str = "dict", **kwargs):
    """Instantiate the named application for the chosen engine.

    ``engine`` is ``"dict"`` (per-vertex programs on
    :class:`~repro.pregel.engine.PregelEngine`) or ``"vector"`` (batch
    programs on :class:`~repro.pregel.vector_engine.VectorPregelEngine`);
    ``kwargs`` are forwarded to the program constructor.
    """
    try:
        dict_cls, batch_cls = APP_PROGRAMS[app]
    except KeyError:
        raise ValueError(f"unknown application {app!r}") from None
    if engine == "dict":
        return dict_cls(**kwargs)
    if engine == "vector":
        return batch_cls(**kwargs)
    raise ValueError(f"unknown engine {engine!r} (expected 'dict' or 'vector')")


__all__ = [
    "APP_PROGRAMS",
    "BatchDegreeCount",
    "BatchPageRank",
    "BatchShortestPaths",
    "BatchWeaklyConnectedComponents",
    "DegreeCount",
    "PageRank",
    "ShortestPaths",
    "WeaklyConnectedComponents",
    "make_app_program",
]
