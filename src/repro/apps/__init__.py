"""Analytical applications used in the paper's evaluation (Section V-F).

The paper measures how a Spinner partitioning speeds up three
representative Giraph applications relative to hash partitioning:

* Single-Source Shortest Paths / BFS (:mod:`repro.apps.sssp`),
* PageRank (:mod:`repro.apps.pagerank`), and
* Weakly Connected Components (:mod:`repro.apps.wcc`).

Each is implemented as a :class:`~repro.pregel.program.VertexProgram` so it
runs on the simulated Giraph engine; the engine's cost model then reports
per-superstep worker times and message counts for the Table IV and
Figure 9 reproductions.
"""

from repro.apps.degree import DegreeCount
from repro.apps.pagerank import PageRank
from repro.apps.sssp import ShortestPaths
from repro.apps.wcc import WeaklyConnectedComponents

__all__ = [
    "DegreeCount",
    "PageRank",
    "ShortestPaths",
    "WeaklyConnectedComponents",
]
