"""Weakly connected components via label flooding.

The "CC" application of Figure 9.  Every vertex starts with its own id as
component label and repeatedly adopts the minimum label among its own and
its neighbours'; when labels stop changing each component is identified by
its smallest vertex id.
"""

from __future__ import annotations

from typing import Any

from repro.pregel.program import ComputeContext, VertexProgram
from repro.pregel.vertex import Vertex


class WeaklyConnectedComponents(VertexProgram):
    """Minimum-label propagation for connected components."""

    def compute(self, vertex: Vertex, messages: list[Any], ctx: ComputeContext) -> None:
        if ctx.superstep == 0:
            vertex.value = vertex.vertex_id
            ctx.send_message_to_all_neighbors(vertex, vertex.value)
            vertex.vote_to_halt()
            return

        smallest = min(messages) if messages else vertex.value
        if smallest < vertex.value:
            vertex.value = smallest
            ctx.send_message_to_all_neighbors(vertex, vertex.value)
        vertex.vote_to_halt()
