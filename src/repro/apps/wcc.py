"""Weakly connected components via label flooding.

The "CC" application of Figure 9.  Every vertex starts with its own id as
component label and repeatedly adopts the minimum label among its own and
its neighbours'; when labels stop changing each component is identified by
its smallest vertex id.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.pregel.program import ComputeContext, VertexProgram
from repro.pregel.vector_engine import (
    BatchComputeContext,
    BatchStep,
    BatchVertexProgram,
    DeliveredMessages,
    ShardedGraph,
)
from repro.pregel.vertex import Vertex


class WeaklyConnectedComponents(VertexProgram):
    """Minimum-label propagation for connected components."""

    def compute(self, vertex: Vertex, messages: list[Any], ctx: ComputeContext) -> None:
        """Adopt the smallest component label seen and propagate changes."""
        if ctx.superstep == 0:
            vertex.value = vertex.vertex_id
            ctx.send_message_to_all_neighbors(vertex, vertex.value)
            vertex.vote_to_halt()
            return

        smallest = min(messages) if messages else vertex.value
        if smallest < vertex.value:
            vertex.value = smallest
            ctx.send_message_to_all_neighbors(vertex, vertex.value)
        vertex.vote_to_halt()


class BatchWeaklyConnectedComponents(BatchVertexProgram):
    """Array-native minimum-label propagation for the vector engine.

    Component labels are the original vertex ids (carried as floats in the
    dense value array), exactly like :class:`WeaklyConnectedComponents`.
    """

    combine = "min"

    def compute_batch(
        self,
        shard: ShardedGraph,
        messages: DeliveredMessages,
        ctx: BatchComputeContext,
    ) -> BatchStep:
        """Whole-shard counterpart of :meth:`WeaklyConnectedComponents.compute`."""
        votes = np.ones(shard.num_vertices, dtype=bool)
        if ctx.superstep == 0:
            values = shard.original_ids.astype(np.float64)
            outbox = ctx.send_to_all_neighbors(ctx.computed, values)
            return BatchStep(values=values, outbox=outbox, votes=votes)

        smallest = np.where(messages.has_message, messages.payload, ctx.values)
        improved = ctx.computed & (smallest < ctx.values)
        values = np.where(improved, smallest, ctx.values)
        outbox = ctx.send_to_all_neighbors(improved, values)
        return BatchStep(values=values, outbox=outbox, votes=votes)
