"""PageRank as a Pregel vertex program.

The fixed-iteration PageRank used in the paper's load-balance experiment
(Table IV runs 20 iterations on the Twitter graph) and in the application
runtime comparison (Figure 9).
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.pregel.aggregators import AggregatorRegistry, DoubleSumAggregator
from repro.pregel.program import ComputeContext, VertexProgram
from repro.pregel.vector_engine import (
    BatchComputeContext,
    BatchStep,
    BatchVertexProgram,
    DeliveredMessages,
    ShardedGraph,
)
from repro.pregel.vertex import Vertex

#: Aggregator holding the sum of all PageRank values (sanity check: ~ |V|).
TOTAL_RANK_AGGREGATOR = "pagerank_total"


class PageRank(VertexProgram):
    """Power-iteration PageRank with a fixed number of supersteps.

    Parameters
    ----------
    num_iterations:
        Number of rank-update supersteps (the paper uses 20).
    damping:
        Damping factor ``d`` of the PageRank recurrence.
    """

    def __init__(self, num_iterations: int = 20, damping: float = 0.85) -> None:
        if num_iterations < 1:
            raise ValueError("num_iterations must be at least 1")
        if not 0.0 < damping < 1.0:
            raise ValueError("damping must lie strictly between 0 and 1")
        self.num_iterations = num_iterations
        self.damping = damping

    def register_aggregators(self, aggregators: AggregatorRegistry) -> None:
        """Register the total-rank sanity aggregator."""
        aggregators.register(TOTAL_RANK_AGGREGATOR, DoubleSumAggregator())

    def compute(self, vertex: Vertex, messages: list[Any], ctx: ComputeContext) -> None:
        """One PageRank power-iteration step for a single vertex."""
        if ctx.superstep == 0:
            vertex.value = 1.0
        else:
            incoming = sum(messages)
            vertex.value = (1.0 - self.damping) + self.damping * incoming
        ctx.aggregate(TOTAL_RANK_AGGREGATOR, vertex.value)

        if ctx.superstep < self.num_iterations:
            if vertex.num_edges:
                share = vertex.value / vertex.num_edges
                ctx.send_message_to_all_neighbors(vertex, share)
        else:
            vertex.vote_to_halt()


class BatchPageRank(BatchVertexProgram):
    """Array-native PageRank for the vector engine.

    Same recurrence, aggregator and halting behaviour as :class:`PageRank`,
    computed for all vertices of a shard at once; runs on the two engines
    produce bit-identical values and aggregator histories.
    """

    combine = "sum"

    # Shared with the per-vertex variant so parameter validation and
    # aggregator registration cannot silently diverge between the two
    # contractually bit-equivalent implementations.
    __init__ = PageRank.__init__
    register_aggregators = PageRank.register_aggregators

    def compute_batch(
        self,
        shard: ShardedGraph,
        messages: DeliveredMessages,
        ctx: BatchComputeContext,
    ) -> BatchStep:
        """Whole-shard counterpart of :meth:`PageRank.compute`."""
        computed = ctx.computed
        if ctx.superstep == 0:
            values = np.where(computed, 1.0, ctx.values)
        else:
            updated = (1.0 - self.damping) + self.damping * messages.payload
            values = np.where(computed, updated, ctx.values)
        ctx.aggregate_sequential(TOTAL_RANK_AGGREGATOR, values, computed)

        if ctx.superstep < self.num_iterations:
            senders = computed & (shard.degrees > 0)
            shares = np.divide(
                values,
                shard.degrees,
                out=np.zeros(shard.num_vertices, dtype=np.float64),
                where=shard.degrees > 0,
            )
            outbox = ctx.send_to_all_neighbors(senders, shares)
            votes = np.zeros(shard.num_vertices, dtype=bool)
        else:
            outbox = ctx.no_messages()
            votes = np.ones(shard.num_vertices, dtype=bool)
        return BatchStep(values=values, outbox=outbox, votes=votes)
