"""Single-source shortest paths (BFS when all edges have unit weight).

The "SP" application of Figure 9.  Distances propagate from the source
vertex; every vertex keeps the smallest distance seen so far and only
forwards improvements, so the computation converges when distances
stabilize.
"""

from __future__ import annotations

import math
from typing import Any

import numpy as np

from repro.pregel.program import ComputeContext, VertexProgram
from repro.pregel.vector_engine import (
    BatchComputeContext,
    BatchStep,
    BatchVertexProgram,
    DeliveredMessages,
    Outbox,
    ShardedGraph,
)
from repro.pregel.vertex import Vertex


class ShortestPaths(VertexProgram):
    """Bellman-Ford-style SSSP on the Pregel model.

    Parameters
    ----------
    source:
        The source vertex id.
    use_edge_weights:
        When ``True`` edge values are used as distances; when ``False``
        every hop costs 1 (BFS, which is how the paper uses it).
    """

    def __init__(self, source: int, use_edge_weights: bool = False) -> None:
        self.source = source
        self.use_edge_weights = use_edge_weights

    def compute(self, vertex: Vertex, messages: list[Any], ctx: ComputeContext) -> None:
        """Relax the vertex distance from incoming messages and propagate."""
        if ctx.superstep == 0:
            vertex.value = 0.0 if vertex.vertex_id == self.source else math.inf

        smallest = min(messages) if messages else math.inf
        if ctx.superstep == 0 and vertex.vertex_id == self.source:
            smallest = 0.0

        if smallest < vertex.value or (
            ctx.superstep == 0 and vertex.vertex_id == self.source
        ):
            vertex.value = min(vertex.value, smallest)
            for target, edge_value in vertex.edges.items():
                cost = float(edge_value) if self.use_edge_weights else 1.0
                ctx.send_message(target, vertex.value + cost)
        vertex.vote_to_halt()


class BatchShortestPaths(BatchVertexProgram):
    """Array-native Bellman-Ford SSSP for the vector engine.

    Same semantics as :class:`ShortestPaths`: distances start at infinity
    (0 at the source), improvements propagate along out-edges with the
    edge weight or a unit cost, and every computed vertex votes to halt.
    """

    combine = "min"

    def __init__(self, source: int, use_edge_weights: bool = False) -> None:
        self.source = source
        self.use_edge_weights = use_edge_weights

    def compute_batch(
        self,
        shard: ShardedGraph,
        messages: DeliveredMessages,
        ctx: BatchComputeContext,
    ) -> BatchStep:
        """Whole-shard counterpart of :meth:`ShortestPaths.compute`."""
        num_vertices = shard.num_vertices
        is_source_start = np.zeros(num_vertices, dtype=bool)
        if ctx.superstep == 0:
            values = np.full(num_vertices, np.inf, dtype=np.float64)
            is_source_start[shard.original_ids == self.source] = True
            values[is_source_start] = 0.0
        else:
            values = ctx.values

        smallest = np.where(messages.has_message, messages.payload, np.inf)
        smallest[is_source_start] = 0.0

        improved = ctx.computed & ((smallest < values) | is_source_start)
        values = np.where(improved, np.minimum(values, smallest), values)

        edge_sources, edge_targets, edge_weights = ctx.edges_from(improved)
        if self.use_edge_weights:
            costs = edge_weights.astype(np.float64)
        else:
            costs = np.ones(edge_sources.shape[0], dtype=np.float64)
        outbox = Outbox(edge_sources, edge_targets, values[edge_sources] + costs)
        votes = np.ones(num_vertices, dtype=bool)
        return BatchStep(values=values, outbox=outbox, votes=votes)
