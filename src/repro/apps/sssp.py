"""Single-source shortest paths (BFS when all edges have unit weight).

The "SP" application of Figure 9.  Distances propagate from the source
vertex; every vertex keeps the smallest distance seen so far and only
forwards improvements, so the computation converges when distances
stabilize.
"""

from __future__ import annotations

import math
from typing import Any

from repro.pregel.program import ComputeContext, VertexProgram
from repro.pregel.vertex import Vertex


class ShortestPaths(VertexProgram):
    """Bellman-Ford-style SSSP on the Pregel model.

    Parameters
    ----------
    source:
        The source vertex id.
    use_edge_weights:
        When ``True`` edge values are used as distances; when ``False``
        every hop costs 1 (BFS, which is how the paper uses it).
    """

    def __init__(self, source: int, use_edge_weights: bool = False) -> None:
        self.source = source
        self.use_edge_weights = use_edge_weights

    def compute(self, vertex: Vertex, messages: list[Any], ctx: ComputeContext) -> None:
        if ctx.superstep == 0:
            vertex.value = 0.0 if vertex.vertex_id == self.source else math.inf

        smallest = min(messages) if messages else math.inf
        if ctx.superstep == 0 and vertex.vertex_id == self.source:
            smallest = 0.0

        if smallest < vertex.value or (
            ctx.superstep == 0 and vertex.vertex_id == self.source
        ):
            vertex.value = min(vertex.value, smallest)
            for target, edge_value in vertex.edges.items():
                cost = float(edge_value) if self.use_edge_weights else 1.0
                ctx.send_message(target, vertex.value + cost)
        vertex.vote_to_halt()
