"""Seed-for-seed equality of the CSR generators with the dict builders.

The ``*_csr`` generator twins replay the dictionary builders' exact
control flow (and therefore their random stream), so for any seed they
must produce the identical graph.  The dataset CSR loaders additionally
pin the full pipeline — skeleton generation plus the eq. (3) reciprocity
weighting — against ``ensure_undirected(load_dataset(...))``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph.conversion import ensure_undirected
from repro.graph.csr import CSRGraph
from repro.graph.datasets import dataset_names, load_dataset, load_dataset_csr
from repro.graph.generators import (
    barabasi_albert,
    barabasi_albert_csr,
    erdos_renyi,
    erdos_renyi_csr,
    powerlaw_cluster,
    powerlaw_cluster_csr,
    ring_lattice,
    ring_lattice_csr,
    watts_strogatz,
    watts_strogatz_csr,
)


def _sorted_triples(csr: CSRGraph):
    """Canonical (source, target, weight) triple arrays of a CSR graph."""
    sources = np.repeat(np.arange(csr.num_vertices, dtype=np.int64), np.diff(csr.indptr))
    order = np.lexsort((csr.weights, csr.indices, sources))
    return sources[order], csr.indices[order], csr.weights[order]


def _assert_same_graph(dict_graph, csr: CSRGraph) -> None:
    reference = CSRGraph.from_undirected(dict_graph)
    assert reference.num_vertices == csr.num_vertices
    assert reference.num_edges == csr.num_edges
    for a, b in zip(_sorted_triples(reference), _sorted_triples(csr)):
        assert np.array_equal(a, b)


def test_ring_lattice_csr_equals_dict():
    _assert_same_graph(ring_lattice(120, 6), ring_lattice_csr(120, 6))


@pytest.mark.parametrize("seed", [0, 7, 42])
def test_watts_strogatz_csr_equals_dict(seed):
    _assert_same_graph(
        watts_strogatz(240, 8, 0.3, seed=seed), watts_strogatz_csr(240, 8, 0.3, seed=seed)
    )


@pytest.mark.parametrize("seed", [0, 7, 42])
def test_erdos_renyi_csr_equals_dict(seed):
    _assert_same_graph(
        erdos_renyi(250, 700, seed=seed), erdos_renyi_csr(250, 700, seed=seed)
    )


@pytest.mark.parametrize("seed", [0, 7, 42])
def test_barabasi_albert_csr_equals_dict(seed):
    _assert_same_graph(
        barabasi_albert(260, 6, seed=seed), barabasi_albert_csr(260, 6, seed=seed)
    )


@pytest.mark.parametrize("seed", [0, 7, 42])
def test_powerlaw_cluster_csr_equals_dict(seed):
    _assert_same_graph(
        powerlaw_cluster(260, 6, 0.5, seed=seed),
        powerlaw_cluster_csr(260, 6, 0.5, seed=seed),
    )


def test_csr_generators_reject_bad_parameters():
    with pytest.raises(Exception):
        ring_lattice_csr(10, 3)  # odd degree
    with pytest.raises(Exception):
        watts_strogatz_csr(100, 6, 1.5, seed=0)  # beta out of range
    with pytest.raises(Exception):
        barabasi_albert_csr(5, 6, seed=0)  # too few vertices
    with pytest.raises(Exception):
        powerlaw_cluster_csr(100, 6, -0.1, seed=0)  # bad triangle probability


@pytest.mark.parametrize("name", dataset_names())
def test_dataset_csr_loader_equals_dict_pipeline(name):
    dict_graph = ensure_undirected(load_dataset(name, scale=0.04))
    csr_graph = load_dataset_csr(name, scale=0.04)
    _assert_same_graph(dict_graph, csr_graph)


def test_dataset_csr_loader_honours_seed_override():
    a = load_dataset_csr("TW", scale=0.04, seed=11)
    b = ensure_undirected(load_dataset("TW", scale=0.04, seed=11))
    _assert_same_graph(b, a)
    with pytest.raises(KeyError):
        load_dataset_csr("nope")


def test_dataset_csr_weights_follow_eq3():
    # Directed proxies produce weights in {1, 2}; undirected ones all 1.
    weighted = load_dataset_csr("TW", scale=0.04)
    assert set(np.unique(weighted.weights).tolist()) <= {1, 2}
    assert (weighted.weights == 2).any()
    unweighted = load_dataset_csr("TU", scale=0.04)
    assert set(np.unique(unweighted.weights).tolist()) == {1}
