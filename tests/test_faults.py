"""Tests for the deterministic fault-injection plans."""

import pytest

from repro.errors import ConfigurationError, ReproError
from repro.faults import FaultPlan, InjectedWorkerCrash, MessageFault, WorkerCrash


# ----------------------------------------------------------------------
# parsing
# ----------------------------------------------------------------------
def test_parse_crash_and_message_entries():
    plan = FaultPlan.parse("crash:2,msg:4:2")
    assert plan.crashes == (WorkerCrash(superstep=2, worker=0, times=1),)
    assert plan.message_faults == (MessageFault(superstep=4, failures=2, times=1),)


def test_parse_full_crash_entry():
    plan = FaultPlan.parse("crash:3:1:2")
    assert plan.crashes == (WorkerCrash(superstep=3, worker=1, times=2),)


def test_parse_ignores_blank_entries():
    plan = FaultPlan.parse("crash:1, ,msg:2")
    assert len(plan.crashes) == 1
    assert len(plan.message_faults) == 1


@pytest.mark.parametrize(
    "spec",
    [
        "boom:1",            # unknown kind
        "crash",             # missing superstep
        "crash:one",         # non-integer
        "crash:1:2:3:4",     # too many fields
        "msg:",              # empty field
        "",                  # no faults at all
        " , ",               # only blanks
    ],
)
def test_parse_rejects_malformed_specs(spec):
    with pytest.raises(ConfigurationError):
        FaultPlan.parse(spec)


# ----------------------------------------------------------------------
# entry validation
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "kwargs",
    [
        {"superstep": -1},
        {"superstep": 0, "worker": -1},
        {"superstep": 0, "times": 0},
    ],
)
def test_worker_crash_validation(kwargs):
    with pytest.raises(ConfigurationError):
        WorkerCrash(**kwargs)


@pytest.mark.parametrize(
    "kwargs",
    [
        {"superstep": -1},
        {"superstep": 0, "failures": 0},
        {"superstep": 0, "times": 0},
    ],
)
def test_message_fault_validation(kwargs):
    with pytest.raises(ConfigurationError):
        MessageFault(**kwargs)


@pytest.mark.parametrize(
    "kwargs",
    [
        {"max_recoveries": -1},
        {"max_delivery_retries": -1},
        {"backoff_base": 0.0},
    ],
)
def test_plan_validation(kwargs):
    with pytest.raises(ConfigurationError):
        FaultPlan(**kwargs)


# ----------------------------------------------------------------------
# firing budgets
# ----------------------------------------------------------------------
def test_crash_fires_consumes_budget():
    plan = FaultPlan(crashes=(WorkerCrash(superstep=2, worker=1, times=2),))
    assert not plan.crash_fires(2, 0)      # wrong worker
    assert not plan.crash_fires(1, 1)      # wrong superstep
    assert plan.crash_fires(2, 1)          # first firing
    assert plan.crash_fires(2, 1)          # second firing (times=2)
    assert not plan.crash_fires(2, 1)      # budget exhausted


def test_reset_rearms_budgets():
    plan = FaultPlan(crashes=(WorkerCrash(superstep=0),))
    assert plan.crash_fires(0, 0)
    assert not plan.crash_fires(0, 0)
    plan.reset()
    assert plan.crash_fires(0, 0)


def test_delivery_failures_sum_and_consume():
    plan = FaultPlan(
        message_faults=(
            MessageFault(superstep=3, failures=2),
            MessageFault(superstep=3, failures=1),
            MessageFault(superstep=5, failures=1),
        )
    )
    assert plan.delivery_failures(3) == 3  # both superstep-3 entries fire
    assert plan.delivery_failures(3) == 0  # budgets consumed
    assert plan.delivery_failures(5) == 1


# ----------------------------------------------------------------------
# backoff determinism
# ----------------------------------------------------------------------
def test_backoff_is_seeded_and_logged():
    a = FaultPlan(message_faults=(MessageFault(superstep=0),), seed=11)
    b = FaultPlan(message_faults=(MessageFault(superstep=0),), seed=11)
    delays_a = [a.backoff_delay(i) for i in range(4)]
    delays_b = [b.backoff_delay(i) for i in range(4)]
    assert delays_a == delays_b
    assert a.backoff_log == delays_a
    for attempt, delay in enumerate(delays_a):
        base = a.backoff_base * 2**attempt
        assert base * 0.5 <= delay < base


def test_different_seeds_differ():
    a = FaultPlan(message_faults=(MessageFault(superstep=0),), seed=1)
    b = FaultPlan(message_faults=(MessageFault(superstep=0),), seed=2)
    assert a.backoff_delay(0) != b.backoff_delay(0)


def test_reset_reseeds_backoff():
    plan = FaultPlan(message_faults=(MessageFault(superstep=0),), seed=3)
    first = plan.backoff_delay(0)
    plan.reset()
    assert plan.backoff_delay(0) == first
    assert plan.backoff_log == [first]


# ----------------------------------------------------------------------
# misc
# ----------------------------------------------------------------------
def test_is_empty():
    assert FaultPlan().is_empty
    assert not FaultPlan(crashes=(WorkerCrash(superstep=0),)).is_empty


def test_injected_crash_is_not_a_repro_error():
    # User code catching ReproError must never swallow the engine's
    # internal recovery signal.
    crash = InjectedWorkerCrash(3, 1)
    assert not isinstance(crash, ReproError)
    assert crash.superstep == 3
    assert crash.worker == 1
