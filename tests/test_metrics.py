"""Tests for the partitioning quality, stability and balance metrics."""

import numpy as np
import pytest

from repro.errors import InvalidPartitionCountError, PartitioningError
from repro.graph.csr import CSRGraph
from repro.graph.undirected import UndirectedGraph
from repro.metrics.balance import load_statistics, partition_load_statistics
from repro.metrics.quality import (
    cut_edges,
    global_score,
    locality,
    max_normalized_load,
    partition_loads,
    quality_summary,
)
from repro.metrics.reporting import format_series, format_table, improvement_percentage
from repro.metrics.stability import migration_volume, partitioning_difference


def test_locality_of_perfect_and_worst_partitionings(two_cliques):
    perfect = {v: 0 if v < 5 else 1 for v in two_cliques.vertices()}
    assert locality(two_cliques, perfect) == pytest.approx(20 / 21)
    all_same = {v: 0 for v in two_cliques.vertices()}
    assert locality(two_cliques, all_same) == 1.0


def test_locality_weighted_edges():
    graph = UndirectedGraph.from_edges([(0, 1, 2), (1, 2, 1)])
    assignment = {0: 0, 1: 0, 2: 1}
    assert locality(graph, assignment) == pytest.approx(2 / 3)


def test_cut_edges(two_cliques):
    perfect = {v: 0 if v < 5 else 1 for v in two_cliques.vertices()}
    assert cut_edges(two_cliques, perfect) == 1


def test_partition_loads_sum_to_total_degree(two_cliques):
    assignment = {v: v % 3 for v in two_cliques.vertices()}
    loads = partition_loads(two_cliques, assignment, 3)
    total_degree = sum(two_cliques.weighted_degree(v) for v in two_cliques.vertices())
    assert loads.sum() == pytest.approx(total_degree)


def test_rho_bounds(two_cliques):
    balanced = {v: 0 if v < 5 else 1 for v in two_cliques.vertices()}
    assert max_normalized_load(two_cliques, balanced, 2) == pytest.approx(1.0, abs=0.05)
    unbalanced = {v: 0 for v in two_cliques.vertices()}
    assert max_normalized_load(two_cliques, unbalanced, 2) == pytest.approx(2.0)


def test_invalid_partition_count_rejected(triangle_graph):
    with pytest.raises(InvalidPartitionCountError):
        partition_loads(triangle_graph, {0: 0, 1: 0, 2: 0}, 0)


def test_label_out_of_range_rejected(triangle_graph):
    with pytest.raises(PartitioningError):
        partition_loads(triangle_graph, {0: 0, 1: 5, 2: 0}, 2)


def test_csr_and_dict_metrics_agree(community_graph):
    csr = CSRGraph.from_undirected(community_graph)
    rng = np.random.default_rng(0)
    labels = rng.integers(4, size=csr.num_vertices)
    assignment = {int(orig): int(lab) for orig, lab in zip(csr.original_ids, labels)}
    assert locality(csr, labels) == pytest.approx(locality(community_graph, assignment))
    assert max_normalized_load(csr, labels, 4) == pytest.approx(
        max_normalized_load(community_graph, assignment, 4)
    )
    assert cut_edges(csr, labels) == cut_edges(community_graph, assignment)
    assert global_score(csr, labels, 4) == pytest.approx(
        global_score(community_graph, assignment, 4), rel=1e-9
    )


def test_csr_and_dict_metrics_agree_with_isolated_vertices():
    # Isolated vertices contribute no edges but must still appear in the
    # loads (with load 0) and in the global score (penalty-only term).
    graph = UndirectedGraph()
    for vertex in range(8):
        graph.add_vertex(vertex)
    graph.add_edge(0, 1, weight=2)
    graph.add_edge(1, 2)
    graph.add_edge(3, 4)
    csr = CSRGraph.from_undirected(graph)
    labels = np.array([0, 0, 1, 1, 0, 2, 1, 0])
    assignment = {int(orig): int(lab) for orig, lab in zip(csr.original_ids, labels)}
    assert locality(csr, labels) == pytest.approx(locality(graph, assignment))
    assert cut_edges(csr, labels) == cut_edges(graph, assignment)
    assert np.allclose(
        partition_loads(csr, labels, 3), partition_loads(graph, assignment, 3)
    )
    assert global_score(csr, labels, 3) == pytest.approx(
        global_score(graph, assignment, 3), rel=1e-9
    )


def test_csr_metrics_zero_weight_edges_behave_as_absent():
    # UndirectedGraph rejects zero weights, so the pinned behaviour is:
    # a zero-weight CSR edge contributes nothing to locality, loads or the
    # global score (same values as the graph without the edge) — but it
    # remains a countable edge for cut_edges, which is weight-oblivious.
    edges = np.asarray([[0, 1], [1, 2], [2, 3], [3, 0]])
    weights = np.asarray([2, 0, 1, 1])
    with_zero = CSRGraph.from_edge_list(edges, 4, weights=weights)
    without = CSRGraph.from_edge_list(edges[weights > 0], 4, weights=weights[weights > 0])
    labels = np.array([0, 0, 1, 1])
    assert locality(with_zero, labels) == pytest.approx(locality(without, labels))
    assert np.allclose(
        partition_loads(with_zero, labels, 2), partition_loads(without, labels, 2)
    )
    assert global_score(with_zero, labels, 2) == pytest.approx(
        global_score(without, labels, 2), rel=1e-9
    )
    # (1,2) crosses partitions: counted by cut_edges even at weight 0.
    assert cut_edges(without, labels) == 1
    assert cut_edges(with_zero, labels) == 2


def test_csr_cut_edges_self_loops_match_dict_semantics():
    # UndirectedGraph rejects self-loops outright; the pinned CSR contract
    # is that a self-loop is never a cut edge (its endpoints trivially
    # share a partition), so cut_edges equals the loop-free graph's count
    # and the `crossing.sum() // 2` halving stays exact (every half-edge
    # pair of a loop is either counted twice or not at all).
    edges = np.asarray([[0, 1], [1, 2], [2, 2], [0, 0]])
    with_loops = CSRGraph.from_edge_list(edges, 3)
    loop_free_graph = UndirectedGraph.from_edges([(0, 1), (1, 2)], num_vertices=3)
    for labels in (np.array([0, 1, 0]), np.array([0, 0, 1]), np.array([1, 1, 1])):
        assignment = {v: int(labels[v]) for v in range(3)}
        assert cut_edges(with_loops, labels) == cut_edges(loop_free_graph, assignment)
        # The doubled edge array always yields an even crossing count.
        sources, targets, _ = with_loops.edge_array()
        assert int((labels[sources] != labels[targets]).sum()) % 2 == 0


def test_global_score_prefers_better_partitionings(two_cliques):
    good = {v: 0 if v < 5 else 1 for v in two_cliques.vertices()}
    bad = {v: v % 2 for v in two_cliques.vertices()}
    assert global_score(two_cliques, good, 2) > global_score(two_cliques, bad, 2)


def test_quality_summary_row(two_cliques):
    summary = quality_summary(two_cliques, {v: 0 if v < 5 else 1 for v in two_cliques.vertices()}, 2)
    row = summary.as_row()
    assert row["k"] == 2
    assert 0 <= row["phi"] <= 1


def test_partitioning_difference_dict_and_array():
    before = {0: 0, 1: 1, 2: 1}
    after = {0: 0, 1: 0, 2: 1, 3: 2}
    assert partitioning_difference(before, after) == pytest.approx(1 / 3)
    assert partitioning_difference(np.array([0, 1, 1]), np.array([0, 0, 1])) == pytest.approx(1 / 3)


def test_partitioning_difference_shape_mismatch():
    with pytest.raises(PartitioningError):
        partitioning_difference(np.array([0, 1]), np.array([0, 1, 2]))


def test_migration_volume_with_weights():
    before = {0: 0, 1: 1}
    after = {0: 1, 1: 1}
    assert migration_volume(before, after) == 1.0
    assert migration_volume(before, after, weights={0: 7}) == 7.0


def test_load_statistics():
    stats = load_statistics([10, 20, 30])
    assert stats.mean == 20
    assert stats.imbalance == pytest.approx(1.5)
    assert stats.idle_fraction == pytest.approx(1 - 20 / 30)
    empty = load_statistics([])
    assert empty.imbalance == 1.0


def test_partition_load_statistics(two_cliques):
    assignment = {v: 0 if v < 5 else 1 for v in two_cliques.vertices()}
    stats = partition_load_statistics(two_cliques, assignment, 2)
    assert stats.maximum >= stats.minimum


def test_format_table_and_series():
    rows = [{"a": 1, "b": 0.5}, {"a": 2, "b": None}]
    text = format_table(rows, title="demo")
    assert "demo" in text and "a" in text and "0.500" in text
    assert "(empty)" in format_table([])
    series = format_series([1, 2], [3.0, 4.0], x_label="k", y_label="phi")
    assert "k" in series and "phi" in series


def test_improvement_percentage():
    assert improvement_percentage(10, 5) == pytest.approx(50.0)
    assert improvement_percentage(0, 5) == 0.0
