"""Integration tests for the experiment harnesses (quick scale).

These do not assert the paper's absolute numbers — the workloads are tiny
proxies — but they do check that every table/figure harness runs end to
end, produces the expected columns, and respects the qualitative shape the
paper reports (e.g. Spinner beats hash partitioning on locality).
"""

import pytest

from repro.experiments import ablations, fig3, fig4, fig5, fig6, fig7, fig8, fig9
from repro.experiments import table1, table3, table4
from repro.experiments.common import ExperimentScale


@pytest.fixture(scope="module")
def quick():
    return ExperimentScale.quick()


def test_table1_rows_and_shape(quick):
    rows = table1.run_table1(k_values=(2, 4), approaches=("ldg", "spinner"), scale=quick)
    assert len(rows) == 4
    assert {"approach", "k", "phi", "rho"} <= set(rows[0])
    spinner_rows = [r for r in rows if r["approach"] == "spinner"]
    # Locality decreases (or stays) as k grows.
    assert spinner_rows[0]["phi"] >= spinner_rows[1]["phi"] - 0.05


def test_partitioning_experiments_identical_on_csr_backend(quick):
    # The CSR backend must report the same rows as the dictionary backend:
    # generators are seed-for-seed equal and the partitioner kernels are
    # assignment-exact.  (METIS is excluded: it has no CSR kernel and runs
    # on a canonical re-materialization whose adjacency order differs.)
    csr_scale = ExperimentScale(
        graph_scale=quick.graph_scale, seed=quick.seed, graph_backend="csr"
    )
    approaches = ("wang", "ldg", "fennel", "spinner")
    assert table1.run_table1(
        k_values=(2, 4), approaches=approaches, scale=quick
    ) == table1.run_table1(k_values=(2, 4), approaches=approaches, scale=csr_scale)
    assert fig3.run_fig3(datasets=("TU",), k_values=(2, 8), scale=quick) == fig3.run_fig3(
        datasets=("TU",), k_values=(2, 8), scale=csr_scale
    )
    assert fig5.run_fig5(
        c_values=(1.02,), k_values=(4,), repeats=1, scale=quick
    ) == fig5.run_fig5(c_values=(1.02,), k_values=(4,), repeats=1, scale=csr_scale)
    assert table3.run_table3(
        datasets=("LJ", "TU"), k_values=(4,), scale=quick
    ) == table3.run_table3(datasets=("LJ", "TU"), k_values=(4,), scale=csr_scale)


def test_table1_csr_backend_runs_metis(quick):
    csr_scale = ExperimentScale(
        graph_scale=quick.graph_scale, seed=quick.seed, graph_backend="csr"
    )
    rows = table1.run_table1(k_values=(2,), approaches=("metis",), scale=csr_scale)
    assert rows[0]["rho"] >= 1.0 and 0.0 <= rows[0]["phi"] <= 1.0


def test_experiment_scale_rejects_unknown_backend():
    import pytest as _pytest

    from repro.errors import ConfigurationError

    with _pytest.raises(ConfigurationError):
        ExperimentScale(graph_backend="sparse")


def test_table3_reports_balance_for_each_graph(quick):
    rows = table3.run_table3(datasets=("LJ", "TU"), k_values=(4,), scale=quick)
    assert [row["graph"] for row in rows] == ["LJ", "TU"]
    assert all(row["rho"] >= 1.0 for row in rows)
    assert all(row["rho"] < 1.6 for row in rows)


def test_table4_spinner_reduces_mean_superstep_time(quick):
    rows = table4.run_table4(
        num_workers=4, num_partitions=4, pagerank_iterations=4, scale=quick
    )
    by_approach = {row["approach"]: row for row in rows}
    assert by_approach["spinner"]["mean"] < by_approach["random"]["mean"]


def test_fig3_spinner_beats_hash_locality(quick):
    rows = fig3.run_fig3(datasets=("TU",), k_values=(2, 8), scale=quick)
    assert all(row["phi"] > row["phi_hash"] for row in rows)
    assert all(row["improvement"] > 1.0 for row in rows)


def test_fig4_metrics_evolve_towards_balance_and_locality(quick):
    rows = fig4.run_fig4(dataset="TW", num_partitions=4, max_iterations=20, scale=quick)
    assert len(rows) == 20
    assert rows[-1]["phi"] > rows[0]["phi"]
    assert rows[-1]["score"] > rows[0]["score"]
    halted = fig4.halting_iteration(rows)
    assert 0 <= halted <= rows[-1]["iteration"]


def test_fig5_rho_tracks_c(quick):
    rows = fig5.run_fig5(c_values=(1.02, 1.20), k_values=(4,), repeats=1, scale=quick)
    by_c = {row["c"]: row for row in rows}
    # Larger allowed capacity converges at least as fast and allows more
    # unbalance.
    assert by_c[1.20]["iterations"] <= by_c[1.02]["iterations"] + 2
    assert by_c[1.20]["rho_mean"] >= by_c[1.02]["rho_mean"] - 0.05


def test_fig6_scalability_trends(quick):
    rows_a = fig6.run_fig6a(vertex_counts=(200, 800), degree=6, num_partitions=4, scale=quick)
    assert rows_a[-1]["runtime_ms"] >= rows_a[0]["runtime_ms"] * 0.8
    rows_b = fig6.run_fig6b(worker_counts=(2, 8), num_vertices=200, degree=6,
                            num_partitions=4, scale=quick)
    assert rows_b[-1]["simulated_time"] < rows_b[0]["simulated_time"]
    rows_c = fig6.run_fig6c(partition_counts=(2, 16), num_vertices=400, degree=6, scale=quick)
    assert len(rows_c) == 2


def test_fig7_adaptation_saves_work_and_moves_fewer_vertices(quick):
    rows = fig7.run_fig7(change_fractions=(0.01, 0.2), num_partitions=4, scale=quick)
    for row in rows:
        assert row["moved_adaptive_pct"] < row["moved_scratch_pct"]
        assert row["time_savings_pct"] > 0
        assert row["message_savings_pct"] > 0


def test_fig8_elastic_adaptation(quick):
    rows = fig8.run_fig8(new_partition_counts=(1, 4), initial_partitions=4, scale=quick)
    for row in rows:
        assert row["moved_adaptive_pct"] < row["moved_scratch_pct"]


def test_fig9_spinner_placement_speeds_up_applications(quick):
    rows = fig9.run_fig9(workloads=(("TU", 4),), applications=("PR", "CC"), scale=quick)
    for row in rows:
        assert row["improvement_pct"] > 0
        assert row["remote_msgs_spinner"] < row["remote_msgs_hash"]


def test_quality_ablations(quick):
    rows = ablations.run_quality_ablations(num_partitions=4, dataset="TU", scale=quick)
    by_variant = {row["variant"]: row for row in rows}
    # Removing the balance penalty degrades balance.
    assert by_variant["no_balance_penalty"]["rho"] >= by_variant["baseline"]["rho"]


def test_conversion_ablation(quick):
    rows = ablations.run_conversion_ablation(num_partitions=4, scale=quick)
    assert {row["variant"] for row in rows} == {"weighted", "naive"}


def test_worker_local_ablation():
    rows = ablations.run_worker_local_ablation(num_partitions=3)
    assert {row["variant"] for row in rows} == {"async_worker_loads", "sync_only"}
