"""Unit tests for the directed graph structure."""

import pytest

from repro.errors import GraphError, VertexNotFoundError
from repro.graph.digraph import DiGraph


def test_add_edge_creates_vertices():
    graph = DiGraph()
    assert graph.add_edge(1, 2)
    assert graph.num_vertices == 2
    assert graph.num_edges == 1
    assert graph.has_edge(1, 2)
    assert not graph.has_edge(2, 1)


def test_parallel_edges_are_collapsed():
    graph = DiGraph()
    assert graph.add_edge(0, 1)
    assert not graph.add_edge(0, 1)
    assert graph.num_edges == 1


def test_add_edges_returns_new_count():
    graph = DiGraph()
    added = graph.add_edges([(0, 1), (1, 2), (0, 1)])
    assert added == 2


def test_remove_edge():
    graph = DiGraph.from_edges([(0, 1), (1, 2)])
    assert graph.remove_edge(0, 1)
    assert not graph.remove_edge(0, 1)
    assert graph.num_edges == 1


def test_successors_and_degree():
    graph = DiGraph.from_edges([(0, 1), (0, 2), (1, 2)])
    assert graph.successors(0) == {1, 2}
    assert graph.out_degree(0) == 2
    assert graph.out_degree(2) == 0


def test_successors_of_missing_vertex_raises():
    graph = DiGraph()
    with pytest.raises(VertexNotFoundError):
        graph.successors(7)


def test_negative_vertex_id_rejected():
    graph = DiGraph()
    with pytest.raises(GraphError):
        graph.add_vertex(-1)


def test_from_edges_with_isolated_vertices():
    graph = DiGraph.from_edges([(0, 1)], num_vertices=5)
    assert graph.num_vertices == 5
    assert graph.out_degree(4) == 0


def test_edges_iteration_matches_count():
    graph = DiGraph.from_edges([(0, 1), (1, 2), (2, 0), (2, 1)])
    assert len(list(graph.edges())) == graph.num_edges


def test_copy_is_independent():
    graph = DiGraph.from_edges([(0, 1)])
    clone = graph.copy()
    clone.add_edge(1, 2)
    assert graph.num_edges == 1
    assert clone.num_edges == 2


def test_contains_and_len():
    graph = DiGraph.from_edges([(0, 1)])
    assert 0 in graph
    assert 5 not in graph
    assert len(graph) == 2
