"""Tests for dynamic graph change streams."""

import pytest

from repro.errors import GraphError
from repro.graph.dynamic import (
    EdgeArrivalStream,
    GraphDelta,
    bursty_new_edges,
    hub_birth_edges,
    random_new_edges,
)
from repro.graph.generators import erdos_renyi
from repro.graph.undirected import UndirectedGraph


@pytest.fixture
def full_graph():
    return erdos_renyi(150, 600, seed=11)


def test_snapshot_plus_withheld_covers_graph(full_graph):
    stream = EdgeArrivalStream(full_graph, holdout_fraction=0.3, seed=1)
    assert stream.num_snapshot_edges + stream.num_withheld_edges == full_graph.num_edges
    snapshot = stream.snapshot()
    assert snapshot.num_vertices == full_graph.num_vertices
    assert snapshot.num_edges == stream.num_snapshot_edges


def test_delta_releases_requested_fraction(full_graph):
    stream = EdgeArrivalStream(full_graph, holdout_fraction=0.4, seed=1)
    delta = stream.delta(fraction_of_snapshot=0.05)
    expected = round(stream.num_snapshot_edges * 0.05)
    assert abs(delta.num_new_edges - expected) <= 1


def test_delta_consumes_withheld_edges(full_graph):
    stream = EdgeArrivalStream(full_graph, holdout_fraction=0.4, seed=1)
    before = stream.num_withheld_edges
    delta = stream.delta(num_edges=10)
    assert delta.num_new_edges == 10
    assert stream.num_withheld_edges == before - 10
    stream.reset()
    assert stream.num_withheld_edges == before


def test_delta_requires_exactly_one_size_argument(full_graph):
    stream = EdgeArrivalStream(full_graph, holdout_fraction=0.4, seed=1)
    with pytest.raises(GraphError):
        stream.delta()
    with pytest.raises(GraphError):
        stream.delta(fraction_of_snapshot=0.1, num_edges=5)


def test_apply_delta_adds_edges(full_graph):
    stream = EdgeArrivalStream(full_graph, holdout_fraction=0.3, seed=1)
    snapshot = stream.snapshot()
    delta = stream.delta(num_edges=20)
    before = snapshot.num_edges
    delta.apply(snapshot)
    assert snapshot.num_edges == before + 20


def test_invalid_holdout_fraction(full_graph):
    with pytest.raises(GraphError):
        EdgeArrivalStream(full_graph, holdout_fraction=0.0)
    with pytest.raises(GraphError):
        EdgeArrivalStream(full_graph, holdout_fraction=1.0)


def test_empty_delta(full_graph):
    stream = EdgeArrivalStream(full_graph, holdout_fraction=0.3, seed=1)
    delta = stream.delta(num_edges=0)
    assert delta.num_new_edges == 0
    assert stream.num_withheld_edges == round(full_graph.num_edges * 0.3)
    snapshot = stream.snapshot()
    before = snapshot.num_edges
    delta.apply(snapshot)
    assert snapshot.num_edges == before


def test_zero_fraction_delta_is_empty(full_graph):
    stream = EdgeArrivalStream(full_graph, holdout_fraction=0.3, seed=1)
    assert stream.delta(fraction_of_snapshot=0.0).num_new_edges == 0


def test_over_request_is_capped_at_withheld_edges(full_graph):
    stream = EdgeArrivalStream(full_graph, holdout_fraction=0.2, seed=1)
    withheld = stream.num_withheld_edges
    delta = stream.delta(num_edges=withheld + 1000)
    assert delta.num_new_edges == withheld
    assert stream.num_withheld_edges == 0


def test_exhausted_stream_yields_empty_deltas(full_graph):
    stream = EdgeArrivalStream(full_graph, holdout_fraction=0.2, seed=1)
    stream.delta(num_edges=stream.num_withheld_edges)
    follow_up = stream.delta(fraction_of_snapshot=0.5)
    assert follow_up.num_new_edges == 0
    assert stream.num_withheld_edges == 0


def test_reset_replays_the_same_edges_in_order(full_graph):
    stream = EdgeArrivalStream(full_graph, holdout_fraction=0.4, seed=1)
    first = stream.delta(num_edges=25).added_edges
    second = stream.delta(num_edges=10).added_edges
    stream.reset()
    replay = stream.delta(num_edges=35).added_edges
    assert replay == first + second


def test_withheld_accounting_across_batches(full_graph):
    stream = EdgeArrivalStream(full_graph, holdout_fraction=0.4, seed=1)
    total = stream.num_withheld_edges
    released = 0
    while stream.num_withheld_edges:
        released += stream.delta(num_edges=17).num_new_edges
        assert stream.num_withheld_edges == total - released
    assert released == total


def test_apply_skips_already_present_edges(full_graph):
    stream = EdgeArrivalStream(full_graph, holdout_fraction=0.3, seed=1)
    snapshot = stream.snapshot()
    delta = stream.delta(num_edges=15)
    delta.apply(snapshot)
    before = snapshot.num_edges
    # Re-applying the same delta must be a no-op (edges already exist).
    delta.apply(snapshot)
    assert snapshot.num_edges == before


def test_random_new_edges_are_new(full_graph):
    delta = random_new_edges(full_graph, fraction=0.05, seed=3)
    for u, v, _w in delta.added_edges:
        assert not full_graph.has_edge(u, v)


def test_random_new_edges_zero_fraction(full_graph):
    assert random_new_edges(full_graph, fraction=0.0, seed=3).num_new_edges == 0


def test_random_new_edges_invalid_fraction(full_graph):
    with pytest.raises(GraphError):
        random_new_edges(full_graph, fraction=1.5, seed=3)


def test_graph_delta_new_vertices():
    delta = GraphDelta(added_edges=[(100, 101, 1)], added_vertices={100, 101})
    graph = erdos_renyi(10, 20, seed=0)
    delta.apply(graph)
    assert graph.has_edge(100, 101)


def test_bursty_new_edges_concentrate_on_hotspots(full_graph):
    delta = bursty_new_edges(full_graph, fraction=0.05, seed=3, num_hotspots=4)
    assert delta.num_new_edges > 0
    assert not delta.added_vertices
    endpoints = set()
    for u, v, weight in delta.added_edges:
        assert weight == 1
        assert u != v
        assert not full_graph.has_edge(u, v)
        endpoints.add(u)
    # Every edge has one endpoint among the (at most) 4 hotspots.
    assert len(endpoints) <= 4
    # No duplicate pairs within the delta.
    pairs = {(min(u, v), max(u, v)) for u, v, _w in delta.added_edges}
    assert len(pairs) == delta.num_new_edges


def test_bursty_new_edges_deterministic(full_graph):
    first = bursty_new_edges(full_graph, fraction=0.05, seed=9)
    second = bursty_new_edges(full_graph, fraction=0.05, seed=9)
    assert first.added_edges == second.added_edges


def test_bursty_new_edges_validation(full_graph):
    with pytest.raises(GraphError):
        bursty_new_edges(full_graph, fraction=2.0, seed=1)
    with pytest.raises(GraphError):
        bursty_new_edges(full_graph, fraction=0.1, seed=1, num_hotspots=0)
    assert bursty_new_edges(full_graph, fraction=0.0, seed=1).num_new_edges == 0
    assert bursty_new_edges(UndirectedGraph(), fraction=0.5, seed=1).num_new_edges == 0


def test_hub_birth_edges_create_new_hubs(full_graph):
    max_existing = max(full_graph.vertices())
    delta = hub_birth_edges(full_graph, fraction=0.1, seed=3, num_hubs=3)
    assert delta.num_new_edges > 0
    assert len(delta.added_vertices) == 3
    assert all(hub > max_existing for hub in delta.added_vertices)
    for u, v, _w in delta.added_edges:
        assert u in delta.added_vertices
        assert v in full_graph
    # Applying the delta materializes high-degree hubs.
    graph = full_graph
    before = graph.num_edges
    delta.apply(graph)
    assert graph.num_edges == before + delta.num_new_edges


def test_hub_birth_edges_deterministic(full_graph):
    first = hub_birth_edges(full_graph, fraction=0.1, seed=5)
    second = hub_birth_edges(full_graph, fraction=0.1, seed=5)
    assert first.added_edges == second.added_edges
    assert first.added_vertices == second.added_vertices


def test_hub_birth_edges_validation(full_graph):
    with pytest.raises(GraphError):
        hub_birth_edges(full_graph, fraction=-0.1, seed=1)
    with pytest.raises(GraphError):
        hub_birth_edges(full_graph, fraction=0.1, seed=1, num_hubs=0)
    assert hub_birth_edges(full_graph, fraction=0.0, seed=1).num_new_edges == 0
    assert hub_birth_edges(UndirectedGraph(), fraction=0.5, seed=1).num_new_edges == 0
