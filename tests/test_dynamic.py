"""Tests for dynamic graph change streams."""

import pytest

from repro.errors import GraphError
from repro.graph.dynamic import EdgeArrivalStream, GraphDelta, random_new_edges
from repro.graph.generators import erdos_renyi


@pytest.fixture
def full_graph():
    return erdos_renyi(150, 600, seed=11)


def test_snapshot_plus_withheld_covers_graph(full_graph):
    stream = EdgeArrivalStream(full_graph, holdout_fraction=0.3, seed=1)
    assert stream.num_snapshot_edges + stream.num_withheld_edges == full_graph.num_edges
    snapshot = stream.snapshot()
    assert snapshot.num_vertices == full_graph.num_vertices
    assert snapshot.num_edges == stream.num_snapshot_edges


def test_delta_releases_requested_fraction(full_graph):
    stream = EdgeArrivalStream(full_graph, holdout_fraction=0.4, seed=1)
    delta = stream.delta(fraction_of_snapshot=0.05)
    expected = round(stream.num_snapshot_edges * 0.05)
    assert abs(delta.num_new_edges - expected) <= 1


def test_delta_consumes_withheld_edges(full_graph):
    stream = EdgeArrivalStream(full_graph, holdout_fraction=0.4, seed=1)
    before = stream.num_withheld_edges
    delta = stream.delta(num_edges=10)
    assert delta.num_new_edges == 10
    assert stream.num_withheld_edges == before - 10
    stream.reset()
    assert stream.num_withheld_edges == before


def test_delta_requires_exactly_one_size_argument(full_graph):
    stream = EdgeArrivalStream(full_graph, holdout_fraction=0.4, seed=1)
    with pytest.raises(GraphError):
        stream.delta()
    with pytest.raises(GraphError):
        stream.delta(fraction_of_snapshot=0.1, num_edges=5)


def test_apply_delta_adds_edges(full_graph):
    stream = EdgeArrivalStream(full_graph, holdout_fraction=0.3, seed=1)
    snapshot = stream.snapshot()
    delta = stream.delta(num_edges=20)
    before = snapshot.num_edges
    delta.apply(snapshot)
    assert snapshot.num_edges == before + 20


def test_invalid_holdout_fraction(full_graph):
    with pytest.raises(GraphError):
        EdgeArrivalStream(full_graph, holdout_fraction=0.0)
    with pytest.raises(GraphError):
        EdgeArrivalStream(full_graph, holdout_fraction=1.0)


def test_random_new_edges_are_new(full_graph):
    delta = random_new_edges(full_graph, fraction=0.05, seed=3)
    for u, v, _w in delta.added_edges:
        assert not full_graph.has_edge(u, v)


def test_graph_delta_new_vertices():
    delta = GraphDelta(added_edges=[(100, 101, 1)], added_vertices={100, 101})
    graph = erdos_renyi(10, 20, seed=0)
    delta.apply(graph)
    assert graph.has_edge(100, 101)
