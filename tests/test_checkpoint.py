"""Tests for the checkpoint subsystem (snapshots, loading, resilience)."""

import pickle

import numpy as np
import pytest

from repro.apps import make_app_program
from repro.errors import CheckpointError, PregelError
from repro.graph.digraph import DiGraph
from repro.pregel import (
    CheckpointManager,
    PregelEngine,
    VectorPregelEngine,
    load_latest_snapshot,
    load_snapshot,
    resume_from_checkpoint,
)
from repro.pregel.checkpoint import DICT_KIND, VECTOR_KIND


def small_graph() -> DiGraph:
    edges = [(i, (i * 3 + 1) % 40) for i in range(40)]
    edges += [(i, (i + 9) % 40) for i in range(40)]
    return DiGraph.from_edges(edges)


def run_dict(tmp_path, interval=2, **engine_kwargs):
    engine = PregelEngine(
        num_workers=3,
        checkpoint_interval=interval,
        checkpoint_dir=tmp_path,
        **engine_kwargs,
    )
    program = make_app_program("pagerank", "dict", num_iterations=6)
    return engine.run_on_digraph(program, small_graph())


def run_vector(tmp_path, interval=2, **engine_kwargs):
    engine = VectorPregelEngine(
        num_workers=3,
        checkpoint_interval=interval,
        checkpoint_dir=tmp_path,
        **engine_kwargs,
    )
    program = make_app_program("pagerank", "vector", num_iterations=6)
    return engine.run_on_digraph(program, small_graph())


# ----------------------------------------------------------------------
# manager validation
# ----------------------------------------------------------------------
def test_manager_rejects_bad_interval(tmp_path):
    with pytest.raises(CheckpointError):
        CheckpointManager(tmp_path, 0, DICT_KIND)


def test_manager_rejects_unknown_kind(tmp_path):
    with pytest.raises(CheckpointError):
        CheckpointManager(tmp_path, 1, "parquet")


def test_manager_rejects_file_as_directory(tmp_path):
    target = tmp_path / "not-a-dir"
    target.write_text("occupied")
    with pytest.raises(CheckpointError):
        CheckpointManager(target, 1, DICT_KIND)


def test_manager_creates_missing_directory(tmp_path):
    target = tmp_path / "nested" / "checkpoints"
    CheckpointManager(target, 1, VECTOR_KIND)
    assert target.is_dir()


def test_engine_rejects_partial_checkpoint_config(tmp_path):
    with pytest.raises(PregelError):
        PregelEngine(checkpoint_interval=2)
    with pytest.raises(PregelError):
        VectorPregelEngine(checkpoint_dir=str(tmp_path))


# ----------------------------------------------------------------------
# snapshots on disk
# ----------------------------------------------------------------------
def test_dict_run_writes_interval_snapshots(tmp_path):
    result = run_dict(tmp_path, interval=2)
    files = sorted(p.name for p in tmp_path.glob("checkpoint_*.pkl"))
    # PageRank(6 iterations) runs supersteps 0..7 -> checkpoints at 0,2,4,6.
    assert files == [f"checkpoint_{s:08d}.pkl" for s in (0, 2, 4, 6)]
    assert result.stats.checkpoints_written == 4


def test_vector_run_writes_shard_once(tmp_path):
    result = run_vector(tmp_path, interval=3)
    assert (tmp_path / "shard.npz").exists()
    files = sorted(p.name for p in tmp_path.glob("checkpoint_*.npz"))
    assert files == [f"checkpoint_{s:08d}.npz" for s in (0, 3, 6)]
    assert result.stats.checkpoints_written == 3


def test_no_temporary_files_left_behind(tmp_path):
    run_dict(tmp_path)
    leftovers = [p for p in tmp_path.iterdir() if ".tmp." in p.name]
    assert leftovers == []


# ----------------------------------------------------------------------
# loading
# ----------------------------------------------------------------------
def test_load_latest_picks_highest_superstep(tmp_path):
    run_dict(tmp_path, interval=2)
    snapshot = load_latest_snapshot(tmp_path)
    assert snapshot.superstep == 6
    assert snapshot.kind == DICT_KIND
    assert snapshot.interval == 2


def test_load_latest_skips_corrupt_newest(tmp_path):
    run_dict(tmp_path, interval=2)
    newest = tmp_path / "checkpoint_00000006.pkl"
    newest.write_bytes(b"\x80corrupt")
    snapshot = load_latest_snapshot(tmp_path)
    assert snapshot.superstep == 4


def test_load_latest_skips_truncated_vector_snapshot(tmp_path):
    run_vector(tmp_path, interval=3)
    newest = tmp_path / "checkpoint_00000006.npz"
    newest.write_bytes(newest.read_bytes()[: len(newest.read_bytes()) // 2])
    snapshot = load_latest_snapshot(tmp_path)
    assert snapshot.superstep == 3
    assert snapshot.kind == VECTOR_KIND


def test_load_latest_fails_on_empty_directory(tmp_path):
    with pytest.raises(CheckpointError):
        load_latest_snapshot(tmp_path)


def test_load_snapshot_rejects_foreign_pickle(tmp_path):
    path = tmp_path / "checkpoint_00000001.pkl"
    path.write_bytes(pickle.dumps({"unrelated": True}))
    with pytest.raises(CheckpointError):
        load_snapshot(path)


def test_load_snapshot_rejects_unknown_suffix(tmp_path):
    path = tmp_path / "checkpoint.json"
    path.write_text("{}")
    with pytest.raises(CheckpointError):
        load_snapshot(path)


def test_resume_fails_without_snapshots(tmp_path):
    with pytest.raises(CheckpointError):
        resume_from_checkpoint(tmp_path)


# ----------------------------------------------------------------------
# offline resume (clean runs, both kinds)
# ----------------------------------------------------------------------
def test_dict_resume_matches_uninterrupted_run(tmp_path):
    baseline = PregelEngine(num_workers=3).run_on_digraph(
        make_app_program("pagerank", "dict", num_iterations=6), small_graph()
    )
    run_dict(tmp_path, interval=2)
    resumed = resume_from_checkpoint(tmp_path)
    assert resumed.vertex_values() == baseline.vertex_values()
    assert resumed.num_supersteps == baseline.num_supersteps
    assert resumed.halt_reason == baseline.halt_reason
    assert resumed.aggregator_history == baseline.aggregator_history
    assert resumed.stats.superstep_stats == baseline.stats.superstep_stats


def test_vector_resume_matches_uninterrupted_run(tmp_path):
    baseline = VectorPregelEngine(num_workers=3).run_on_digraph(
        make_app_program("pagerank", "vector", num_iterations=6), small_graph()
    )
    run_vector(tmp_path, interval=2)
    resumed = resume_from_checkpoint(tmp_path)
    assert np.array_equal(resumed.values, baseline.values)
    assert np.array_equal(resumed.original_ids, baseline.original_ids)
    assert resumed.num_supersteps == baseline.num_supersteps
    assert resumed.halt_reason == baseline.halt_reason
    assert resumed.aggregator_history == baseline.aggregator_history
    assert resumed.stats.superstep_stats == baseline.stats.superstep_stats


def test_vector_resume_requires_shard_file(tmp_path):
    run_vector(tmp_path, interval=2)
    (tmp_path / "shard.npz").unlink()
    with pytest.raises(CheckpointError):
        resume_from_checkpoint(tmp_path)
