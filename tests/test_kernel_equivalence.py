"""Equivalence suite for the two FastSpinner kernels.

The frontier kernel must be *byte-identical* to the dense reference
kernel — same labels, same history, same message counts — for every seed,
every ``k`` and every graph family.  These tests pin that contract over
the generator zoo and cross-check the vectorized data path (direct
DiGraph→CSR conversion, array-native initializers) against the dict-based
implementations they replace.
"""

import numpy as np
import pytest

from repro.core.config import SpinnerConfig
from repro.core.elastic import expand_labels, resize_labels, shrink_labels
from repro.core.fast import FastSpinner
from repro.core.incremental import (
    incremental_initial_assignment,
    incremental_initial_labels,
)
from repro.core.spinner import SpinnerPartitioner
from repro.errors import InvalidPartitionCountError, PartitioningError
from repro.graph.conversion import to_weighted_csr, to_weighted_undirected
from repro.graph.csr import CSRGraph
from repro.graph.digraph import DiGraph
from repro.graph.generators import (
    barabasi_albert,
    erdos_renyi,
    powerlaw_cluster,
    watts_strogatz,
)
from repro.metrics.quality import locality

GENERATOR_ZOO = {
    "watts_strogatz": lambda: watts_strogatz(200, degree=8, beta=0.3, seed=5),
    "barabasi_albert": lambda: barabasi_albert(220, edges_per_vertex=4, seed=6),
    "erdos_renyi": lambda: erdos_renyi(240, num_edges=1400, seed=7),
    "powerlaw_cluster": lambda: powerlaw_cluster(
        260, edges_per_vertex=5, triangle_probability=0.5, seed=8
    ),
}


def _history_rows(result):
    return [
        (record.iteration, record.phi, record.rho, record.score, record.migrations)
        for record in result.history
    ]


def _run_both(graph, num_partitions, config):
    dense = FastSpinner(config.with_options(kernel="dense")).partition(
        graph, num_partitions
    )
    frontier = FastSpinner(config.with_options(kernel="frontier")).partition(
        graph, num_partitions
    )
    return dense, frontier


@pytest.mark.parametrize("generator", sorted(GENERATOR_ZOO))
@pytest.mark.parametrize("num_partitions", [2, 4, 8])
def test_frontier_kernel_is_byte_identical(generator, num_partitions):
    graph = GENERATOR_ZOO[generator]()
    config = SpinnerConfig(seed=13, max_iterations=30)
    dense, frontier = _run_both(graph, num_partitions, config)
    assert np.array_equal(dense.labels, frontier.labels)
    assert dense.iterations == frontier.iterations
    assert dense.halted_by == frontier.halted_by
    assert dense.phi == frontier.phi
    assert dense.rho == frontier.rho
    assert dense.total_messages == frontier.total_messages
    assert _history_rows(dense) == _history_rows(frontier)


def test_frontier_kernel_identical_on_directed_input(tiny_twitter):
    config = SpinnerConfig(seed=4, max_iterations=25)
    dense, frontier = _run_both(tiny_twitter, 4, config)
    assert np.array_equal(dense.labels, frontier.labels)
    assert _history_rows(dense) == _history_rows(frontier)


def test_frontier_kernel_identical_without_ablation_switches(community_graph):
    config = SpinnerConfig(
        seed=9,
        max_iterations=20,
        balance_penalty=False,
        probabilistic_migration=False,
        prefer_current_label=False,
    )
    dense, frontier = _run_both(community_graph, 4, config)
    assert np.array_equal(dense.labels, frontier.labels)
    assert _history_rows(dense) == _history_rows(frontier)


def test_frontier_adaptation_matches_dense(tiny_tuenti, quick_config):
    initial = FastSpinner(quick_config).partition(tiny_tuenti, 4, track_history=False)
    assignment = initial.to_assignment()
    dense = FastSpinner(quick_config.with_options(kernel="dense"))
    frontier = FastSpinner(quick_config.with_options(kernel="frontier"))
    dense_inc = dense.adapt_to_graph_changes(tiny_tuenti, assignment, 4)
    frontier_inc = frontier.adapt_to_graph_changes(tiny_tuenti, assignment, 4)
    assert np.array_equal(dense_inc.labels, frontier_inc.labels)
    dense_el = dense.adapt_to_partition_change(tiny_tuenti, assignment, 4, 6)
    frontier_el = frontier.adapt_to_partition_change(tiny_tuenti, assignment, 4, 6)
    assert np.array_equal(dense_el.labels, frontier_el.labels)


def test_agrees_with_pregel_spinner_on_small_graphs(two_cliques):
    config = SpinnerConfig(seed=1, max_iterations=60, additional_capacity=1.3)
    fast = FastSpinner(config).partition(two_cliques, 2)
    pregel = SpinnerPartitioner(config, num_workers=2).partition(two_cliques, 2)
    pregel_phi = locality(two_cliques, pregel.assignment)
    # Both implementations must separate the two cliques cleanly.
    assert fast.phi >= 0.85
    assert pregel_phi >= 0.85


def test_agreement_with_pregel_on_community_graph(community_graph):
    config = SpinnerConfig(seed=3, max_iterations=25)
    fast = FastSpinner(config).partition(community_graph, 4)
    pregel = SpinnerPartitioner(config, num_workers=2).partition(community_graph, 4)
    pregel_phi = locality(community_graph, pregel.assignment)
    # Same algorithm, different execution model: quality must agree closely.
    assert abs(fast.phi - pregel_phi) < 0.2


# ----------------------------------------------------------------------
# vectorized data-path equivalence
# ----------------------------------------------------------------------
def _csr_as_dict(csr):
    return {
        int(csr.original_ids[dense]): sorted(
            zip(
                csr.original_ids[csr.neighbors(dense)].tolist(),
                csr.neighbor_weights(dense).tolist(),
            )
        )
        for dense in range(csr.num_vertices)
    }


@pytest.mark.parametrize("direction_aware", [True, False])
def test_direct_digraph_csr_conversion_matches_dict_path(direction_aware):
    graph = DiGraph.from_edges(
        [(0, 1), (1, 0), (1, 2), (2, 3), (3, 2), (3, 4), (5, 5), (7, 2)]
    )
    graph.add_vertex(9)  # isolated vertex must survive the conversion
    direct = to_weighted_csr(graph, direction_aware)
    if direction_aware:
        via_dict = CSRGraph.from_undirected(to_weighted_undirected(graph))
    else:
        from repro.graph.conversion import undirected_view_unweighted

        via_dict = CSRGraph.from_undirected(undirected_view_unweighted(graph))
    assert np.array_equal(direct.original_ids, via_dict.original_ids)
    assert np.array_equal(direct.weighted_degrees, via_dict.weighted_degrees)
    assert direct.total_weight == via_dict.total_weight
    assert _csr_as_dict(direct) == _csr_as_dict(via_dict)


def test_array_incremental_initializer_matches_dict_path(tiny_tuenti):
    csr = CSRGraph.from_undirected(tiny_tuenti)
    vertices = sorted(tiny_tuenti.vertices())
    # Half the graph keeps previous labels; the rest count as new arrivals.
    previous = {v: v % 3 for v in vertices[: len(vertices) // 2]}
    previous[10_000_000] = 1  # stale vertex: ignored by both paths
    expected = incremental_initial_assignment(tiny_tuenti, previous, 3)
    got = incremental_initial_labels(csr, previous, 3)
    assert {
        int(original): int(label)
        for original, label in zip(csr.original_ids, got)
    } == expected


def test_array_incremental_initializer_validates_labels():
    csr = CSRGraph.from_edge_list([(0, 1)], num_vertices=2)
    with pytest.raises(PartitioningError):
        incremental_initial_labels(csr, {0: 5, 1: 0}, 2)


def test_expand_labels_moves_expected_fraction():
    labels = np.arange(4000, dtype=np.int64) % 4
    expanded = expand_labels(labels, 4, 8, seed=1)
    moved = expanded != labels
    assert moved.mean() == pytest.approx(0.5, abs=0.05)  # n/(k+n) = 4/8
    assert expanded.min() >= 0 and expanded.max() < 8
    assert set(np.unique(expanded[moved]).tolist()) <= set(range(4, 8))


def test_shrink_labels_empties_removed_partitions():
    labels = np.arange(400, dtype=np.int64) % 4
    shrunk = shrink_labels(labels, 4, 2, seed=1)
    assert shrunk.min() >= 0 and shrunk.max() < 2
    unchanged = labels < 2
    assert np.array_equal(shrunk[unchanged], labels[unchanged])


def test_resize_labels_dispatch_and_validation():
    labels = np.array([0, 1], dtype=np.int64)
    same = resize_labels(labels, 2, 2)
    assert np.array_equal(same, labels)
    same[0] = 1  # returned array is a copy
    assert labels[0] == 0
    assert resize_labels(labels, 2, 1, seed=0).max() == 0
    with pytest.raises(InvalidPartitionCountError):
        expand_labels(labels, 2, 2)
    with pytest.raises(InvalidPartitionCountError):
        shrink_labels(labels, 2, 0)
    with pytest.raises(PartitioningError):
        expand_labels(np.array([5]), 2, 4)


def test_vectorized_mapping_initializer_missing_vertex_message():
    graph = DiGraph.from_edges([(10, 20), (20, 30)])
    spinner = FastSpinner(SpinnerConfig(seed=0, max_iterations=2))
    with pytest.raises(PartitioningError, match="initial labels miss vertex 30"):
        spinner.partition(graph, 2, initial_labels={10: 0, 20: 1})


def test_vectorized_mapping_initializer_non_contiguous_ids(quick_config):
    graph = DiGraph.from_edges([(100, 7), (7, 100), (7, 55), (55, 200)])
    mapping = {100: 0, 7: 1, 55: 0, 200: 1}
    result = FastSpinner(quick_config).partition(
        graph, 2, initial_labels=mapping, track_history=False
    )
    assert result.labels.shape[0] == 4
    assert set(result.to_assignment()) == set(mapping)
