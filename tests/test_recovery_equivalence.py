"""The recovery bit-exactness contract.

A run that crashes (by deterministic fault injection) and recovers from a
checkpoint must produce **byte-identical** results to the uninterrupted
run: vertex values / labels, superstep count, halt reason, aggregator
histories and per-superstep worker statistics.  These tests pin that
contract for all four applications and for the Spinner partitioning
itself, on both runtimes, plus the offline abort-then-resume path.
"""

import numpy as np
import pytest

from repro.apps import make_app_program
from repro.core.config import SpinnerConfig
from repro.core.spinner import SpinnerPartitioner
from repro.errors import RecoveryAbortedError
from repro.faults import FaultPlan, MessageFault, WorkerCrash
from repro.graph.digraph import DiGraph
from repro.pregel import PregelEngine, VectorPregelEngine, resume_from_checkpoint

APPS = {
    "degree": {},
    "pagerank": {"num_iterations": 6},
    "sssp": {"source": 0},
    "wcc": {},
}

NUM_WORKERS = 3


def small_graph() -> DiGraph:
    edges = [(i, (i * 3 + 1) % 60) for i in range(60)]
    edges += [(i, (i + 11) % 60) for i in range(60)]
    edges += [(0, i) for i in range(1, 8)]
    return DiGraph.from_edges(edges)


def crashy_plan(crash_superstep: int = 2) -> FaultPlan:
    return FaultPlan(
        crashes=(WorkerCrash(superstep=crash_superstep, worker=1),),
        message_faults=(MessageFault(superstep=crash_superstep + 1, failures=2),),
        seed=5,
    )


def run_app(app: str, engine_kind: str, tmp_path=None, fault_plan=None):
    program = make_app_program(app, engine_kind, **APPS[app])
    kwargs = {}
    if tmp_path is not None:
        kwargs = {
            "checkpoint_interval": 2,
            "checkpoint_dir": tmp_path,
            "fault_plan": fault_plan,
        }
    if engine_kind == "dict":
        engine = PregelEngine(num_workers=NUM_WORKERS, **kwargs)
    else:
        engine = VectorPregelEngine(num_workers=NUM_WORKERS, **kwargs)
    return engine.run_on_digraph(program, small_graph())


def assert_equivalent(recovered, baseline, engine_kind: str) -> None:
    if engine_kind == "dict":
        assert recovered.vertex_values() == baseline.vertex_values()
    else:
        assert np.array_equal(recovered.values, baseline.values)
        assert np.array_equal(recovered.original_ids, baseline.original_ids)
    assert recovered.num_supersteps == baseline.num_supersteps
    assert recovered.halt_reason == baseline.halt_reason
    assert recovered.aggregator_history == baseline.aggregator_history
    assert recovered.stats.superstep_stats == baseline.stats.superstep_stats
    assert recovered.stats.messages_dropped == baseline.stats.messages_dropped


# ----------------------------------------------------------------------
# crash + recover == uninterrupted, all apps, both engines
# ----------------------------------------------------------------------
@pytest.mark.parametrize("app", sorted(APPS))
@pytest.mark.parametrize("engine_kind", ["dict", "vector"])
def test_crash_recovery_is_bit_exact(app, engine_kind, tmp_path):
    baseline = run_app(app, engine_kind)
    # DegreeCount converges after superstep 1, so fault it earlier.
    plan = crashy_plan(crash_superstep=0 if app == "degree" else 2)
    recovered = run_app(app, engine_kind, tmp_path, plan)
    assert recovered.stats.recoveries == 1
    assert recovered.stats.delivery_retries == 2
    assert recovered.stats.checkpoints_written >= 1
    assert_equivalent(recovered, baseline, engine_kind)


@pytest.mark.parametrize("engine_kind", ["dict", "vector"])
def test_repeated_crashes_within_budget_recover(engine_kind, tmp_path):
    plan = FaultPlan(
        crashes=(WorkerCrash(superstep=2, worker=0, times=2),), max_recoveries=3
    )
    baseline = run_app("wcc", engine_kind)
    recovered = run_app("wcc", engine_kind, tmp_path, plan)
    assert recovered.stats.recoveries == 2
    assert_equivalent(recovered, baseline, engine_kind)


@pytest.mark.parametrize("engine_kind", ["dict", "vector"])
def test_crash_budget_exhaustion_aborts(engine_kind, tmp_path):
    plan = FaultPlan(crashes=(WorkerCrash(superstep=2),), max_recoveries=0)
    with pytest.raises(RecoveryAbortedError) as excinfo:
        run_app("pagerank", engine_kind, tmp_path, plan)
    assert excinfo.value.superstep == 2
    assert excinfo.value.recoveries == 0


@pytest.mark.parametrize("engine_kind", ["dict", "vector"])
def test_delivery_retry_exhaustion_escalates_to_crash_and_recovers(
    engine_kind, tmp_path
):
    # 5 failures > max_delivery_retries=3: the message fault escalates to
    # a crash, recovery replays the superstep, and the second pass is
    # clean because the fault's firing budget is spent.
    plan = FaultPlan(
        message_faults=(MessageFault(superstep=3, failures=5),),
        max_delivery_retries=3,
    )
    baseline = run_app("sssp", engine_kind)
    recovered = run_app("sssp", engine_kind, tmp_path, plan)
    assert recovered.stats.recoveries == 1
    assert recovered.stats.delivery_retries == 3
    assert_equivalent(recovered, baseline, engine_kind)


# ----------------------------------------------------------------------
# abort, then offline resume_from_checkpoint == uninterrupted
# ----------------------------------------------------------------------
@pytest.mark.parametrize("app", ["pagerank", "wcc"])
@pytest.mark.parametrize("engine_kind", ["dict", "vector"])
def test_offline_resume_after_abort_is_bit_exact(app, engine_kind, tmp_path):
    baseline = run_app(app, engine_kind)
    plan = FaultPlan(crashes=(WorkerCrash(superstep=2),), max_recoveries=0)
    with pytest.raises(RecoveryAbortedError):
        run_app(app, engine_kind, tmp_path, plan)
    resumed = resume_from_checkpoint(tmp_path)
    assert_equivalent(resumed, baseline, engine_kind)


# ----------------------------------------------------------------------
# the Spinner partitioning itself (SpinnerProgram / BatchSpinnerProgram)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("engine_kind", ["dict", "vector"])
def test_spinner_partitioner_recovery_is_bit_exact(engine_kind, tmp_path):
    graph = small_graph()
    clean_config = SpinnerConfig(seed=7, max_iterations=12, engine=engine_kind)
    baseline = SpinnerPartitioner(
        config=clean_config, num_workers=NUM_WORKERS
    ).partition(graph, 4)

    faulted_config = clean_config.with_options(
        checkpoint_interval=3,
        checkpoint_dir=str(tmp_path),
        fault_plan=crashy_plan(),
    )
    recovered = SpinnerPartitioner(
        config=faulted_config, num_workers=NUM_WORKERS
    ).partition(graph, 4)

    assert recovered.assignment == baseline.assignment
    assert recovered.iterations == baseline.iterations
    assert recovered.phi == baseline.phi
    assert recovered.rho == baseline.rho
    assert [r.score for r in recovered.history] == [r.score for r in baseline.history]
    assert recovered.pregel_result.halt_reason == baseline.pregel_result.halt_reason
    assert (
        recovered.pregel_result.aggregator_history
        == baseline.pregel_result.aggregator_history
    )
    assert (
        recovered.pregel_result.stats.superstep_stats
        == baseline.pregel_result.stats.superstep_stats
    )
    assert recovered.pregel_result.stats.recoveries == 1


def test_spinner_dict_and_vector_recovery_agree(tmp_path):
    # The cross-engine bit-exactness contract survives fault injection:
    # dict-with-crash == vector-with-crash == clean.
    graph = small_graph()
    assignments = {}
    for engine_kind in ("dict", "vector"):
        config = SpinnerConfig(
            seed=7,
            max_iterations=10,
            engine=engine_kind,
            checkpoint_interval=2,
            checkpoint_dir=str(tmp_path / engine_kind),
            fault_plan=FaultPlan(crashes=(WorkerCrash(superstep=4, worker=2),)),
        )
        result = SpinnerPartitioner(config=config, num_workers=NUM_WORKERS).partition(
            graph, 3
        )
        assignments[engine_kind] = result.assignment
    assert assignments["dict"] == assignments["vector"]
