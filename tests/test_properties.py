"""Property-based tests (hypothesis) for core invariants."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import SpinnerConfig
from repro.core.elastic import expand_assignment, shrink_assignment
from repro.core.fast import FastSpinner
from repro.core.halting import HaltingTracker
from repro.core.incremental import incremental_initial_assignment
from repro.core.scoring import migration_probability
from repro.graph.conversion import to_weighted_undirected
from repro.graph.csr import CSRGraph
from repro.graph.digraph import DiGraph
from repro.graph.undirected import UndirectedGraph
from repro.metrics.quality import locality, max_normalized_load, partition_loads
from repro.metrics.stability import partitioning_difference


# ----------------------------------------------------------------------
# strategies
# ----------------------------------------------------------------------
@st.composite
def edge_lists(draw, max_vertices=30, max_edges=80):
    """Random undirected edge lists over a small vertex range."""
    n = draw(st.integers(min_value=2, max_value=max_vertices))
    num_edges = draw(st.integers(min_value=1, max_value=max_edges))
    edges = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=n - 1),
                st.integers(min_value=0, max_value=n - 1),
            ),
            min_size=num_edges,
            max_size=num_edges,
        )
    )
    return n, [(u, v) for u, v in edges if u != v]


@st.composite
def directed_graphs(draw):
    n, edges = draw(edge_lists())
    graph = DiGraph.from_edges(edges, num_vertices=n)
    return graph


@st.composite
def undirected_graphs(draw):
    n, edges = draw(edge_lists())
    graph = UndirectedGraph()
    for v in range(n):
        graph.add_vertex(v)
    for u, v in edges:
        if not graph.has_edge(u, v):
            graph.add_edge(u, v)
    return graph


# ----------------------------------------------------------------------
# conversion invariants (eq. 3)
# ----------------------------------------------------------------------
@given(directed_graphs())
@settings(max_examples=40, deadline=None)
def test_conversion_preserves_directed_edge_count(graph):
    undirected = to_weighted_undirected(graph)
    self_loops = sum(1 for u, v in graph.edges() if u == v)
    assert undirected.total_weight == graph.num_edges - self_loops
    for _u, _v, weight in undirected.edges():
        assert weight in (1, 2)


@given(undirected_graphs())
@settings(max_examples=40, deadline=None)
def test_csr_roundtrip_preserves_structure(graph):
    csr = CSRGraph.from_undirected(graph)
    assert csr.num_edges == graph.num_edges
    assert int(csr.weighted_degrees.sum()) == sum(
        graph.weighted_degree(v) for v in graph.vertices()
    )


# ----------------------------------------------------------------------
# metric invariants
# ----------------------------------------------------------------------
@given(undirected_graphs(), st.integers(min_value=1, max_value=6), st.integers(0, 2**31 - 1))
@settings(max_examples=40, deadline=None)
def test_metric_ranges_for_random_assignments(graph, k, seed):
    rng = np.random.default_rng(seed)
    assignment = {v: int(rng.integers(k)) for v in graph.vertices()}
    phi = locality(graph, assignment)
    rho = max_normalized_load(graph, assignment, k)
    loads = partition_loads(graph, assignment, k)
    assert 0.0 <= phi <= 1.0
    assert rho >= 1.0 - 1e-9
    assert rho <= k + 1e-9
    assert loads.min() >= 0


@given(undirected_graphs())
@settings(max_examples=30, deadline=None)
def test_single_partition_has_perfect_locality(graph):
    assignment = {v: 0 for v in graph.vertices()}
    assert locality(graph, assignment) == 1.0
    assert max_normalized_load(graph, assignment, 1) == 1.0


@given(undirected_graphs(), st.integers(min_value=2, max_value=5))
@settings(max_examples=30, deadline=None)
def test_partitioning_difference_identity(graph, k):
    assignment = {v: v % k for v in graph.vertices()}
    assert partitioning_difference(assignment, assignment) == 0.0


# ----------------------------------------------------------------------
# Spinner invariants
# ----------------------------------------------------------------------
@given(undirected_graphs(), st.integers(min_value=1, max_value=5), st.integers(0, 1000))
@settings(max_examples=25, deadline=None)
def test_fast_spinner_outputs_valid_partitionings(graph, k, seed):
    config = SpinnerConfig(seed=seed, max_iterations=15)
    result = FastSpinner(config).partition(graph, k, track_history=False)
    assert result.labels.shape[0] == graph.num_vertices
    assert result.labels.min() >= 0 and result.labels.max() < k
    assert 0.0 <= result.phi <= 1.0
    assert result.rho >= 1.0 - 1e-9


@given(st.floats(min_value=-100, max_value=1000), st.floats(min_value=0, max_value=1000))
def test_migration_probability_is_a_probability(remaining, candidate_load):
    p = migration_probability(remaining, candidate_load)
    assert 0.0 <= p <= 1.0


@given(st.lists(st.floats(min_value=-1e6, max_value=1e6, allow_nan=False), min_size=1, max_size=60))
def test_halting_tracker_never_crashes_and_eventually_halts(scores):
    tracker = HaltingTracker(threshold=0.001, window=3)
    for score in scores:
        tracker.update(score)
    # Feeding a constant score long enough must trigger the steady state.
    for _ in range(5):
        halted = tracker.update(scores[-1])
    assert halted


# ----------------------------------------------------------------------
# elastic / incremental invariants
# ----------------------------------------------------------------------
@given(
    st.dictionaries(st.integers(0, 200), st.integers(0, 3), min_size=1, max_size=100),
    st.integers(min_value=1, max_value=4),
    st.integers(0, 2**31 - 1),
)
@settings(max_examples=40, deadline=None)
def test_expand_assignment_labels_in_range(assignment, added, seed):
    new_k = 4 + added
    expanded = expand_assignment(assignment, 4, new_k, seed=seed)
    assert set(expanded) == set(assignment)
    assert all(0 <= label < new_k for label in expanded.values())
    # Vertices that stay keep their exact previous label.
    for vertex, label in expanded.items():
        if label < 4:
            assert label == assignment[vertex]


@given(
    st.dictionaries(st.integers(0, 200), st.integers(0, 3), min_size=1, max_size=100),
    st.integers(0, 2**31 - 1),
)
@settings(max_examples=40, deadline=None)
def test_shrink_assignment_labels_in_range(assignment, seed):
    shrunk = shrink_assignment(assignment, 4, 2, seed=seed)
    assert set(shrunk) == set(assignment)
    assert all(0 <= label < 2 for label in shrunk.values())


@given(undirected_graphs(), st.integers(min_value=1, max_value=4))
@settings(max_examples=30, deadline=None)
def test_incremental_assignment_is_complete(graph, k):
    vertices = list(graph.vertices())
    previous = {v: v % k for v in vertices[: len(vertices) // 2]}
    assignment = incremental_initial_assignment(graph, previous, k)
    assert set(assignment) == set(vertices)
    assert all(0 <= label < k for label in assignment.values())
    for vertex, label in previous.items():
        assert assignment[vertex] == label
