"""Tests for incremental and elastic repartitioning."""

import pytest

from repro.core.config import SpinnerConfig
from repro.core.elastic import expand_assignment, resize_assignment, shrink_assignment
from repro.core.fast import FastSpinner
from repro.core.incremental import affected_vertices, incremental_initial_assignment
from repro.core.spinner import SpinnerPartitioner
from repro.errors import InvalidPartitionCountError
from repro.graph.dynamic import EdgeArrivalStream
from repro.metrics.stability import partitioning_difference


def test_incremental_assignment_preserves_existing_labels(tiny_tuenti):
    previous = {v: v % 4 for v in tiny_tuenti.vertices()}
    assignment = incremental_initial_assignment(tiny_tuenti, previous, 4)
    assert assignment == previous


def test_incremental_assignment_places_new_vertices_least_loaded(two_cliques):
    previous = {v: 0 for v in range(5)}  # only half the graph is labelled
    assignment = incremental_initial_assignment(two_cliques, previous, 2)
    new_labels = [assignment[v] for v in range(5, 10)]
    assert all(label == 1 for label in new_labels)


def test_affected_vertices(two_cliques):
    affected = affected_vertices(two_cliques, [(0, 7, 1), (99, 3, 1)])
    assert affected == {0, 7, 3}


def test_expand_assignment_moves_expected_fraction():
    previous = {v: v % 4 for v in range(4000)}
    expanded = expand_assignment(previous, 4, 8, seed=1)
    moved = sum(1 for v in previous if expanded[v] != previous[v])
    assert moved / len(previous) == pytest.approx(0.5, abs=0.05)  # n/(k+n) = 4/8
    assert all(0 <= label < 8 for label in expanded.values())
    moved_targets = {expanded[v] for v in previous if expanded[v] != previous[v]}
    assert moved_targets <= set(range(4, 8))


def test_shrink_assignment_empties_removed_partitions():
    previous = {v: v % 4 for v in range(400)}
    shrunk = shrink_assignment(previous, 4, 2, seed=1)
    assert all(0 <= label < 2 for label in shrunk.values())
    unchanged = [v for v in previous if previous[v] < 2]
    assert all(shrunk[v] == previous[v] for v in unchanged)


def test_resize_dispatch():
    previous = {0: 0, 1: 1}
    assert resize_assignment(previous, 2, 2) == previous
    assert set(resize_assignment(previous, 2, 4, seed=0).values()) <= set(range(4))
    assert set(resize_assignment(previous, 2, 1, seed=0).values()) == {0}


def test_expand_shrink_validation():
    with pytest.raises(InvalidPartitionCountError):
        expand_assignment({0: 0}, 4, 4)
    with pytest.raises(InvalidPartitionCountError):
        shrink_assignment({0: 0}, 4, 4)
    with pytest.raises(InvalidPartitionCountError):
        shrink_assignment({0: 0}, 4, 0)


def test_fast_incremental_adaptation_is_stable(tiny_tuenti, quick_config):
    stream = EdgeArrivalStream(tiny_tuenti, holdout_fraction=0.2, seed=3)
    snapshot = stream.snapshot()
    spinner = FastSpinner(quick_config)
    initial = spinner.partition(snapshot, 4, track_history=False)
    initial_assignment = initial.to_assignment()

    changed = stream.snapshot()
    stream.delta(fraction_of_snapshot=0.02).apply(changed)
    adapted = spinner.adapt_to_graph_changes(changed, initial_assignment, 4)
    scratch = FastSpinner(quick_config.with_options(seed=99)).partition(changed, 4)

    moved_adapted = partitioning_difference(initial_assignment, adapted.to_assignment())
    moved_scratch = partitioning_difference(initial_assignment, scratch.to_assignment())
    assert moved_adapted < moved_scratch
    assert adapted.iterations <= scratch.iterations + 2


def test_fast_elastic_adaptation(tiny_tuenti, quick_config):
    spinner = FastSpinner(quick_config)
    initial = spinner.partition(tiny_tuenti, 4, track_history=False)
    elastic = spinner.adapt_to_partition_change(
        tiny_tuenti, initial.to_assignment(), 4, 6
    )
    assert elastic.num_partitions == 6
    assert elastic.labels.max() < 6
    assert elastic.rho < 2.0


def test_pregel_incremental_and_elastic(tiny_tuenti):
    config = SpinnerConfig(seed=2, max_iterations=15)
    partitioner = SpinnerPartitioner(config, num_workers=2)
    initial = partitioner.partition(tiny_tuenti, 3)
    incremental = partitioner.adapt_to_graph_changes(
        tiny_tuenti, initial.assignment, 3
    )
    assert set(incremental.assignment) == set(tiny_tuenti.vertices())
    elastic = partitioner.adapt_to_partition_change(
        tiny_tuenti, initial.assignment, 3, 4
    )
    assert max(elastic.assignment.values()) <= 3
