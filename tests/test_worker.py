"""Tests for workers and vertex placement."""

import pytest

from repro.errors import PregelError
from repro.pregel.worker import (
    build_workers,
    hash_placement,
    partition_placement,
)


def test_hash_placement_range():
    place = hash_placement(4)
    assert all(0 <= place(v) < 4 for v in range(100))


def test_hash_placement_rejects_zero_workers():
    with pytest.raises(PregelError):
        hash_placement(0)


def test_hash_placement_rejects_negative_vertex_ids():
    place = hash_placement(4)
    with pytest.raises(PregelError, match="non-negative"):
        place(-1)


def test_partition_placement_uses_assignment():
    place = partition_placement({0: 2, 1: 2, 2: 0}, num_workers=3)
    assert place(0) == 2
    assert place(1) == 2
    assert place(2) == 0
    # Unknown vertices fall back to hash placement.
    assert 0 <= place(99) < 3


def test_partition_placement_wraps_large_labels():
    place = partition_placement({0: 7}, num_workers=3)
    assert place(0) == 7 % 3


def test_build_workers_places_every_vertex():
    workers, worker_of = build_workers(range(10), 3, hash_placement(3))
    assert sum(w.num_vertices for w in workers) == 10
    assert set(worker_of) == set(range(10))
    for vertex, worker_id in worker_of.items():
        assert vertex in workers[worker_id].vertex_ids


def test_build_workers_rejects_out_of_range_placement():
    with pytest.raises(PregelError):
        build_workers(range(5), 2, lambda v: 5)
