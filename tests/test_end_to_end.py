"""End-to-end integration tests across the whole stack.

These mirror how a downstream user would chain the pieces: generate (or
load) a graph, partition it with Spinner, verify quality against a
baseline, feed the partitioning into the simulated Giraph cluster, and
adapt it as the graph evolves.
"""

import pytest

from repro.apps.pagerank import PageRank
from repro.core.config import SpinnerConfig
from repro.core.fast import FastSpinner
from repro.core.spinner import SpinnerPartitioner
from repro.experiments.giraph import run_application
from repro.graph.conversion import ensure_undirected
from repro.graph.datasets import load_dataset
from repro.graph.dynamic import EdgeArrivalStream
from repro.metrics.quality import locality, max_normalized_load
from repro.metrics.stability import partitioning_difference
from repro.partitioners.hashing import HashPartitioner


@pytest.fixture(scope="module")
def social_graph():
    return ensure_undirected(load_dataset("TU", scale=0.06))


def test_partition_then_accelerate_application(social_graph):
    config = SpinnerConfig(seed=5, max_iterations=60)
    assignment = FastSpinner(config).partition(social_graph, 4).to_assignment()

    hash_run = run_application(PageRank(5), social_graph, num_workers=4)
    spinner_run = run_application(
        PageRank(5), social_graph, num_workers=4, assignment=assignment
    )
    assert spinner_run.remote_messages < hash_run.remote_messages
    assert spinner_run.simulated_time < hash_run.simulated_time


def test_full_dynamic_lifecycle(social_graph):
    config = SpinnerConfig(seed=5, max_iterations=60)
    spinner = FastSpinner(config)
    stream = EdgeArrivalStream(social_graph, holdout_fraction=0.25, seed=5)
    snapshot = stream.snapshot()

    initial = spinner.partition(snapshot, 4)
    assert initial.phi > locality(snapshot, HashPartitioner().partition(snapshot, 4))

    # Graph grows: adapt incrementally.
    grown = stream.snapshot()
    stream.delta(fraction_of_snapshot=0.05).apply(grown)
    adapted = spinner.adapt_to_graph_changes(grown, initial.to_assignment(), 4)
    moved = partitioning_difference(initial.to_assignment(), adapted.to_assignment())
    assert moved < 0.7

    # Cluster grows: adapt elastically to 6 partitions.
    elastic = spinner.adapt_to_partition_change(grown, adapted.to_assignment(), 4, 6)
    assert elastic.num_partitions == 6
    assert max_normalized_load(grown, elastic.to_assignment(), 6) < 2.0


def test_pregel_and_fast_spinner_reach_similar_quality(two_cliques):
    config = SpinnerConfig(seed=2, max_iterations=40)
    fast = FastSpinner(config).partition(two_cliques, 2)
    pregel = SpinnerPartitioner(config, num_workers=2).partition(two_cliques, 2)
    assert abs(fast.phi - pregel.phi) < 0.2
    assert abs(fast.rho - pregel.rho) < 0.5
