"""Randomized equivalence fuzz suite: mmap storage tier vs. the RAM tier.

The out-of-core tier's contract is *byte-identity*: an on-disk CSR store
— whether written by :func:`~repro.graph.mmap_store.save_csr` or built by
the streaming external sort (:func:`~repro.graph.io.ingest_edge_chunks`)
— must hold exactly the arrays :meth:`CSRGraph.from_edge_list` would
build, and every consumer (FastSpinner's two kernels, the LDG / Fennel /
Wang baselines, the quality metrics) must produce byte-identical output
on either tier, for every streaming chunk size including the degenerate
``chunk = 1``.

The suite fuzzes seeded random graphs across the shapes that stress the
chunk-boundary logic: the empty graph, a single vertex, self-loops,
isolated vertices, duplicate (parallel) edges, and heavily degree-skewed
graphs whose hub adjacency spans many chunks.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import SpinnerConfig
from repro.core.fast import FastSpinner
from repro.graph.csr import CSRGraph
from repro.graph.io import ingest_edge_chunks
from repro.graph.mmap_store import open_store, save_csr
from repro.metrics.quality import quality_summary
from repro.partitioners.fennel import FennelPartitioner
from repro.partitioners.ldg import LinearDeterministicGreedy
from repro.partitioners.wang import WangPartitioner

SHAPES = ("empty", "single", "self_loops", "isolated", "duplicates", "skewed")
SEEDS = (0, 1, 2)
CHUNK_SIZES = (1, 7, None)  # None = DEFAULT_STORAGE_CHUNK


def _fuzz_graph(shape: str, seed: int) -> tuple[int, np.ndarray, np.ndarray | None]:
    """Return ``(num_vertices, edges, weights-or-None)`` for a fuzz shape."""
    rng = np.random.default_rng((hash(shape) & 0xFFFF) * 1000 + seed)
    if shape == "empty":
        return 5, np.empty((0, 2), dtype=np.int64), None
    if shape == "single":
        # One vertex; a self-loop on it for odd seeds.
        if seed % 2:
            return 1, np.array([[0, 0]], dtype=np.int64), None
        return 1, np.empty((0, 2), dtype=np.int64), None
    if shape == "self_loops":
        n = 12
        m = int(rng.integers(5, 25))
        edges = rng.integers(0, n, size=(m, 2), dtype=np.int64)
        edges[:: max(1, m // 4), 1] = edges[:: max(1, m // 4), 0]  # force loops
        weights = rng.integers(1, 5, size=m, dtype=np.int64)
        return n, edges, weights
    if shape == "isolated":
        # Touch only the middle third of the id range.
        n = 30
        m = int(rng.integers(5, 20))
        edges = rng.integers(10, 20, size=(m, 2), dtype=np.int64)
        return n, edges, None
    if shape == "duplicates":
        n = 8
        base = rng.integers(0, n, size=(6, 2), dtype=np.int64)
        repeat = rng.integers(1, 4, size=6)
        edges = np.repeat(base, repeat, axis=0)
        weights = rng.integers(1, 7, size=edges.shape[0], dtype=np.int64)
        return n, edges, weights
    if shape == "skewed":
        # Hub vertex 0 linked to everyone (several times), plus a sparse tail.
        n = 40
        hub = np.stack(
            [np.zeros(2 * (n - 1), dtype=np.int64), np.tile(np.arange(1, n), 2)],
            axis=1,
        )
        tail = rng.integers(1, n, size=(15, 2), dtype=np.int64)
        return n, np.concatenate([hub, tail]), None
    raise AssertionError(shape)


def _edge_chunks(edges: np.ndarray, weights: np.ndarray | None, chunk: int):
    """Split an edge array into ingestion chunks of ``chunk`` edges."""
    for start in range(0, max(edges.shape[0], 1), chunk):
        u = edges[start : start + chunk, 0]
        v = edges[start : start + chunk, 1]
        w = None if weights is None else weights[start : start + chunk]
        yield u, v, w


def _assert_same_arrays(ram: CSRGraph, store: CSRGraph) -> None:
    """Byte-identity of every CSR array (values and dtypes)."""
    for name in ("indptr", "indices", "weights", "weighted_degrees"):
        expected = np.asarray(getattr(ram, name))
        actual = np.asarray(getattr(store, name))
        assert actual.dtype == expected.dtype, name
        assert np.array_equal(actual, expected), name
    assert store.num_vertices == ram.num_vertices
    assert store.total_weight == ram.total_weight


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("shape", SHAPES)
def test_saved_store_arrays_byte_identical(tmp_path, shape, seed):
    n, edges, weights = _fuzz_graph(shape, seed)
    ram = CSRGraph.from_edge_list(edges, n, weights)
    save_csr(ram, tmp_path / "store")
    with open_store(tmp_path / "store") as store:
        assert store.storage == "mmap"
        _assert_same_arrays(ram, store)


@pytest.mark.parametrize("chunk", (1, 3, 1000))
@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("shape", SHAPES)
def test_ingested_store_arrays_byte_identical(tmp_path, shape, seed, chunk):
    """The external sort reproduces from_edge_list's exact half-edge order."""
    n, edges, weights = _fuzz_graph(shape, seed)
    ram = CSRGraph.from_edge_list(edges, n, weights)
    # Tiny run sizes force multi-run merges even on these small graphs.
    for run_half_edges in (1, 7, 1 << 20):
        dest = tmp_path / f"store-{run_half_edges}"
        ingest_edge_chunks(
            _edge_chunks(edges, weights, chunk),
            dest,
            num_vertices=n,
            run_half_edges=run_half_edges,
        )
        with open_store(dest) as store:
            _assert_same_arrays(ram, store)


@pytest.mark.parametrize("chunk", CHUNK_SIZES)
@pytest.mark.parametrize("kernel", ("frontier", "dense"))
@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("shape", SHAPES)
def test_fast_spinner_labels_byte_identical(tmp_path, shape, seed, kernel, chunk):
    """Both kernels, every chunk size: labels AND per-iteration history match."""
    n, edges, weights = _fuzz_graph(shape, seed)
    ram = CSRGraph.from_edge_list(edges, n, weights)
    save_csr(ram, tmp_path / "store")

    base = SpinnerConfig(seed=seed, max_iterations=30, kernel=kernel)
    reference = FastSpinner(base).partition(ram, 3)
    mmap_config = base.with_options(storage="mmap", storage_chunk=chunk)
    with open_store(tmp_path / "store") as store:
        streamed = FastSpinner(mmap_config).partition(store, 3)

    assert np.array_equal(streamed.labels, reference.labels)
    assert streamed.iterations == reference.iterations
    assert streamed.history == reference.history
    assert streamed.phi == reference.phi
    assert streamed.rho == reference.rho


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("shape", SHAPES)
def test_fast_spinner_spill_path_byte_identical(shape, seed):
    """storage='mmap' on a RAM graph spills to a temp store, same labels."""
    n, edges, weights = _fuzz_graph(shape, seed)
    ram = CSRGraph.from_edge_list(edges, n, weights)
    base = SpinnerConfig(seed=seed, max_iterations=20)
    reference = FastSpinner(base).partition(ram, 3)
    spilled = FastSpinner(base.with_options(storage="mmap")).partition(ram, 3)
    assert np.array_equal(spilled.labels, reference.labels)
    assert spilled.history == reference.history


@pytest.mark.parametrize(
    "factory",
    [
        lambda: LinearDeterministicGreedy(seed=7),
        lambda: FennelPartitioner(seed=7),
        lambda: WangPartitioner(lpa_iterations=4, seed=7),
    ],
    ids=["ldg", "fennel", "wang"],
)
@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("shape", SHAPES)
def test_baseline_assignments_byte_identical(tmp_path, shape, seed, factory):
    n, edges, weights = _fuzz_graph(shape, seed)
    ram = CSRGraph.from_edge_list(edges, n, weights)
    save_csr(ram, tmp_path / "store")
    reference = factory().partition_array(ram, 3)
    with open_store(tmp_path / "store") as store:
        streamed = factory().partition_array(store, 3)
    assert np.array_equal(streamed, reference)


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("shape", SHAPES)
def test_quality_metrics_byte_identical(tmp_path, shape, seed):
    """The streamed metric passes equal the single-pass expressions exactly."""
    n, edges, weights = _fuzz_graph(shape, seed)
    ram = CSRGraph.from_edge_list(edges, n, weights)
    save_csr(ram, tmp_path / "store")
    labels = np.random.default_rng(seed).integers(0, 3, size=n, dtype=np.int64)
    reference = quality_summary(ram, labels, 3)
    with open_store(tmp_path / "store") as store:
        streamed = quality_summary(store, labels, 3)
    assert streamed == reference
