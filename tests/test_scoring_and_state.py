"""Tests for the Spinner score function, migration probability and state helpers."""

import numpy as np
import pytest

from repro.core.config import SpinnerConfig
from repro.core.scoring import (
    choose_label,
    label_frequencies,
    label_score,
    migration_probability,
)
from repro.core.state import PartitionLoadTracker, validate_labels
from repro.errors import InvalidPartitionCountError, PartitioningError


def test_label_frequencies_skip_unknown_labels():
    freqs = label_frequencies([(0, 2.0), (1, 1.0), (None, 5.0), (0, 1.0)])
    assert freqs == {0: 3.0, 1: 1.0}


def test_label_score_combines_locality_and_penalty():
    config = SpinnerConfig()
    loads = np.array([50.0, 100.0])
    score_light = label_score(0, {0: 5.0, 1: 5.0}, 10.0, loads, capacity=100.0, config=config)
    score_heavy = label_score(1, {0: 5.0, 1: 5.0}, 10.0, loads, capacity=100.0, config=config)
    assert score_light > score_heavy  # same locality, lighter partition wins


def test_label_score_without_penalty():
    config = SpinnerConfig(balance_penalty=False)
    loads = np.array([0.0, 1e9])
    assert label_score(1, {1: 10.0}, 10.0, loads, 100.0, config) == pytest.approx(1.0)


def test_choose_label_prefers_majority_neighbour_label():
    config = SpinnerConfig()
    loads = np.array([10.0, 10.0, 10.0])
    best, best_score, current_score = choose_label(
        0, {1: 8.0, 0: 2.0}, 10.0, loads, capacity=100.0, config=config
    )
    assert best == 1
    assert best_score > current_score


def test_choose_label_keeps_current_on_tie():
    config = SpinnerConfig()
    loads = np.array([10.0, 10.0])
    best, _bs, _cs = choose_label(1, {0: 5.0, 1: 5.0}, 10.0, loads, 100.0, config)
    assert best == 1


def test_choose_label_without_tie_preference_picks_smallest_index():
    config = SpinnerConfig(prefer_current_label=False)
    loads = np.array([10.0, 10.0])
    best, _bs, _cs = choose_label(1, {0: 5.0, 1: 5.0}, 10.0, loads, 100.0, config)
    assert best == 0


def test_zero_degree_vertex_moves_to_lightest_partition():
    config = SpinnerConfig()
    loads = np.array([90.0, 10.0])
    best, _bs, _cs = choose_label(0, {}, 0.0, loads, 100.0, config)
    assert best == 1


def test_migration_probability_clamped():
    assert migration_probability(50.0, 100.0) == pytest.approx(0.5)
    assert migration_probability(200.0, 100.0) == 1.0
    assert migration_probability(-5.0, 100.0) == 0.0
    assert migration_probability(10.0, 0.0) == 1.0


def test_validate_labels():
    validate_labels([0, 1, 2], 3)
    with pytest.raises(PartitioningError):
        validate_labels([0, 3], 3)
    with pytest.raises(InvalidPartitionCountError):
        validate_labels([0], 0)


def test_partition_load_tracker_basics():
    tracker = PartitionLoadTracker(3)
    tracker.add(0, 10)
    tracker.add(1, 5)
    assert tracker.least_loaded() == 2
    assert tracker.most_loaded() == 0
    tracker.remove(0, 10)
    assert tracker.total == 5
    with pytest.raises(PartitioningError):
        tracker.add(5, 1)


def test_partition_load_tracker_from_assignment():
    tracker = PartitionLoadTracker.from_assignment(
        {0: 0, 1: 1, 2: 1}, 2, weight_of={0: 4, 1: 1, 2: 1}
    )
    assert tracker.loads.tolist() == [4.0, 2.0]
    assert tracker.normalized_max() == pytest.approx(4 * 2 / 6)
