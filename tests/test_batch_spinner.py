"""Equivalence suite: BatchSpinnerProgram (vector engine) vs SpinnerProgram (dict engine).

The contract is bit-exact, not approximate: for the same
:class:`~repro.core.config.SpinnerConfig` (same seed) the two runtimes
must produce identical assignments, superstep counts, iteration
histories (``phi``/``rho``/``score``/``migrations`` compared as exact
floats), aggregator histories, per-worker statistics and halt reasons —
across directed and undirected generator graphs, both placements, the
ablation switches and the incremental/elastic restart paths.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.batch_program import BatchSpinnerProgram, build_spinner_shard
from repro.core.config import SpinnerConfig
from repro.core.spinner import SpinnerPartitioner
from repro.errors import ConfigurationError, PartitioningError
from repro.graph.datasets import twitter_proxy
from repro.graph.digraph import DiGraph
from repro.graph.dynamic import EdgeArrivalStream
from repro.graph.generators import powerlaw_cluster, watts_strogatz
from repro.graph.undirected import UndirectedGraph
from repro.pregel.vector_engine import VectorPregelEngine


def _stride_placement(num_workers: int):
    """A non-hash placement: blocks of three consecutive ids per worker."""

    def place(vertex_id: int) -> int:
        return (vertex_id // 3) % num_workers

    return place


def _partitioners(config, num_workers=4, placement=None):
    dict_part = SpinnerPartitioner(
        config, num_workers=num_workers, engine="dict", placement=placement
    )
    vector_part = SpinnerPartitioner(
        config, num_workers=num_workers, engine="vector", placement=placement
    )
    return dict_part, vector_part


def assert_equivalent(dict_result, vector_result):
    """Assert the full bit-exact equivalence contract between two runs."""
    assert dict_result.assignment == vector_result.assignment
    assert dict_result.iterations == vector_result.iterations
    # IterationRecord is a frozen dataclass of floats; == is exact.
    assert dict_result.history == vector_result.history
    assert dict_result.phi == vector_result.phi
    assert dict_result.rho == vector_result.rho
    dict_pregel = dict_result.pregel_result
    vector_pregel = vector_result.pregel_result
    assert dict_pregel.num_supersteps == vector_pregel.num_supersteps
    assert dict_pregel.halt_reason == vector_pregel.halt_reason
    assert dict_pregel.aggregator_history == vector_pregel.aggregator_history
    assert dict_pregel.stats.superstep_stats == vector_pregel.stats.superstep_stats
    assert dict_pregel.stats.messages_dropped == vector_pregel.stats.messages_dropped


@pytest.fixture
def undirected_graph() -> UndirectedGraph:
    return powerlaw_cluster(220, edges_per_vertex=5, triangle_probability=0.5, seed=5)


@pytest.fixture
def directed_graph() -> DiGraph:
    return twitter_proxy(scale=0.05, seed=9)


@pytest.mark.parametrize("placement_name", ["hash", "stride"])
@pytest.mark.parametrize("graph_kind", ["undirected", "directed"])
def test_scratch_equivalence(graph_kind, placement_name, undirected_graph, directed_graph):
    graph = undirected_graph if graph_kind == "undirected" else directed_graph
    placement = None if placement_name == "hash" else _stride_placement(4)
    config = SpinnerConfig(seed=3, max_iterations=25)
    dict_part, vector_part = _partitioners(config, placement=placement)
    assert_equivalent(dict_part.partition(graph, 4), vector_part.partition(graph, 4))


@pytest.mark.parametrize(
    "overrides",
    [
        {"worker_local_updates": False},
        {"probabilistic_migration": False},
        {"balance_penalty": False},
        {"prefer_current_label": False},
        {"additional_capacity": 1.5},
    ],
    ids=lambda o: next(iter(o.items()))[0],
)
def test_ablation_equivalence(overrides, undirected_graph):
    config = SpinnerConfig(seed=7, max_iterations=20).with_options(**overrides)
    dict_part, vector_part = _partitioners(config)
    assert_equivalent(
        dict_part.partition(undirected_graph, 4),
        vector_part.partition(undirected_graph, 4),
    )


def test_directed_ablation_equivalence(directed_graph):
    config = SpinnerConfig(seed=11, max_iterations=15, worker_local_updates=False)
    dict_part, vector_part = _partitioners(config, num_workers=3)
    assert_equivalent(
        dict_part.partition(directed_graph, 5), vector_part.partition(directed_graph, 5)
    )


def test_incremental_restart_equivalence(undirected_graph):
    config = SpinnerConfig(seed=3, max_iterations=25)
    dict_part, vector_part = _partitioners(config)
    stream = EdgeArrivalStream(undirected_graph, holdout_fraction=0.3, seed=5)
    snapshot = stream.snapshot()
    initial = dict_part.partition(snapshot, 4)
    delta = stream.delta(fraction_of_snapshot=0.05)
    delta.apply(snapshot)
    assert_equivalent(
        dict_part.adapt_to_graph_changes(snapshot, initial.assignment, 4),
        vector_part.adapt_to_graph_changes(snapshot, initial.assignment, 4),
    )


@pytest.mark.parametrize("new_k", [6, 3], ids=["expand", "shrink"])
def test_elastic_restart_equivalence(new_k, undirected_graph):
    config = SpinnerConfig(seed=3, max_iterations=25)
    dict_part, vector_part = _partitioners(config)
    base = dict_part.partition(undirected_graph, 4)
    assert_equivalent(
        dict_part.adapt_to_partition_change(undirected_graph, base.assignment, 4, new_k),
        vector_part.adapt_to_partition_change(undirected_graph, base.assignment, 4, new_k),
    )


def test_initial_assignment_equivalence(undirected_graph):
    config = SpinnerConfig(seed=1, max_iterations=10)
    dict_part, vector_part = _partitioners(config)
    initial = {v: v % 3 for v in undirected_graph.vertices()}
    assert_equivalent(
        dict_part.partition(undirected_graph, 3, initial_assignment=initial),
        vector_part.partition(undirected_graph, 3, initial_assignment=initial),
    )


def test_directed_self_loops_equivalence():
    graph = DiGraph.from_edges(
        [(0, 0), (0, 1), (1, 0), (1, 2), (2, 3), (3, 2), (3, 4), (4, 4), (4, 0)]
    )
    config = SpinnerConfig(seed=3, max_iterations=10)
    dict_part, vector_part = _partitioners(config, num_workers=2)
    assert_equivalent(dict_part.partition(graph, 2), vector_part.partition(graph, 2))


def test_isolated_vertices_equivalence():
    graph = UndirectedGraph()
    for vertex in range(8):
        graph.add_vertex(vertex)
    graph.add_edge(0, 1)
    graph.add_edge(2, 3)
    config = SpinnerConfig(seed=3, max_iterations=8)
    dict_part, vector_part = _partitioners(config, num_workers=2)
    assert_equivalent(dict_part.partition(graph, 2), vector_part.partition(graph, 2))


def test_max_iterations_halt_equivalence(undirected_graph):
    # A huge halt window forces the max_iterations path in both engines.
    config = SpinnerConfig(seed=3, max_iterations=4, halt_window=100)
    dict_part, vector_part = _partitioners(config)
    dict_result = dict_part.partition(undirected_graph, 4)
    vector_result = vector_part.partition(undirected_graph, 4)
    assert dict_result.iterations == 4
    assert_equivalent(dict_result, vector_result)


def test_small_world_equivalence():
    graph = watts_strogatz(180, degree=8, beta=0.3, seed=5)
    config = SpinnerConfig(seed=5, max_iterations=20)
    dict_part, vector_part = _partitioners(config, num_workers=5)
    assert_equivalent(dict_part.partition(graph, 8), vector_part.partition(graph, 8))


# ----------------------------------------------------------------------
# engine selection plumbing
# ----------------------------------------------------------------------
def test_config_engine_field_selects_runtime(undirected_graph):
    config = SpinnerConfig(seed=3, max_iterations=10, engine="vector")
    partitioner = SpinnerPartitioner(config)
    assert partitioner.engine == "vector"
    result = partitioner.partition(undirected_graph, 4)
    assert set(result.assignment) == set(undirected_graph.vertices())


def test_engine_argument_overrides_config(undirected_graph):
    config = SpinnerConfig(seed=3, max_iterations=10, engine="dict")
    assert SpinnerPartitioner(config, engine="vector").engine == "vector"


def test_invalid_engine_rejected():
    with pytest.raises(ConfigurationError):
        SpinnerConfig(engine="warp")
    with pytest.raises(ConfigurationError):
        SpinnerPartitioner(SpinnerConfig(), engine="warp")


# ----------------------------------------------------------------------
# BatchSpinnerProgram internals
# ----------------------------------------------------------------------
def test_bind_validates_label_count(undirected_graph):
    engine = VectorPregelEngine(num_workers=2)
    shard = build_spinner_shard(engine, undirected_graph)
    program = BatchSpinnerProgram(4, SpinnerConfig(), convert_directed=False)
    with pytest.raises(PartitioningError):
        program.bind(shard, np.zeros(3, dtype=np.int64))


def test_bind_validates_conversion_flag(undirected_graph):
    engine = VectorPregelEngine(num_workers=2)
    shard = build_spinner_shard(engine, undirected_graph)
    program = BatchSpinnerProgram(4, SpinnerConfig(), convert_directed=True)
    with pytest.raises(PartitioningError):
        program.bind(shard, np.zeros(shard.shard.num_vertices, dtype=np.int64))


def test_directed_shard_carries_send_plan(directed_graph):
    engine = VectorPregelEngine(num_workers=4)
    spinner_shard = build_spinner_shard(engine, directed_graph)
    assert spinner_shard.convert_directed
    plan = spinner_shard.directed_plan
    assert plan.sources.shape == plan.targets.shape
    assert int(plan.out_degrees.sum()) == plan.sources.shape[0]
    # Canonical order: worker-major by source.
    source_workers = spinner_shard.shard.worker_of[plan.sources]
    assert np.all(np.diff(source_workers) >= 0)
