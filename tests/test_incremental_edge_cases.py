"""Edge cases of the incremental-repartitioning initializers.

The serving churn path (:mod:`repro.serving.churn`) feeds arbitrary
:class:`~repro.graph.dynamic.GraphDelta` batches into
``adapt_to_graph_changes``, which seeds label propagation through
:mod:`repro.core.incremental`.  These tests pin the degenerate delta
shapes that path can produce — an empty delta, a delta made only of
brand-new vertices, and a delta entirely inside one partition — on both
the dict-based initializer and its array-native twin.
"""

import numpy as np
import pytest

from repro.core.incremental import (
    affected_vertices,
    incremental_initial_assignment,
    incremental_initial_labels,
)
from repro.errors import PartitioningError
from repro.graph.csr import CSRGraph
from repro.graph.dynamic import GraphDelta
from repro.graph.generators import erdos_renyi


@pytest.fixture
def graph():
    return erdos_renyi(60, 240, seed=13)


@pytest.fixture
def previous(graph):
    return {vertex: vertex % 4 for vertex in graph.vertices()}


def _labels_via_csr(graph, previous, num_partitions):
    csr = CSRGraph.from_undirected(graph)
    labels = incremental_initial_labels(csr, previous, num_partitions)
    return {
        int(vertex): int(label)
        for vertex, label in zip(csr.original_ids.tolist(), labels.tolist())
    }


def test_empty_delta_preserves_assignment_exactly(graph, previous):
    delta = GraphDelta()
    delta.apply(graph)
    assignment = incremental_initial_assignment(graph, previous, 4)
    assert assignment == previous
    assert affected_vertices(graph, delta.added_edges) == set()
    assert _labels_via_csr(graph, previous, 4) == assignment


def test_new_vertices_only_delta_places_least_loaded(graph, previous):
    # A delta with brand-new vertices and no edges between old ones — the
    # hub-birth shape before any hub edges arrive.
    new_ids = [200, 201, 202]
    delta = GraphDelta(added_vertices=set(new_ids))
    delta.apply(graph)
    assignment = incremental_initial_assignment(graph, previous, 4)
    for vertex, label in previous.items():
        assert assignment[vertex] == label
    for vertex in new_ids:
        assert 0 <= assignment[vertex] < 4
    # Zero-degree newcomers never show up as affected vertices.
    assert affected_vertices(graph, delta.added_edges) == set()
    assert _labels_via_csr(graph, previous, 4) == assignment


def test_new_vertex_with_edges_is_affected_and_placed(graph, previous):
    delta = GraphDelta(added_edges=[(300, 0, 1), (300, 1, 1)], added_vertices={300})
    delta.apply(graph)
    assert affected_vertices(graph, delta.added_edges) == {300, 0, 1}
    assignment = incremental_initial_assignment(graph, previous, 4)
    assert 0 <= assignment[300] < 4
    for vertex, label in previous.items():
        assert assignment[vertex] == label
    assert _labels_via_csr(graph, previous, 4) == assignment


def test_delta_within_one_partition_changes_no_labels(graph, previous):
    # Edges strictly inside partition 2 (vertices 2, 6, 10, ... mod 4 == 2):
    # the initializer must keep every label, so a serving repartition
    # triggered by such a delta starts from a still-perfect seed.
    members = [vertex for vertex in sorted(graph.vertices()) if vertex % 4 == 2]
    edges = []
    for u, v in zip(members, members[2:]):
        if not graph.has_edge(u, v):
            edges.append((u, v, 1))
    assert edges, "fixture graph left no room for intra-partition edges"
    delta = GraphDelta(added_edges=edges)
    delta.apply(graph)
    assignment = incremental_initial_assignment(graph, previous, 4)
    assert assignment == previous
    assert _labels_via_csr(graph, previous, 4) == assignment
    touched = affected_vertices(graph, delta.added_edges)
    assert touched <= set(members)


def test_affected_vertices_ignores_unknown_endpoints(graph):
    edges = [(10**9, 0, 1), (10**9 + 1, 10**9 + 2, 1)]
    assert affected_vertices(graph, edges) == {0}
    assert affected_vertices(graph, []) == set()


def test_stale_previous_vertices_are_ignored(graph, previous):
    stale = dict(previous)
    stale[10**6] = 3  # refers to a vertex that does not exist anymore
    assignment = incremental_initial_assignment(graph, stale, 4)
    assert assignment == previous
    assert 10**6 not in assignment


def test_invalid_previous_labels_rejected(graph, previous):
    bad = dict(previous)
    bad[0] = 4  # out of range for k=4
    with pytest.raises(PartitioningError):
        incremental_initial_assignment(graph, bad, 4)
    with pytest.raises(PartitioningError):
        incremental_initial_labels(CSRGraph.from_undirected(graph), bad, 4)


def test_array_twin_matches_on_random_previous(graph):
    rng = np.random.default_rng(7)
    previous = {
        vertex: int(rng.integers(4))
        for vertex in graph.vertices()
        if rng.random() < 0.8  # leave ~20% of vertices "new"
    }
    dict_assignment = incremental_initial_assignment(graph, previous, 4)
    assert _labels_via_csr(graph, previous, 4) == dict_assignment
