"""Tests for the analytical models (Propositions 1-3)."""

import numpy as np
import pytest

from repro.analysis.connectivity import (
    is_b_connected,
    is_strongly_connected,
    migration_edges,
)
from repro.analysis.load_model import LoadVectorModel, estimate_convergence_rate
from repro.analysis.overload_bound import (
    empirical_overload_rate,
    overload_probability_bound,
)
from repro.errors import ConfigurationError


def test_strong_connectivity():
    cycle = [(0, 1), (1, 2), (2, 0)]
    assert is_strongly_connected(3, cycle)
    assert not is_strongly_connected(3, [(0, 1), (1, 2)])
    assert is_strongly_connected(1, [])


def test_b_connectivity_over_windows():
    k = 3
    graphs = [[(0, 1), (1, 0)], [(1, 2), (2, 1), (0, 1), (1, 0)]]
    # Union over a window of 2 is strongly connected.
    assert is_b_connected(k, graphs, window=2)
    # Each individual graph is not.
    assert not is_b_connected(k, graphs, window=1)
    with pytest.raises(ValueError):
        is_b_connected(k, graphs, window=0)


def test_migration_edges():
    before = [0, 0, 1, 2]
    after = [1, 0, 1, 0]
    assert migration_edges(before, after) == {(0, 1), (2, 0)}


def test_load_model_converges_to_even_balance():
    model = LoadVectorModel(num_partitions=6, exchange_fraction=0.3, seed=1)
    initial = np.array([100.0, 0.0, 0.0, 0.0, 0.0, 0.0])
    trajectory = model.simulate(initial, iterations=120)
    final = trajectory[-1]
    # Proposition 1: every component converges to the same value.
    assert final.max() - final.min() < 1e-6
    assert 0.0 < final.mean() < 100.0


def test_load_model_convergence_is_exponential():
    model = LoadVectorModel(num_partitions=5, exchange_fraction=0.4, seed=2)
    trajectory = model.simulate(np.array([50.0, 10.0, 0.0, 0.0, 0.0]), iterations=80)
    rate = estimate_convergence_rate(trajectory)
    assert 0.0 < rate < 1.0


def test_load_model_validation():
    with pytest.raises(ConfigurationError):
        LoadVectorModel(num_partitions=1)
    with pytest.raises(ConfigurationError):
        LoadVectorModel(num_partitions=3, exchange_fraction=0.0)
    model = LoadVectorModel(num_partitions=3)
    with pytest.raises(ConfigurationError):
        model.simulate(np.zeros(5), iterations=3)


def test_stochastic_matrix_properties():
    model = LoadVectorModel(num_partitions=4, exchange_fraction=0.25, seed=3)
    matrix = model.random_stochastic_matrix()
    assert np.allclose(matrix.sum(axis=1), 1.0)
    assert np.all(np.diag(matrix) > 0)


def test_overload_bound_decreases_with_more_candidates():
    few = overload_probability_bound(10, 0.2, 100.0, 1.0, 50.0)
    many = overload_probability_bound(200, 0.2, 100.0, 1.0, 50.0)
    assert many < few <= 1.0


def test_overload_bound_matches_paper_example():
    # |M(l)| = 200, delta = 1, Delta = 500 (the paper's worked example):
    # exceeding C + 0.2 r(l) has probability < 0.2 and exceeding
    # C + 0.4 r(l) has probability < 0.0016 (for a remaining capacity large
    # enough for the example to be meaningful, here r(l) = 200).
    bound_04 = overload_probability_bound(200, 0.4, 200.0, 1.0, 500.0)
    bound_02 = overload_probability_bound(200, 0.2, 200.0, 1.0, 500.0)
    assert bound_02 < 0.2
    assert bound_04 < 0.0016


def test_overload_bound_edge_cases():
    assert overload_probability_bound(0, 0.2, 10.0, 1.0, 5.0) == 1.0
    assert overload_probability_bound(10, 0.2, 10.0, 3.0, 3.0) == 0.0


def test_empirical_rate_is_below_bound():
    rng = np.random.default_rng(0)
    degrees = rng.integers(1, 50, size=150).astype(float)
    remaining = 0.5 * degrees.sum()
    epsilon = 0.2
    empirical = empirical_overload_rate(degrees, remaining, epsilon, trials=1500, seed=1)
    bound = overload_probability_bound(
        len(degrees), epsilon, remaining, degrees.min(), degrees.max()
    )
    assert empirical <= bound + 0.02


def test_empirical_rate_empty_inputs():
    assert empirical_overload_rate([], 10.0, 0.1) == 0.0
    assert empirical_overload_rate([1.0, 2.0], 0.0, 0.1) == 0.0
