"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.core.config import SpinnerConfig
from repro.graph.datasets import tuenti_proxy, twitter_proxy
from repro.graph.digraph import DiGraph
from repro.graph.generators import powerlaw_cluster, watts_strogatz
from repro.graph.undirected import UndirectedGraph


@pytest.fixture
def triangle_graph() -> UndirectedGraph:
    """Three vertices forming a triangle (weights 1)."""
    return UndirectedGraph.from_edges([(0, 1), (1, 2), (0, 2)])


@pytest.fixture
def two_cliques() -> UndirectedGraph:
    """Two 5-cliques joined by a single bridge edge — an obvious 2-cut."""
    graph = UndirectedGraph()
    first = range(0, 5)
    second = range(5, 10)
    for group in (first, second):
        for u in group:
            for v in group:
                if u < v:
                    graph.add_edge(u, v)
    graph.add_edge(0, 5)
    return graph


@pytest.fixture
def small_directed() -> DiGraph:
    """The directed example of Figure 1-like shape (reciprocal + single edges)."""
    return DiGraph.from_edges([(0, 1), (1, 0), (1, 2), (2, 3), (3, 2), (3, 4)])


@pytest.fixture
def community_graph() -> UndirectedGraph:
    """A clustered power-law graph with clear community structure."""
    return powerlaw_cluster(300, edges_per_vertex=6, triangle_probability=0.6, seed=5)


@pytest.fixture
def small_world_graph() -> UndirectedGraph:
    """A small Watts-Strogatz graph (the scalability workload)."""
    return watts_strogatz(200, degree=8, beta=0.3, seed=5)


@pytest.fixture
def tiny_tuenti() -> UndirectedGraph:
    """A very small Tuenti proxy for dynamic/elastic tests."""
    return tuenti_proxy(scale=0.03, seed=9)


@pytest.fixture
def tiny_twitter() -> DiGraph:
    """A very small Twitter proxy (directed, hub-dominated)."""
    return twitter_proxy(scale=0.03, seed=9)


@pytest.fixture
def quick_config() -> SpinnerConfig:
    """Spinner configuration bounded for fast tests."""
    return SpinnerConfig(seed=3, max_iterations=40)
