"""Tests for the directed -> weighted undirected conversion (eq. 3)."""

from repro.graph.conversion import (
    ensure_undirected,
    to_weighted_undirected,
    undirected_view_unweighted,
)
from repro.graph.digraph import DiGraph
from repro.graph.undirected import UndirectedGraph


def test_reciprocal_edges_get_weight_two(small_directed):
    undirected = to_weighted_undirected(small_directed)
    assert undirected.weight(0, 1) == 2
    assert undirected.weight(2, 3) == 2
    assert undirected.weight(1, 2) == 1
    assert undirected.weight(3, 4) == 1


def test_total_weight_equals_directed_edges(small_directed):
    undirected = to_weighted_undirected(small_directed)
    assert undirected.total_weight == small_directed.num_edges


def test_self_loops_are_dropped():
    graph = DiGraph.from_edges([(0, 0), (0, 1)])
    undirected = to_weighted_undirected(graph)
    assert undirected.num_edges == 1
    assert not undirected.has_edge(0, 0) if 0 in undirected else True


def test_all_vertices_preserved():
    graph = DiGraph.from_edges([(0, 1)], num_vertices=5)
    undirected = to_weighted_undirected(graph)
    assert undirected.num_vertices == 5


def test_naive_conversion_weights_are_one(small_directed):
    undirected = undirected_view_unweighted(small_directed)
    assert all(w == 1 for _u, _v, w in undirected.edges())


def test_ensure_undirected_passthrough():
    graph = UndirectedGraph.from_edges([(0, 1)])
    assert ensure_undirected(graph) is graph


def test_ensure_undirected_converts_directed(small_directed):
    converted = ensure_undirected(small_directed)
    assert isinstance(converted, UndirectedGraph)
    assert converted.weight(0, 1) == 2
    naive = ensure_undirected(small_directed, direction_aware=False)
    assert naive.weight(0, 1) == 1
