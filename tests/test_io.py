"""Tests for graph and partitioning file I/O."""

import pytest

from repro.errors import GraphFormatError
from repro.graph.digraph import DiGraph
from repro.graph.io import (
    atomic_open,
    atomic_write_bytes,
    atomic_write_text,
    read_directed_edge_list,
    read_partitioning,
    read_undirected_edge_list,
    write_directed_edge_list,
    write_partitioning,
    write_undirected_edge_list,
)
from repro.graph.undirected import UndirectedGraph


def test_directed_roundtrip(tmp_path):
    graph = DiGraph.from_edges([(0, 1), (1, 2), (2, 0)])
    path = tmp_path / "graph.edges"
    write_directed_edge_list(graph, path)
    loaded = read_directed_edge_list(path)
    assert sorted(loaded.edges()) == sorted(graph.edges())


def test_undirected_roundtrip_preserves_weights(tmp_path):
    graph = UndirectedGraph.from_edges([(0, 1, 2), (1, 2, 1)])
    path = tmp_path / "graph.wedges"
    write_undirected_edge_list(graph, path)
    loaded = read_undirected_edge_list(path)
    assert loaded.weight(0, 1) == 2
    assert loaded.weight(1, 2) == 1


def test_comments_and_blank_lines_ignored(tmp_path):
    path = tmp_path / "graph.edges"
    path.write_text("# comment\n\n0 1\n1 2\n")
    graph = read_directed_edge_list(path)
    assert graph.num_edges == 2


def test_malformed_line_raises(tmp_path):
    path = tmp_path / "bad.edges"
    path.write_text("0 1 2 3\n")
    with pytest.raises(GraphFormatError):
        read_directed_edge_list(path)


def test_non_integer_field_raises(tmp_path):
    path = tmp_path / "bad.edges"
    path.write_text("a b\n")
    with pytest.raises(GraphFormatError):
        read_directed_edge_list(path)


def test_partitioning_roundtrip(tmp_path):
    assignment = {0: 1, 1: 0, 2: 1, 10: 3}
    path = tmp_path / "parts.txt"
    write_partitioning(assignment, path)
    assert read_partitioning(path) == assignment


def test_partitioning_bad_line(tmp_path):
    path = tmp_path / "parts.txt"
    path.write_text("0 1 2\n")
    with pytest.raises(GraphFormatError):
        read_partitioning(path)


def test_undirected_reader_skips_self_loops(tmp_path):
    path = tmp_path / "loops.edges"
    path.write_text("0 0\n0 1\n")
    graph = read_undirected_edge_list(path)
    assert graph.num_edges == 1


# ----------------------------------------------------------------------
# atomic writes
# ----------------------------------------------------------------------
def test_atomic_write_text_roundtrip(tmp_path):
    path = tmp_path / "out.txt"
    atomic_write_text(path, "hello\n")
    assert path.read_text() == "hello\n"


def test_atomic_write_bytes_roundtrip(tmp_path):
    path = tmp_path / "out.bin"
    atomic_write_bytes(path, b"\x00\x01\x02")
    assert path.read_bytes() == b"\x00\x01\x02"


def test_atomic_open_rejects_read_modes(tmp_path):
    with pytest.raises(ValueError):
        with atomic_open(tmp_path / "out.txt", "r"):
            pass


def test_interrupted_write_preserves_previous_content(tmp_path):
    path = tmp_path / "out.txt"
    path.write_text("previous\n")
    with pytest.raises(RuntimeError):
        with atomic_open(path) as handle:
            handle.write("half a new fi")
            raise RuntimeError("simulated crash mid-write")
    assert path.read_text() == "previous\n"
    assert list(tmp_path.iterdir()) == [path]


def test_interrupted_write_creates_nothing_for_new_file(tmp_path):
    path = tmp_path / "fresh.txt"
    with pytest.raises(RuntimeError):
        with atomic_open(path) as handle:
            handle.write("doomed")
            raise RuntimeError("simulated crash mid-write")
    assert not path.exists()
    assert list(tmp_path.iterdir()) == []
