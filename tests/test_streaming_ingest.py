"""Streaming edge-list ingestion: boundaries, malformed input, determinism.

Complements the randomized fuzz suite (``test_mmap_equivalence.py``) with
directed cases for the external-sort ingestion pipeline:

* out-of-order input (the sort, not the input order, determines layout);
* run boundaries landing exactly inside one vertex's adjacency span;
* truncated / malformed / empty inputs (``GraphFormatError`` with line
  numbers; an empty file yields a valid empty store);
* byte-for-byte determinism of re-ingestion (every shard file and
  ``meta.json``);
* the handle-audit regression: a freshly ingested store — and one that
  was opened and closed again — can be deleted immediately, proving no
  file or memmap handle leaks out of the pipeline;
* mixed-weight streams exercising the lazy weight-spool backfill.
"""

from __future__ import annotations

import os
import shutil

import numpy as np
import pytest

from repro.errors import GraphError, GraphFormatError
from repro.graph.csr import CSRGraph
from repro.graph.io import (
    ingest_edge_chunks,
    ingest_edge_list,
    iter_edge_list_chunks,
    read_edge_list_csr,
    read_partitioning,
    write_partitioning_array,
)
from repro.graph.mmap_store import open_store


def _arrays(store_dir) -> dict[str, bytes]:
    """Raw bytes of every file in a store, keyed by file name."""
    out = {}
    for name in sorted(os.listdir(store_dir)):
        with open(os.path.join(store_dir, name), "rb") as handle:
            out[name] = handle.read()
    return out


# ----------------------------------------------------------------------
# parsing
# ----------------------------------------------------------------------
def test_iter_edge_list_chunks_batches_and_weights(tmp_path):
    path = tmp_path / "edges.txt"
    path.write_text("# comment\n0 1\n\n1 2 5\n2 3\n3 4\n")
    chunks = list(iter_edge_list_chunks(path, chunk_edges=2))
    assert [c[0].shape[0] for c in chunks] == [2, 2]
    # Batch 0 holds edges (0,1) and (1,2,5): weighted.  Batch 1 is all-unit.
    assert chunks[0][2].tolist() == [1, 5]
    assert chunks[1][2] is None
    path.write_text("0 1 5\n1 2\n")
    (only,) = iter_edge_list_chunks(path)
    assert only[2] is not None
    assert only[2].tolist() == [5, 1]


@pytest.mark.parametrize(
    ("content", "fragment"),
    [
        ("0 1\n2\n", "line 2"),
        ("0 1\n1 2 3 4\n", "line 2"),
        ("x y\n", "line 1"),
        ("0 1\n1 two\n", "line 2"),
    ],
)
def test_malformed_lines_raise_with_line_numbers(tmp_path, content, fragment):
    path = tmp_path / "bad.txt"
    path.write_text(content)
    with pytest.raises(GraphFormatError, match=fragment):
        list(iter_edge_list_chunks(path))
    with pytest.raises(GraphFormatError, match=fragment):
        ingest_edge_list(path, tmp_path / "store")


def test_read_edge_list_csr_matches_from_edge_list(tmp_path):
    path = tmp_path / "edges.txt"
    path.write_text("3 0 2\n0 1\n2 2\n1 0 4\n")
    expected = CSRGraph.from_edge_list(
        np.array([[3, 0], [0, 1], [2, 2], [1, 0]]), 4, weights=[2, 1, 1, 4]
    )
    for chunk_edges in (1, 2, 1000):
        got = read_edge_list_csr(path, chunk_edges=chunk_edges)
        assert np.array_equal(got.indptr, expected.indptr)
        assert np.array_equal(got.indices, expected.indices)
        assert np.array_equal(got.weights, expected.weights)


# ----------------------------------------------------------------------
# ingestion semantics
# ----------------------------------------------------------------------
def test_out_of_order_input_yields_sorted_store(tmp_path):
    """Input order is irrelevant: the store equals from_edge_list's layout."""
    rng = np.random.default_rng(3)
    edges = rng.integers(0, 50, size=(200, 2), dtype=np.int64)
    expected = CSRGraph.from_edge_list(edges, 50)
    shuffled_text = "\n".join(f"{u} {v}" for u, v in edges.tolist()) + "\n"
    path = tmp_path / "edges.txt"
    path.write_text(shuffled_text)
    ingest_edge_list(path, tmp_path / "store", num_vertices=50, chunk_edges=17)
    with open_store(tmp_path / "store") as store:
        assert np.array_equal(store.indptr, expected.indptr)
        assert np.array_equal(store.indices, expected.indices)
        assert np.array_equal(store.weights, expected.weights)


def test_run_boundary_inside_adjacency_span(tmp_path):
    """A vertex whose adjacency straddles run/merge cutoffs stays intact.

    Vertex 2 has 10 neighbours; with ``run_half_edges`` below 10 every
    sorted run *and* every merge range boundary lands inside its span.
    """
    edges = np.array([[2, t] for t in [9, 4, 7, 1, 8, 3, 6, 0, 5, 2]], dtype=np.int64)
    expected = CSRGraph.from_edge_list(edges, 10)
    for run_half_edges in (1, 2, 3, 7):
        dest = tmp_path / f"store-{run_half_edges}"
        ingest_edge_chunks(
            [(edges[:, 0], edges[:, 1], None)],
            dest,
            num_vertices=10,
            run_half_edges=run_half_edges,
        )
        with open_store(dest) as store:
            assert np.array_equal(store.indptr, expected.indptr)
            assert np.array_equal(store.indices, expected.indices)


def test_empty_input_yields_valid_empty_store(tmp_path):
    path = tmp_path / "empty.txt"
    path.write_text("# only comments\n\n")
    meta = ingest_edge_list(path, tmp_path / "store")
    assert meta["num_vertices"] == 0
    assert meta["num_half_edges"] == 0
    with open_store(tmp_path / "store") as store:
        assert store.num_vertices == 0
        assert store.indices.shape == (0,)
        assert list(store.iter_edge_chunks(4)) == []


def test_missing_input_raises(tmp_path):
    with pytest.raises(OSError):
        ingest_edge_list(tmp_path / "nope.txt", tmp_path / "store")


@pytest.mark.parametrize(
    "edges",
    [
        np.array([[-1, 0]], dtype=np.int64),
        np.array([[0, -3]], dtype=np.int64),
    ],
)
def test_negative_ids_raise(tmp_path, edges):
    with pytest.raises(GraphError, match="negative"):
        ingest_edge_chunks([(edges[:, 0], edges[:, 1], None)], tmp_path / "store")


def test_out_of_range_ids_raise(tmp_path):
    edges = np.array([[0, 7]], dtype=np.int64)
    with pytest.raises(GraphError):
        ingest_edge_chunks(
            [(edges[:, 0], edges[:, 1], None)], tmp_path / "store", num_vertices=5
        )


def test_misaligned_chunk_arrays_raise(tmp_path):
    u = np.array([0, 1], dtype=np.int64)
    v = np.array([1], dtype=np.int64)
    with pytest.raises(GraphError):
        ingest_edge_chunks([(u, v, None)], tmp_path / "store")
    w = np.array([1], dtype=np.int64)
    with pytest.raises(GraphError):
        ingest_edge_chunks([(v, v, w[:0])], tmp_path / "store")


def test_mixed_weight_stream_backfills_spool(tmp_path):
    """Unit chunks followed by a weighted chunk: earlier edges get weight 1."""
    u1 = np.array([0, 1, 2], dtype=np.int64)
    v1 = np.array([1, 2, 3], dtype=np.int64)
    u2 = np.array([3, 0], dtype=np.int64)
    v2 = np.array([0, 2], dtype=np.int64)
    w2 = np.array([9, 2], dtype=np.int64)
    edges = np.stack([np.concatenate([u1, u2]), np.concatenate([v1, v2])], axis=1)
    expected = CSRGraph.from_edge_list(edges, 4, weights=[1, 1, 1, 9, 2])
    ingest_edge_chunks(
        [(u1, v1, None), (u2, v2, w2)], tmp_path / "store", num_vertices=4
    )
    with open_store(tmp_path / "store") as store:
        assert np.array_equal(store.weights, expected.weights)
        assert np.array_equal(store.indices, expected.indices)
    # All-unit stores omit weights.bin entirely and present broadcast ones.
    ingest_edge_chunks([(u1, v1, None)], tmp_path / "unit", num_vertices=4)
    assert not (tmp_path / "unit" / "weights.bin").exists()
    with open_store(tmp_path / "unit") as store:
        assert store.weights.tolist() == [1] * 6


# ----------------------------------------------------------------------
# determinism + handle hygiene
# ----------------------------------------------------------------------
def test_reingest_is_byte_deterministic(tmp_path):
    rng = np.random.default_rng(11)
    edges = rng.integers(0, 40, size=(150, 2), dtype=np.int64)
    weights = rng.integers(1, 6, size=150, dtype=np.int64)
    text = "\n".join(
        f"{u} {v} {w}" for (u, v), w in zip(edges.tolist(), weights.tolist())
    )
    path = tmp_path / "edges.txt"
    path.write_text(text + "\n")
    ingest_edge_list(path, tmp_path / "a", chunk_edges=13, run_half_edges=29)
    ingest_edge_list(path, tmp_path / "b", chunk_edges=13, run_half_edges=29)
    assert _arrays(tmp_path / "a") == _arrays(tmp_path / "b")
    # Re-ingesting over an existing store also converges to the same bytes.
    ingest_edge_list(path, tmp_path / "a", chunk_edges=7, run_half_edges=29)
    assert _arrays(tmp_path / "a") == _arrays(tmp_path / "b")


def test_store_deletable_immediately_after_ingest(tmp_path):
    """No leaked handles: rmtree succeeds right after ingest and after use."""
    edges = np.random.default_rng(5).integers(0, 20, size=(60, 2), dtype=np.int64)
    dest = tmp_path / "store"
    ingest_edge_chunks([(edges[:, 0], edges[:, 1], None)], dest, num_vertices=20)
    shutil.rmtree(dest)  # must not raise
    assert not dest.exists()

    ingest_edge_chunks([(edges[:, 0], edges[:, 1], None)], dest, num_vertices=20)
    with open_store(dest) as store:
        for _ in store.iter_edge_chunks(16):
            pass
        np.asarray(store.indices[:5])
    # Context exit closed the memmaps; deletion must succeed.
    shutil.rmtree(dest)
    assert not dest.exists()


def test_ingest_workdir_cleaned_up(tmp_path):
    edges = np.array([[0, 1], [1, 2]], dtype=np.int64)
    dest = tmp_path / "store"
    ingest_edge_chunks([(edges[:, 0], edges[:, 1], None)], dest)
    leftovers = [n for n in os.listdir(dest) if n.startswith(".ingest-tmp")]
    assert leftovers == []


# ----------------------------------------------------------------------
# partitioning file round-trip
# ----------------------------------------------------------------------
def test_write_partitioning_array_roundtrip(tmp_path):
    ids = np.array([30, 10, 20], dtype=np.int64)
    labels = np.array([2, 0, 1], dtype=np.int64)
    path = tmp_path / "assignment.txt"
    write_partitioning_array(ids, labels, path)
    assert read_partitioning(path) == {10: 0, 20: 1, 30: 2}
    lines = path.read_text().splitlines()
    assert lines[1:] == ["10 0", "20 1", "30 2"]  # ascending id order
    with pytest.raises(GraphError):
        write_partitioning_array(ids, labels[:2], path)
