"""Halting edge cases, pinned for both runtimes.

The run loop checks, in order: ``max_supersteps``, master halt, Pregel
convergence (all vertices halted and no messages in flight).  These tests
pin the halt reason, superstep count and final statistics for the corner
cases where two of those conditions race.
"""

import numpy as np
import pytest

from repro.graph.undirected import UndirectedGraph
from repro.pregel import (
    BatchStep,
    BatchVertexProgram,
    MasterCompute,
    Outbox,
    PregelEngine,
    VectorPregelEngine,
    VertexProgram,
)

NUM_VERTICES = 6


def graph() -> UndirectedGraph:
    return UndirectedGraph.from_edges([(i, (i + 1) % NUM_VERTICES) for i in range(NUM_VERTICES)])


class SelfPing(VertexProgram):
    """Every vertex messages itself forever and never votes to halt."""

    def compute(self, vertex, messages, ctx):
        ctx.send_message(vertex.vertex_id, 1.0)


class BatchSelfPing(BatchVertexProgram):
    combine = "sum"

    def compute_batch(self, shard, messages, ctx):
        everyone = np.arange(shard.num_vertices, dtype=np.int64)
        outbox = Outbox(everyone, everyone, np.ones(shard.num_vertices))
        return BatchStep(
            values=ctx.values,
            outbox=outbox,
            votes=np.zeros(shard.num_vertices, dtype=bool),
        )


class QuietQuit(VertexProgram):
    """Every vertex votes to halt immediately without sending anything."""

    def compute(self, vertex, messages, ctx):
        vertex.vote_to_halt()


class BatchQuietQuit(BatchVertexProgram):
    combine = "sum"

    def compute_batch(self, shard, messages, ctx):
        return BatchStep(
            values=ctx.values,
            outbox=ctx.no_messages(),
            votes=np.ones(shard.num_vertices, dtype=bool),
        )


class HaltAt(MasterCompute):
    def __init__(self, superstep: int) -> None:
        super().__init__()
        self._halt_at = superstep

    def compute(self, superstep, aggregators):
        if superstep == self._halt_at:
            self.halt_computation()


def run(engine_kind: str, program_pair: str, max_supersteps: int, master=None):
    if engine_kind == "dict":
        engine = PregelEngine(num_workers=2, max_supersteps=max_supersteps)
        program = SelfPing() if program_pair == "ping" else QuietQuit()
    else:
        engine = VectorPregelEngine(num_workers=2, max_supersteps=max_supersteps)
        program = BatchSelfPing() if program_pair == "ping" else BatchQuietQuit()
    return engine.run_on_undirected(program, graph(), master=master)


# ----------------------------------------------------------------------
# max_supersteps cuts off a run with messages still in flight
# ----------------------------------------------------------------------
@pytest.mark.parametrize("engine_kind", ["dict", "vector"])
def test_max_supersteps_with_messages_in_flight(engine_kind):
    result = run(engine_kind, "ping", max_supersteps=4)
    assert result.halt_reason == "max_supersteps"
    assert result.num_supersteps == 4
    stats = result.stats
    assert [s.superstep for s in stats.superstep_stats] == [0, 1, 2, 3]
    # Every superstep computed every vertex and sent one self-message per
    # vertex; the last batch is still in flight when the cutoff hits.
    for s in stats.superstep_stats:
        assert sum(w.vertices_computed for w in s.worker_stats) == NUM_VERTICES
        sent = sum(
            w.local_messages_sent + w.remote_messages_sent for w in s.worker_stats
        )
        assert sent == NUM_VERTICES
    assert stats.total_messages == 4 * NUM_VERTICES
    # Self-messages never cross a worker boundary.
    assert stats.remote_messages == 0


def test_max_supersteps_cutoff_agrees_across_engines():
    dict_result = run("dict", "ping", max_supersteps=5)
    vector_result = run("vector", "ping", max_supersteps=5)
    assert dict_result.halt_reason == vector_result.halt_reason == "max_supersteps"
    assert dict_result.num_supersteps == vector_result.num_supersteps == 5
    assert dict_result.stats.superstep_stats == vector_result.stats.superstep_stats


# ----------------------------------------------------------------------
# master halt racing vote-to-halt convergence
# ----------------------------------------------------------------------
@pytest.mark.parametrize("engine_kind", ["dict", "vector"])
def test_master_halt_wins_race_with_convergence(engine_kind):
    # All vertices voted to halt during superstep 0 and nothing is in
    # flight, so superstep 1 would declare convergence — but the master
    # runs first and its halt takes precedence.
    result = run(engine_kind, "quit", max_supersteps=50, master=HaltAt(1))
    assert result.halt_reason == "master_halt"
    assert result.num_supersteps == 1
    assert len(result.stats.superstep_stats) == 1


@pytest.mark.parametrize("engine_kind", ["dict", "vector"])
def test_convergence_wins_when_master_halts_later(engine_kind):
    # The master would halt at superstep 2, but the run converges at the
    # superstep-1 check and the master never gets to fire.
    result = run(engine_kind, "quit", max_supersteps=50, master=HaltAt(2))
    assert result.halt_reason == "converged"
    assert result.num_supersteps == 1


@pytest.mark.parametrize("engine_kind", ["dict", "vector"])
def test_max_supersteps_wins_race_with_master_halt(engine_kind):
    # The cutoff check runs before master.compute, so a master that would
    # halt exactly at the cutoff superstep never executes.
    result = run(engine_kind, "ping", max_supersteps=3, master=HaltAt(3))
    assert result.halt_reason == "max_supersteps"
    assert result.num_supersteps == 3
