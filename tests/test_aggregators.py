"""Tests for Pregel aggregators."""

import pytest

from repro.errors import AggregatorError
from repro.pregel.aggregators import (
    AggregatorRegistry,
    DoubleSumAggregator,
    LongSumAggregator,
    MaxAggregator,
    MinAggregator,
)


def test_sum_aggregator_visible_next_superstep():
    aggregator = LongSumAggregator()
    aggregator.aggregate(3)
    aggregator.aggregate(4)
    assert aggregator.value == 0  # not yet published
    aggregator.advance_superstep()
    assert aggregator.value == 7
    aggregator.advance_superstep()
    assert aggregator.value == 0  # non-persistent resets


def test_persistent_aggregator_accumulates():
    aggregator = DoubleSumAggregator(persistent=True)
    aggregator.aggregate(1.5)
    aggregator.advance_superstep()
    aggregator.aggregate(2.5)
    aggregator.advance_superstep()
    assert aggregator.value == 4.0


def test_min_max_aggregators():
    low = MinAggregator()
    high = MaxAggregator()
    for value in (3.0, -1.0, 7.0):
        low.aggregate(value)
        high.aggregate(value)
    low.advance_superstep()
    high.advance_superstep()
    assert low.value == -1.0
    assert high.value == 7.0


def test_registry_register_and_lookup():
    registry = AggregatorRegistry()
    registry.register("loads", LongSumAggregator())
    registry.aggregate("loads", 5)
    registry.advance_superstep()
    assert registry.value("loads") == 5
    assert "loads" in registry
    assert registry.names() == ["loads"]


def test_registry_duplicate_registration():
    registry = AggregatorRegistry()
    registry.register("a", LongSumAggregator())
    with pytest.raises(AggregatorError):
        registry.register("a", LongSumAggregator())
    registry.register("a", LongSumAggregator(), allow_existing=True)


def test_registry_unknown_aggregator():
    registry = AggregatorRegistry()
    with pytest.raises(AggregatorError):
        registry.value("missing")


def test_master_set_overrides_value():
    aggregator = LongSumAggregator()
    aggregator.aggregate(2)
    aggregator.set(10)
    aggregator.advance_superstep()
    assert aggregator.value == 10
