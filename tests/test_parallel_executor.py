"""The executor-equivalence contract of the parallel vector runtime.

``VectorPregelEngine(parallel=N)`` hosts its supersteps in N OS processes
over shared memory (:mod:`repro.pregel.shm_executor`); the contract is
that every observable of a run — final values, halt reason, superstep
count, aggregator histories, per-worker statistics — is **byte-identical**
to the in-process :class:`~repro.pregel.serial_executor.SerialExecutor`,
for all four applications and for the Spinner partitioning itself, under
both placements, and composed with checkpoint/crash-recovery.  These
tests pin that contract, plus the resource-hygiene guarantee: no
``/dev/shm`` segment and no worker process outlives a run, on any exit
path.
"""

from __future__ import annotations

import glob
import multiprocessing

import numpy as np
import pytest

from repro.apps import APP_PROGRAMS, make_app_program
from repro.core.config import SpinnerConfig
from repro.core.spinner import SpinnerPartitioner
from repro.errors import ConfigurationError, PregelError, RecoveryAbortedError
from repro.faults import FaultPlan, MessageFault, WorkerCrash
from repro.graph.digraph import DiGraph
from repro.graph.generators import barabasi_albert, powerlaw_cluster, watts_strogatz
from repro.pregel import resume_from_checkpoint
from repro.pregel.batch import BatchStep, BatchVertexProgram, Outbox
from repro.pregel.executor import plan_worker_groups
from repro.pregel.serial_executor import SerialExecutor
from repro.pregel.shm_executor import START_METHOD_ENV, SharedMemoryExecutor
from repro.pregel.vector_engine import VectorPregelEngine
from repro.pregel.worker import partition_placement

NUM_WORKERS = 4


def _undirected_graph():
    return watts_strogatz(60, 6, 0.3, seed=5)


def _directed_graph():
    return barabasi_albert(50, 3, seed=9, directed=True)


def _placements():
    assignment = {v: v // 7 for v in range(200)}
    return {
        "hash": None,
        "partition": partition_placement(assignment, NUM_WORKERS),
    }


def _program_kwargs(app, directed):
    return {
        "degree": {},
        "pagerank": {"num_iterations": 6},
        "sssp": {"source": 10 if directed else 0},
        "wcc": {},
    }[app]


def _run_app(app, parallel, placement=None, directed=None, **engine_kwargs):
    if directed is None:
        directed = app == "sssp"
    program = make_app_program(app, "vector", **_program_kwargs(app, directed))
    engine = VectorPregelEngine(
        num_workers=NUM_WORKERS,
        placement=placement,
        parallel=parallel,
        **engine_kwargs,
    )
    if directed:
        return engine.run_on_digraph(program, _directed_graph())
    return engine.run_on_undirected(program, _undirected_graph())


def assert_identical(serial, parallel_result):
    """The full byte-identical contract between the two executors."""
    assert np.array_equal(serial.values, parallel_result.values)
    assert np.array_equal(serial.original_ids, parallel_result.original_ids)
    assert serial.num_supersteps == parallel_result.num_supersteps
    assert serial.halt_reason == parallel_result.halt_reason
    assert serial.aggregator_history == parallel_result.aggregator_history
    assert serial.stats.messages_dropped == parallel_result.stats.messages_dropped
    serial_steps = serial.stats.superstep_stats
    parallel_steps = parallel_result.stats.superstep_stats
    assert len(serial_steps) == len(parallel_steps)
    for serial_step, parallel_step in zip(serial_steps, parallel_steps):
        assert serial_step.worker_stats == parallel_step.worker_stats, (
            serial_step.superstep
        )


def assert_no_leaks():
    """No shared-memory segment and no worker process survives a run."""
    assert glob.glob("/dev/shm/spinner-repro-*") == []
    assert [
        p for p in multiprocessing.active_children()
        if p.name.startswith("repro-shard-group-")
    ] == []


# ----------------------------------------------------------------------
# the equivalence matrix: apps x parallelism x placements
# ----------------------------------------------------------------------
@pytest.mark.parametrize("placement_name", ["hash", "partition"])
@pytest.mark.parametrize("parallel", [1, 2, 4])
@pytest.mark.parametrize("app", sorted(APP_PROGRAMS))
def test_apps_identical_across_executors(app, parallel, placement_name):
    placement = _placements()[placement_name]
    serial = _run_app(app, 1, placement)
    result = _run_app(app, parallel, placement)
    assert serial.num_supersteps > 1
    assert_identical(serial, result)
    assert_no_leaks()


def test_pagerank_identical_on_directed_graph():
    serial = _run_app("pagerank", 1, directed=True)
    result = _run_app("pagerank", 3, directed=True)
    assert_identical(serial, result)
    assert_no_leaks()


# ----------------------------------------------------------------------
# the Spinner partitioning itself (BatchSpinnerProgram end to end)
# ----------------------------------------------------------------------
def _spinner_partition(parallel, config, graph, placement=None):
    partitioner = SpinnerPartitioner(
        config,
        num_workers=NUM_WORKERS,
        engine="vector",
        placement=placement,
        parallel=parallel,
    )
    return partitioner.partition(graph, 4)


def assert_spinner_identical(serial, result):
    assert serial.assignment == result.assignment
    assert serial.iterations == result.iterations
    assert serial.history == result.history
    assert serial.phi == result.phi
    assert serial.rho == result.rho
    assert_identical(serial.pregel_result, result.pregel_result)


@pytest.mark.parametrize("parallel", [2, 4])
@pytest.mark.parametrize("worker_local_updates", [True, False])
def test_spinner_identical_across_executors(parallel, worker_local_updates):
    graph = powerlaw_cluster(
        150, edges_per_vertex=4, triangle_probability=0.5, seed=5
    )
    config = SpinnerConfig(
        seed=3, max_iterations=15, worker_local_updates=worker_local_updates
    )
    serial = _spinner_partition(1, config, graph)
    result = _spinner_partition(parallel, config, graph)
    assert_spinner_identical(serial, result)
    assert_no_leaks()


def test_spinner_identical_on_directed_graph_with_placement():
    graph = barabasi_albert(80, 3, seed=9, directed=True)
    config = SpinnerConfig(seed=11, max_iterations=12)
    placement = partition_placement({v: v // 9 for v in range(200)}, NUM_WORKERS)
    serial = _spinner_partition(1, config, graph, placement)
    result = _spinner_partition(3, config, graph, placement)
    assert_spinner_identical(serial, result)
    assert_no_leaks()


# ----------------------------------------------------------------------
# checkpoint / kill / recover composed with the parallel executor
# ----------------------------------------------------------------------
def _small_digraph() -> DiGraph:
    edges = [(i, (i * 3 + 1) % 60) for i in range(60)]
    edges += [(i, (i + 11) % 60) for i in range(60)]
    edges += [(0, i) for i in range(1, 8)]
    return DiGraph.from_edges(edges)


def _crashy_plan(crash_superstep: int = 2) -> FaultPlan:
    return FaultPlan(
        crashes=(WorkerCrash(superstep=crash_superstep, worker=1),),
        message_faults=(MessageFault(superstep=crash_superstep + 1, failures=2),),
        seed=5,
    )


def _run_faulted(app, parallel, tmp_path, plan, **kwargs):
    program = make_app_program(app, "vector", **kwargs)
    engine = VectorPregelEngine(
        num_workers=3,
        parallel=parallel,
        checkpoint_interval=2,
        checkpoint_dir=tmp_path,
        fault_plan=plan,
    )
    return engine.run_on_digraph(program, _small_digraph())


@pytest.mark.parametrize("app", ["pagerank", "wcc"])
def test_crash_recovery_under_parallel_is_bit_exact(app, tmp_path):
    kwargs = {"num_iterations": 6} if app == "pagerank" else {}
    program = make_app_program(app, "vector", **kwargs)
    baseline = VectorPregelEngine(num_workers=3).run_on_digraph(
        program, _small_digraph()
    )
    recovered = _run_faulted(app, 2, tmp_path, _crashy_plan(), **kwargs)
    assert recovered.stats.recoveries == 1
    assert recovered.stats.delivery_retries == 2
    assert recovered.stats.checkpoints_written >= 1
    assert_identical(baseline, recovered)
    assert_no_leaks()


def test_abort_then_offline_resume_after_parallel_crash(tmp_path):
    program = make_app_program("pagerank", "vector", num_iterations=6)
    baseline = VectorPregelEngine(num_workers=3).run_on_digraph(
        program, _small_digraph()
    )
    plan = FaultPlan(crashes=(WorkerCrash(superstep=2),), max_recoveries=0)
    with pytest.raises(RecoveryAbortedError) as excinfo:
        _run_faulted("pagerank", 2, tmp_path, plan, num_iterations=6)
    assert excinfo.value.superstep == 2
    assert excinfo.value.recoveries == 0
    assert_no_leaks()
    # The resumed run re-reads parallel= from the snapshot's engine params.
    resumed = resume_from_checkpoint(tmp_path)
    assert_identical(baseline, resumed)
    assert_no_leaks()


def test_spinner_partitioner_recovery_under_parallel(tmp_path):
    graph = _small_digraph()
    clean = SpinnerConfig(seed=7, max_iterations=12, engine="vector")
    baseline = SpinnerPartitioner(clean, num_workers=3).partition(graph, 4)
    faulted = clean.with_options(
        checkpoint_interval=3,
        checkpoint_dir=str(tmp_path),
        fault_plan=_crashy_plan(),
    )
    recovered = SpinnerPartitioner(faulted, num_workers=3, parallel=2).partition(
        graph, 4
    )
    assert recovered.pregel_result.stats.recoveries == 1
    assert_spinner_identical(baseline, recovered)
    assert_no_leaks()


# ----------------------------------------------------------------------
# resource hygiene on every exit path
# ----------------------------------------------------------------------
class _ExplodingProgram(BatchVertexProgram):
    """A batch program that raises inside a worker process at superstep 2."""

    combine = "sum"

    def compute_batch(self, shard, incoming, ctx):
        if ctx.superstep == 2:
            raise ValueError("deliberate mid-run failure")
        values = np.zeros(shard.num_vertices)
        votes = np.zeros(shard.num_vertices, dtype=bool)
        outbox = ctx.send_to_all_neighbors(
            np.ones(shard.num_vertices, dtype=bool), values
        )
        return BatchStep(values, outbox, votes)


def test_worker_exception_propagates_and_cleans_up():
    engine = VectorPregelEngine(num_workers=NUM_WORKERS, parallel=2)
    with pytest.raises(ValueError, match="deliberate mid-run failure"):
        engine.run_on_undirected(_ExplodingProgram(), _undirected_graph())
    assert_no_leaks()


def test_unknown_target_error_is_serial_identical():
    class StrayProgram(BatchVertexProgram):
        combine = "sum"

        def compute_batch(self, shard, incoming, ctx):
            values = np.zeros(shard.num_vertices)
            votes = np.ones(shard.num_vertices, dtype=bool)
            order = ctx.owned_vertices()
            sources = order if order is not None else shard.vertex_order
            targets = np.full(sources.shape[0], shard.num_vertices + 7)
            return BatchStep(
                values, Outbox(sources, targets, np.zeros(sources.shape[0])), votes
            )

    messages = {}
    for parallel in (1, 2):
        engine = VectorPregelEngine(num_workers=NUM_WORKERS, parallel=parallel)
        with pytest.raises(PregelError) as excinfo:
            engine.run_on_undirected(StrayProgram(), _undirected_graph())
        messages[parallel] = str(excinfo.value)
    assert messages[1] == messages[2]
    assert_no_leaks()


def test_no_shm_leak_across_many_runs():
    for _ in range(3):
        _run_app("degree", 2)
        assert_no_leaks()


# ----------------------------------------------------------------------
# spawn start method (what CI's spawn-safe guard protects)
# ----------------------------------------------------------------------
def test_spawn_start_method_is_bit_exact(monkeypatch):
    serial = _run_app("pagerank", 1)
    monkeypatch.setenv(START_METHOD_ENV, "spawn")
    result = _run_app("pagerank", 2)
    assert_identical(serial, result)
    assert_no_leaks()


# ----------------------------------------------------------------------
# executor plumbing
# ----------------------------------------------------------------------
def test_plan_worker_groups_partitions_contiguously():
    assert plan_worker_groups(8, 2) == [(0, 4), (4, 8)]
    assert plan_worker_groups(5, 2) == [(0, 2), (2, 5)]
    assert plan_worker_groups(3, 8) == [(0, 1), (1, 2), (2, 3)]
    assert plan_worker_groups(6, 1) == [(0, 6)]
    bounds = plan_worker_groups(13, 4)
    assert bounds[0][0] == 0 and bounds[-1][1] == 13
    assert all(lo < hi for lo, hi in bounds)
    assert all(
        prev_hi == lo for (_, prev_hi), (lo, _) in zip(bounds, bounds[1:])
    )


def test_parallel_one_uses_serial_executor():
    engine = VectorPregelEngine(num_workers=4, parallel=1)
    assert isinstance(engine._make_executor(), SerialExecutor)
    engine = VectorPregelEngine(num_workers=4, parallel=2)
    assert isinstance(engine._make_executor(), SharedMemoryExecutor)


def test_parallel_must_be_positive():
    with pytest.raises(PregelError, match="parallel"):
        VectorPregelEngine(num_workers=4, parallel=0)


def test_dict_engine_rejects_parallel():
    with pytest.raises(ConfigurationError, match="vector"):
        SpinnerPartitioner(SpinnerConfig(), engine="dict", parallel=2)


def test_vector_engine_import_shim():
    # The historical import path must keep working (and resolve to the
    # same class the coordinator module defines).
    from repro.pregel import vector_coordinator, vector_engine

    assert vector_engine.VectorPregelEngine is vector_coordinator.VectorPregelEngine
    assert vector_engine.VectorPregelResult is vector_coordinator.VectorPregelResult
